// E7 — Future location prediction, maritime (2D): error vs. horizon for
// five predictor families.
//
// Paper claim: "reconstruction and forecasting of moving entities'
// trajectories in the challenging Maritime (2D space) ... domain".
// Expected shape: dead reckoning wins at the shortest horizons; model-
// based predictors (Kalman) win at mid horizons on noisy streams; pattern
// predictors (Markov grid / route medoid) win at long horizons on
// route-bound traffic — a crossover, not one global winner.
#include <cstdio>
#include <memory>

#include "forecast/eval.h"
#include "forecast/hybrid.h"
#include "forecast/kalman.h"
#include "forecast/kinematic.h"
#include "forecast/markov.h"
#include "forecast/route.h"
#include "sources/ais_generator.h"
#include "trajectory/reconstruct.h"

namespace datacron {

void Run() {
  // History fleet (for pattern training) and evaluation fleet share the
  // same waypoint routes because the generator loops routes: we train on
  // the first half of long traces and evaluate on the second half.
  AisGeneratorConfig fleet;
  fleet.num_vessels = 40;
  fleet.duration = 4 * kHour;
  // Shared lanes (5 vessels per route) in coastal-scale waters with many
  // waypoints: the turn-rich, structured traffic where pattern-based
  // prediction differs from kinematic extrapolation.
  fleet.num_routes = 8;
  fleet.region = BoundingBox::Of(36.0, 24.0, 37.5, 25.5);
  fleet.min_waypoints = 8;
  fleet.max_waypoints = 14;
  fleet.stop_probability = 0.0;  // keep lanes flowing for this experiment
  const auto traces = GenerateAisFleet(fleet);

  // Split: history = dense truth of first 2 h; evaluation = last 2 h.
  const TimestampMs split = fleet.start_time + 2 * kHour;
  std::vector<TruthTrace> eval_traces;
  std::vector<PositionReport> history;
  std::vector<Trajectory> history_trajs;
  for (const TruthTrace& t : traces) {
    TruthTrace tail;
    tail.entity_id = t.entity_id;
    tail.domain = t.domain;
    tail.tick_ms = t.tick_ms;
    tail.start_time = split;
    Trajectory hist_traj;
    hist_traj.entity_id = t.entity_id;
    for (const PositionReport& s : t.samples) {
      if (s.timestamp < split) {
        if (s.timestamp % (30 * kSecond) == 0) {
          history.push_back(s);
          hist_traj.points.push_back(s);
        }
      } else {
        tail.samples.push_back(s);
      }
    }
    eval_traces.push_back(std::move(tail));
    history_trajs.push_back(std::move(hist_traj));
  }

  ForecastEvalConfig cfg;
  cfg.horizons = {1 * kMinute, 2 * kMinute, 5 * kMinute, 10 * kMinute,
                  20 * kMinute, 30 * kMinute};
  cfg.warmup = 5 * kMinute;
  cfg.observation.position_noise_m = 15;
  cfg.observation.fixed_interval_ms = 10 * kSecond;

  std::printf(
      "E7: maritime future location prediction (%zu vessels, eval window "
      "2h, horizons 1..30 min)\n\n",
      fleet.num_vessels);

  std::vector<std::unique_ptr<Predictor>> predictors;
  predictors.push_back(std::make_unique<DeadReckoningPredictor>());
  predictors.push_back(std::make_unique<CtrvPredictor>());
  predictors.push_back(std::make_unique<KalmanPredictor>());
  {
    MarkovGridPredictor::Config mc;
    mc.cell_deg = 0.03;
    auto markov = std::make_unique<MarkovGridPredictor>(mc);
    markov->Train(history);
    predictors.push_back(std::move(markov));
  }
  {
    RoutePredictor::Config rc;
    rc.cluster_threshold_m = 8000;
    auto route = std::make_unique<RoutePredictor>(rc);
    route->Train(history_trajs);
    std::printf("(route predictor: %zu medoid routes from %zu histories)\n",
                route->MedoidCount(), history_trajs.size());
    predictors.push_back(std::move(route));
  }
  {
    HybridPredictor::Config hc;
    hc.route.cluster_threshold_m = 8000;
    auto hybrid = std::make_unique<HybridPredictor>(hc);
    hybrid->Train(history_trajs);
    predictors.push_back(std::move(hybrid));
  }

  for (auto& p : predictors) {
    const auto eval = EvaluatePredictor(p.get(), eval_traces, cfg);
    std::printf("%s\n", eval.ToTable().c_str());
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
