// E4 — Triple store: pattern lookup and BGP join performance.
//
// Micro-benches over a sealed store built from a simulated fleet:
// every pattern shape (bound/unbound S/P/O) plus a star-join query,
// using google-benchmark.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/thread_pool.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/streaming_store.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

struct Dataset {
  TermDictionary dict;
  std::unique_ptr<Vocab> vocab;
  std::unique_ptr<Rdfizer> rdfizer;
  std::vector<Triple> triples;
  TripleStore store;
  std::vector<TermId> node_ids;
  PartitionedRdfStore single;

  Dataset() {
    vocab = std::make_unique<Vocab>(&dict);
    rdfizer = std::make_unique<Rdfizer>(Rdfizer::Config{}, &dict,
                                        vocab.get());
    AisGeneratorConfig fleet;
    fleet.num_vessels = 50;
    fleet.duration = kHour;
    ObservationConfig obs;
    obs.fixed_interval_ms = 10 * kSecond;
    for (const auto& r :
         ObserveFleet(GenerateAisFleet(fleet), obs)) {
      const auto ts = rdfizer->TransformReport(r);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    store.AddBatch(triples);
    store.Seal();
    for (const auto& [node, tag] : rdfizer->tags()) {
      node_ids.push_back(node);
    }
    HashPartitioner one(1, &rdfizer->tags());
    single.Load(triples, one, rdfizer->grid());
  }
};

Dataset& Data() {
  static Dataset* data = new Dataset();
  return *data;
}

void BM_LookupSPO(benchmark::State& state) {
  Dataset& d = Data();
  const Triple probe = d.triples[d.triples.size() / 2];
  for (auto _ : state) {
    auto out = d.store.Match({probe.s, probe.p, probe.o});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LookupSPO);

void BM_LookupSubjectStar(benchmark::State& state) {
  Dataset& d = Data();
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = d.store.Match({d.node_ids[i++ % d.node_ids.size()], 0, 0});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LookupSubjectStar);

void BM_LookupByPredicate(benchmark::State& state) {
  Dataset& d = Data();
  for (auto _ : state) {
    auto n = d.store.Count({0, d.vocab->p_speed, 0});
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_LookupByPredicate);

void BM_LookupByObject(benchmark::State& state) {
  Dataset& d = Data();
  for (auto _ : state) {
    auto out = d.store.Match({0, 0, d.vocab->c_position_node});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LookupByObject);

void BM_SealCost(benchmark::State& state) {
  Dataset& d = Data();
  for (auto _ : state) {
    TripleStore fresh;
    fresh.AddBatch(d.triples);
    fresh.Seal();
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(state.iterations() * d.triples.size());
}
BENCHMARK(BM_SealCost)->Unit(benchmark::kMillisecond);

void BM_SealCostParallel(benchmark::State& state) {
  Dataset& d = Data();
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TripleStore fresh;
    fresh.AddBatch(d.triples);
    fresh.Seal(&pool);
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(state.iterations() * d.triples.size());
}
BENCHMARK(BM_SealCostParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionLoadParallel(benchmark::State& state) {
  Dataset& d = Data();
  ThreadPool pool(static_cast<int>(state.range(0)));
  HashPartitioner scheme(8, &d.rdfizer->tags());
  for (auto _ : state) {
    PartitionedRdfStore store;
    store.Load(d.triples, scheme, d.rdfizer->grid(), d.vocab->p_next_node,
               state.range(0) > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * d.triples.size());
}
BENCHMARK(BM_PartitionLoadParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StarJoinQuery(benchmark::State& state) {
  Dataset& d = Data();
  QueryEngine engine(&d.single, d.rdfizer.get());
  QueryBuilder qb;
  qb.Where("node", d.vocab->p_of_entity,
           d.dict.Intern(EntityIri(200000000)));
  qb.WhereVar("node", d.vocab->p_speed, "speed");
  qb.WhereVar("node", d.vocab->p_course, "course");
  const Query q = qb.Build();
  for (auto _ : state) {
    auto rs = engine.ExecuteLocal(q);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_StarJoinQuery)->Unit(benchmark::kMicrosecond);

void BM_SpatialWindowQuery(benchmark::State& state) {
  Dataset& d = Data();
  QueryEngine engine(&d.single, d.rdfizer.get());
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(d.vocab->p_type),
             QueryTerm::Bound(d.vocab->c_position_node));
  qb.Within("node", BoundingBox::Of(36, 24, 37, 25));
  const Query q = qb.Build();
  for (auto _ : state) {
    auto rs = engine.ExecuteLocal(q);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_SpatialWindowQuery)->Unit(benchmark::kMillisecond);

void BM_StreamingStoreIngest(benchmark::State& state) {
  Dataset& d = Data();
  for (auto _ : state) {
    StreamingRdfStore::Config cfg;
    cfg.bucket_ms = kMinute;
    cfg.retention_buckets = 1 << 20;  // no eviction: measure pure ingest
    StreamingRdfStore stream_store(cfg);
    // Feed all triples in 1000-triple batches with advancing watermarks.
    TimestampMs t = 0;
    for (std::size_t i = 0; i < d.triples.size(); i += 1000) {
      const std::size_t end = std::min(d.triples.size(), i + 1000);
      std::vector<Triple> batch(d.triples.begin() + i,
                                d.triples.begin() + end);
      stream_store.Add(t, batch);
      t += kMinute;
      stream_store.AdvanceTo(t);
    }
    benchmark::DoNotOptimize(stream_store);
  }
  state.SetItemsProcessed(state.iterations() * d.triples.size());
}
BENCHMARK(BM_StreamingStoreIngest)->Unit(benchmark::kMillisecond);

void BM_StreamingStoreMatch(benchmark::State& state) {
  Dataset& d = Data();
  static StreamingRdfStore* stream_store = [] {
    StreamingRdfStore::Config cfg;
    cfg.bucket_ms = kMinute;
    cfg.retention_buckets = 1 << 20;  // keep everything queryable
    auto* s = new StreamingRdfStore(cfg);
    TimestampMs t = 0;
    for (std::size_t i = 0; i < Data().triples.size(); i += 1000) {
      const std::size_t end = std::min(Data().triples.size(), i + 1000);
      std::vector<Triple> batch(Data().triples.begin() + i,
                                Data().triples.begin() + end);
      s->Add(t, batch);
      t += kMinute;
      s->AdvanceTo(t);
    }
    return s;
  }();
  std::size_t i = 0;
  for (auto _ : state) {
    auto out =
        stream_store->Match({d.node_ids[i++ % d.node_ids.size()], 0, 0});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StreamingStoreMatch)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacron

BENCHMARK_MAIN();
