// E9 — Complex event recognition & forecasting.
//
// Paper claim: "recognition and forecasting of complex events and
// patterns due to the movement of entities (e.g. prediction of potential
// collision, capacity demand, hot spots / paths)". Measures per-tuple
// recognition latency/throughput, collision-forecast lead times, capacity
// forecasting, and hotspot detection — the three examples the paper names.
#include <cstdio>

#include "cep/detectors.h"
#include "cep/hotspot.h"
#include "cep/pattern.h"
#include "common/stats.h"
#include "common/time_utils.h"
#include "sources/ais_generator.h"
#include "stream/pipeline.h"

namespace datacron {

void Run() {
  // Congested strait: encounters and near-collisions guaranteed.
  AisGeneratorConfig fleet;
  fleet.num_vessels = 60;
  fleet.duration = kHour;
  fleet.region = BoundingBox::Of(36.0, 24.0, 36.6, 24.6);
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto reports = ObserveFleet(traces, obs);

  std::printf("E9: complex event recognition & forecasting (%zu reports, "
              "%zu vessels)\n\n",
              reports.size(), fleet.num_vessels);

  // -- proximity/collision pipeline ------------------------------------
  {
    ProximityDetector::Config cfg;
    cfg.region = fleet.region;
    cfg.blocking_cell_deg = 0.05;
    ProximityDetector det(cfg);
    Stopwatch timer;
    const auto events = pipeline::RunBatch(&det, reports);
    const double secs = timer.ElapsedSeconds();

    std::size_t encounters = 0, forecasts = 0;
    PercentileTracker lead_s;
    RunningStats cpa_m;
    for (const Event& e : events) {
      if (e.kind == EventKind::kEncounter) ++encounters;
      if (e.kind == EventKind::kCollisionForecast) {
        ++forecasts;
        lead_s.Add(e.LeadTime() / 1000.0);
        cpa_m.Add(e.attributes.at("cpa_m"));
      }
    }
    const auto& m = det.metrics();
    std::printf("proximity/collision detector:\n");
    std::printf("  throughput          %10.0f reports/s\n",
                reports.size() / secs);
    std::printf("  per-tuple latency   %10.1f us mean, %.1f us max\n",
                m.process_nanos.mean() / 1e3, m.process_nanos.max() / 1e3);
    std::printf("  encounters          %10zu\n", encounters);
    std::printf("  collision forecasts %10zu\n", forecasts);
    if (forecasts > 0) {
      std::printf("  forecast lead time  %10.0f s median (p95 %.0f s)\n",
                  lead_s.p50(), lead_s.p95());
      std::printf("  predicted CPA       %10.0f m mean\n", cpa_m.mean());
    }
  }

  // -- capacity demand forecasting --------------------------------------
  {
    std::vector<CapacityMonitor::Sector> sectors;
    sectors.push_back({"strait_west",
                       Polygon::Rectangle(
                           BoundingBox::Of(36.0, 24.0, 36.6, 24.3)),
                       20});
    sectors.push_back({"strait_east",
                       Polygon::Rectangle(
                           BoundingBox::Of(36.0, 24.3, 36.6, 24.6)),
                       20});
    CapacityMonitor::Config cfg;
    cfg.forecast_horizon = 10 * kMinute;
    CapacityMonitor mon(sectors, cfg);
    Stopwatch timer;
    const auto events = pipeline::RunBatch(&mon, reports);
    const double secs = timer.ElapsedSeconds();
    std::size_t warnings = 0, forecasts = 0;
    for (const Event& e : events) {
      if (e.kind == EventKind::kCapacityWarning) ++warnings;
      if (e.kind == EventKind::kCapacityForecast) ++forecasts;
    }
    std::printf("\ncapacity monitor (2 sectors, capacity 20):\n");
    std::printf("  throughput          %10.0f reports/s\n",
                reports.size() / secs);
    std::printf("  overload warnings   %10zu\n", warnings);
    std::printf("  demand forecasts    %10zu (lead %lld s)\n", forecasts,
                static_cast<long long>(cfg.forecast_horizon / 1000));
  }

  // -- hotspot detection & emergence forecasting ------------------------
  {
    HotspotAnalyzer::Config cfg;
    cfg.region = fleet.region;
    cfg.cell_deg = 0.05;
    cfg.zscore_threshold = 2.5;
    HotspotDetector det(cfg, 10 * kMinute);
    Stopwatch timer;
    const auto events = pipeline::RunBatch(&det, reports);
    const double secs = timer.ElapsedSeconds();
    std::size_t hotspots = 0, emerging = 0;
    for (const Event& e : events) {
      if (e.kind == EventKind::kHotspot) ++hotspots;
      if (e.kind == EventKind::kHotspotForecast) ++emerging;
    }
    std::printf("\nhotspot detector (10-min windows, z>=2.5):\n");
    std::printf("  throughput          %10.0f reports/s\n",
                reports.size() / secs);
    std::printf("  hotspot events      %10zu\n", hotspots);
    std::printf("  emergence forecasts %10zu\n", emerging);
  }

  // -- pattern engine over the event stream ------------------------------
  {
    ProximityDetector::Config pcfg;
    pcfg.region = fleet.region;
    pcfg.blocking_cell_deg = 0.05;
    ProximityDetector det(pcfg);
    const auto events = pipeline::RunBatch(&det, reports);

    Pattern pat;
    pat.name = "encounter_then_collision_risk";
    pat.steps = {Pattern::OnKind(EventKind::kEncounter),
                 Pattern::OnKind(EventKind::kCollisionForecast)};
    pat.within = 30 * kMinute;
    PatternMatcher matcher(pat);
    Stopwatch timer;
    const auto composites = pipeline::RunBatch(&matcher, events);
    const double secs = timer.ElapsedSeconds();
    std::printf("\npattern engine (SEQ encounter -> collision_forecast):\n");
    std::printf("  input events        %10zu\n", events.size());
    std::printf("  composite matches   %10zu\n", composites.size());
    std::printf("  throughput          %10.0f events/s\n",
                events.size() / std::max(1e-9, secs));
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
