// E13 — Continuous-query subscription tier at scale.
//
// Sweeps the standing-query count over 10k / 100k / 1M (``--quick`` drops
// the 1M cell) against a fixed report stream, measuring what the
// subscription tier itself costs: registration rate, incremental
// per-epoch evaluation (EvalKeyed inside the shard + barrier CloseEpoch,
// driven on one core), the coalesced delta volume, and the loopback
// fan-out of the resulting kDeltaBatch frames through the
// SubscriptionBroker.
//
// The hard invariant is byte-identity with SubscriptionOracle's full
// re-evaluation: at every cell up to 100k subscriptions a prefix of
// epochs is re-evaluated from scratch and the encoded batches compared
// byte for byte; the measured incremental/full ratio is the "speedup"
// the CI floor guards (>= 5x at 100k). The 1M cell times the incremental
// path only — the oracle's O(subs x epoch) scan is the cost being
// avoided. Emits BENCH_sub.json; `--trace-out` writes the Chrome trace
// (the sub.eval_epoch span the CI trace validation requires).
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/time_utils.h"
#include "net/codec.h"
#include "net/sub_channel.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "sub/oracle.h"
#include "sub/registry.h"
#include "sub/subscription.h"

namespace datacron {
namespace {

constexpr std::size_t kEntities = 500;
constexpr SubscriberId kSubscribers = 64;
const BoundingBox kRegion = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);

/// Deterministic LCG so every run (and both evaluation paths) sees the
/// same subscription set and stream.
struct Lcg {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  std::uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
  double Uniform() {
    return static_cast<double>(Next() % (1u << 20)) / (1u << 20);
  }
};

/// Small grid-indexed box somewhere in the region (kept well under the
/// catchall threshold so the sweep measures the indexed path).
BoundingBox RandomBox(Lcg* rng) {
  const double lat = 35.0 + rng->Uniform() * 3.6;
  const double lon = 23.0 + rng->Uniform() * 3.6;
  const double h = 0.05 + rng->Uniform() * 0.2;
  const double w = 0.05 + rng->Uniform() * 0.2;
  return BoundingBox::Of(lat, lon, lat + h, lon + w);
}

/// The E13 mix: ~70% per-entity geofences, 10% fleet geofences, 10%
/// proximity watches, 10% hotspot thresholds, spread over kSubscribers
/// subscriber channels.
SubscriptionSpec RandomSpec(std::size_t i, Lcg* rng) {
  const std::uint64_t roll = rng->Next() % 10;
  if (roll < 7) {
    GeofenceSpec g;
    g.bbox = RandomBox(rng);
    g.entity = static_cast<EntityId>(1 + i % kEntities);
    if (rng->Next() % 4 == 0) g.dwell_ms = 5 * kMinute;
    return SubscriptionSpec::Geofence(g);
  }
  if (roll < 8) {
    GeofenceSpec g;
    g.bbox = RandomBox(rng);
    g.all_entities = true;
    return SubscriptionSpec::Geofence(g);
  }
  if (roll < 9) {
    ProximitySpec p;
    p.entity = static_cast<EntityId>(1 + i % kEntities);
    p.min_interval_ms = (rng->Next() % 2) * 5 * kMinute;
    return SubscriptionSpec::Proximity(p);
  }
  HotspotSpec h;
  h.bbox = RandomBox(rng);
  h.threshold = 1.0 + rng->Uniform() * 20.0;
  h.window_epochs = 1 + static_cast<std::uint32_t>(rng->Next() % 4);
  return SubscriptionSpec::Hotspot(h);
}

/// Entities sweep east across the region, one report per stream slot in
/// round-robin entity order — every entity keeps crossing geofence boxes
/// for the whole run.
std::vector<PositionReport> MakeStream(std::size_t total_reports) {
  std::vector<PositionReport> out;
  out.reserve(total_reports);
  std::vector<double> lon(kEntities);
  for (std::size_t e = 0; e < kEntities; ++e) {
    lon[e] = 23.0 + 0.008 * static_cast<double>(e % 499);
  }
  for (std::size_t i = 0; i < total_reports; ++i) {
    const std::size_t e = i % kEntities;
    PositionReport r;
    r.entity_id = static_cast<EntityId>(1 + e);
    r.timestamp = static_cast<TimestampMs>(i) * 2 * kSecond;
    r.position = {35.0 + 3.9 * static_cast<double>(e) / kEntities, lon[e],
                  0.0};
    r.speed_mps = 8.0;
    r.course_deg = 90.0;
    out.push_back(r);
    lon[e] += 0.05;
    if (lon[e] > 27.0) lon[e] = 23.0;
  }
  return out;
}

/// A handful of encounter events per epoch (what the global CEP stage
/// would feed the barrier) so the proximity watches do real work.
std::vector<Event> MakeProxEvents(std::int64_t epoch, TimestampMs ts) {
  std::vector<Event> out;
  for (int j = 0; j < 4; ++j) {
    Event ev;
    ev.kind = EventKind::kEncounter;
    ev.time = ts;
    const EntityId a = static_cast<EntityId>(
        1 + (static_cast<std::size_t>(epoch) * 37 + j * 13) % kEntities);
    const EntityId b = static_cast<EntityId>(1 + (a % kEntities));
    ev.entities = {a, b};
    ev.attributes["distance_m"] = 500.0 + 100.0 * j;
    out.push_back(ev);
  }
  return out;
}

std::string EncodeBatches(const std::vector<DeltaBatch>& batches) {
  std::string out;
  for (const DeltaBatch& b : batches) out += Encode(DeltaBatchMsg{b});
  return out;
}

struct SubRecord {
  std::size_t subs = 0;
  double register_ns_per_sub = 0.0;
  double eval_ns_per_epoch = 0.0;
  double eval_ns_per_sub_epoch = 0.0;
  double eval_ns_per_report = 0.0;
  double deltas_per_epoch = 0.0;
  double delta_bytes_per_epoch = 0.0;
  double fanout_ns_per_epoch = 0.0;
  double oracle_ns_per_epoch = 0.0;
  bool identity_checked = false;
  bool identical = true;
  double speedup = 0.0;
};

/// One sweep cell: register `num_subs`, run the stream through the
/// incremental path epoch by epoch, oracle-check a prefix when feasible,
/// then replay the emitted batches through a loopback broker fan-out.
SubRecord RunCell(std::size_t num_subs,
                  const std::vector<PositionReport>& stream,
                  std::size_t epoch_size, std::size_t check_epochs) {
  SubRecord rec;
  rec.subs = num_subs;
  const std::size_t epochs = stream.size() / epoch_size;

  SubscriptionRegistry reg;
  Lcg rng;
  Stopwatch reg_timer;
  for (std::size_t i = 0; i < num_subs; ++i) {
    const auto id = reg.Subscribe(
        static_cast<SubscriberId>(1 + i % kSubscribers), RandomSpec(i, &rng));
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   id.status().ToString().c_str());
      rec.identical = false;
      return rec;
    }
  }
  rec.register_ns_per_sub =
      reg_timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_subs);

  // --- incremental path, one core ------------------------------------
  std::vector<std::string> epoch_bytes;
  epoch_bytes.reserve(epochs);
  std::vector<DeltaBatch> all_batches;
  std::size_t total_deltas = 0;
  std::vector<SubDelta> deltas;
  FlatHashMap<std::uint64_t, double> counts;
  Stopwatch eval_timer;
  for (std::size_t ep = 0; ep < epochs; ++ep) {
    const std::span<const PositionReport> chunk(
        stream.data() + ep * epoch_size, epoch_size);
    for (const PositionReport& r : chunk) {
      deltas.clear();
      counts.Clear();
      reg.EvalKeyed(0, r, &deltas, &counts);
      reg.AddKeyedDeltas(deltas);
      reg.AddHotspotCounts(counts);
    }
    const std::vector<Event> prox =
        MakeProxEvents(static_cast<std::int64_t>(ep),
                       chunk.back().timestamp);
    reg.AddGlobalEvents(prox);
    reg.CloseEpoch(chunk.back().timestamp);
    std::vector<DeltaBatch> batches = reg.TakeBatches();
    for (const DeltaBatch& b : batches) total_deltas += b.deltas.size();
    epoch_bytes.push_back(EncodeBatches(batches));
    all_batches.insert(all_batches.end(),
                       std::make_move_iterator(batches.begin()),
                       std::make_move_iterator(batches.end()));
  }
  const double eval_ns = eval_timer.ElapsedSeconds() * 1e9;
  rec.eval_ns_per_epoch = eval_ns / static_cast<double>(epochs);
  rec.eval_ns_per_sub_epoch =
      rec.eval_ns_per_epoch / static_cast<double>(num_subs);
  rec.eval_ns_per_report = eval_ns / static_cast<double>(stream.size());
  rec.deltas_per_epoch =
      static_cast<double>(total_deltas) / static_cast<double>(epochs);
  std::size_t total_bytes = 0;
  for (const std::string& b : epoch_bytes) total_bytes += b.size();
  rec.delta_bytes_per_epoch =
      static_cast<double>(total_bytes) / static_cast<double>(epochs);

  // --- full re-evaluation oracle on a prefix of epochs ----------------
  if (check_epochs > 0) {
    SubscriptionRegistry oracle_reg;
    Lcg oracle_rng;
    for (std::size_t i = 0; i < num_subs; ++i) {
      (void)oracle_reg.Subscribe(
          static_cast<SubscriberId>(1 + i % kSubscribers),
          RandomSpec(i, &oracle_rng));
    }
    SubscriptionOracle oracle(&oracle_reg);
    rec.identity_checked = true;
    Stopwatch oracle_timer;
    for (std::size_t ep = 0; ep < check_epochs; ++ep) {
      const std::span<const PositionReport> chunk(
          stream.data() + ep * epoch_size, epoch_size);
      const std::vector<Event> prox =
          MakeProxEvents(static_cast<std::int64_t>(ep),
                         chunk.back().timestamp);
      const std::string bytes = EncodeBatches(
          oracle.EvalEpoch(chunk, prox, chunk.back().timestamp));
      if (bytes != epoch_bytes[ep]) {
        rec.identical = false;
        std::fprintf(stderr,
                     "IDENTITY VIOLATION: %zu subs, epoch %zu: incremental "
                     "%zu bytes vs oracle %zu bytes\n",
                     num_subs, ep, epoch_bytes[ep].size(), bytes.size());
      }
    }
    rec.oracle_ns_per_epoch = oracle_timer.ElapsedSeconds() * 1e9 /
                              static_cast<double>(check_epochs);
    rec.speedup = rec.oracle_ns_per_epoch / rec.eval_ns_per_epoch;
  }

  // --- loopback fan-out of the emitted batches ------------------------
  {
    SubscriptionBroker::Hooks hooks;
    hooks.subscribe = [&reg](SubscriberId client,
                             const SubscriptionSpec& spec) {
      return reg.Subscribe(client, spec);
    };
    hooks.unsubscribe = [&reg](SubscriptionId id) {
      return reg.Unsubscribe(id);
    };
    SubscriptionBroker broker(hooks);
    std::vector<std::unique_ptr<Transport>> receivers;
    for (SubscriberId c = 1; c <= kSubscribers; ++c) {
      auto [server_side, client_side] = LoopbackTransport::CreatePair();
      broker.Attach(c, std::move(server_side));
      receivers.push_back(std::move(client_side));
    }
    Stopwatch fanout_timer;
    for (const DeltaBatch& b : all_batches) broker.PushBatch(b);
    rec.fanout_ns_per_epoch = fanout_timer.ElapsedSeconds() * 1e9 /
                              static_cast<double>(epochs);
    // Close first, then drain: a closed loopback still yields its queued
    // frames before reporting end-of-stream.
    broker.CloseAll();
    std::size_t received = 0;
    for (auto& t : receivers) {
      while (t->Recv().ok()) ++received;
    }
    if (broker.batches_pushed() != all_batches.size() ||
        received != all_batches.size()) {
      std::fprintf(stderr, "fan-out lost batches: pushed %llu, received "
                   "%zu of %zu\n",
                   static_cast<unsigned long long>(broker.batches_pushed()),
                   received, all_batches.size());
      rec.identical = false;
    }
  }
  return rec;
}

void WriteJson(const char* path, std::span<const SubRecord> records,
               std::size_t epoch_size, std::size_t epochs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E13_subscriptions\",\n");
  std::fprintf(f, "  \"epoch_size\": %zu,\n  \"epochs\": %zu,\n", epoch_size,
               epochs);
  std::fprintf(f, "  \"entities\": %zu,\n  \"records\": [\n", kEntities);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SubRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"subs\": %zu, \"register_ns_per_sub\": %.1f, "
        "\"eval_ns_per_epoch\": %.0f, \"eval_ns_per_sub_epoch\": %.2f, "
        "\"eval_ns_per_report\": %.0f, \"deltas_per_epoch\": %.1f, "
        "\"delta_bytes_per_epoch\": %.0f, \"fanout_ns_per_epoch\": %.0f, "
        "\"oracle_ns_per_epoch\": %.0f, \"identity_checked\": %s, "
        "\"identical\": %s, \"speedup\": %.2f}%s\n",
        r.subs, r.register_ns_per_sub, r.eval_ns_per_epoch,
        r.eval_ns_per_sub_epoch, r.eval_ns_per_report, r.deltas_per_epoch,
        r.delta_bytes_per_epoch, r.fanout_ns_per_epoch,
        r.oracle_ns_per_epoch, r.identity_checked ? "true" : "false",
        r.identical ? "true" : "false", r.speedup,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, records.size());
}

int Run(bool quick, const char* trace_out) {
  const std::size_t epoch_size = quick ? 256 : 512;
  const std::size_t epochs = quick ? 6 : 12;
  const std::size_t check_epochs = quick ? 3 : 6;
  const std::vector<PositionReport> stream = MakeStream(epoch_size * epochs);

  std::vector<std::size_t> counts = {10'000, 100'000};
  if (!quick) counts.push_back(1'000'000);

  std::printf("E13: continuous-query subscription tier (%zu reports, "
              "%zu entities, epoch %zu)\n\n",
              stream.size(), kEntities, epoch_size);

  obs::TraceCollector::Discard();
  obs::EnableTracing(true);

  std::vector<SubRecord> records;
  bool ok = true;
  for (const std::size_t n : counts) {
    // The oracle's full re-scan is the quadratic cost this tier avoids;
    // past 100k it would dominate the bench, so the 1M cell times the
    // incremental path only.
    const std::size_t check = n <= 100'000 ? check_epochs : 0;
    const SubRecord rec = RunCell(n, stream, epoch_size, check);
    if (!rec.identical) ok = false;
    records.push_back(rec);
    std::printf("%8zu subs: register %6.0f ns/sub, eval %8.2f ns/sub/epoch "
                "(%7.0f ns/report), %7.1f deltas/epoch (%6.0f B), fan-out "
                "%8.0f ns/epoch",
                rec.subs, rec.register_ns_per_sub, rec.eval_ns_per_sub_epoch,
                rec.eval_ns_per_report, rec.deltas_per_epoch,
                rec.delta_bytes_per_epoch, rec.fanout_ns_per_epoch);
    if (rec.identity_checked) {
      std::printf(", %s, %0.1fx vs full re-eval\n",
                  rec.identical ? "identical" : "MISMATCH", rec.speedup);
    } else {
      std::printf(" (identity at this scale checked at <= 100k)\n");
    }
  }

  obs::EnableTracing(false);
  if (trace_out != nullptr) {
    const std::vector<obs::TraceSpanRecord> spans =
        obs::TraceCollector::Drain();
    const std::string json = obs::ChromeTraceJson(spans);
    std::FILE* f = std::fopen(trace_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu spans)\n", trace_out, spans.size());
  }

  WriteJson("BENCH_sub.json", records, epoch_size, epochs);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace datacron

int main(int argc, char** argv) {
  bool quick = false;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  return datacron::Run(quick, trace_out);
}
