// E1 — Synopses: compression ratio vs. reconstruction quality.
//
// Paper claim: "in-situ processing components compress and integrate data
// at high rates of data compression without affecting the quality of
// analytics". This bench sweeps the compressor thresholds and prints, for
// the online dead-reckoning compressor, the online critical-point
// detector, and offline Douglas-Peucker(SED), the compression ratio
// against reconstruction error, plus single-thread throughput.
#include <cstdio>
#include <map>
#include <vector>

#include "common/time_utils.h"
#include "sources/ais_generator.h"
#include "stream/pipeline.h"
#include "synopses/compression.h"
#include "synopses/critical_points.h"

namespace datacron {
namespace {

struct Row {
  const char* method;
  double param;
  double ratio;
  double mean_err_m;
  double max_err_m;
  double mreports_per_s;
};

void PrintRow(const Row& r) {
  std::printf("%-18s %10.0f %10.1fx %12.1f %12.1f %14.2f\n", r.method,
              r.param, r.ratio, r.mean_err_m, r.max_err_m,
              r.mreports_per_s);
}

/// Groups a fleet-merged stream by entity, preserving time order.
std::map<EntityId, std::vector<PositionReport>> ByEntity(
    const std::vector<PositionReport>& reports) {
  std::map<EntityId, std::vector<PositionReport>> out;
  for (const PositionReport& r : reports) out[r.entity_id].push_back(r);
  return out;
}

/// Aggregates quality over per-entity compressions.
Row Evaluate(const char* method, double param,
             const std::map<EntityId, std::vector<PositionReport>>& input,
             const std::map<EntityId, std::vector<PositionReport>>& kept,
             double seconds, std::size_t total_in) {
  std::size_t total_kept = 0;
  double err_sum = 0, err_max = 0;
  std::size_t err_n = 0;
  for (const auto& [id, original] : input) {
    auto it = kept.find(id);
    if (it == kept.end()) continue;
    total_kept += it->second.size();
    const CompressionQuality q = EvaluateCompression(original, it->second);
    err_sum += q.mean_sed_m * original.size();
    err_n += original.size();
    err_max = std::max(err_max, q.max_sed_m);
  }
  Row row;
  row.method = method;
  row.param = param;
  row.ratio = total_kept ? static_cast<double>(total_in) / total_kept : 0;
  row.mean_err_m = err_n ? err_sum / err_n : 0;
  row.max_err_m = err_max;
  row.mreports_per_s = total_in / seconds / 1e6;
  return row;
}

}  // namespace

void Run() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 100;
  fleet.duration = 2 * kHour;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.position_noise_m = 10;
  obs.drop_probability = 0;
  obs.gap_probability = 0;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto stream = ObserveFleet(traces, obs);
  const auto by_entity = ByEntity(stream);

  std::printf(
      "E1: synopses compression (fleet=%zu vessels, %lld min, %zu "
      "reports)\n",
      fleet.num_vessels,
      static_cast<long long>(fleet.duration / kMinute), stream.size());
  std::printf("%-18s %10s %10s %12s %12s %14s\n", "method", "param",
              "ratio", "mean_err_m", "max_err_m", "Mreports/s");

  // Online dead-reckoning threshold compressor.
  for (double threshold : {10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0}) {
    DeadReckoningCompressor comp(threshold);
    Stopwatch timer;
    const auto kept_stream = pipeline::RunBatch(&comp, stream);
    const double secs = timer.ElapsedSeconds();
    PrintRow(Evaluate("dead_reckoning", threshold, by_entity,
                      ByEntity(kept_stream), secs, stream.size()));
  }

  // Online critical-point detector (threshold = turn threshold sweep).
  for (double turn_deg : {2.0, 6.0, 15.0, 30.0}) {
    CriticalPointConfig cfg;
    cfg.turn_threshold_deg = turn_deg;
    CriticalPointDetector det(cfg);
    Stopwatch timer;
    const auto cps = pipeline::RunBatch(&det, stream);
    const double secs = timer.ElapsedSeconds();
    std::map<EntityId, std::vector<PositionReport>> kept;
    for (const CriticalPoint& cp : cps) {
      kept[cp.report.entity_id].push_back(cp.report);
    }
    PrintRow(Evaluate("critical_points", turn_deg, by_entity, kept, secs,
                      stream.size()));
  }

  // Offline Douglas-Peucker with SED (per entity).
  for (double eps : {25.0, 50.0, 100.0, 250.0}) {
    Stopwatch timer;
    std::map<EntityId, std::vector<PositionReport>> kept;
    for (const auto& [id, pts] : by_entity) {
      kept[id] = DouglasPeuckerSed(pts, eps);
    }
    const double secs = timer.ElapsedSeconds();
    PrintRow(Evaluate("dp_sed_offline", eps, by_entity, kept, secs,
                      stream.size()));
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
