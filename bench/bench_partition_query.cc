// E5 — RDF partitioning schemes and parallel spatiotemporal querying.
//
// Paper claim: "parallel query processing techniques for spatio-temporal
// query languages over interlinked data stored in parallel RDF stores,
// using sophisticated RDF partitioning algorithms".
//
// For each scheme x partition count: load-balance, locality
// (cross-partition sequence edges), partition pruning on a spatially
// selective query, and wall time of three query classes in local and
// global execution, sequential vs. thread pool. A second section sweeps
// the pool size on the join-heavy global queries, verifying byte-identical
// results at every thread count and attributing wall time per stage.
//
// Emits BENCH_query.json: every measured (query, strategy, scheme, k,
// threads) cell with wall and per-stage milliseconds. `--quick` shrinks
// the fleet for CI smoke runs.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "obs/metrics.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

struct Workload {
  TermDictionary dict;
  std::unique_ptr<Vocab> vocab;
  std::unique_ptr<Rdfizer> rdfizer;
  std::vector<Triple> triples;
  Query spatial_query;
  Query star_query;
  Query path_query;
  Query join_query;
};

std::unique_ptr<Workload> BuildWorkload(bool quick) {
  auto w = std::make_unique<Workload>();
  w->vocab = std::make_unique<Vocab>(&w->dict);
  w->rdfizer = std::make_unique<Rdfizer>(Rdfizer::Config{}, &w->dict,
                                         w->vocab.get());
  AisGeneratorConfig fleet;
  fleet.num_vessels = quick ? 24 : 80;
  fleet.duration = (quick ? 30 : 90) * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    const auto ts = w->rdfizer->TransformReport(r);
    w->triples.insert(w->triples.end(), ts.begin(), ts.end());
  }

  {
    QueryBuilder qb;
    qb.Pattern(QueryTerm::Var(qb.Var("node")),
               QueryTerm::Bound(w->vocab->p_type),
               QueryTerm::Bound(w->vocab->c_position_node));
    qb.WhereVar("node", w->vocab->p_speed, "speed");
    qb.Within("node", BoundingBox::Of(35.2, 23.2, 36.2, 24.2));
    w->spatial_query = qb.Build();
  }
  {
    QueryBuilder qb;
    qb.Where("node", w->vocab->p_of_entity,
             w->dict.Intern(EntityIri(200000005)));
    qb.WhereVar("node", w->vocab->p_speed, "speed");
    w->star_query = qb.Build();
  }
  {
    // Two-hop path: completeness under local execution now depends on
    // consecutive nodes being colocated — the locality the spatial
    // schemes buy and hash cannot.
    QueryBuilder qb;
    qb.WhereVar("a", w->vocab->p_next_node, "b");
    qb.WhereVar("b", w->vocab->p_next_node, "c");
    qb.Within("a", BoundingBox::Of(35.2, 23.2, 36.2, 24.2));
    w->path_query = qb.Build();
  }
  {
    // Join-heavy analytical query: every vessel joined to its in-area
    // position nodes with speed — three patterns, two hash joins over
    // fleet-sized intermediates.
    QueryBuilder qb;
    qb.Pattern(QueryTerm::Var(qb.Var("v")),
               QueryTerm::Bound(w->vocab->p_type),
               QueryTerm::Bound(w->vocab->c_vessel));
    qb.Pattern(QueryTerm::Var(qb.Var("node")),
               QueryTerm::Bound(w->vocab->p_of_entity),
               QueryTerm::Var(qb.Var("v")));
    qb.WhereVar("node", w->vocab->p_speed, "speed");
    qb.Within("node", BoundingBox::Of(35.2, 23.2, 36.2, 24.2));
    w->join_query = qb.Build();
  }
  return w;
}

/// One measured cell of the JSON report. threads == 0 means "no pool"
/// (pure sequential engine).
struct BenchRecord {
  std::string query, strategy, scheme;
  int k = 0;
  int threads = 0;
  QueryExecStats stats;
};

std::vector<BenchRecord> g_records;

void Record(const std::string& query, const std::string& strategy,
            const std::string& scheme, int k, int threads,
            const QueryExecStats& stats) {
  g_records.push_back({query, strategy, scheme, k, threads, stats});
}

void WriteJson(const char* path, std::size_t triples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E5_query\",\n");
  std::fprintf(f, "  \"triples\": %zu,\n  \"records\": [\n", triples);
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const BenchRecord& r = g_records[i];
    std::fprintf(
        f,
        "    {\"query\": \"%s\", \"strategy\": \"%s\", \"scheme\": \"%s\", "
        "\"k\": %d, \"threads\": %d, \"wall_ms\": %.4f, \"plan_ms\": %.4f, "
        "\"scan_ms\": %.4f, \"join_ms\": %.4f, \"filter_ms\": %.4f, "
        "\"result_rows\": %zu, \"intermediate_rows\": %zu, \"join_rows\": [",
        r.query.c_str(), r.strategy.c_str(), r.scheme.c_str(), r.k,
        r.threads, r.stats.wall_ms, r.stats.plan_ms, r.stats.scan_ms,
        r.stats.join_ms, r.stats.filter_ms, r.stats.result_rows,
        r.stats.intermediate_rows);
    for (std::size_t j = 0; j < r.stats.join_rows.size(); ++j) {
      std::fprintf(f, "%s%zu", j ? ", " : "", r.stats.join_rows[j]);
    }
    std::fprintf(f, "]}%s\n", i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, g_records.size());
}

/// Best-of-reps wall time; the stats of the best run land in *out.
double TimeMs(const std::function<QueryExecStats()>& fn, QueryExecStats* out,
              int reps = 3) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    Stopwatch t;
    const QueryExecStats stats = fn();
    const double ms = t.ElapsedMillis();
    if (ms < best) {
      best = ms;
      if (out != nullptr) *out = stats;
    }
  }
  return best;
}

void RunScheme(const Workload& w, const PartitionScheme& scheme,
               ThreadPool* pool) {
  PartitionedRdfStore store;
  store.Load(w.triples, scheme, w.rdfizer->grid(), w.vocab->p_next_node);
  const int k = scheme.num_partitions();

  QueryEngine seq(&store, w.rdfizer.get(), nullptr);
  QueryEngine par(&store, w.rdfizer.get(), pool);
  const int pool_threads = static_cast<int>(pool->num_threads());

  const auto pruned = seq.PrunedPartitions(w.spatial_query);
  std::size_t path_rows_local = 0, path_rows_global = 0;
  QueryExecStats st;
  auto measure = [&](const Query& q, const QueryEngine& engine,
                     bool global, const char* name, int threads) {
    const double ms = TimeMs(
        [&] {
          const ResultSet rs =
              global ? engine.ExecuteGlobal(q) : engine.ExecuteLocal(q);
          return rs.stats;
        },
        &st);
    Record(name, global ? "global" : "local", scheme.name(), k, threads,
           st);
    return ms;
  };

  const double spatial_seq =
      measure(w.spatial_query, seq, false, "spatial", 0);
  const double spatial_par =
      measure(w.spatial_query, par, false, "spatial", pool_threads);
  const double star_seq = measure(w.star_query, seq, false, "star", 0);
  const double path_local = measure(w.path_query, seq, false, "path", 0);
  const double path_global = measure(w.path_query, seq, true, "path", 0);
  path_rows_global = st.result_rows;
  path_rows_local = seq.ExecuteLocal(w.path_query).stats.result_rows;
  const double join_global = measure(w.join_query, seq, true, "join", 0);

  std::printf(
      "%-15s %3d %8.3f %10.1f%% %6zu/%-3d %10.2f %10.2f %10.3f %10.2f "
      "%10.2f %10.2f %8.0f%%\n",
      scheme.name().c_str(), k, store.stats().balance_factor,
      100.0 * store.stats().cross_partition_edge_ratio, pruned.size(),
      store.num_partitions(), spatial_seq, spatial_par, star_seq,
      path_local, path_global, join_global,
      path_rows_global ? 100.0 * path_rows_local / path_rows_global : 0.0);
}

/// Thread sweep on the global-strategy join-heavy queries over the
/// Hilbert k=8 store: serial baseline vs pool of 1/2/4/8 workers, with
/// the determinism contract enforced (pooled rows must be byte-identical
/// to serial rows). Returns false on a determinism violation.
bool JoinSweep(const Workload& w) {
  auto scheme =
      HilbertPartitioner::Build(8, &w.rdfizer->tags(), w.rdfizer->grid());
  PartitionedRdfStore store;
  store.Load(w.triples, *scheme, w.rdfizer->grid(), w.vocab->p_next_node);
  QueryEngine seq(&store, w.rdfizer.get(), nullptr);

  struct Case {
    const char* name;
    const Query* query;
  };
  const Case cases[] = {{"join", &w.join_query}, {"path", &w.path_query}};

  std::printf(
      "\nE5b: global join sweep, hilbert k=8 (byte-identical at every "
      "thread count)\n");
  std::printf("%-6s %8s %10s %9s %9s %9s %9s %9s %9s\n", "query", "threads",
              "rows", "wall_ms", "plan_ms", "scan_ms", "join_ms",
              "filter_ms", "speedup");
  bool ok = true;
  for (const Case& c : cases) {
    QueryExecStats st;
    const ResultSet serial_rs = seq.ExecuteGlobal(*c.query);
    const double serial_ms =
        TimeMs([&] { return seq.ExecuteGlobal(*c.query).stats; }, &st);
    Record(c.name, "global", "hilbert", 8, 0, st);
    std::printf("%-6s %8s %10zu %9.2f %9.3f %9.2f %9.2f %9.3f %9s\n",
                c.name, "serial", serial_rs.rows.size(), serial_ms,
                st.plan_ms, st.scan_ms, st.join_ms, st.filter_ms, "1.0x");
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      QueryEngine par(&store, w.rdfizer.get(), &pool);
      const ResultSet pooled_rs = par.ExecuteGlobal(*c.query);
      if (pooled_rs.rows != serial_rs.rows) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s global differs at %zu "
                     "threads\n",
                     c.name, threads);
        ok = false;
      }
      const double ms =
          TimeMs([&] { return par.ExecuteGlobal(*c.query).stats; }, &st);
      Record(c.name, "global", "hilbert", 8,
             static_cast<int>(threads), st);
      std::printf("%-6s %8zu %10zu %9.2f %9.3f %9.2f %9.2f %9.3f %8.1fx\n",
                  c.name, threads, pooled_rs.rows.size(), ms, st.plan_ms,
                  st.scan_ms, st.join_ms, st.filter_ms, serial_ms / ms);
    }
  }
  return ok;
}

}  // namespace

int Run(bool quick) {
  auto w = BuildWorkload(quick);
  ThreadPool pool(4);
  std::printf("E5: partitioning & parallel query (%zu triples%s)\n",
              w->triples.size(), quick ? ", quick" : "");
  std::printf(
      "%-15s %3s %8s %10s %10s %10s %10s %10s %10s %10s %10s %9s\n",
      "scheme", "k", "balance", "cross_edge", "pruned", "spatial_ms",
      "spatialP_ms", "star_ms", "pathL_ms", "pathG_ms", "joinG_ms",
      "localcompl");

  for (int k : {2, 4, 8}) {
    HashPartitioner hash(k, &w->rdfizer->tags());
    RunScheme(*w, hash, &pool);
    GridPartitioner grid(k, &w->rdfizer->tags(), w->rdfizer->grid());
    RunScheme(*w, grid, &pool);
    auto hilbert =
        HilbertPartitioner::Build(k, &w->rdfizer->tags(), w->rdfizer->grid());
    RunScheme(*w, *hilbert, &pool);
    auto temporal = TemporalPartitioner::Build(k, &w->rdfizer->tags());
    RunScheme(*w, *temporal, &pool);
    if (k >= 4) {
      auto st = SpatioTemporalPartitioner::Build(2, k / 2,
                                                 &w->rdfizer->tags(),
                                                 w->rdfizer->grid());
      RunScheme(*w, *st, &pool);
    }
  }

  const bool ok = JoinSweep(*w);
  WriteJson("BENCH_query.json", w->triples.size());

  // Companion snapshot of the process-wide metrics the sweep produced
  // (query.local/query.global counts, pool.queue_ns, ...).
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  snap.AddHistogram("pool.queue_ns", pool.QueueWaitNanos());
  if (std::FILE* f = std::fopen("BENCH_query_metrics.json", "w")) {
    const std::string json = snap.ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_query_metrics.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace datacron

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return datacron::Run(quick);
}
