// E5 — RDF partitioning schemes and parallel spatiotemporal querying.
//
// Paper claim: "parallel query processing techniques for spatio-temporal
// query languages over interlinked data stored in parallel RDF stores,
// using sophisticated RDF partitioning algorithms".
//
// For each scheme x partition count: load-balance, locality
// (cross-partition sequence edges), partition pruning on a spatially
// selective query, and wall time of three query classes in local and
// global execution, sequential vs. thread pool.
#include <cstdio>
#include <memory>

#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

struct Workload {
  TermDictionary dict;
  std::unique_ptr<Vocab> vocab;
  std::unique_ptr<Rdfizer> rdfizer;
  std::vector<Triple> triples;
  Query spatial_query;
  Query star_query;
  Query path_query;
};

std::unique_ptr<Workload> BuildWorkload() {
  auto w = std::make_unique<Workload>();
  w->vocab = std::make_unique<Vocab>(&w->dict);
  w->rdfizer = std::make_unique<Rdfizer>(Rdfizer::Config{}, &w->dict,
                                         w->vocab.get());
  AisGeneratorConfig fleet;
  fleet.num_vessels = 80;
  fleet.duration = 90 * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    const auto ts = w->rdfizer->TransformReport(r);
    w->triples.insert(w->triples.end(), ts.begin(), ts.end());
  }

  {
    QueryBuilder qb;
    qb.Pattern(QueryTerm::Var(qb.Var("node")),
               QueryTerm::Bound(w->vocab->p_type),
               QueryTerm::Bound(w->vocab->c_position_node));
    qb.WhereVar("node", w->vocab->p_speed, "speed");
    qb.Within("node", BoundingBox::Of(35.2, 23.2, 36.2, 24.2));
    w->spatial_query = qb.Build();
  }
  {
    QueryBuilder qb;
    qb.Where("node", w->vocab->p_of_entity,
             w->dict.Intern(EntityIri(200000005)));
    qb.WhereVar("node", w->vocab->p_speed, "speed");
    w->star_query = qb.Build();
  }
  {
    // Two-hop path: completeness under local execution now depends on
    // consecutive nodes being colocated — the locality the spatial
    // schemes buy and hash cannot.
    QueryBuilder qb;
    qb.WhereVar("a", w->vocab->p_next_node, "b");
    qb.WhereVar("b", w->vocab->p_next_node, "c");
    qb.Within("a", BoundingBox::Of(35.2, 23.2, 36.2, 24.2));
    w->path_query = qb.Build();
  }
  return w;
}

double TimeMs(const std::function<void()>& fn, int reps = 3) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    Stopwatch t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

void RunScheme(const Workload& w, const PartitionScheme& scheme,
               ThreadPool* pool) {
  PartitionedRdfStore store;
  store.Load(w.triples, scheme, w.rdfizer->grid(), w.vocab->p_next_node);

  QueryEngine seq(&store, w.rdfizer.get(), nullptr);
  QueryEngine par(&store, w.rdfizer.get(), pool);

  const auto pruned = seq.PrunedPartitions(w.spatial_query);
  std::size_t spatial_rows = 0, path_rows_local = 0, path_rows_global = 0;
  const double spatial_seq = TimeMs([&] {
    spatial_rows = seq.ExecuteLocal(w.spatial_query).rows.size();
  });
  const double spatial_par = TimeMs(
      [&] { par.ExecuteLocal(w.spatial_query); });
  const double star_seq =
      TimeMs([&] { seq.ExecuteLocal(w.star_query); });
  const double path_local = TimeMs([&] {
    path_rows_local = seq.ExecuteLocal(w.path_query).rows.size();
  });
  const double path_global = TimeMs([&] {
    path_rows_global = seq.ExecuteGlobal(w.path_query).rows.size();
  });

  std::printf(
      "%-15s %3d %8.3f %10.1f%% %6zu/%-3d %10.2f %10.2f %10.3f %10.2f "
      "%10.2f %8.0f%%\n",
      scheme.name().c_str(), scheme.num_partitions(),
      store.stats().balance_factor,
      100.0 * store.stats().cross_partition_edge_ratio, pruned.size(),
      store.num_partitions(), spatial_seq, spatial_par, star_seq,
      path_local, path_global,
      path_rows_global
          ? 100.0 * path_rows_local / path_rows_global
          : 0.0);
  (void)spatial_rows;
}

}  // namespace

void Run() {
  auto w = BuildWorkload();
  ThreadPool pool(4);
  std::printf("E5: partitioning & parallel query (%zu triples)\n",
              w->triples.size());
  std::printf(
      "%-15s %3s %8s %10s %10s %10s %10s %10s %10s %10s %9s\n", "scheme",
      "k", "balance", "cross_edge", "pruned", "spatial_ms", "spatialP_ms",
      "star_ms", "pathL_ms", "pathG_ms", "localcompl");

  for (int k : {2, 4, 8}) {
    HashPartitioner hash(k, &w->rdfizer->tags());
    RunScheme(*w, hash, &pool);
    GridPartitioner grid(k, &w->rdfizer->tags(), w->rdfizer->grid());
    RunScheme(*w, grid, &pool);
    auto hilbert =
        HilbertPartitioner::Build(k, &w->rdfizer->tags(), w->rdfizer->grid());
    RunScheme(*w, *hilbert, &pool);
    auto temporal = TemporalPartitioner::Build(k, &w->rdfizer->tags());
    RunScheme(*w, *temporal, &pool);
    if (k >= 4) {
      auto st = SpatioTemporalPartitioner::Build(2, k / 2,
                                                 &w->rdfizer->tags(),
                                                 w->rdfizer->grid());
      RunScheme(*w, *st, &pool);
    }
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
