// E3 — Data transformation: RDF-ization throughput.
//
// Paper claim: "data transformation components convert data from disparate
// data sources ... to a common representation". Measures reports -> triples
// throughput (synopses path and full path), archival weather loading, and
// store bulk-load/seal cost.
#include <cstdio>

#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "rdf/ntriples.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"
#include "sources/weather.h"
#include "stream/pipeline.h"
#include "synopses/critical_points.h"

namespace datacron {

void Run() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 100;
  fleet.duration = 2 * kHour;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 5 * kSecond;
  const auto stream = ObserveFleet(traces, obs);

  std::printf("E3: RDF-ization throughput (%zu reports)\n", stream.size());
  std::printf("%-26s %12s %14s %14s %12s\n", "path", "triples",
              "reports/s", "triples/s", "dict_terms");

  // Full path: every report becomes a node.
  {
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
    std::vector<Triple> triples;
    Stopwatch timer;
    for (const auto& r : stream) {
      const auto ts = rdfizer.TransformReport(r);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    const double secs = timer.ElapsedSeconds();
    std::printf("%-26s %12zu %14.0f %14.0f %12zu\n", "all_reports",
                triples.size(), stream.size() / secs,
                triples.size() / secs, dict.size());

    // Bulk load + seal.
    TripleStore store;
    Stopwatch seal_timer;
    store.AddBatch(triples);
    store.Seal();
    std::printf("%-26s %12zu %14s %14.0f %12s\n", "store_bulk_load+seal",
                store.size(), "-", triples.size() / seal_timer.ElapsedSeconds(),
                "-");
  }

  // Synopses path: only critical points are transformed (the datAcron
  // in-situ design — compare triple volume).
  {
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
    CriticalPointDetector det;
    std::vector<Triple> triples;
    Stopwatch timer;
    std::vector<CriticalPoint> cps;
    for (const auto& r : stream) {
      cps.clear();
      det.ProcessCounted(r, &cps);
      for (const auto& cp : cps) {
        const auto ts = rdfizer.TransformCriticalPoint(cp);
        triples.insert(triples.end(), ts.begin(), ts.end());
      }
    }
    const double secs = timer.ElapsedSeconds();
    std::printf("%-26s %12zu %14.0f %14.0f %12zu\n",
                "synopses_critical_points", triples.size(),
                stream.size() / secs, triples.size() / secs, dict.size());
  }

  // Parallel ingestion path: TransformBatch + parallel seal + parallel
  // N-Triples parse at 1/2/4/8 threads. The 1-thread row is the parallel
  // machinery's overhead baseline; scaling requires a multi-core host.
  std::printf("\nE3b: parallel ingestion (threads sweep)\n");
  std::printf("%-26s %8s %12s %14s %14s\n", "stage", "threads", "triples",
              "triples/s", "parse MB/s");
  std::string doc;
  {
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
    std::vector<Triple> triples;
    for (const auto& r : stream) {
      const auto ts = rdfizer.TransformReport(r);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    doc = SerializeNTriples(triples, dict);
  }
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);

    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
    Stopwatch transform_timer;
    const auto triples = rdfizer.TransformBatch(stream, &pool);
    const double transform_secs = transform_timer.ElapsedSeconds();
    std::printf("%-26s %8d %12zu %14.0f %14s\n", "transform_batch", threads,
                triples.size(), triples.size() / transform_secs, "-");

    TripleStore store;
    Stopwatch seal_timer;
    store.AddBatch(triples);
    store.Seal(&pool);
    std::printf("%-26s %8d %12zu %14.0f %14s\n", "store_bulk_load+seal",
                threads, store.size(),
                triples.size() / seal_timer.ElapsedSeconds(), "-");

    TermDictionary parse_dict;
    std::vector<Triple> parsed;
    Stopwatch parse_timer;
    const Status st = ParseNTriples(doc, &parse_dict, &parsed, &pool);
    const double parse_secs = parse_timer.ElapsedSeconds();
    std::printf("%-26s %8d %12zu %14.0f %14.1f\n", "parse_ntriples", threads,
                parsed.size(), st.ok() ? parsed.size() / parse_secs : 0.0,
                doc.size() / parse_secs / (1024.0 * 1024.0));
  }

  // Archival weather data-at-rest.
  {
    WeatherSource::Config wcfg;
    wcfg.duration = 12 * kHour;
    WeatherSource weather(wcfg);
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
    Stopwatch timer;
    const auto samples = weather.MaterializeAll();
    std::vector<Triple> triples;
    for (const auto& s : samples) {
      const auto ts = rdfizer.TransformWeather(s);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    const double secs = timer.ElapsedSeconds();
    std::printf("%-26s %12zu %14.0f %14.0f %12zu\n", "weather_archival",
                triples.size(), samples.size() / secs,
                triples.size() / secs, dict.size());
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
