// E10 — End-to-end architecture latency: the "operational latency
// requirements (i.e. in ms)" claim of Section 4.
//
// Runs the full DatacronEngine (synopses -> transform -> trajectory ->
// CEP) over a fleet stream and prints the per-stage and total per-tuple
// latency distribution, plus sustained throughput, then closes the loop
// with a query over the produced store.
//
// E10b sweeps the sharded runtime (IngestBatch) over 1/2/4/8 shards with
// a matching thread pool, enforcing the determinism contract — events,
// triples and episodes must be byte-identical to the serial Ingest loop
// at every shard count (nonzero exit on violation) — and prints the
// merged per-operator metrics table. Emits BENCH_engine.json; `--quick`
// shrinks the fleet for CI smoke runs.
//
// E10c repeats the sweep on the cluster runtime: 1/2/4 ClusterNodes over
// the in-process loopback transport behind a ClusterEngine coordinator,
// with the same byte-identity guard against the serial loop, and emits
// BENCH_cluster.json.
//
// E11 isolates the global CEP stage: a dense-fleet ProximityDetector
// sweep (serial per-report loop vs epoch-batched cell-parallel
// ProcessBatch at 1/2/4/8 pool threads, byte-identity enforced) and the
// CapacityMonitor incremental-vs-rescan comparison at two fleet sizes.
// Emits BENCH_cep.json.
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "cep/detectors.h"

#include "cluster/local_cluster.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "datacron/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

void PrintStage(const char* name, const PercentileTracker& t) {
  std::printf("  %-14s p50 %8.4f ms   p95 %8.4f ms   p99 %8.4f ms   max "
              "%8.3f ms\n",
              name, t.p50(), t.p95(), t.p99(), t.Max());
}

DatacronEngine::Config EngineConfig(std::size_t num_shards) {
  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "zone_a", Polygon::Rectangle(BoundingBox::Of(35.5, 23.5, 36.5, 24.5))});
  cfg.areas.push_back(NamedArea{
      "zone_b", Polygon::Rectangle(BoundingBox::Of(37.0, 25.0, 38.0, 26.0))});
  cfg.num_shards = num_shards;
  return cfg;
}

/// One measured cell of the JSON report. threads == 0 means the serial
/// report-by-report Ingest loop (no pool, no batch API).
struct BenchRecord {
  int shards = 1;
  int threads = 0;
  double wall_s = 0.0;
  double reports_per_s = 0.0;
  double speedup = 1.0;
  bool identical = true;
  // Epoch-coalescing stats (registry counter deltas for this run; the
  // serial row has epochs == 0 and omits them from the table).
  std::uint64_t epochs = 0;
  std::uint64_t mailbox_msgs = 0;
  double reports_per_epoch = 0.0;
  double terms_per_merge = 0.0;
};

std::vector<BenchRecord> g_records;
double g_trace_overhead_pct = 0.0;

void WriteJson(const char* path, std::size_t reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E10_engine\",\n");
  std::fprintf(f, "  \"trace_overhead_pct\": %.2f,\n", g_trace_overhead_pct);
  std::fprintf(f, "  \"reports\": %zu,\n  \"records\": [\n", reports);
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const BenchRecord& r = g_records[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"threads\": %d, \"wall_s\": %.4f, "
                 "\"reports_per_s\": %.0f, \"speedup\": %.3f, "
                 "\"identical\": %s, \"epochs\": %llu, "
                 "\"mailbox_msgs\": %llu, \"reports_per_epoch\": %.1f, "
                 "\"terms_per_merge\": %.1f}%s\n",
                 r.shards, r.threads, r.wall_s, r.reports_per_s, r.speedup,
                 r.identical ? "true" : "false",
                 static_cast<unsigned long long>(r.epochs),
                 static_cast<unsigned long long>(r.mailbox_msgs),
                 r.reports_per_epoch, r.terms_per_merge,
                 i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, g_records.size());
}

/// Everything the determinism contract compares between two engine runs.
struct RunOutputs {
  std::vector<Event> events;
  std::vector<Triple> triples;
  std::vector<Episode> episodes;
  std::size_t critical_points = 0;

  bool operator==(const RunOutputs&) const = default;
};

RunOutputs Snapshot(const DatacronEngine& engine, std::vector<Event> events) {
  RunOutputs out;
  out.events = std::move(events);
  out.triples = engine.triples();
  out.episodes = engine.episodes();
  out.critical_points = engine.critical_points();
  return out;
}

/// One measured cell of the cluster sweep (BENCH_cluster.json).
struct ClusterRecord {
  int nodes = 1;
  double wall_s = 0.0;
  double reports_per_s = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

std::vector<ClusterRecord> g_cluster_records;

void WriteClusterJson(const char* path, std::size_t reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E10c_cluster\",\n");
  std::fprintf(f, "  \"transport\": \"loopback\",\n");
  std::fprintf(f, "  \"reports\": %zu,\n  \"records\": [\n", reports);
  for (std::size_t i = 0; i < g_cluster_records.size(); ++i) {
    const ClusterRecord& r = g_cluster_records[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"wall_s\": %.4f, "
                 "\"reports_per_s\": %.0f, \"speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 r.nodes, r.wall_s, r.reports_per_s, r.speedup,
                 r.identical ? "true" : "false",
                 i + 1 < g_cluster_records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, g_cluster_records.size());
}

/// Accumulated "name": {snapshot} pairs for BENCH_engine_metrics.json.
/// Each phase folds its engine-local snapshot with a checkpoint of the
/// process-wide registry (registry counters are cumulative across phases).
std::string g_metrics_phases;

void AddMetricsPhase(const char* name, obs::MetricsSnapshot snap) {
  snap.Merge(obs::MetricsRegistry::Global().Snapshot());
  if (!g_metrics_phases.empty()) g_metrics_phases += ",\n";
  g_metrics_phases += "    \"";
  g_metrics_phases += name;
  g_metrics_phases += "\": ";
  g_metrics_phases += snap.ToJson();
}

/// One cell of the E11 proximity sweep. threads == 0 is the serial
/// per-report Process loop; threads >= 1 is epoch-batched ProcessBatch
/// on a pool of that width.
struct CepProximityRecord {
  int threads = 0;
  double wall_s = 0.0;
  double reports_per_s = 0.0;
  std::uint64_t cpa_pairs = 0;
  double cpa_pairs_per_s = 0.0;
  std::size_t events = 0;
  double events_per_s = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

/// One cell of the E11 capacity comparison: incremental vs full-rescan
/// CapacityMonitor over the same stream at one fleet size.
struct CepCapacityRecord {
  std::size_t fleet = 0;
  std::size_t reports = 0;
  double rescan_wall_s = 0.0;
  double incremental_wall_s = 0.0;
  double speedup = 1.0;
  double incremental_ns_per_report = 0.0;
  bool identical = true;
};

std::vector<CepProximityRecord> g_cep_prox_records;
std::vector<CepCapacityRecord> g_cep_cap_records;

void WriteCepJson(const char* path, std::size_t reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E11_global_cep\",\n");
  std::fprintf(f, "  \"reports\": %zu,\n  \"proximity\": [\n", reports);
  for (std::size_t i = 0; i < g_cep_prox_records.size(); ++i) {
    const CepProximityRecord& r = g_cep_prox_records[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_s\": %.4f, "
                 "\"reports_per_s\": %.0f, \"cpa_pairs\": %llu, "
                 "\"cpa_pairs_per_s\": %.0f, \"events\": %zu, "
                 "\"events_per_s\": %.0f, \"speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 r.threads, r.wall_s, r.reports_per_s,
                 static_cast<unsigned long long>(r.cpa_pairs),
                 r.cpa_pairs_per_s, r.events, r.events_per_s, r.speedup,
                 r.identical ? "true" : "false",
                 i + 1 < g_cep_prox_records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"capacity\": [\n");
  for (std::size_t i = 0; i < g_cep_cap_records.size(); ++i) {
    const CepCapacityRecord& r = g_cep_cap_records[i];
    std::fprintf(f,
                 "    {\"fleet\": %zu, \"reports\": %zu, "
                 "\"rescan_wall_s\": %.4f, \"incremental_wall_s\": %.4f, "
                 "\"speedup\": %.3f, \"incremental_ns_per_report\": %.0f, "
                 "\"identical\": %s}%s\n",
                 r.fleet, r.reports, r.rescan_wall_s, r.incremental_wall_s,
                 r.speedup, r.incremental_ns_per_report,
                 r.identical ? "true" : "false",
                 i + 1 < g_cep_cap_records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu proximity, %zu capacity records)\n", path,
              g_cep_prox_records.size(), g_cep_cap_records.size());
}

void WriteMetricsJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n  \"experiment\": \"E10_metrics\",\n"
               "  \"note\": \"registry counters are cumulative process "
               "checkpoints; engine.* rows are per-phase instances\",\n"
               "  \"phases\": {\n%s\n  }\n}\n",
               g_metrics_phases.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Dense fleet in a small box so the proximity blocking grid produces a
/// heavy CPA pair load (the global stage dominates, not the keyed ones).
std::vector<PositionReport> DenseCepStream(std::size_t vessels,
                                           DurationMs duration) {
  AisGeneratorConfig fleet;
  fleet.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  fleet.num_vessels = vessels;
  fleet.duration = duration;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  std::vector<PositionReport> reports =
      ObserveFleet(GenerateAisFleet(fleet), obs);
  std::sort(reports.begin(), reports.end(), ReportTimeOrder());
  return reports;
}

ProximityDetector::Config CepProximityConfig() {
  ProximityDetector::Config cfg;
  cfg.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  return cfg;
}

std::vector<CapacityMonitor::Sector> CepSectors() {
  // 4x4 sector grid over the dense box: rescan pays O(fleet) per sector.
  std::vector<CapacityMonitor::Sector> sectors;
  for (int iy = 0; iy < 4; ++iy) {
    for (int ix = 0; ix < 4; ++ix) {
      const double lat0 = 36.0 + 0.125 * iy;
      const double lon0 = 24.0 + 0.125 * ix;
      sectors.push_back(CapacityMonitor::Sector{
          "s" + std::to_string(iy * 4 + ix),
          Polygon::Rectangle(
              BoundingBox::Of(lat0, lon0, lat0 + 0.125, lon0 + 0.125)),
          8});
    }
  }
  return sectors;
}

/// E11: the global CEP stage in isolation. Returns false on a
/// determinism violation (batch output differing from the serial loop).
bool RunE11(bool quick) {
  const std::size_t vessels = quick ? 120 : 300;
  const DurationMs duration = quick ? 10 * kMinute : 30 * kMinute;
  const auto stream = DenseCepStream(vessels, duration);
  obs::Counter* pairs_ctr =
      obs::MetricsRegistry::Global().counter("cep.cpa_pairs");
  bool ok = true;

  std::printf("\nE11: global CEP stage (%zu vessels in 0.5x0.5 deg, %zu "
              "reports%s)\n",
              vessels, stream.size(), quick ? ", quick" : "");
  std::printf("  proximity: serial per-report loop vs epoch-batched "
              "cell-parallel ProcessBatch\n");
  std::printf("%8s %10s %14s %14s %12s %9s %10s\n", "threads", "wall_s",
              "reports_per_s", "cpa_pairs_per_s", "events_per_s", "speedup",
              "identical");

  std::vector<Event> serial_events;
  double serial_s = 0.0;
  {
    ProximityDetector serial(CepProximityConfig());
    const std::uint64_t pairs0 = pairs_ctr->Value();
    Stopwatch timer;
    for (const PositionReport& r : stream) serial.Process(r, &serial_events);
    serial_s = timer.ElapsedSeconds();
    const std::uint64_t pairs = pairs_ctr->Value() - pairs0;
    g_cep_prox_records.push_back(
        {0, serial_s, stream.size() / serial_s, pairs, pairs / serial_s,
         serial_events.size(), serial_events.size() / serial_s, 1.0, true});
    std::printf("%8s %10.3f %14.0f %14.0f %12.0f %9s %10s\n", "serial",
                serial_s, stream.size() / serial_s, pairs / serial_s,
                serial_events.size() / serial_s, "1.0x", "-");
  }

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ProximityDetector batch(CepProximityConfig());
    std::vector<Event> events;
    events.reserve(serial_events.size());
    constexpr std::size_t kEpoch = 1024;
    const std::uint64_t pairs0 = pairs_ctr->Value();
    Stopwatch timer;
    for (std::size_t i = 0; i < stream.size(); i += kEpoch) {
      const std::size_t len = std::min(kEpoch, stream.size() - i);
      batch.ProcessBatch(
          std::span<const PositionReport>(stream.data() + i, len), &pool,
          &events, nullptr);
    }
    const double wall_s = timer.ElapsedSeconds();
    const std::uint64_t pairs = pairs_ctr->Value() - pairs0;
    const bool identical = events == serial_events;
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: batched proximity differs from "
                   "serial at %zu pool threads\n",
                   threads);
      ok = false;
    }
    g_cep_prox_records.push_back({static_cast<int>(threads), wall_s,
                                  stream.size() / wall_s, pairs,
                                  pairs / wall_s, events.size(),
                                  events.size() / wall_s, serial_s / wall_s,
                                  identical});
    std::printf("%8zu %10.3f %14.0f %14.0f %12.0f %8.1fx %10s\n", threads,
                wall_s, stream.size() / wall_s, pairs / wall_s,
                events.size() / wall_s, serial_s / wall_s,
                identical ? "yes" : "NO");
  }

  std::printf("\n  capacity: incremental per-sector deltas vs full "
              "O(fleet x sectors) rescan (16 sectors)\n");
  std::printf("%8s %10s %14s %16s %9s %14s %10s\n", "fleet", "reports",
              "rescan_wall_s", "incr_wall_s", "speedup", "incr_ns/rpt",
              "identical");
  for (const std::size_t cap_fleet :
       {quick ? 100u : 250u, quick ? 400u : 1000u}) {
    const auto cap_stream = DenseCepStream(cap_fleet, quick ? 10 * kMinute
                                                            : 15 * kMinute);
    CapacityMonitor::Config rescan_cfg;
    rescan_cfg.incremental = false;
    CapacityMonitor rescan(CepSectors(), rescan_cfg);
    std::vector<Event> rescan_events;
    Stopwatch rescan_timer;
    for (const PositionReport& r : cap_stream) {
      rescan.Process(r, &rescan_events);
    }
    const double rescan_s = rescan_timer.ElapsedSeconds();

    CapacityMonitor::Config inc_cfg;
    inc_cfg.incremental = true;
    CapacityMonitor incremental(CepSectors(), inc_cfg);
    std::vector<Event> inc_events;
    Stopwatch inc_timer;
    for (const PositionReport& r : cap_stream) {
      incremental.Process(r, &inc_events);
    }
    const double inc_s = inc_timer.ElapsedSeconds();

    const bool identical = inc_events == rescan_events;
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: incremental capacity differs "
                   "from rescan at fleet %zu\n",
                   cap_fleet);
      ok = false;
    }
    const double ns_per_report = 1e9 * inc_s / cap_stream.size();
    g_cep_cap_records.push_back({cap_fleet, cap_stream.size(), rescan_s,
                                 inc_s, rescan_s / inc_s, ns_per_report,
                                 identical});
    std::printf("%8zu %10zu %14.3f %16.3f %8.1fx %14.0f %10s\n", cap_fleet,
                cap_stream.size(), rescan_s, inc_s, rescan_s / inc_s,
                ns_per_report, identical ? "yes" : "NO");
  }
  if (g_cep_cap_records.size() == 2) {
    std::printf("  incremental ns/report ratio (large/small fleet): %.2f "
                "(~1.0 = fleet-size independent)\n",
                g_cep_cap_records[1].incremental_ns_per_report /
                    g_cep_cap_records[0].incremental_ns_per_report);
  }

  WriteCepJson("BENCH_cep.json", stream.size());
  return ok;
}

}  // namespace

int Run(bool quick, const char* trace_out) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = quick ? 25 : 100;
  fleet.duration = quick ? 20 * kMinute : kHour;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto stream = ObserveFleet(traces, obs);

  // --- E10: serial per-tuple latency (the baseline). -----------------
  DatacronEngine engine(EngineConfig(1));
  Stopwatch total_timer;
  std::vector<Event> serial_events;
  for (const auto& r : stream) {
    const auto evs = engine.Ingest(r);
    serial_events.insert(serial_events.end(), evs.begin(), evs.end());
  }
  const auto final_events = engine.Finish();
  serial_events.insert(serial_events.end(), final_events.begin(),
                       final_events.end());
  const double serial_s = total_timer.ElapsedSeconds();
  const RunOutputs serial = Snapshot(engine, std::move(serial_events));
  g_records.push_back({1, 0, serial_s, stream.size() / serial_s, 1.0, true});

  std::printf("E10: end-to-end pipeline latency (%zu vessels, %zu reports, "
              "%zu events, %zu critical points, %zu triples%s)\n\n",
              fleet.num_vessels, stream.size(), serial.events.size(),
              engine.critical_points(), engine.triples().size(),
              quick ? ", quick" : "");

  const auto& lat = engine.latencies();
  PrintStage("synopses", lat.synopses_ms);
  PrintStage("transform", lat.transform_ms);
  PrintStage("trajectory", lat.trajectory_ms);
  PrintStage("cep", lat.cep_ms);
  PrintStage("TOTAL", lat.total_ms);
  std::printf("\n  sustained throughput: %.0f reports/s (%.2f s wall for "
              "%lld min of simulated traffic => %.0fx real time)\n",
              stream.size() / serial_s, serial_s,
              static_cast<long long>(fleet.duration / kMinute),
              (fleet.duration / 1000.0) / serial_s);
  AddMetricsPhase("serial", engine.MetricsSnapshot());

  // --- Tracing overhead: the same serial loop with spans recording. ---
  // Everything below runs traced; the trace (if requested) covers the
  // traced serial run, the shard sweep, and the cluster sweep.
  std::vector<obs::TraceSpanRecord> all_spans;
  obs::TraceCollector::Discard();
  obs::EnableTracing(true);
  {
    DatacronEngine traced(EngineConfig(1));
    Stopwatch traced_timer;
    for (const auto& r : stream) traced.Ingest(r);
    traced.Finish();
    const double traced_s = traced_timer.ElapsedSeconds();
    g_trace_overhead_pct = 100.0 * (traced_s - serial_s) / serial_s;
    std::printf("\n  tracing overhead: %.2f s traced vs %.2f s untraced "
                "(%+.2f%%)\n",
                traced_s, serial_s, g_trace_overhead_pct);
  }
  {
    std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
    all_spans.insert(all_spans.end(), spans.begin(), spans.end());
  }

  // --- E10b: sharded-runtime sweep with determinism guard. -----------
  std::printf("\nE10b: sharded IngestBatch sweep (byte-identical to the "
              "serial loop at every shard count)\n");
  std::printf("%8s %8s %10s %14s %9s %10s %8s %9s %11s %11s\n", "shards",
              "threads", "wall_s", "reports_per_s", "speedup", "identical",
              "epochs", "rpt/epoch", "terms/merge", "mbox_msgs");
  std::printf("%8s %8d %10.3f %14.0f %9s %10s %8s %9s %11s %11s\n", "serial",
              0, serial_s, stream.size() / serial_s, "1.0x", "-", "-", "-",
              "-", "-");
  bool ok = true;
  obs::Counter* epochs_ctr =
      obs::MetricsRegistry::Global().counter("shard.epochs");
  obs::Counter* mbox_ctr =
      obs::MetricsRegistry::Global().counter("shard.mailbox_enqueues");
  obs::Counter* merge_terms_ctr =
      obs::MetricsRegistry::Global().counter("engine.merge_terms");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    DatacronEngine sharded(EngineConfig(shards));
    ThreadPool pool(shards);
    const std::uint64_t epochs0 = epochs_ctr->Value();
    const std::uint64_t mbox0 = mbox_ctr->Value();
    const std::uint64_t terms0 = merge_terms_ctr->Value();
    Stopwatch timer;
    std::vector<Event> events = sharded.IngestBatch(stream, &pool);
    const auto fin = sharded.Finish();
    events.insert(events.end(), fin.begin(), fin.end());
    const double wall_s = timer.ElapsedSeconds();
    // Epoch-coalescing stats: one coalesced term merge and one mailbox
    // message per shard per epoch, so terms/merge and messages scale with
    // epochs rather than with reports.
    const std::uint64_t epochs = epochs_ctr->Value() - epochs0;
    const std::uint64_t mbox_msgs = mbox_ctr->Value() - mbox0;
    const std::uint64_t merge_terms = merge_terms_ctr->Value() - terms0;
    const double rpt_per_epoch =
        epochs > 0 ? static_cast<double>(stream.size()) / epochs : 0.0;
    const double terms_per_merge =
        epochs > 0 ? static_cast<double>(merge_terms) / epochs : 0.0;
    const RunOutputs outputs = Snapshot(sharded, std::move(events));
    const bool identical = outputs == serial;
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: sharded run differs from serial "
                   "at %zu shards\n",
                   shards);
      ok = false;
    }
    g_records.push_back({static_cast<int>(shards),
                         static_cast<int>(pool.num_threads()), wall_s,
                         stream.size() / wall_s, serial_s / wall_s, identical,
                         epochs, mbox_msgs, rpt_per_epoch, terms_per_merge});
    std::printf("%8zu %8zu %10.3f %14.0f %8.1fx %10s %8llu %9.1f %11.1f "
                "%11llu\n",
                shards, pool.num_threads(), wall_s, stream.size() / wall_s,
                serial_s / wall_s, identical ? "yes" : "NO",
                static_cast<unsigned long long>(epochs), rpt_per_epoch,
                terms_per_merge,
                static_cast<unsigned long long>(mbox_msgs));
    if (shards == 8) {
      std::printf("\n  per-operator metrics (8 shards, keyed rows merged "
                  "across shards):\n");
      std::printf("%s", sharded.MetricsReport().c_str());
      obs::MetricsSnapshot snap = sharded.MetricsSnapshot();
      snap.AddHistogram("pool.queue_ns", pool.QueueWaitNanos());
      AddMetricsPhase("sharded_8", std::move(snap));
    }
  }
  {
    // Drain the shard sweep's spans before the cluster phase so the ring
    // buffers start empty (minimizes overflow drops in the trace).
    std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
    all_spans.insert(all_spans.end(), spans.begin(), spans.end());
  }

  // --- E10c: cluster sweep with the same determinism guard. ----------
  std::printf("\nE10c: cluster IngestBatch sweep (loopback transport, "
              "byte-identical to the serial loop at every node count)\n");
  std::printf("%8s %10s %14s %9s %10s\n", "nodes", "wall_s", "reports_per_s",
              "speedup", "identical");
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    LocalCluster::Options copts;
    copts.engine = EngineConfig(1);
    copts.num_nodes = nodes;
    copts.wire = LocalCluster::Wire::kLoopback;
    Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(copts);
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster start failed at %zu nodes: %s\n", nodes,
                   cluster.status().ToString().c_str());
      return 1;
    }
    Stopwatch timer;
    Result<std::vector<Event>> evs =
        cluster.value()->engine().IngestBatch(stream);
    Result<std::vector<Event>> fin = cluster.value()->engine().Finish();
    if (!evs.ok() || !fin.ok()) {
      std::fprintf(stderr, "cluster ingest failed at %zu nodes: %s\n", nodes,
                   (evs.ok() ? fin.status() : evs.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    const double wall_s = timer.ElapsedSeconds();
    std::vector<Event> events = std::move(evs).value();
    events.insert(events.end(), fin.value().begin(), fin.value().end());
    const RunOutputs outputs =
        Snapshot(cluster.value()->engine().engine(), std::move(events));
    const bool identical = outputs == serial;
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: cluster run differs from serial "
                   "at %zu nodes\n",
                   nodes);
      ok = false;
    }
    g_cluster_records.push_back({static_cast<int>(nodes), wall_s,
                                 stream.size() / wall_s, serial_s / wall_s,
                                 identical});
    std::printf("%8zu %10.3f %14.0f %8.1fx %10s\n", nodes, wall_s,
                stream.size() / wall_s, serial_s / wall_s,
                identical ? "yes" : "NO");
    if (nodes == 4) {
      std::printf("\n  fleet metrics (4 nodes, keyed rows merged across the "
                  "transport):\n");
      Result<std::string> report = cluster.value()->engine().MetricsReport();
      if (report.ok()) std::printf("%s", report.value().c_str());
      AddMetricsPhase("cluster_4",
                      cluster.value()->engine().engine().MetricsSnapshot());
    }
    const Status stop = cluster.value()->Stop();
    if (!stop.ok()) {
      std::fprintf(stderr, "cluster stop failed at %zu nodes: %s\n", nodes,
                   stop.ToString().c_str());
      return 1;
    }
  }
  WriteClusterJson("BENCH_cluster.json", stream.size());

  // --- E11: global CEP stage (cell-parallel CPA + incremental capacity).
  if (!RunE11(quick)) ok = false;

  {
    std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
    all_spans.insert(all_spans.end(), spans.begin(), spans.end());
  }
  obs::EnableTracing(false);
  if (trace_out != nullptr) {
    const std::string json = obs::ChromeTraceJson(all_spans);
    std::FILE* f = std::fopen(trace_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu spans, %llu dropped to ring overflow)\n",
                trace_out, all_spans.size(),
                static_cast<unsigned long long>(
                    obs::TraceCollector::DroppedCount()));
  }

  // --- Close the loop: partition + query what the pipeline produced. --
  auto scheme = HilbertPartitioner::Build(4, &engine.rdfizer()->tags(),
                                          engine.rdfizer()->grid());
  PartitionedRdfStore store;
  Stopwatch load_timer;
  store.Load(engine.triples(), *scheme, engine.rdfizer()->grid(),
             engine.vocab().p_next_node);
  const double load_ms = load_timer.ElapsedMillis();

  QueryEngine qe(&store, engine.rdfizer());
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(engine.vocab().p_type),
             QueryTerm::Bound(engine.vocab().c_position_node));
  qb.Within("node", BoundingBox::Of(36, 24, 37, 25));
  Stopwatch query_timer;
  const auto rs = qe.ExecuteLocal(qb.Build());
  std::printf("\n  store: %zu triples partitioned in %.1f ms; spatial query "
              "-> %zu rows in %.2f ms (%s)\n",
              store.TotalTriples(), load_ms, rs.rows.size(),
              query_timer.ElapsedMillis(), rs.stats.ToString().c_str());

  WriteJson("BENCH_engine.json", stream.size());
  WriteMetricsJson("BENCH_engine_metrics.json");
  return ok ? 0 : 1;
}

}  // namespace datacron

int main(int argc, char** argv) {
  bool quick = false;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  return datacron::Run(quick, trace_out);
}
