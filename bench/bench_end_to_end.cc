// E10 — End-to-end architecture latency: the "operational latency
// requirements (i.e. in ms)" claim of Section 4.
//
// Runs the full DatacronEngine (synopses -> transform -> trajectory ->
// CEP) over a fleet stream and prints the per-stage and total per-tuple
// latency distribution, plus sustained throughput, then closes the loop
// with a query over the produced store.
#include <cstdio>

#include "common/time_utils.h"
#include "datacron/engine.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

void PrintStage(const char* name, const PercentileTracker& t) {
  std::printf("  %-14s p50 %8.4f ms   p95 %8.4f ms   p99 %8.4f ms   max "
              "%8.3f ms\n",
              name, t.p50(), t.p95(), t.p99(), t.Max());
}

}  // namespace

void Run() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 100;
  fleet.duration = kHour;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto stream = ObserveFleet(traces, obs);

  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "zone_a", Polygon::Rectangle(BoundingBox::Of(35.5, 23.5, 36.5, 24.5))});
  cfg.areas.push_back(NamedArea{
      "zone_b", Polygon::Rectangle(BoundingBox::Of(37.0, 25.0, 38.0, 26.0))});
  DatacronEngine engine(cfg);

  Stopwatch total_timer;
  std::size_t event_count = 0;
  for (const auto& r : stream) {
    event_count += engine.Ingest(r).size();
  }
  event_count += engine.Finish().size();
  const double total_s = total_timer.ElapsedSeconds();

  std::printf("E10: end-to-end pipeline latency (%zu vessels, %zu reports, "
              "%zu events, %zu critical points, %zu triples)\n\n",
              fleet.num_vessels, stream.size(), event_count,
              engine.critical_points(), engine.triples().size());

  const auto& lat = engine.latencies();
  PrintStage("synopses", lat.synopses_ms);
  PrintStage("transform", lat.transform_ms);
  PrintStage("trajectory", lat.trajectory_ms);
  PrintStage("cep", lat.cep_ms);
  PrintStage("TOTAL", lat.total_ms);
  std::printf("\n  sustained throughput: %.0f reports/s (%.2f s wall for "
              "%lld min of simulated traffic => %.0fx real time)\n",
              stream.size() / total_s, total_s,
              static_cast<long long>(fleet.duration / kMinute),
              (fleet.duration / 1000.0) / total_s);

  // Close the loop: partition + query what the pipeline produced.
  auto scheme = HilbertPartitioner::Build(4, &engine.rdfizer()->tags(),
                                          engine.rdfizer()->grid());
  PartitionedRdfStore store;
  Stopwatch load_timer;
  store.Load(engine.triples(), *scheme, engine.rdfizer()->grid(),
             engine.vocab().p_next_node);
  const double load_ms = load_timer.ElapsedMillis();

  QueryEngine qe(&store, engine.rdfizer());
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(engine.vocab().p_type),
             QueryTerm::Bound(engine.vocab().c_position_node));
  qb.Within("node", BoundingBox::Of(36, 24, 37, 25));
  Stopwatch query_timer;
  const auto rs = qe.ExecuteLocal(qb.Build());
  std::printf("\n  store: %zu triples partitioned in %.1f ms; spatial query "
              "-> %zu rows in %.2f ms (%s)\n",
              store.TotalTriples(), load_ms, rs.rows.size(),
              query_timer.ElapsedMillis(), rs.stats.ToString().c_str());
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
