// E2 — Streaming primitive operators: per-tuple latency and throughput.
//
// Paper claim: "primitive operators that are applied directly on the data
// streams" under "operational latency requirements (i.e. in ms)".
// google-benchmark micro-benches per operator, plus inline vs. threaded
// pipeline execution of a realistic detector chain.
#include <benchmark/benchmark.h>

#include "sources/ais_generator.h"
#include "stream/operator.h"
#include "stream/pipeline.h"
#include "stream/window.h"
#include "synopses/critical_points.h"

namespace datacron {
namespace {

const std::vector<PositionReport>& SharedStream() {
  static const std::vector<PositionReport>* stream = [] {
    AisGeneratorConfig fleet;
    fleet.num_vessels = 50;
    fleet.duration = kHour;
    ObservationConfig obs;
    obs.fixed_interval_ms = 5 * kSecond;
    return new std::vector<PositionReport>(
        ObserveFleet(GenerateAisFleet(fleet), obs));
  }();
  return *stream;
}

void BM_MapOperator(benchmark::State& state) {
  const auto& stream = SharedStream();
  MapOperator<PositionReport, double> op(
      "speed", [](const PositionReport& r) { return r.speed_mps; });
  std::vector<double> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    op.Process(stream[i++ % stream.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapOperator);

void BM_FilterOperator(benchmark::State& state) {
  const auto& stream = SharedStream();
  FilterOperator<PositionReport> op(
      "fast", [](const PositionReport& r) { return r.speed_mps > 5.0; });
  std::vector<PositionReport> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    op.Process(stream[i++ % stream.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterOperator);

void BM_TumblingWindow(benchmark::State& state) {
  const auto& stream = SharedStream();
  using Win = TumblingWindowOperator<PositionReport, EntityId, double>;
  Win op(
      "mean_speed", kMinute, 10 * kSecond,
      [](const PositionReport& r) { return r.entity_id; },
      [](const PositionReport& r) { return r.timestamp; },
      [](double* acc, const PositionReport& r) { *acc += r.speed_mps; });
  std::vector<Win::Out> out;
  std::size_t i = 0;
  // Monotone timestamps so tuples keep landing in live windows instead of
  // the cheap dropped-late path.
  TimestampMs ts = stream.front().timestamp;
  for (auto _ : state) {
    out.clear();
    PositionReport r = stream[i++ % stream.size()];
    r.timestamp = ts;
    ts += 200;
    op.Process(r, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TumblingWindow);

void BM_CriticalPointOperator(benchmark::State& state) {
  const auto& stream = SharedStream();
  CriticalPointDetector op;
  std::vector<CriticalPoint> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    op.Process(stream[i++ % stream.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CriticalPointOperator);

/// Whole-stream execution: inline chain vs. queue-connected threads.
void BM_PipelineInline(benchmark::State& state) {
  const auto& stream = SharedStream();
  for (auto _ : state) {
    MapOperator<PositionReport, PositionReport> id(
        "id", [](const PositionReport& r) { return r; });
    CriticalPointDetector det;
    auto out = pipeline::RunBatch2(&id, &det, stream);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_PipelineInline)->Unit(benchmark::kMillisecond);

void BM_PipelineThreaded(benchmark::State& state) {
  const auto& stream = SharedStream();
  for (auto _ : state) {
    MapOperator<PositionReport, PositionReport> id(
        "id", [](const PositionReport& r) { return r; });
    CriticalPointDetector det;
    auto out = pipeline::RunThreaded2(&id, &det, stream, 1024);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_PipelineThreaded)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace datacron

BENCHMARK_MAIN();
