// Ablations of design choices called out in DESIGN.md:
//
//  A1  sequence links (dc:hasNextNode) on/off — store size vs. path-query
//      capability (the cost of making trajectories graph-traversable).
//  A2  link-discovery blocking-frame width — candidate explosion vs.
//      verification cost.
//  A3  window allowed-lateness — dropped tuples vs. buffered state under
//      an out-of-order stream.
//  A4  synopses-then-transform vs. transform-everything — end-to-end
//      engine throughput and store volume (the architecture's core bet).
//  E12 SIMD kernel layer — per-kernel scalar-vs-native dispatch timings
//      with bitwise identity checks, plus an E11-style end-to-end engine
//      rerun on the vectorized hot paths. Emits BENCH_simd.json.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "cep/cpa.h"
#include "cep/fleet_snapshot.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "common/time_utils.h"
#include "datacron/engine.h"
#include "forecast/kalman.h"
#include "geo/bbox.h"
#include "geo/kernels.h"
#include "link/link_discovery.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"
#include "stream/window.h"

namespace datacron {
namespace {

std::vector<PositionReport> Fleet(std::size_t vessels, DurationMs dur,
                                  DurationMs jitter = 0) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = vessels;
  cfg.duration = dur;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  obs.out_of_order_jitter_ms = jitter;
  return ObserveFleet(GenerateAisFleet(cfg), obs);
}

void AblationSequenceLinks() {
  std::printf("A1: sequence links on/off (60 vessels x 1 h)\n");
  std::printf("%-14s %12s %12s %14s\n", "seq_links", "triples",
              "store_MB~", "2hop_rows");
  const auto stream = Fleet(60, kHour);
  for (bool seq : {true, false}) {
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer::Config rcfg;
    rcfg.emit_sequence_links = seq;
    Rdfizer rdfizer(rcfg, &dict, &vocab);
    std::vector<Triple> triples;
    for (const auto& r : stream) {
      const auto ts = rdfizer.TransformReport(r);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    HashPartitioner one(1, &rdfizer.tags());
    PartitionedRdfStore store;
    store.Load(triples, one, rdfizer.grid());
    QueryEngine qe(&store, &rdfizer);
    QueryBuilder qb;
    qb.WhereVar("a", vocab.p_next_node, "b");
    qb.WhereVar("b", vocab.p_next_node, "c");
    const auto rs = qe.ExecuteLocal(qb.Build());
    // Rough in-memory estimate: 3 permutations x 24 bytes per triple.
    std::printf("%-14s %12zu %12.1f %14zu\n", seq ? "on" : "off",
                triples.size(), triples.size() * 3 * 24 / 1e6,
                rs.rows.size());
  }
}

void AblationBlockingFrame() {
  std::printf("\nA2: link-discovery time-frame width (80 vessels x 30 min, "
              "threshold 2 km)\n");
  std::printf("%-14s %12s %12s\n", "tolerance_s", "links", "blocked_ms");
  const auto stream = Fleet(80, 30 * kMinute);
  for (DurationMs tol : {10 * kSecond, 30 * kSecond, 60 * kSecond,
                         120 * kSecond}) {
    LinkDiscovery::Config cfg;
    cfg.time_tolerance = tol;
    LinkDiscovery link(cfg);
    Stopwatch timer;
    const auto links = link.DiscoverProximity(stream);
    std::printf("%-14lld %12zu %12.1f\n",
                static_cast<long long>(tol / 1000), links.size(),
                timer.ElapsedMillis());
  }
}

void AblationLateness() {
  std::printf("\nA3: window allowed-lateness under 60 s ooo-jitter "
              "(40 vessels x 30 min)\n");
  std::printf("%-14s %12s %12s\n", "lateness_s", "windows", "dropped");
  const auto stream = Fleet(40, 30 * kMinute, /*jitter=*/60 * kSecond);
  for (DurationMs lateness : {0 * kSecond, 15 * kSecond, 30 * kSecond,
                              60 * kSecond, 120 * kSecond}) {
    using Win = TumblingWindowOperator<PositionReport, EntityId, double>;
    Win win(
        "count", kMinute, lateness,
        [](const PositionReport& r) { return r.entity_id; },
        [](const PositionReport& r) { return r.timestamp; },
        [](double* acc, const PositionReport&) { *acc += 1; });
    std::vector<Win::Out> out;
    for (const auto& r : stream) win.ProcessCounted(r, &out);
    win.Flush(&out);
    std::printf("%-14lld %12zu %12zu\n",
                static_cast<long long>(lateness / 1000), out.size(),
                win.dropped_late());
  }
}

void AblationSynopsesPath() {
  std::printf("\nA4: synopses-then-transform vs transform-everything "
              "(100 vessels x 1 h, full engine)\n");
  std::printf("%-16s %12s %12s %14s %12s\n", "path", "triples",
              "reports/s", "p99_ms", "dict_terms");
  const auto stream = Fleet(100, kHour);
  for (bool all : {false, true}) {
    DatacronEngine::Config cfg;
    cfg.rdfize_all_reports = all;
    DatacronEngine engine(cfg);
    Stopwatch timer;
    for (const auto& r : stream) engine.Ingest(r);
    engine.Finish();
    const double secs = timer.ElapsedSeconds();
    std::printf("%-16s %12zu %12.0f %14.4f %12zu\n",
                all ? "all_reports" : "synopses", engine.triples().size(),
                stream.size() / secs, engine.latencies().total_ms.p99(),
                engine.dictionary()->size());
  }
}

// ------------------------------------------------------------------ E12

struct KernelRecord {
  std::string kernel;
  std::size_t lanes = 0;
  double scalar_ns = 0;  // per lane
  double simd_ns = 0;    // per lane
  bool identical = false;
  double speedup() const {
    return simd_ns > 0 ? scalar_ns / simd_ns : 0.0;
  }
};

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Times `fn(dispatch, out)` per dispatch path over `reps` runs and
/// checks the two output columns for bitwise equality.
template <typename Fn>
KernelRecord TimeKernel(const char* name, std::size_t lanes, int reps,
                        const Fn& fn) {
  KernelRecord rec;
  rec.kernel = name;
  rec.lanes = lanes;
  std::vector<double> out_scalar(lanes), out_native(lanes);
  // Warm both paths (page in the columns, settle the clocks).
  fn(SimdDispatch::kScalarOnly, &out_scalar);
  fn(SimdDispatch::kNative, &out_native);
  rec.identical = BitsEqual(out_scalar, out_native);
  Stopwatch timer;
  for (int r = 0; r < reps; ++r) fn(SimdDispatch::kScalarOnly, &out_scalar);
  rec.scalar_ns = timer.ElapsedSeconds() * 1e9 / (reps * lanes);
  timer = Stopwatch();
  for (int r = 0; r < reps; ++r) fn(SimdDispatch::kNative, &out_native);
  rec.simd_ns = timer.ElapsedSeconds() * 1e9 / (reps * lanes);
  return rec;
}

std::vector<KernelRecord> BenchKernels() {
  constexpr std::size_t kLanes = 4096;
  constexpr int kReps = 200;
  Rng rng(12012);
  std::vector<KernelRecord> records;

  // Shared random columns in the Aegean box the fleet benches use.
  std::vector<double> a_lat(kLanes), a_lon(kLanes), a_alt(kLanes),
      a_ts(kLanes), b_lat(kLanes), b_lon(kLanes), b_alt(kLanes), b_ts(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    a_lat[i] = rng.Uniform(35, 39);
    a_lon[i] = rng.Uniform(22, 27);
    a_alt[i] = rng.Uniform(0, 10000);
    a_ts[i] = 0.0;
    b_lat[i] = a_lat[i] + rng.Uniform(-0.1, 0.1);
    b_lon[i] = a_lon[i] + rng.Uniform(-0.1, 0.1);
    b_alt[i] = a_alt[i] + rng.Uniform(-500, 500);
    b_ts[i] = 600000.0;
  }

  records.push_back(TimeKernel(
      "haversine", kLanes, kReps,
      [&](SimdDispatch d, std::vector<double>* out) {
        HaversineMetersBatch(a_lat.data(), a_lon.data(), b_lat.data(),
                             b_lon.data(), kLanes, out->data(), d);
      }));

  const double cos_ref = std::cos(37.0 * kDegToRad);
  records.push_back(TimeKernel(
      "equirectangular", kLanes, kReps,
      [&](SimdDispatch d, std::vector<double>* out) {
        EquirectangularMetersBatch(cos_ref, a_lat.data(), a_lon.data(),
                                   b_lat.data(), b_lon.data(), kLanes,
                                   out->data(), d);
      }));

  const LatLon seg_a{37.0, 24.0}, seg_b{37.4, 24.6};
  records.push_back(TimeKernel(
      "point_to_segment", kLanes, kReps,
      [&](SimdDispatch d, std::vector<double>* out) {
        PointToSegmentMetersBatch(seg_a, seg_b, a_lat.data(), a_lon.data(),
                                  kLanes, out->data(), d);
      }));

  std::vector<double> p_ts(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) p_ts[i] = rng.Uniform(0, 600000);
  records.push_back(TimeKernel(
      "sed", kLanes, kReps, [&](SimdDispatch d, std::vector<double>* out) {
        SedMetersBatch(37.0, 24.0, 0.0, 0.0, 37.4, 24.6, 0.0, 600000.0,
                       a_lat.data(), a_lon.data(), a_alt.data(), p_ts.data(),
                       kLanes, out->data(), d);
      }));

  // CPA over a dense snapshot: random row pairs, timed through the full
  // batch entry point (gather + kernel + scatter).
  FleetSnapshot fleet;
  for (std::size_t i = 0; i < 512; ++i) {
    PositionReport r;
    r.entity_id = static_cast<EntityId>(i + 1);
    r.timestamp = 1000000;
    r.position = {rng.Uniform(35, 39), rng.Uniform(22, 27), 0};
    r.speed_mps = rng.Uniform(0, 15);
    r.course_deg = rng.Uniform(0, 360);
    fleet.Append(r);
  }
  std::vector<CpaPair> pairs(kLanes);
  for (auto& p : pairs) {
    p.a_row = static_cast<std::uint32_t>(rng.UniformInt(0, 511));
    p.b_row = static_cast<std::uint32_t>(rng.UniformInt(0, 511));
  }
  std::vector<CpaResult> cpa_out(kLanes);
  records.push_back(TimeKernel(
      "cpa_batch", kLanes, kReps,
      [&](SimdDispatch d, std::vector<double>* out) {
        ComputeCpaBatch(fleet, pairs.data(), kLanes, cpa_out.data(), d);
        for (std::size_t i = 0; i < kLanes; ++i) {
          (*out)[i] = cpa_out[i].d_cpa_m;
        }
      }));

  // Bbox containment: one point against a sector grid of boxes.
  BboxSoa boxes;
  constexpr std::size_t kBoxes = 256;
  for (std::size_t i = 0; i < kBoxes; ++i) {
    const double lat0 = rng.Uniform(35, 38.5);
    const double lon0 = rng.Uniform(22, 26.5);
    boxes.Add(BoundingBox::Of(lat0, lon0, lat0 + 0.5, lon0 + 0.5));
  }
  std::vector<std::uint8_t> hits(kBoxes);
  records.push_back(TimeKernel(
      "bbox_contains", kBoxes, kReps * 16,
      [&](SimdDispatch d, std::vector<double>* out) {
        BboxContainsBatch(boxes, {a_lat[0], a_lon[0]}, hits.data(), d);
        for (std::size_t i = 0; i < kBoxes; ++i) (*out)[i] = hits[i];
      }));

  return records;
}

/// Kalman backend comparison: same stream through the native and the
/// forced-scalar filter; identity is the bitwise equality of every
/// entity's final estimate.
KernelRecord BenchKalman() {
  Rng rng(12013);
  constexpr std::size_t kEntities = 64;
  constexpr int kSteps = 400;
  std::vector<PositionReport> stream;
  stream.reserve(kEntities * kSteps);
  for (int s = 0; s < kSteps; ++s) {
    for (std::size_t e = 0; e < kEntities; ++e) {
      PositionReport r;
      r.entity_id = static_cast<EntityId>(e + 1);
      r.timestamp = static_cast<TimestampMs>(s) * 10000;
      r.position = {36.0 + 0.001 * s + 0.01 * static_cast<double>(e),
                    24.0 + 0.001 * s, 0};
      r.speed_mps = 8.0 + rng.Uniform(-1, 1);
      r.course_deg = 45.0 + rng.Uniform(-3, 3);
      stream.push_back(r);
    }
  }
  KernelRecord rec;
  rec.kernel = "kalman_observe";
  rec.lanes = stream.size();
  auto run = [&stream](bool force_scalar) {
    KalmanPredictor::Config cfg;
    cfg.force_scalar_simd = force_scalar;
    KalmanPredictor filter(cfg);
    filter.ObserveBatch(std::span<const PositionReport>(stream));
    return filter;
  };
  {
    Stopwatch timer;
    KalmanPredictor scalar = run(true);
    rec.scalar_ns = timer.ElapsedSeconds() * 1e9 / stream.size();
    Stopwatch timer2;
    KalmanPredictor native = run(false);
    rec.simd_ns = timer2.ElapsedSeconds() * 1e9 / stream.size();
    rec.identical = true;
    for (std::size_t e = 1; e <= kEntities; ++e) {
      GeoPoint pn, ps;
      double ven, vnn, ves, vns;
      if (!native.CurrentEstimate(e, &pn, &ven, &vnn) ||
          !scalar.CurrentEstimate(e, &ps, &ves, &vns) ||
          std::memcmp(&pn, &ps, sizeof(pn)) != 0 || ven != ves ||
          vnn != vns) {
        rec.identical = false;
      }
    }
  }
  return rec;
}

void WriteSimdJson(const char* path, const std::vector<KernelRecord>& records,
                   double geomean, std::size_t e2e_reports, double e2e_rps,
                   std::size_t e2e_events) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"experiment\": \"E12_simd_kernels\",\n");
  std::fprintf(f, "  \"backend\": \"%s\",\n  \"native_width\": %d,\n",
               simd::NativeBackendName(), simd::kNativeWidth);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"lanes\": %zu, "
                 "\"scalar_ns_per_lane\": %.2f, \"simd_ns_per_lane\": %.2f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 r.kernel.c_str(), r.lanes, r.scalar_ns, r.simd_ns,
                 r.speedup(), r.identical ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"geomean_speedup\": %.3f,\n", geomean);
  std::fprintf(f,
               "  \"end_to_end\": {\"reports\": %zu, \"reports_per_s\": "
               "%.0f, \"events\": %zu}\n}\n",
               e2e_reports, e2e_rps, e2e_events);
  std::fclose(f);
}

void SimdKernelSection() {
  std::printf("\nE12: SIMD kernel layer (backend=%s, width=%d)\n",
              simd::NativeBackendName(), simd::kNativeWidth);
  std::printf("%-18s %10s %14s %14s %10s %10s\n", "kernel", "lanes",
              "scalar_ns", "simd_ns", "speedup", "identical");
  std::vector<KernelRecord> records = BenchKernels();
  records.push_back(BenchKalman());
  double log_sum = 0.0;
  for (const KernelRecord& r : records) {
    std::printf("%-18s %10zu %14.2f %14.2f %9.2fx %10s\n", r.kernel.c_str(),
                r.lanes, r.scalar_ns, r.simd_ns, r.speedup(),
                r.identical ? "yes" : "NO");
    log_sum += std::log(r.speedup());
  }
  const double geomean = std::exp(log_sum / records.size());
  std::printf("geometric-mean speedup: %.2fx\n", geomean);

  // E11-style end-to-end rerun: the full engine over a fleet hour, now
  // with every numeric hot path on the batched kernels.
  const auto stream = Fleet(100, kHour);
  DatacronEngine engine((DatacronEngine::Config()));
  std::size_t events = 0;
  Stopwatch timer;
  for (const auto& r : stream) events += engine.Ingest(r).size();
  events += engine.Finish().size();
  const double rps = stream.size() / timer.ElapsedSeconds();
  std::printf("end-to-end engine: %zu reports, %.0f reports/s, %zu events\n",
              stream.size(), rps, events);

  WriteSimdJson("BENCH_simd.json", records, geomean, stream.size(), rps,
                events);
}

}  // namespace

void Run() {
  AblationSequenceLinks();
  AblationBlockingFrame();
  AblationLateness();
  AblationSynopsesPath();
  SimdKernelSection();
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
