// Ablations of design choices called out in DESIGN.md:
//
//  A1  sequence links (dc:hasNextNode) on/off — store size vs. path-query
//      capability (the cost of making trajectories graph-traversable).
//  A2  link-discovery blocking-frame width — candidate explosion vs.
//      verification cost.
//  A3  window allowed-lateness — dropped tuples vs. buffered state under
//      an out-of-order stream.
//  A4  synopses-then-transform vs. transform-everything — end-to-end
//      engine throughput and store volume (the architecture's core bet).
#include <cstdio>
#include <memory>

#include "common/time_utils.h"
#include "datacron/engine.h"
#include "link/link_discovery.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"
#include "stream/window.h"

namespace datacron {
namespace {

std::vector<PositionReport> Fleet(std::size_t vessels, DurationMs dur,
                                  DurationMs jitter = 0) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = vessels;
  cfg.duration = dur;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  obs.out_of_order_jitter_ms = jitter;
  return ObserveFleet(GenerateAisFleet(cfg), obs);
}

void AblationSequenceLinks() {
  std::printf("A1: sequence links on/off (60 vessels x 1 h)\n");
  std::printf("%-14s %12s %12s %14s\n", "seq_links", "triples",
              "store_MB~", "2hop_rows");
  const auto stream = Fleet(60, kHour);
  for (bool seq : {true, false}) {
    TermDictionary dict;
    Vocab vocab(&dict);
    Rdfizer::Config rcfg;
    rcfg.emit_sequence_links = seq;
    Rdfizer rdfizer(rcfg, &dict, &vocab);
    std::vector<Triple> triples;
    for (const auto& r : stream) {
      const auto ts = rdfizer.TransformReport(r);
      triples.insert(triples.end(), ts.begin(), ts.end());
    }
    HashPartitioner one(1, &rdfizer.tags());
    PartitionedRdfStore store;
    store.Load(triples, one, rdfizer.grid());
    QueryEngine qe(&store, &rdfizer);
    QueryBuilder qb;
    qb.WhereVar("a", vocab.p_next_node, "b");
    qb.WhereVar("b", vocab.p_next_node, "c");
    const auto rs = qe.ExecuteLocal(qb.Build());
    // Rough in-memory estimate: 3 permutations x 24 bytes per triple.
    std::printf("%-14s %12zu %12.1f %14zu\n", seq ? "on" : "off",
                triples.size(), triples.size() * 3 * 24 / 1e6,
                rs.rows.size());
  }
}

void AblationBlockingFrame() {
  std::printf("\nA2: link-discovery time-frame width (80 vessels x 30 min, "
              "threshold 2 km)\n");
  std::printf("%-14s %12s %12s\n", "tolerance_s", "links", "blocked_ms");
  const auto stream = Fleet(80, 30 * kMinute);
  for (DurationMs tol : {10 * kSecond, 30 * kSecond, 60 * kSecond,
                         120 * kSecond}) {
    LinkDiscovery::Config cfg;
    cfg.time_tolerance = tol;
    LinkDiscovery link(cfg);
    Stopwatch timer;
    const auto links = link.DiscoverProximity(stream);
    std::printf("%-14lld %12zu %12.1f\n",
                static_cast<long long>(tol / 1000), links.size(),
                timer.ElapsedMillis());
  }
}

void AblationLateness() {
  std::printf("\nA3: window allowed-lateness under 60 s ooo-jitter "
              "(40 vessels x 30 min)\n");
  std::printf("%-14s %12s %12s\n", "lateness_s", "windows", "dropped");
  const auto stream = Fleet(40, 30 * kMinute, /*jitter=*/60 * kSecond);
  for (DurationMs lateness : {0 * kSecond, 15 * kSecond, 30 * kSecond,
                              60 * kSecond, 120 * kSecond}) {
    using Win = TumblingWindowOperator<PositionReport, EntityId, double>;
    Win win(
        "count", kMinute, lateness,
        [](const PositionReport& r) { return r.entity_id; },
        [](const PositionReport& r) { return r.timestamp; },
        [](double* acc, const PositionReport&) { *acc += 1; });
    std::vector<Win::Out> out;
    for (const auto& r : stream) win.ProcessCounted(r, &out);
    win.Flush(&out);
    std::printf("%-14lld %12zu %12zu\n",
                static_cast<long long>(lateness / 1000), out.size(),
                win.dropped_late());
  }
}

void AblationSynopsesPath() {
  std::printf("\nA4: synopses-then-transform vs transform-everything "
              "(100 vessels x 1 h, full engine)\n");
  std::printf("%-16s %12s %12s %14s %12s\n", "path", "triples",
              "reports/s", "p99_ms", "dict_terms");
  const auto stream = Fleet(100, kHour);
  for (bool all : {false, true}) {
    DatacronEngine::Config cfg;
    cfg.rdfize_all_reports = all;
    DatacronEngine engine(cfg);
    Stopwatch timer;
    for (const auto& r : stream) engine.Ingest(r);
    engine.Finish();
    const double secs = timer.ElapsedSeconds();
    std::printf("%-16s %12zu %12.0f %14.4f %12zu\n",
                all ? "all_reports" : "synopses", engine.triples().size(),
                stream.size() / secs, engine.latencies().total_ms.p99(),
                engine.dictionary()->size());
  }
}

}  // namespace

void Run() {
  AblationSequenceLinks();
  AblationBlockingFrame();
  AblationLateness();
  AblationSynopsesPath();
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
