// E6 — Link discovery: blocking vs. brute force, and quality vs. truth.
//
// Paper claim: "interlinks semantically annotated data using link
// discovery techniques for automatically computing associations between
// data from heterogeneous sources".
#include <cstdio>

#include "common/strings.h"
#include "common/time_utils.h"
#include "link/link_discovery.h"
#include "sources/ais_generator.h"
#include "sources/weather.h"

namespace datacron {

void Run() {
  std::printf("E6: link discovery\n");
  std::printf("%-10s %9s %12s %12s %9s %10s %10s %8s\n", "vessels",
              "reports", "blocked_ms", "brute_ms", "speedup", "links",
              "precision", "recall");

  for (std::size_t vessels : {20, 40, 80, 160}) {
    AisGeneratorConfig fleet;
    fleet.num_vessels = vessels;
    fleet.duration = 30 * kMinute;
    const auto traces = GenerateAisFleet(fleet);
    ObservationConfig obs;
    obs.fixed_interval_ms = 15 * kSecond;
    obs.drop_probability = 0;
    obs.gap_probability = 0;
    const auto reports = ObserveFleet(traces, obs);

    LinkDiscovery::Config cfg;
    cfg.proximity_threshold_m = 2000;
    cfg.time_tolerance = 30 * kSecond;
    LinkDiscovery link(cfg);

    Stopwatch blocked_timer;
    const auto blocked = link.DiscoverProximity(reports);
    const double blocked_ms = blocked_timer.ElapsedMillis();

    Stopwatch brute_timer;
    const auto brute = link.DiscoverProximityBruteForce(reports);
    const double brute_ms = brute_timer.ElapsedMillis();

    const auto truth =
        TrueEncounters(traces, cfg.proximity_threshold_m,
                       cfg.time_tolerance);
    const LinkQuality q = EvaluateLinks(blocked, truth, cfg.time_tolerance);

    std::printf("%-10zu %9zu %12.1f %12.1f %8.1fx %10zu %9.1f%% %7.1f%%\n",
                vessels, reports.size(), blocked_ms, brute_ms,
                brute_ms / std::max(0.001, blocked_ms), blocked.size(),
                100 * q.Precision(), 100 * q.Recall());
  }

  // Heterogeneous links: vessel-area and vessel-weather, throughput only.
  {
    AisGeneratorConfig fleet;
    fleet.num_vessels = 80;
    fleet.duration = 30 * kMinute;
    const auto traces = GenerateAisFleet(fleet);
    ObservationConfig obs;
    obs.fixed_interval_ms = 15 * kSecond;
    const auto reports = ObserveFleet(traces, obs);
    LinkDiscovery link(LinkDiscovery::Config{});

    std::vector<NamedArea> areas;
    for (int i = 0; i < 10; ++i) {
      const double lat = 35.3 + 0.35 * i;
      areas.push_back(NamedArea{
          StrFormat("area_%d", i),
          Polygon::Circle({lat, 23.5 + 0.3 * i}, 15000, 24)});
    }
    Stopwatch area_timer;
    const auto area_links = link.DiscoverAreaLinks(reports, areas);
    const double area_ms = area_timer.ElapsedMillis();

    WeatherSource weather{WeatherSource::Config{}};
    Stopwatch wx_timer;
    const auto wx_links = link.DiscoverWeatherLinks(reports, weather);
    const double wx_ms = wx_timer.ElapsedMillis();

    std::printf(
        "\nheterogeneous: %zu area links in %.1f ms (%.0f reports/ms), "
        "%zu weather links in %.1f ms (%.0f reports/ms)\n",
        area_links.size(), area_ms, reports.size() / area_ms,
        wx_links.size(), wx_ms, reports.size() / wx_ms);
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
