// E8 — Future location prediction, aviation (3D): horizontal and vertical
// error vs. horizon through climb/cruise/descent.
//
// Paper claim: forecasting in "the challenging ... Aviation (3D space)"
// domain. Vertical-rate-aware predictors must beat 2D-only reasoning on
// the altitude channel; horizontal error shapes mirror E7.
#include <cstdio>
#include <memory>

#include "forecast/eval.h"
#include "forecast/kalman.h"
#include "forecast/kinematic.h"
#include "sources/adsb_generator.h"

namespace datacron {

void Run() {
  AdsbGeneratorConfig traffic;
  traffic.num_flights = 40;
  traffic.duration = 2 * kHour;
  const auto traces = GenerateAdsbTraffic(traffic);

  ForecastEvalConfig cfg;
  cfg.horizons = {30 * kSecond, 1 * kMinute, 2 * kMinute, 5 * kMinute,
                  10 * kMinute};
  cfg.warmup = 2 * kMinute;
  cfg.observation.position_noise_m = 25;
  cfg.observation.speed_noise_mps = 2;
  cfg.observation.course_noise_deg = 1;
  cfg.observation.fixed_interval_ms = 4 * kSecond;  // ADS-B cadence
  cfg.observation.drop_probability = 0.02;
  cfg.observation.gap_probability = 0;

  std::printf(
      "E8: aviation 3D future location prediction (%zu flights, horizons "
      "0.5..10 min)\n\n",
      traffic.num_flights);

  std::vector<std::unique_ptr<Predictor>> predictors;
  predictors.push_back(std::make_unique<DeadReckoningPredictor>());
  // Gentle rate smoothing: ADS-B course noise at 4 s cadence would
  // otherwise swamp the turn-rate estimate.
  predictors.push_back(std::make_unique<CtrvPredictor>(0.1));
  // Aviation-tuned filter: manoeuvre process noise and the actual
  // measurement noise of the feed.
  KalmanPredictor::Config kc;
  kc.process_accel = 0.5;
  kc.meas_pos_m = 25;
  kc.meas_vel_mps = 2.0;
  predictors.push_back(std::make_unique<KalmanPredictor>(kc));

  for (auto& p : predictors) {
    const auto eval = EvaluatePredictor(p.get(), traces, cfg);
    std::printf("%s\n", eval.ToTable().c_str());
  }
}

}  // namespace datacron

int main() {
  datacron::Run();
  return 0;
}
