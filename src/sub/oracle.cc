#include "sub/oracle.h"

namespace datacron {

std::vector<DeltaBatch> SubscriptionOracle::EvalEpoch(
    std::span<const PositionReport> reports, std::span<const Event> prox_events,
    TimestampMs close_ts) {
  std::vector<SubDelta> deltas;
  const std::int64_t epoch = epoch_++;
  registry_->ForEachActive([&](std::uint32_t slot,
                               const SubscriptionRegistry::Entry& e) {
    switch (e.spec.kind) {
      case SubKind::kGeofence: {
        const GeofenceSpec& g = e.spec.geofence;
        for (const PositionReport& r : reports) {
          if (!g.all_entities && r.entity_id != g.entity) continue;
          GeofenceState& st =
              geo_state_[(static_cast<std::uint64_t>(slot) << 32) |
                         r.entity_id];
          SubscriptionRegistry::GeofenceStep(e, r, &st, &deltas);
        }
        return;
      }
      case SubKind::kProximity: {
        const EntityId watched = e.spec.proximity.entity;
        for (const Event& ev : prox_events) {
          if (ev.kind != EventKind::kEncounter &&
              ev.kind != EventKind::kCollisionForecast) {
            continue;
          }
          for (std::size_t i = 0; i < ev.entities.size(); ++i) {
            if (ev.entities[i] != watched) continue;
            const EntityId other =
                ev.entities.size() == 2 ? ev.entities[i ^ 1] : ev.entities[i];
            SubscriptionRegistry::ProximityStep(e, ev, other,
                                                &prox_state_[slot], &deltas);
            break;  // one step per event, first matching position
          }
        }
        return;
      }
      case SubKind::kHotspot: {
        double count = 0.0;
        for (const PositionReport& r : reports) {
          if (SubscriptionRegistry::RegionContains(e, r.position.ll())) {
            count += 1.0;
          }
        }
        SubscriptionRegistry::HotspotRoll(e, epoch, count, close_ts,
                                          &hot_state_[slot], &deltas);
        return;
      }
    }
  });
  std::vector<DeltaBatch> out;
  registry_->CoalesceEpoch(epoch, &deltas, &out);
  return out;
}

}  // namespace datacron
