#ifndef DATACRON_SUB_REGISTRY_H_
#define DATACRON_SUB_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <span>
#include <vector>

#include "cep/event.h"
#include "common/flat_hash.h"
#include "common/status.h"
#include "geo/kernels.h"
#include "geo/polygon.h"
#include "obs/metrics.h"
#include "sources/model.h"
#include "sub/subscription.h"

namespace datacron {

/// Per-(subscription, entity) geofence memory: which side of the fence
/// the entity was on after the last report, when it entered, and whether
/// this visit's dwell alarm already fired. Lives in the shard that owns
/// the entity's reports.
struct GeofenceState {
  bool inside = false;
  bool dwell_fired = false;
  TimestampMs enter_ts = 0;
};

/// Per-subscription proximity watermark (barrier side): the last alarm
/// forwarded, for min_interval_ms suppression.
struct ProximityState {
  bool armed = false;
  TimestampMs last_alarm = 0;
};

/// Per-subscription rolling density window (barrier side): nonzero
/// per-epoch report counts with their epoch index, the running sum, and
/// which side of the threshold the last close ended on.
struct HotspotState {
  std::deque<std::pair<std::int64_t, double>> window;
  double sum = 0.0;
  bool above = false;
};

/// Sharded standing-query registry — the subscription tier's core.
///
/// Control plane (Subscribe/Unsubscribe) and data plane are phased: the
/// data-plane methods may run while no control-plane call is in flight.
/// Within the data plane, EvalKeyed(shard, ...) is called concurrently
/// across shards but serially per shard (the sharded runtime's
/// single-drain-task-per-shard guarantee), and the barrier methods
/// (Add*/CloseEpoch) run on one thread in input order.
///
/// Evaluation is incremental by construction:
///   * geofence subs are indexed by watched entity and by a uniform grid
///     over their boxes (wide boxes fall back to a BboxSoa scanned with
///     BboxContainsBatch), so a report only touches subscriptions that
///     can transition — plus the shard's "engaged" set, the fleet-wide
///     subs the entity is currently inside, which is what makes exits
///     fire without rescanning every subscription;
///   * proximity subs only wake when the global CEP stage emits an
///     encounter/forecast involving their entity;
///   * hotspot subs accumulate sparse per-epoch counts in the shards and
///     roll their windows lazily at the barrier (untouched, below-
///     threshold subs cost nothing).
///
/// Deltas are canonicalized at CloseEpoch (stable sort by subscription
/// id, coalesced per subscriber in ascending subscriber order), so the
/// emitted batches are byte-identical to SubscriptionOracle's full
/// re-evaluation at any shard/pool/epoch size.
class SubscriptionRegistry {
 public:
  struct Options {
    /// Must match the engine's shard count (EvalKeyed is indexed by the
    /// engine's ShardOf). Clamped to >= 1.
    std::size_t num_shards = 1;
    /// Spatial index cell size in degrees.
    double cell_deg = 0.25;
    /// Boxes covering more cells than this go to the BboxSoa catchall
    /// (scanned per report) instead of the grid.
    std::size_t max_cells_per_box = 512;
  };

  SubscriptionRegistry();
  explicit SubscriptionRegistry(Options opts);

  /// A registered subscription with its registration-time compilation:
  /// wrap bboxes split in two, polygons pre-built. Slots are assigned in
  /// registration order and never reused; unsubscribing tombstones the
  /// slot (active = false).
  struct Entry {
    SubscriptionId id = 0;
    SubscriberId subscriber = 0;
    bool active = false;
    SubscriptionSpec spec;
    /// Compiled containment region (geofence/hotspot): box2 is the
    /// second half of an antimeridian-split bbox, empty otherwise. A
    /// geofence polygon (>= 3 vertices) replaces the boxes entirely.
    BoundingBox box1;
    BoundingBox box2;
    Polygon polygon;
  };

  // --- control plane ----------------------------------------------------

  /// Registers a standing query; returns its new id (ids ascend in
  /// registration order). InvalidArgument if the spec fails ValidateSpec.
  Result<SubscriptionId> Subscribe(SubscriberId subscriber,
                                   const SubscriptionSpec& spec);

  /// Registers under a caller-chosen id — the cluster seam: the
  /// coordinator assigns the id and every node registers the same one.
  /// Idempotent for an identical (subscriber, spec) re-registration;
  /// AlreadyExists if the id is taken by a different subscription.
  Status SubscribeWithId(SubscriptionId id, SubscriberId subscriber,
                         const SubscriptionSpec& spec);

  /// Deactivates a subscription. Returns false when the id is unknown or
  /// already inactive. Deltas it produced earlier in a still-open epoch
  /// are dropped at CloseEpoch.
  bool Unsubscribe(SubscriptionId id);

  std::size_t active_count() const { return active_count_; }
  /// True once any subscription was ever registered — the engine's guard
  /// for skipping the data plane entirely on subscription-free streams.
  bool ever_active() const { return ever_active_; }
  /// True while any geofence/hotspot sub is active (per-report work).
  bool keyed_active() const { return geo_total_ + hot_total_ > 0; }

  std::size_t num_shards() const { return shards_.size(); }
  std::int64_t epochs_closed() const { return epochs_closed_; }

  // --- data plane: keyed (inside the engine's shards) -------------------

  /// Evaluates every geofence subscription the report can transition and
  /// counts it into every hotspot subscription's box, appending deltas /
  /// accumulating counts (keyed by subscription id) into the shard's
  /// epoch sink. Serial per shard, concurrent across shards.
  void EvalKeyed(std::size_t shard, const PositionReport& report,
                 std::vector<SubDelta>* deltas,
                 FlatHashMap<std::uint64_t, double>* counts);

  // --- data plane: epoch barrier (one thread, input order) --------------

  /// Splices one report's shard-emitted deltas into the epoch, in global
  /// input order.
  void AddKeyedDeltas(std::span<const SubDelta> deltas);

  /// Folds one sink's hotspot counts into the epoch (summation, so feed
  /// order does not matter).
  void AddHotspotCounts(const FlatHashMap<std::uint64_t, double>& counts);

  /// Feeds the global CEP events one report produced (input order);
  /// encounter/collision-forecast events wake proximity subscriptions.
  void AddGlobalEvents(std::span<const Event> events);

  /// Closes the epoch: rolls hotspot windows, canonicalizes and coalesces
  /// the epoch's deltas per subscriber, pushes each batch to the delta
  /// sink, and clears the scratch. `close_ts` stamps hotspot deltas
  /// (callers pass the epoch's last report timestamp).
  void CloseEpoch(TimestampMs close_ts);

  /// Where CloseEpoch pushes coalesced batches. Without a sink, batches
  /// accumulate internally until TakeBatches().
  using DeltaSink = std::function<void(const DeltaBatch&)>;
  void SetDeltaSink(DeltaSink sink) { sink_ = std::move(sink); }
  std::vector<DeltaBatch> TakeBatches();

  // --- shared evaluation core (also used by SubscriptionOracle) ---------

  /// Containment under the compiled region: split boxes OR polygon.
  static bool RegionContains(const Entry& e, const LatLon& p);

  /// One geofence state transition; appends at most one delta.
  static void GeofenceStep(const Entry& e, const PositionReport& report,
                           GeofenceState* st, std::vector<SubDelta>* out);

  /// One proximity forwarding decision for an event involving the watched
  /// entity; `other` is the counterpart entity carried in the delta.
  static void ProximityStep(const Entry& e, const Event& event,
                            EntityId other, ProximityState* st,
                            std::vector<SubDelta>* out);

  /// Rolls one hotspot window to epoch `epoch` with this epoch's count;
  /// appends the on/off crossing delta if the threshold was crossed.
  static void HotspotRoll(const Entry& e, std::int64_t epoch, double count,
                          TimestampMs close_ts, HotspotState* st,
                          std::vector<SubDelta>* out);

  /// Canonical epoch output: stable-sorts `deltas` by subscription id,
  /// drops inactive subscriptions, coalesces per subscriber in ascending
  /// subscriber order. Shared by CloseEpoch and the oracle so both
  /// serialize identically.
  void CoalesceEpoch(std::int64_t epoch, std::vector<SubDelta>* deltas,
                     std::vector<DeltaBatch>* out) const;

  /// Visits active subscriptions in ascending slot (= id) order.
  template <typename Fn>
  void ForEachActive(Fn&& fn) const {
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].active) fn(s, slots_[s]);
    }
  }

  const Entry* FindEntry(SubscriptionId id) const;

 private:
  /// All keyed state one engine shard owns: geofence memory per
  /// (slot, entity), which fleet-wide slots each entity is engaged with
  /// (currently inside), and reusable candidate scratch.
  struct ShardState {
    FlatHashMap<std::uint64_t, GeofenceState> geo_state;
    FlatHashMap<EntityId, std::vector<std::uint32_t>> engaged;
    std::vector<std::uint32_t> cand;
    std::vector<std::uint8_t> mask;
  };

  static std::uint64_t StateKey(std::uint32_t slot, EntityId entity) {
    return (static_cast<std::uint64_t>(slot) << 32) | entity;
  }

  std::uint64_t CellKey(double lat_deg, double lon_deg) const;
  void CoveredCells(const BoundingBox& box,
                    std::vector<std::uint64_t>* out) const;

  Status Register(SubscriptionId id, SubscriberId subscriber,
                  const SubscriptionSpec& spec);
  void IndexEntry(std::uint32_t slot);
  void UnindexEntry(std::uint32_t slot);
  void RebuildCatchallSoa();

  Options opts_;
  std::vector<Entry> slots_;
  FlatHashMap<std::uint64_t, std::uint32_t> id_to_slot_;
  SubscriptionId next_id_ = 1;
  std::size_t active_count_ = 0;
  bool ever_active_ = false;

  // Geofence indexes. Entity-scoped subs live in entity_geo_; fleet-wide
  // subs live in the grid or, when their box covers too many cells, in
  // the catchall SoA (one row per (slot, box half)).
  FlatHashMap<EntityId, std::vector<std::uint32_t>> entity_geo_;
  FlatHashMap<std::uint64_t, std::vector<std::uint32_t>> geo_grid_;
  std::vector<std::uint32_t> geo_catchall_;
  BboxSoa geo_catchall_soa_;
  std::vector<std::uint32_t> geo_catchall_rows_;  // soa row -> slot
  std::size_t geo_total_ = 0;
  std::size_t fleet_geo_total_ = 0;

  // Hotspot indexes (always fleet-wide).
  FlatHashMap<std::uint64_t, std::vector<std::uint32_t>> hot_grid_;
  std::vector<std::uint32_t> hot_catchall_;
  BboxSoa hot_catchall_soa_;
  std::vector<std::uint32_t> hot_catchall_rows_;
  std::size_t hot_total_ = 0;

  // Proximity index.
  FlatHashMap<EntityId, std::vector<std::uint32_t>> prox_by_entity_;
  std::size_t prox_total_ = 0;

  // Keyed state, one per engine shard.
  std::vector<ShardState> shards_;

  // Barrier state + epoch scratch.
  FlatHashMap<std::uint32_t, ProximityState> prox_state_;
  FlatHashMap<std::uint32_t, HotspotState> hot_state_;
  /// Hotspot slots with a nonempty window or above-threshold side —
  /// the ones CloseEpoch must roll even when untouched this epoch.
  std::set<std::uint32_t> hot_live_;
  std::vector<SubDelta> epoch_deltas_;
  FlatHashMap<std::uint32_t, double> epoch_counts_;
  std::int64_t epochs_closed_ = 0;

  DeltaSink sink_;
  std::vector<DeltaBatch> pending_;

  obs::Counter* deltas_counter_;
  obs::Counter* batches_counter_;
  obs::Counter* eval_counter_;
  obs::Gauge* active_gauge_;
};

}  // namespace datacron

#endif  // DATACRON_SUB_REGISTRY_H_
