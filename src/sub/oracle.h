#ifndef DATACRON_SUB_ORACLE_H_
#define DATACRON_SUB_ORACLE_H_

#include <span>
#include <vector>

#include "cep/event.h"
#include "common/flat_hash.h"
#include "sources/model.h"
#include "sub/registry.h"
#include "sub/subscription.h"

namespace datacron {

/// Full re-evaluation reference for the subscription tier: every epoch it
/// loops over EVERY active subscription and scans the WHOLE epoch — no
/// entity index, no spatial index, no engaged set, no sparse hotspot
/// counts. It shares the per-subscription step functions
/// (SubscriptionRegistry::GeofenceStep / ProximityStep / HotspotRoll) and
/// the canonical coalescing with the registry, so its batches are the
/// definition the incremental path must match byte for byte — and its
/// cost is what the incremental path is benchmarked against.
///
/// The oracle holds its own persistent per-subscription state; feed it
/// the same epoch stream (reports + the epoch's proximity events, both in
/// input order, same epoch cuts) as the registry sees.
class SubscriptionOracle {
 public:
  /// `registry` supplies the subscription set (specs, compiled regions,
  /// subscriber routing); the oracle never reads its evaluation state.
  explicit SubscriptionOracle(const SubscriptionRegistry* registry)
      : registry_(registry) {}

  /// Re-evaluates one epoch from scratch and returns its coalesced
  /// batches (same canonical order as SubscriptionRegistry::CloseEpoch).
  std::vector<DeltaBatch> EvalEpoch(std::span<const PositionReport> reports,
                                    std::span<const Event> prox_events,
                                    TimestampMs close_ts);

 private:
  const SubscriptionRegistry* registry_;
  FlatHashMap<std::uint64_t, GeofenceState> geo_state_;
  FlatHashMap<std::uint32_t, ProximityState> prox_state_;
  FlatHashMap<std::uint32_t, HotspotState> hot_state_;
  std::int64_t epoch_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_SUB_ORACLE_H_
