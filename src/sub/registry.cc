#include "sub/registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"

namespace datacron {

const char* SubKindName(SubKind kind) {
  switch (kind) {
    case SubKind::kGeofence:
      return "geofence";
    case SubKind::kProximity:
      return "proximity";
    case SubKind::kHotspot:
      return "hotspot";
  }
  return "?";
}

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kEnter:
      return "enter";
    case DeltaKind::kExit:
      return "exit";
    case DeltaKind::kDwell:
      return "dwell";
    case DeltaKind::kProximity:
      return "proximity";
    case DeltaKind::kProximityForecast:
      return "proximity-forecast";
    case DeltaKind::kHotspotOn:
      return "hotspot-on";
    case DeltaKind::kHotspotOff:
      return "hotspot-off";
  }
  return "?";
}

std::string SubDelta::ToString() const {
  return "sub " + std::to_string(sub) + " " + DeltaKindName(kind) +
         " entity=" + std::to_string(entity) + " t=" + std::to_string(time) +
         " v=" + std::to_string(value);
}

Status ValidateSpec(const SubscriptionSpec& spec) {
  switch (spec.kind) {
    case SubKind::kGeofence: {
      const GeofenceSpec& g = spec.geofence;
      if (!g.polygon.empty() && g.polygon.size() < 3) {
        return Status::InvalidArgument("geofence polygon needs >= 3 vertices");
      }
      if (g.polygon.size() > kMaxGeofenceVertices) {
        return Status::InvalidArgument("geofence polygon too large");
      }
      if (g.polygon.empty()) {
        const BoundingBox& b = g.bbox;
        // min_lon > max_lon is the antimeridian-wrap convention; only a
        // latitude inversion makes the box genuinely empty.
        if (b.min_lat > b.max_lat) {
          return Status::InvalidArgument("geofence bbox is empty");
        }
      }
      if (g.dwell_ms < 0) {
        return Status::InvalidArgument("geofence dwell_ms must be >= 0");
      }
      return Status::OK();
    }
    case SubKind::kProximity:
      if (spec.proximity.min_interval_ms < 0) {
        return Status::InvalidArgument("proximity min_interval_ms < 0");
      }
      return Status::OK();
    case SubKind::kHotspot: {
      const HotspotSpec& h = spec.hotspot;
      if (h.bbox.min_lat > h.bbox.max_lat) {
        return Status::InvalidArgument("hotspot bbox is empty");
      }
      if (!(h.threshold > 0.0)) {
        return Status::InvalidArgument("hotspot threshold must be > 0");
      }
      if (h.window_epochs == 0) {
        return Status::InvalidArgument("hotspot window_epochs must be >= 1");
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown subscription kind");
}

SubscriptionRegistry::SubscriptionRegistry()
    : SubscriptionRegistry(Options()) {}

SubscriptionRegistry::SubscriptionRegistry(Options opts) : opts_(opts) {
  if (opts_.num_shards == 0) opts_.num_shards = 1;
  if (!(opts_.cell_deg > 0.0)) opts_.cell_deg = 0.25;
  shards_.resize(opts_.num_shards);
  auto& reg = obs::MetricsRegistry::Global();
  deltas_counter_ = reg.counter("sub.deltas");
  batches_counter_ = reg.counter("sub.batches");
  eval_counter_ = reg.counter("sub.eval_reports");
  active_gauge_ = reg.gauge("sub.active");
}

// --- registration ---------------------------------------------------------

Result<SubscriptionId> SubscriptionRegistry::Subscribe(
    SubscriberId subscriber, const SubscriptionSpec& spec) {
  const SubscriptionId id = next_id_;
  Status s = Register(id, subscriber, spec);
  if (!s.ok()) return s;
  ++next_id_;
  return id;
}

Status SubscriptionRegistry::SubscribeWithId(SubscriptionId id,
                                             SubscriberId subscriber,
                                             const SubscriptionSpec& spec) {
  if (id == 0) return Status::InvalidArgument("subscription id 0 is reserved");
  if (const std::uint32_t* slot = id_to_slot_.Find(id)) {
    const Entry& e = slots_[*slot];
    if (e.active && e.subscriber == subscriber && e.spec == spec) {
      return Status::OK();  // idempotent re-registration
    }
    return Status::AlreadyExists("subscription id already registered");
  }
  Status s = Register(id, subscriber, spec);
  if (!s.ok()) return s;
  if (id >= next_id_) next_id_ = id + 1;
  return Status::OK();
}

Status SubscriptionRegistry::Register(SubscriptionId id,
                                      SubscriberId subscriber,
                                      const SubscriptionSpec& spec) {
  Status s = ValidateSpec(spec);
  if (!s.ok()) return s;
  Entry e;
  e.id = id;
  e.subscriber = subscriber;
  e.active = true;
  e.spec = spec;
  const BoundingBox* region = nullptr;
  if (spec.kind == SubKind::kGeofence) {
    if (!spec.geofence.polygon.empty()) {
      e.polygon = Polygon(spec.geofence.polygon);
    } else {
      region = &spec.geofence.bbox;
    }
  } else if (spec.kind == SubKind::kHotspot) {
    region = &spec.hotspot.bbox;
  }
  if (region != nullptr) {
    if (region->min_lon > region->max_lon) {
      // Antimeridian wrap: split into two plain boxes at +-180.
      e.box1 = BoundingBox::Of(region->min_lat, region->min_lon,
                               region->max_lat, 180.0);
      e.box2 = BoundingBox::Of(region->min_lat, -180.0, region->max_lat,
                               region->max_lon);
    } else {
      e.box1 = *region;
    }
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(std::move(e));
  id_to_slot_[id] = slot;
  IndexEntry(slot);
  ++active_count_;
  ever_active_ = true;
  active_gauge_->Set(static_cast<std::int64_t>(active_count_));
  return Status::OK();
}

bool SubscriptionRegistry::Unsubscribe(SubscriptionId id) {
  const std::uint32_t* slot = id_to_slot_.Find(id);
  if (slot == nullptr || !slots_[*slot].active) return false;
  UnindexEntry(*slot);
  slots_[*slot].active = false;
  --active_count_;
  active_gauge_->Set(static_cast<std::int64_t>(active_count_));
  return true;
}

const SubscriptionRegistry::Entry* SubscriptionRegistry::FindEntry(
    SubscriptionId id) const {
  const std::uint32_t* slot = id_to_slot_.Find(id);
  return slot == nullptr ? nullptr : &slots_[*slot];
}

// --- spatial index --------------------------------------------------------

std::uint64_t SubscriptionRegistry::CellKey(double lat_deg,
                                            double lon_deg) const {
  const auto iy = static_cast<std::int32_t>(
      std::floor(lat_deg / opts_.cell_deg));
  const auto ix = static_cast<std::int32_t>(
      std::floor(lon_deg / opts_.cell_deg));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iy)) << 32) |
         static_cast<std::uint32_t>(ix);
}

void SubscriptionRegistry::CoveredCells(const BoundingBox& box,
                                        std::vector<std::uint64_t>* out) const {
  const auto y0 = static_cast<std::int64_t>(
      std::floor(box.min_lat / opts_.cell_deg));
  const auto y1 = static_cast<std::int64_t>(
      std::floor(box.max_lat / opts_.cell_deg));
  const auto x0 = static_cast<std::int64_t>(
      std::floor(box.min_lon / opts_.cell_deg));
  const auto x1 = static_cast<std::int64_t>(
      std::floor(box.max_lon / opts_.cell_deg));
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      out->push_back(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) << 32) |
          static_cast<std::uint32_t>(static_cast<std::int32_t>(x)));
    }
  }
}

namespace {

std::size_t CellSpan(const BoundingBox& box, double cell_deg) {
  if (box.IsEmpty()) return 0;
  const auto rows = static_cast<std::size_t>(
      std::floor(box.max_lat / cell_deg) - std::floor(box.min_lat / cell_deg) +
      1);
  const auto cols = static_cast<std::size_t>(
      std::floor(box.max_lon / cell_deg) - std::floor(box.min_lon / cell_deg) +
      1);
  return rows * cols;
}

void EraseSlot(std::vector<std::uint32_t>* v, std::uint32_t slot) {
  v->erase(std::remove(v->begin(), v->end(), slot), v->end());
}

}  // namespace

void SubscriptionRegistry::IndexEntry(std::uint32_t slot) {
  const Entry& e = slots_[slot];
  switch (e.spec.kind) {
    case SubKind::kProximity:
      prox_by_entity_[e.spec.proximity.entity].push_back(slot);
      ++prox_total_;
      return;
    case SubKind::kGeofence: {
      ++geo_total_;
      if (!e.spec.geofence.all_entities) {
        entity_geo_[e.spec.geofence.entity].push_back(slot);
        return;
      }
      ++fleet_geo_total_;
      const BoundingBox index_box =
          e.polygon.empty() ? e.box1 : e.polygon.bbox();
      const std::size_t span = CellSpan(index_box, opts_.cell_deg) +
                               CellSpan(e.box2, opts_.cell_deg);
      if (span == 0 || span > opts_.max_cells_per_box) {
        geo_catchall_.push_back(slot);
        RebuildCatchallSoa();
        return;
      }
      std::vector<std::uint64_t> cells;
      CoveredCells(index_box, &cells);
      if (!e.box2.IsEmpty()) CoveredCells(e.box2, &cells);
      for (std::uint64_t c : cells) geo_grid_[c].push_back(slot);
      return;
    }
    case SubKind::kHotspot: {
      ++hot_total_;
      const std::size_t span = CellSpan(e.box1, opts_.cell_deg) +
                               CellSpan(e.box2, opts_.cell_deg);
      if (span == 0 || span > opts_.max_cells_per_box) {
        hot_catchall_.push_back(slot);
        RebuildCatchallSoa();
        return;
      }
      std::vector<std::uint64_t> cells;
      CoveredCells(e.box1, &cells);
      if (!e.box2.IsEmpty()) CoveredCells(e.box2, &cells);
      for (std::uint64_t c : cells) hot_grid_[c].push_back(slot);
      return;
    }
  }
}

void SubscriptionRegistry::UnindexEntry(std::uint32_t slot) {
  const Entry& e = slots_[slot];
  switch (e.spec.kind) {
    case SubKind::kProximity: {
      if (auto* v = prox_by_entity_.Find(e.spec.proximity.entity)) {
        EraseSlot(v, slot);
      }
      --prox_total_;
      return;
    }
    case SubKind::kGeofence: {
      --geo_total_;
      if (!e.spec.geofence.all_entities) {
        if (auto* v = entity_geo_.Find(e.spec.geofence.entity)) {
          EraseSlot(v, slot);
        }
        return;
      }
      --fleet_geo_total_;
      if (std::find(geo_catchall_.begin(), geo_catchall_.end(), slot) !=
          geo_catchall_.end()) {
        EraseSlot(&geo_catchall_, slot);
        RebuildCatchallSoa();
        return;
      }
      const BoundingBox index_box =
          e.polygon.empty() ? e.box1 : e.polygon.bbox();
      std::vector<std::uint64_t> cells;
      CoveredCells(index_box, &cells);
      if (!e.box2.IsEmpty()) CoveredCells(e.box2, &cells);
      for (std::uint64_t c : cells) {
        if (auto* v = geo_grid_.Find(c)) EraseSlot(v, slot);
      }
      return;
    }
    case SubKind::kHotspot: {
      --hot_total_;
      if (std::find(hot_catchall_.begin(), hot_catchall_.end(), slot) !=
          hot_catchall_.end()) {
        EraseSlot(&hot_catchall_, slot);
        RebuildCatchallSoa();
        return;
      }
      std::vector<std::uint64_t> cells;
      CoveredCells(e.box1, &cells);
      if (!e.box2.IsEmpty()) CoveredCells(e.box2, &cells);
      for (std::uint64_t c : cells) {
        if (auto* v = hot_grid_.Find(c)) EraseSlot(v, slot);
      }
      return;
    }
  }
}

void SubscriptionRegistry::RebuildCatchallSoa() {
  geo_catchall_soa_.Clear();
  geo_catchall_rows_.clear();
  for (std::uint32_t slot : geo_catchall_) {
    const Entry& e = slots_[slot];
    const BoundingBox b = e.polygon.empty() ? e.box1 : e.polygon.bbox();
    geo_catchall_soa_.Add(b);
    geo_catchall_rows_.push_back(slot);
    if (!e.box2.IsEmpty()) {
      geo_catchall_soa_.Add(e.box2);
      geo_catchall_rows_.push_back(slot);
    }
  }
  hot_catchall_soa_.Clear();
  hot_catchall_rows_.clear();
  for (std::uint32_t slot : hot_catchall_) {
    const Entry& e = slots_[slot];
    hot_catchall_soa_.Add(e.box1);
    hot_catchall_rows_.push_back(slot);
    if (!e.box2.IsEmpty()) {
      hot_catchall_soa_.Add(e.box2);
      hot_catchall_rows_.push_back(slot);
    }
  }
}

// --- shared evaluation core ----------------------------------------------

bool SubscriptionRegistry::RegionContains(const Entry& e, const LatLon& p) {
  if (!e.polygon.empty()) return e.polygon.Contains(p);
  return e.box1.Contains(p) || (!e.box2.IsEmpty() && e.box2.Contains(p));
}

void SubscriptionRegistry::GeofenceStep(const Entry& e,
                                        const PositionReport& report,
                                        GeofenceState* st,
                                        std::vector<SubDelta>* out) {
  const bool in = RegionContains(e, report.position.ll());
  const TimestampMs ts = report.timestamp;
  if (in && !st->inside) {
    st->inside = true;
    st->enter_ts = ts;
    st->dwell_fired = false;
    out->push_back({e.id, DeltaKind::kEnter, report.entity_id, ts, 0.0});
  } else if (!in && st->inside) {
    st->inside = false;
    out->push_back({e.id, DeltaKind::kExit, report.entity_id, ts,
                    static_cast<double>(ts - st->enter_ts)});
    return;
  }
  if (in && e.spec.geofence.dwell_ms > 0 && !st->dwell_fired &&
      ts - st->enter_ts >= e.spec.geofence.dwell_ms) {
    st->dwell_fired = true;
    out->push_back({e.id, DeltaKind::kDwell, report.entity_id, ts,
                    static_cast<double>(ts - st->enter_ts)});
  }
}

void SubscriptionRegistry::ProximityStep(const Entry& e, const Event& event,
                                         EntityId other, ProximityState* st,
                                         std::vector<SubDelta>* out) {
  const DurationMs min_interval = e.spec.proximity.min_interval_ms;
  if (st->armed && min_interval > 0 &&
      event.time - st->last_alarm < min_interval) {
    return;
  }
  st->armed = true;
  st->last_alarm = event.time;
  double value = 0.0;
  auto it = event.attributes.find("distance_m");
  if (it == event.attributes.end()) it = event.attributes.find("cpa_m");
  if (it != event.attributes.end()) value = it->second;
  const DeltaKind kind = event.kind == EventKind::kEncounter
                             ? DeltaKind::kProximity
                             : DeltaKind::kProximityForecast;
  out->push_back({e.id, kind, other, event.time, value});
}

void SubscriptionRegistry::HotspotRoll(const Entry& e, std::int64_t epoch,
                                       double count, TimestampMs close_ts,
                                       HotspotState* st,
                                       std::vector<SubDelta>* out) {
  if (count > 0.0) {
    st->window.emplace_back(epoch, count);
    st->sum += count;
  }
  const std::int64_t horizon =
      epoch - static_cast<std::int64_t>(e.spec.hotspot.window_epochs);
  while (!st->window.empty() && st->window.front().first <= horizon) {
    st->sum -= st->window.front().second;
    st->window.pop_front();
  }
  const bool above = st->sum >= e.spec.hotspot.threshold;
  if (above != st->above) {
    st->above = above;
    out->push_back({e.id, above ? DeltaKind::kHotspotOn : DeltaKind::kHotspotOff,
                    0, close_ts, st->sum});
  }
}

// --- keyed data plane -----------------------------------------------------

void SubscriptionRegistry::EvalKeyed(std::size_t shard,
                                     const PositionReport& report,
                                     std::vector<SubDelta>* deltas,
                                     FlatHashMap<std::uint64_t, double>* counts) {
  if (!keyed_active()) return;
  ShardState& ss = shards_[shard];
  const LatLon p = report.position.ll();
  eval_counter_->Add();

  if (geo_total_ > 0) {
    std::vector<std::uint32_t>& cand = ss.cand;
    cand.clear();
    if (const auto* v = entity_geo_.Find(report.entity_id)) {
      cand.insert(cand.end(), v->begin(), v->end());
    }
    if (fleet_geo_total_ > 0) {
      if (const auto* v = geo_grid_.Find(CellKey(p.lat_deg, p.lon_deg))) {
        cand.insert(cand.end(), v->begin(), v->end());
      }
      if (const std::size_t n = geo_catchall_soa_.size(); n > 0) {
        ss.mask.resize(n);
        BboxContainsBatch(geo_catchall_soa_, p, ss.mask.data());
        for (std::size_t i = 0; i < n; ++i) {
          if (ss.mask[i]) cand.push_back(geo_catchall_rows_[i]);
        }
      }
      // Fleet-wide subs the entity is currently inside: the exit (and
      // dwell) source when the report has left the sub's index cells.
      if (auto* eng = ss.engaged.Find(report.entity_id)) {
        eng->erase(std::remove_if(eng->begin(), eng->end(),
                                  [this](std::uint32_t s) {
                                    return !slots_[s].active;
                                  }),
                   eng->end());
        cand.insert(cand.end(), eng->begin(), eng->end());
      }
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (std::uint32_t slot : cand) {
      const Entry& e = slots_[slot];
      if (!e.active) continue;
      GeofenceState& st = ss.geo_state[StateKey(slot, report.entity_id)];
      const bool was_inside = st.inside;
      GeofenceStep(e, report, &st, deltas);
      if (e.spec.geofence.all_entities && st.inside != was_inside) {
        std::vector<std::uint32_t>& eng = ss.engaged[report.entity_id];
        if (st.inside) {
          eng.push_back(slot);
        } else {
          EraseSlot(&eng, slot);
        }
      }
    }
  }

  if (hot_total_ > 0) {
    std::vector<std::uint32_t>& cand = ss.cand;
    cand.clear();
    if (const auto* v = hot_grid_.Find(CellKey(p.lat_deg, p.lon_deg))) {
      cand.insert(cand.end(), v->begin(), v->end());
    }
    if (const std::size_t n = hot_catchall_soa_.size(); n > 0) {
      ss.mask.resize(n);
      BboxContainsBatch(hot_catchall_soa_, p, ss.mask.data());
      for (std::size_t i = 0; i < n; ++i) {
        if (ss.mask[i]) cand.push_back(hot_catchall_rows_[i]);
      }
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (std::uint32_t slot : cand) {
      const Entry& e = slots_[slot];
      if (!e.active) continue;
      if (RegionContains(e, p)) (*counts)[e.id] += 1.0;
    }
  }
}

// --- barrier data plane ---------------------------------------------------

void SubscriptionRegistry::AddKeyedDeltas(std::span<const SubDelta> deltas) {
  epoch_deltas_.insert(epoch_deltas_.end(), deltas.begin(), deltas.end());
}

void SubscriptionRegistry::AddHotspotCounts(
    const FlatHashMap<std::uint64_t, double>& counts) {
  counts.ForEach([this](std::uint64_t id, double count) {
    const std::uint32_t* slot = id_to_slot_.Find(id);
    if (slot == nullptr) return;
    const Entry& e = slots_[*slot];
    if (!e.active || e.spec.kind != SubKind::kHotspot) return;
    epoch_counts_[*slot] += count;
  });
}

void SubscriptionRegistry::AddGlobalEvents(std::span<const Event> events) {
  if (prox_total_ == 0) return;
  for (const Event& ev : events) {
    if (ev.kind != EventKind::kEncounter &&
        ev.kind != EventKind::kCollisionForecast) {
      continue;
    }
    for (std::size_t i = 0; i < ev.entities.size(); ++i) {
      // A sub steps at most once per event: skip repeated entity ids so
      // this matches the oracle's first-matching-position scan.
      bool dup = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (ev.entities[j] == ev.entities[i]) dup = true;
      }
      if (dup) continue;
      const auto* subs = prox_by_entity_.Find(ev.entities[i]);
      if (subs == nullptr) continue;
      const EntityId other =
          ev.entities.size() == 2 ? ev.entities[i ^ 1] : ev.entities[i];
      for (std::uint32_t slot : *subs) {
        const Entry& e = slots_[slot];
        if (!e.active) continue;
        ProximityStep(e, ev, other, &prox_state_[slot], &epoch_deltas_);
      }
    }
  }
}

void SubscriptionRegistry::CloseEpoch(TimestampMs close_ts) {
  if (!ever_active_) return;
  DATACRON_TRACE_SPAN("sub.eval_epoch", "sub");
  const std::int64_t epoch = epochs_closed_++;

  if (hot_total_ > 0 || !hot_live_.empty()) {
    // Roll every hotspot window that was touched this epoch or is still
    // live (nonempty window / above threshold), ascending slot order.
    std::vector<std::uint32_t> roll(hot_live_.begin(), hot_live_.end());
    epoch_counts_.ForEach([&roll](std::uint32_t slot, double) {
      roll.push_back(slot);
    });
    std::sort(roll.begin(), roll.end());
    roll.erase(std::unique(roll.begin(), roll.end()), roll.end());
    for (std::uint32_t slot : roll) {
      const Entry& e = slots_[slot];
      if (!e.active) {
        hot_live_.erase(slot);
        continue;
      }
      const double* c = epoch_counts_.Find(slot);
      HotspotState& st = hot_state_[slot];
      HotspotRoll(e, epoch, c == nullptr ? 0.0 : *c, close_ts, &st,
                  &epoch_deltas_);
      if (st.window.empty() && !st.above) {
        hot_live_.erase(slot);
      } else {
        hot_live_.insert(slot);
      }
    }
  }

  std::vector<DeltaBatch> batches;
  CoalesceEpoch(epoch, &epoch_deltas_, &batches);
  epoch_deltas_.clear();
  epoch_counts_.Clear();
  for (DeltaBatch& b : batches) {
    deltas_counter_->Add(b.deltas.size());
    batches_counter_->Add();
    if (sink_) {
      sink_(b);
    } else {
      pending_.push_back(std::move(b));
    }
  }
}

void SubscriptionRegistry::CoalesceEpoch(std::int64_t epoch,
                                         std::vector<SubDelta>* deltas,
                                         std::vector<DeltaBatch>* out) const {
  std::stable_sort(deltas->begin(), deltas->end(),
                   [](const SubDelta& a, const SubDelta& b) {
                     return a.sub < b.sub;
                   });
  DeltaBatch* open = nullptr;
  SubscriptionId open_sub = 0;
  SubscriberId open_client = 0;
  // Deltas are sorted by subscription id and ids ascend in registration
  // order, so grouping runs of equal subscriber ids would interleave;
  // instead bucket into per-subscriber batches kept sorted by subscriber.
  std::vector<DeltaBatch> buckets;
  auto bucket_of = [&](SubscriberId client) -> DeltaBatch* {
    auto it = std::lower_bound(buckets.begin(), buckets.end(), client,
                               [](const DeltaBatch& b, SubscriberId c) {
                                 return b.subscriber < c;
                               });
    if (it == buckets.end() || it->subscriber != client) {
      DeltaBatch b;
      b.subscriber = client;
      b.epoch = epoch;
      it = buckets.insert(it, std::move(b));
    }
    return &*it;
  };
  for (const SubDelta& d : *deltas) {
    if (open == nullptr || d.sub != open_sub) {
      const Entry* e = FindEntry(d.sub);
      if (e == nullptr || !e->active) {
        open = nullptr;
        open_sub = d.sub;
        continue;
      }
      open_sub = d.sub;
      open_client = e->subscriber;
      open = bucket_of(open_client);
    }
    if (open != nullptr) open->deltas.push_back(d);
  }
  for (DeltaBatch& b : buckets) out->push_back(std::move(b));
}

std::vector<DeltaBatch> SubscriptionRegistry::TakeBatches() {
  std::vector<DeltaBatch> out;
  out.swap(pending_);
  return out;
}

}  // namespace datacron
