#ifndef DATACRON_SUB_SUBSCRIPTION_H_
#define DATACRON_SUB_SUBSCRIPTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_utils.h"
#include "geo/bbox.h"
#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Globally unique standing-query id, assigned by the registry (or, in a
/// cluster, by the coordinator) in registration order and never reused.
using SubscriptionId = std::uint64_t;

/// Identifies the client connection a subscription's deltas are pushed
/// to; one subscriber may hold many subscriptions.
using SubscriberId = std::uint32_t;

/// The three standing-query families of the subscription tier (ROADMAP
/// "millions of users" front end): cheap per-entity predicates evaluated
/// incrementally inside the engine's shards, crossing the epoch barrier
/// only when they fire.
enum class SubKind : std::uint8_t {
  /// Enter/exit/dwell watch on a bbox or polygon, for one entity or the
  /// whole fleet.
  kGeofence = 0,
  /// Alert whenever a named entity is party to a proximity encounter or
  /// collision forecast, rate-limited by a per-subscription watermark.
  kProximity,
  /// Rolling report-density watch over a bbox: fires when the density
  /// over the trailing window of epochs crosses the threshold (both
  /// directions).
  kHotspot,
};

const char* SubKindName(SubKind kind);

/// Geofence standing query. `bbox` with min_lon > max_lon is interpreted
/// as crossing the antimeridian and is split into two plain boxes at
/// registration (BoundingBox itself never wraps). When `polygon` has >= 3
/// vertices it replaces the bbox as the containment test (even-odd rule,
/// no antimeridian handling); the bbox is then ignored.
struct GeofenceSpec {
  BoundingBox bbox;
  std::vector<LatLon> polygon;
  /// Watched entity; ignored when all_entities is set.
  EntityId entity = 0;
  bool all_entities = false;
  /// > 0 arms a one-shot dwell alarm per visit: fires when the entity has
  /// been continuously inside for at least this long.
  DurationMs dwell_ms = 0;

  bool operator==(const GeofenceSpec&) const = default;
};

/// Proximity standing query: forward every kEncounter / kCollisionForecast
/// the global CEP stage emits that involves `entity`, suppressing repeats
/// closer than `min_interval_ms` to the last forwarded alarm.
struct ProximitySpec {
  EntityId entity = 0;
  DurationMs min_interval_ms = 0;

  bool operator==(const ProximitySpec&) const = default;
};

/// Hotspot-threshold standing query: the number of position reports
/// landing in `bbox` over the trailing `window_epochs` epochs, compared
/// against `threshold` at every epoch close. Emits kHotspotOn on the
/// rising crossing and kHotspotOff on the falling one.
struct HotspotSpec {
  BoundingBox bbox;
  double threshold = 1.0;
  std::uint32_t window_epochs = 1;

  bool operator==(const HotspotSpec&) const = default;
};

/// One standing query as a client registers it. Exactly one of the three
/// payloads is meaningful, selected by `kind`.
struct SubscriptionSpec {
  SubKind kind = SubKind::kGeofence;
  GeofenceSpec geofence;
  ProximitySpec proximity;
  HotspotSpec hotspot;

  bool operator==(const SubscriptionSpec&) const = default;

  static SubscriptionSpec Geofence(GeofenceSpec g) {
    SubscriptionSpec s;
    s.kind = SubKind::kGeofence;
    s.geofence = std::move(g);
    return s;
  }
  static SubscriptionSpec Proximity(ProximitySpec p) {
    SubscriptionSpec s;
    s.kind = SubKind::kProximity;
    s.proximity = p;
    return s;
  }
  static SubscriptionSpec Hotspot(HotspotSpec h) {
    SubscriptionSpec s;
    s.kind = SubKind::kHotspot;
    s.hotspot = h;
    return s;
  }
};

/// Validates a spec the way the registry (and the wire decoder) do:
/// geofence needs a non-empty region (a wrap bbox counts), polygon vertex
/// counts are bounded, hotspot needs a positive threshold and window.
Status ValidateSpec(const SubscriptionSpec& spec);

/// Hard cap on geofence polygon vertices, enforced at registration and by
/// the wire decoder (an inflated count is corruption, not a request).
inline constexpr std::size_t kMaxGeofenceVertices = 4096;

/// Hard cap on an encoded Subscribe predicate payload. Zero-length or
/// larger-than-this payloads are rejected with ParseError by the codec.
inline constexpr std::size_t kMaxSubPredicateBytes = 64 * 1024;

/// What changed for one subscription. Deltas are the only thing that
/// crosses the epoch barrier: a subscription whose state did not
/// transition this epoch contributes nothing.
enum class DeltaKind : std::uint8_t {
  kEnter = 0,          // geofence: outside -> inside
  kExit,               // geofence: inside -> outside (value = ms inside)
  kDwell,              // geofence: continuously inside >= dwell_ms
  kProximity,          // forwarded kEncounter (value = distance_m)
  kProximityForecast,  // forwarded kCollisionForecast (value = cpa_m)
  kHotspotOn,          // rolling density crossed threshold upward
  kHotspotOff,         // rolling density crossed threshold downward
};

const char* DeltaKindName(DeltaKind kind);

/// One state transition of one subscription. 29 bytes on the wire.
struct SubDelta {
  SubscriptionId sub = 0;
  DeltaKind kind = DeltaKind::kEnter;
  /// Triggering entity (the watched entity's counterpart for proximity
  /// kinds; 0 for hotspot kinds).
  EntityId entity = 0;
  TimestampMs time = 0;
  /// Kind-specific magnitude: ms inside for kExit/kDwell, meters for the
  /// proximity kinds, window density for the hotspot kinds.
  double value = 0.0;

  bool operator==(const SubDelta&) const = default;

  std::string ToString() const;
};

/// One epoch's coalesced deltas for one subscriber — the unit pushed over
/// the wire as a kDeltaBatch frame. `epoch` counts epoch closes since the
/// registry started evaluating (serial Ingest closes an epoch per report).
struct DeltaBatch {
  SubscriberId subscriber = 0;
  std::int64_t epoch = 0;
  std::vector<SubDelta> deltas;

  bool operator==(const DeltaBatch&) const = default;
};

}  // namespace datacron

#endif  // DATACRON_SUB_SUBSCRIPTION_H_
