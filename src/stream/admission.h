#ifndef DATACRON_STREAM_ADMISSION_H_
#define DATACRON_STREAM_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace datacron {

/// What a bounded ingest buffer does when a push source outruns the
/// engine. IngestBatch already bounds in-flight *epochs*; this surfaces
/// that bound to live sources (an NMEA feed cannot grow an input span
/// forever — it must either stall the producer or shed load).
enum class AdmissionPolicy : std::uint8_t {
  /// Producer blocks in Push() until the consumer frees capacity.
  /// Lossless; backpressure propagates upstream.
  kBlock = 0,
  /// Push() always succeeds immediately; the *oldest* buffered item is
  /// evicted to make room (stale positions are worth the least). Drops
  /// are counted, never silent.
  kDropOldest,
  /// Push() always succeeds immediately; eviction is fair *across keys*.
  /// Each live key gets a buffered-item budget of capacity / live_keys;
  /// the victim is the oldest item of the pushing key when that key is
  /// over budget, otherwise the oldest item of the most-buffered key — a
  /// chatty entity sheds its own backlog instead of flushing quiet
  /// entities out of the queue. Requires Options::drop_key (falls back to
  /// kDropOldest eviction without one).
  kDropFair,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

/// Bounded producer/consumer buffer between a push source and the engine
/// ingest loop. Thread-safe: any number of producers call Push, one (or
/// more) consumers call PopBatch. Capacity should be the engine's
/// in-flight window (epoch_size * max_epochs_in_flight) so the admission
/// bound and the runtime's epoch bound are the same knob — see
/// DatacronEngine::NewAdmissionQueue().
template <typename T>
class AdmissionQueue {
 public:
  struct Options {
    std::size_t capacity = 4096;
    AdmissionPolicy policy = AdmissionPolicy::kBlock;
    /// When set, kDropOldest evictions are additionally counted per key
    /// (the engine keys by entity id) so load shedding is attributable —
    /// a chatty entity evicting a quiet one's reports shows up in
    /// DropsByKey() instead of disappearing silently.
    std::function<std::uint64_t(const T&)> drop_key;
  };

  explicit AdmissionQueue(Options opts)
      : opts_(std::move(opts)),
        dropped_counter_(
            obs::MetricsRegistry::Global().counter("admission.dropped")) {
    if (opts_.capacity == 0) opts_.capacity = 1;
    fair_ = opts_.policy == AdmissionPolicy::kDropFair &&
            static_cast<bool>(opts_.drop_key);
  }

  /// Admits one item under the queue's policy. Returns false only when
  /// the queue is closed (the item is discarded and not counted dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (opts_.policy == AdmissionPolicy::kBlock) {
      not_full_.wait(lk, [this] {
        return closed_ || items_.size() < opts_.capacity;
      });
      if (closed_) return false;
    } else {
      if (closed_) return false;
      const std::uint64_t push_key = fair_ ? opts_.drop_key(item) : 0;
      while (items_.size() >= opts_.capacity) {
        const std::size_t victim = fair_ ? FairVictim(push_key) : 0;
        if (opts_.drop_key) {
          ++drops_by_key_[opts_.drop_key(items_[victim])];
        }
        if (fair_) {
          DecLive(keys_[victim]);
          keys_.erase(keys_.begin() +
                      static_cast<std::ptrdiff_t>(victim));
        }
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(victim));
        ++dropped_;
        dropped_counter_->Add();
      }
      if (fair_) {
        keys_.push_back(push_key);
        ++live_by_key_[push_key];
      }
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pops up to `max_items` admitted items in arrival order. Blocks until
  /// at least one item is available or the queue is closed; an empty
  /// result means closed-and-drained (end of stream).
  std::vector<T> PopBatch(std::size_t max_items) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [this] { return closed_ || !items_.empty(); });
    std::vector<T> out;
    const std::size_t n =
        items_.size() < max_items ? items_.size() : max_items;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      if (fair_) {
        DecLive(keys_.front());
        keys_.pop_front();
      }
    }
    not_full_.notify_all();
    return out;
  }

  /// Ends the stream: blocked producers return false, consumers drain the
  /// remaining items and then see empty batches.
  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Items evicted by kDropOldest so far (always 0 under kBlock).
  std::size_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }

  /// Per-key eviction counts (ascending key), empty unless Options::
  /// drop_key was set. The engine surfaces these in MetricsReport().
  std::vector<std::pair<std::uint64_t, std::size_t>> DropsByKey() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {drops_by_key_.begin(), drops_by_key_.end()};
  }

  /// Currently buffered items (<= capacity at all times).
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return opts_.capacity; }
  AdmissionPolicy policy() const { return opts_.policy; }

 private:
  /// kDropFair victim: the index (in arrival order) of the oldest item of
  /// the key to shed. The pushing key sheds itself once it holds at least
  /// its fair share (capacity / live keys); otherwise the most-buffered
  /// key sheds. Ties break toward the smallest key — deterministic.
  std::size_t FairVictim(std::uint64_t push_key) const {
    const std::size_t live =
        live_by_key_.empty() ? 1 : live_by_key_.size();
    const std::size_t budget =
        opts_.capacity / live > 0 ? opts_.capacity / live : 1;
    std::uint64_t victim_key = push_key;
    auto self = live_by_key_.find(push_key);
    if (self == live_by_key_.end() || self->second < budget) {
      std::size_t most = 0;
      for (const auto& [key, count] : live_by_key_) {
        if (count > most) {
          most = count;
          victim_key = key;
        }
      }
    }
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == victim_key) return i;
    }
    return 0;
  }

  void DecLive(std::uint64_t key) {
    auto it = live_by_key_.find(key);
    if (it == live_by_key_.end()) return;
    if (--it->second == 0) live_by_key_.erase(it);
  }

  Options opts_;
  bool fair_ = false;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  /// Arrival-order keys aligned with items_, plus live per-key counts;
  /// maintained only under kDropFair with a drop_key.
  std::deque<std::uint64_t> keys_;
  std::map<std::uint64_t, std::size_t> live_by_key_;
  std::size_t dropped_ = 0;
  std::map<std::uint64_t, std::size_t> drops_by_key_;
  obs::Counter* dropped_counter_;
  bool closed_ = false;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_ADMISSION_H_
