#ifndef DATACRON_STREAM_EPOCH_H_
#define DATACRON_STREAM_EPOCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace datacron {

/// The routing/watermark contract shared by the in-process ShardedRuntime
/// and the distributed cluster runtime (cluster/coordinator): input is cut
/// into *epochs* (contiguous ranges), every item of an epoch is routed by
/// key to one of n partitions, and the epoch may only be merged (global
/// stage / coordinator absorb) once every partition's watermark has passed
/// it. Keeping the contract in one place guarantees the two runtimes
/// agree on what "deterministic at any partition count" means.

/// Per-partition index lists of one epoch: by_part[p] holds the indices
/// (relative to the epoch's first item) of the items partition p must
/// process, in input order.
struct EpochRouting {
  std::vector<std::vector<std::uint32_t>> by_part;

  /// Routes `items` across `num_parts` partitions: item i goes to
  /// key(items[i]) % num_parts. Every partition gets an entry (possibly
  /// empty) so its watermark can advance past the epoch.
  template <typename In, typename KeyFn>
  static EpochRouting Build(std::span<const In> items,
                            std::size_t num_parts, KeyFn&& key) {
    EpochRouting r;
    r.by_part.resize(num_parts);
    for (std::size_t i = 0; i < items.size(); ++i) {
      r.by_part[key(items[i]) % num_parts].push_back(
          static_cast<std::uint32_t>(i));
    }
    return r;
  }
};

/// Tracks the per-partition epoch watermarks behind the merge barrier.
/// watermark(p) == e means partition p has finished every epoch <= e.
/// Not internally synchronized: the in-process runtime updates it under
/// its own lock, the cluster coordinator from its single receive loop.
class EpochWatermarks {
 public:
  static constexpr std::int64_t kNone = -1;

  explicit EpochWatermarks(std::size_t num_parts)
      : marks_(num_parts, kNone) {}

  std::size_t num_parts() const { return marks_.size(); }
  std::int64_t watermark(std::size_t part) const { return marks_[part]; }

  /// Advances partition `part` to `epoch`. Watermarks never move
  /// backwards: a stale update (epoch lower than the current mark) is
  /// ignored, so redeliveries cannot re-open a released barrier.
  void Advance(std::size_t part, std::int64_t epoch) {
    if (epoch > marks_[part]) marks_[part] = epoch;
  }

  /// True once every partition's watermark has reached `epoch` — the
  /// barrier condition for merging that epoch.
  bool AllPassed(std::int64_t epoch) const {
    for (const std::int64_t w : marks_) {
      if (w < epoch) return false;
    }
    return true;
  }

 private:
  std::vector<std::int64_t> marks_;
};

/// Cuts [0, n) into epochs of at most `epoch_size` items and invokes
/// fn(epoch_id, pos, len) for each, in order. Both runtimes derive their
/// epoch boundaries from this so an epoch id means the same input range
/// everywhere.
template <typename Fn>
void ForEachEpoch(std::size_t n, std::size_t epoch_size, Fn&& fn) {
  std::int64_t id = 0;
  for (std::size_t pos = 0; pos < n; pos += epoch_size) {
    const std::size_t len = epoch_size < n - pos ? epoch_size : n - pos;
    fn(id++, pos, len);
  }
}

}  // namespace datacron

#endif  // DATACRON_STREAM_EPOCH_H_
