#ifndef DATACRON_STREAM_OPERATOR_H_
#define DATACRON_STREAM_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time_utils.h"

namespace datacron {

/// Execution placement of a stateful streaming operator in the sharded
/// runtime (stream/sharded_runtime.h):
///
///  - kKeyed: all state is partitioned by entity, so the operator can be
///    instantiated once per shard and each instance only ever sees the
///    reports of the entities hashed to its shard — no locks, and output
///    identical to a single instance seeing the whole stream.
///  - kGlobal: the operator's state spans entities (pair proximity, sector
///    occupancy, grid density); it must be fed the full stream in input
///    order from the sequential epoch-merge stage.
enum class StageKind : std::uint8_t { kKeyed = 0, kGlobal };

/// Per-operator counters; each operator owns one and the pipeline runner
/// aggregates them. Latency is measured per Process() call in nanoseconds.
///
/// The counters are deliberately *mergeable* (Merge below): anything that
/// runs an operator from more than one thread — the sharded runtime's
/// per-shard keyed copies, staged pipelines — gives every thread its own
/// operator instance and folds the metrics on read, instead of mutating a
/// shared counter across threads.
struct OperatorMetrics {
  std::string name;
  std::size_t items_in = 0;
  std::size_t items_out = 0;
  RunningStats process_nanos;
  /// Same samples as process_nanos, log-bucketed for p50/p99 readout.
  LogHistogram latency_ns;

  double SelectivityPct() const {
    return items_in == 0 ? 0.0 : 100.0 * items_out / items_in;
  }

  bool operator==(const OperatorMetrics&) const = default;

  /// Folds another instance's counters into this one (per-shard copies of
  /// a keyed operator, per-thread copies of a pipeline stage).
  void Merge(const OperatorMetrics& other) {
    if (name.empty()) name = other.name;
    items_in += other.items_in;
    items_out += other.items_out;
    process_nanos.Merge(other.process_nanos);
    latency_ns.Merge(other.latency_ns);
  }
};

/// A streaming operator: consumes one In, emits zero or more Out. These are
/// the paper's "primitive operators applied directly on the data streams".
/// Stateless operators (map/filter) ignore Flush(); windowed/stateful
/// operators emit pending state there.
template <typename In, typename Out>
class Operator {
 public:
  explicit Operator(std::string name) { metrics_.name = std::move(name); }
  virtual ~Operator() = default;

  /// Processes one element, appending any outputs to `out`.
  virtual void Process(const In& item, std::vector<Out>* out) = 0;

  /// Called once at end-of-stream to release buffered state.
  virtual void Flush(std::vector<Out>* out) { (void)out; }

  /// Process() wrapper that maintains metrics. Pipelines call this.
  void ProcessCounted(const In& item, std::vector<Out>* out) {
    const std::size_t before = out->size();
    const std::int64_t t0 = MonotonicNanos();
    Process(item, out);
    const double dt = static_cast<double>(MonotonicNanos() - t0);
    metrics_.process_nanos.Add(dt);
    metrics_.latency_ns.Add(dt);
    ++metrics_.items_in;
    metrics_.items_out += out->size() - before;
  }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  /// Metrics accounting for operators that consume whole batches outside
  /// ProcessCounted (the epoch-batched global CEP path): `items_in`
  /// elements in, `items_out` emitted, one latency sample covering the
  /// whole batch. Keeps items_in/out comparable with a per-item run while
  /// making explicit that the latency distribution is per batch.
  void CountBatch(std::size_t items_in, std::size_t items_out,
                  std::int64_t nanos) {
    const double dt = static_cast<double>(nanos);
    metrics_.process_nanos.Add(dt);
    metrics_.latency_ns.Add(dt);
    metrics_.items_in += items_in;
    metrics_.items_out += items_out;
  }

  OperatorMetrics metrics_;
};

/// 1:1 transformation from a callable.
template <typename In, typename Out>
class MapOperator : public Operator<In, Out> {
 public:
  using Fn = std::function<Out(const In&)>;
  MapOperator(std::string name, Fn fn)
      : Operator<In, Out>(std::move(name)), fn_(std::move(fn)) {}

  void Process(const In& item, std::vector<Out>* out) override {
    out->push_back(fn_(item));
  }

 private:
  Fn fn_;
};

/// Keeps elements for which the predicate holds.
template <typename T>
class FilterOperator : public Operator<T, T> {
 public:
  using Pred = std::function<bool(const T&)>;
  FilterOperator(std::string name, Pred pred)
      : Operator<T, T>(std::move(name)), pred_(std::move(pred)) {}

  void Process(const T& item, std::vector<T>* out) override {
    if (pred_(item)) out->push_back(item);
  }

 private:
  Pred pred_;
};

/// 1:N transformation from a callable that appends to a vector.
template <typename In, typename Out>
class FlatMapOperator : public Operator<In, Out> {
 public:
  using Fn = std::function<void(const In&, std::vector<Out>*)>;
  FlatMapOperator(std::string name, Fn fn)
      : Operator<In, Out>(std::move(name)), fn_(std::move(fn)) {}

  void Process(const In& item, std::vector<Out>* out) override {
    fn_(item, out);
  }

 private:
  Fn fn_;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_OPERATOR_H_
