#ifndef DATACRON_STREAM_OPERATOR_H_
#define DATACRON_STREAM_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time_utils.h"

namespace datacron {

/// Per-operator counters; each operator owns one and the pipeline runner
/// aggregates them. Latency is measured per Process() call in nanoseconds.
struct OperatorMetrics {
  std::string name;
  std::size_t items_in = 0;
  std::size_t items_out = 0;
  RunningStats process_nanos;

  double SelectivityPct() const {
    return items_in == 0 ? 0.0 : 100.0 * items_out / items_in;
  }
};

/// A streaming operator: consumes one In, emits zero or more Out. These are
/// the paper's "primitive operators applied directly on the data streams".
/// Stateless operators (map/filter) ignore Flush(); windowed/stateful
/// operators emit pending state there.
template <typename In, typename Out>
class Operator {
 public:
  explicit Operator(std::string name) { metrics_.name = std::move(name); }
  virtual ~Operator() = default;

  /// Processes one element, appending any outputs to `out`.
  virtual void Process(const In& item, std::vector<Out>* out) = 0;

  /// Called once at end-of-stream to release buffered state.
  virtual void Flush(std::vector<Out>* out) { (void)out; }

  /// Process() wrapper that maintains metrics. Pipelines call this.
  void ProcessCounted(const In& item, std::vector<Out>* out) {
    const std::size_t before = out->size();
    const std::int64_t t0 = MonotonicNanos();
    Process(item, out);
    metrics_.process_nanos.Add(
        static_cast<double>(MonotonicNanos() - t0));
    ++metrics_.items_in;
    metrics_.items_out += out->size() - before;
  }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  OperatorMetrics metrics_;
};

/// 1:1 transformation from a callable.
template <typename In, typename Out>
class MapOperator : public Operator<In, Out> {
 public:
  using Fn = std::function<Out(const In&)>;
  MapOperator(std::string name, Fn fn)
      : Operator<In, Out>(std::move(name)), fn_(std::move(fn)) {}

  void Process(const In& item, std::vector<Out>* out) override {
    out->push_back(fn_(item));
  }

 private:
  Fn fn_;
};

/// Keeps elements for which the predicate holds.
template <typename T>
class FilterOperator : public Operator<T, T> {
 public:
  using Pred = std::function<bool(const T&)>;
  FilterOperator(std::string name, Pred pred)
      : Operator<T, T>(std::move(name)), pred_(std::move(pred)) {}

  void Process(const T& item, std::vector<T>* out) override {
    if (pred_(item)) out->push_back(item);
  }

 private:
  Pred pred_;
};

/// 1:N transformation from a callable that appends to a vector.
template <typename In, typename Out>
class FlatMapOperator : public Operator<In, Out> {
 public:
  using Fn = std::function<void(const In&, std::vector<Out>*)>;
  FlatMapOperator(std::string name, Fn fn)
      : Operator<In, Out>(std::move(name)), fn_(std::move(fn)) {}

  void Process(const In& item, std::vector<Out>* out) override {
    fn_(item, out);
  }

 private:
  Fn fn_;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_OPERATOR_H_
