#ifndef DATACRON_STREAM_SHARDED_RUNTIME_H_
#define DATACRON_STREAM_SHARDED_RUNTIME_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/epoch.h"

namespace datacron {

/// Default per-shard-epoch accumulator for callers whose keyed stage
/// carries everything through per-item slots.
struct NoShardArena {};

/// Key-partitioned streaming runtime: the execution layer behind
/// DatacronEngine::IngestBatch.
///
/// The input is cut into *epochs* (contiguous input ranges). Each item is
/// routed by a caller-supplied key to one of `num_shards` logical shards;
/// each shard runs the caller's *keyed* stage over its items with no locks
/// (keyed state is partitioned, so shards never share mutable state). The
/// keyed stage writes per-item results into a `Slot` and may additionally
/// accumulate bulk output — contiguous buffers, a term batch, side tables
/// — in its shard's per-epoch `Arena`. One arena exists per (shard,
/// epoch): it is the unit of shard→coordinator delivery, so every
/// coordination cost the caller moves from the slot into the arena is
/// paid once per shard-epoch instead of once per item. The coordinator
/// runs the *global* stage over every epoch in input order once all
/// shards have passed that epoch's watermark, receiving the items, the
/// slots, and all shard arenas of the epoch together.
///
/// Determinism: keyed stages see exactly the per-key subsequence of the
/// input (per-shard mailboxes are FIFO and drained by at most one task at
/// a time), and the global stage consumes epochs — and the items inside
/// them — in input order. Outputs are therefore byte-identical to a serial
/// run for any shard count, epoch size, or pool size.
///
/// Scheduling: shards do not own threads. Each mailbox is drained by at
/// most one transient ThreadPool task (the `draining` flag); the task
/// exits when its mailbox is empty and is re-posted on the next delivery.
/// Because no task ever blocks waiting for input, any number of shards can
/// share a pool of any size — including a single worker — without
/// deadlock. Bounded in-flight epochs (`max_epochs_in_flight`) give
/// backpressure: the coordinator stops routing until the oldest epoch has
/// been fully processed and consumed.
template <typename In, typename Slot, typename Arena = NoShardArena>
class ShardedRuntime {
 public:
  struct Options {
    std::size_t num_shards = 1;
    /// Items per epoch: the batch granularity of the global-stage barrier.
    std::size_t epoch_size = 1024;
    /// Epochs the coordinator may route ahead of the global stage.
    std::size_t max_epochs_in_flight = 4;
  };

  explicit ShardedRuntime(Options opts)
      : opts_(opts),
        enqueue_counter_(
            obs::MetricsRegistry::Global().counter("shard.mailbox_enqueues")),
        epoch_counter_(obs::MetricsRegistry::Global().counter("shard.epochs")),
        barrier_wait_hist_(
            obs::MetricsRegistry::Global().histogram("shard.barrier_wait_ns")) {
    if (opts_.num_shards == 0) opts_.num_shards = 1;
    if (opts_.epoch_size == 0) opts_.epoch_size = 1;
    if (opts_.max_epochs_in_flight == 0) opts_.max_epochs_in_flight = 1;
  }

  std::size_t num_shards() const { return opts_.num_shards; }

  /// Runs the full dataflow over `input`.
  ///
  ///   key(item)                          -> std::uint64_t (shard = key % n)
  ///   keyed(shard, item, &slot, &arena)  -> fills the item's slot and may
  ///                                         append to its shard's epoch
  ///                                         arena
  ///   global(items, slots, arenas)       -> one epoch, input order, with
  ///                                         all num_shards arenas, on the
  ///                                         coordinator thread
  ///
  /// With a null pool or a single shard the same dataflow runs inline on
  /// the calling thread (still routed by key and still accumulating into
  /// per-epoch arenas, so keyed state and output batching are identical
  /// either way).
  template <typename KeyFn, typename KeyedFn, typename GlobalFn>
  void Run(std::span<const In> input, ThreadPool* pool, KeyFn&& key,
           KeyedFn&& keyed, GlobalFn&& global) {
    if (pool == nullptr || opts_.num_shards <= 1) {
      RunSerial(input, key, keyed, global);
      return;
    }
    RunSharded(input, pool, key, keyed, global);
  }

 private:
  /// One contiguous input range plus its routing table, output slots, and
  /// per-shard arenas. Lives in the coordinator's ring (std::deque keeps
  /// addresses stable while shards hold pointers to in-flight epochs).
  /// The routing table is the shared EpochRouting contract
  /// (stream/epoch.h) that the cluster coordinator also builds per epoch.
  struct Epoch {
    std::int64_t id = 0;
    std::span<const In> items;
    std::vector<Slot> slots;
    std::vector<Arena> arenas;
    EpochRouting routing;
  };

  struct Mailbox {
    std::mutex mu;
    std::deque<Epoch*> epochs;
    /// True while a pool task owns this mailbox; guarantees FIFO drain.
    bool draining = false;
  };

  struct RunState {
    explicit RunState(std::size_t n) : mailboxes(n), watermarks(n) {}

    std::vector<Mailbox> mailboxes;
    std::mutex mu;
    std::condition_variable cv;
    /// Per-shard epoch watermarks behind the merge barrier; updated and
    /// read under `mu`.
    EpochWatermarks watermarks;
    std::size_t active_drains = 0;
    std::exception_ptr error;
  };

  template <typename KeyFn, typename KeyedFn, typename GlobalFn>
  void RunSerial(std::span<const In> input, KeyFn& key, KeyedFn& keyed,
                 GlobalFn& global) {
    const std::size_t n = opts_.num_shards;
    std::int64_t epoch = 0;
    for (std::size_t pos = 0; pos < input.size();
         pos += opts_.epoch_size, ++epoch) {
      const std::size_t len =
          std::min(opts_.epoch_size, input.size() - pos);
      const std::span<const In> items = input.subspan(pos, len);
      std::vector<Slot> slots(len);
      std::vector<Arena> arenas(n);
      obs::ScopedTraceContext trace_ctx(epoch);
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t shard =
            static_cast<std::size_t>(key(items[i]) % n);
        keyed(shard, items[i], &slots[i], &arenas[shard]);
      }
      DATACRON_TRACE_SPAN("shard.global", "shard");
      global(items, std::span<Slot>(slots), std::span<Arena>(arenas));
    }
  }

  template <typename KeyFn, typename KeyedFn, typename GlobalFn>
  void RunSharded(std::span<const In> input, ThreadPool* pool, KeyFn& key,
                  KeyedFn& keyed, GlobalFn& global) {
    const std::size_t n = opts_.num_shards;
    RunState st(n);

    // Drains one shard's mailbox until empty. Runs as a pool task; at most
    // one instance per mailbox exists at any time. Keyed-stage exceptions
    // are recorded once and the remaining epochs pass through unprocessed
    // so watermarks keep advancing and the coordinator cannot hang.
    auto drain = [&st, &keyed](std::size_t shard) {
      Mailbox& mb = st.mailboxes[shard];
      for (;;) {
        Epoch* e = nullptr;
        {
          std::lock_guard<std::mutex> lk(mb.mu);
          if (mb.epochs.empty()) {
            mb.draining = false;
            break;
          }
          e = mb.epochs.front();
          mb.epochs.pop_front();
        }
        bool failed;
        {
          std::lock_guard<std::mutex> lk(st.mu);
          failed = st.error != nullptr;
        }
        if (!failed) {
          try {
            obs::ScopedTraceContext trace_ctx(
                e->id, static_cast<std::int32_t>(shard));
            obs::TraceSpan span("shard.drain", "shard");
            Arena* arena = &e->arenas[shard];
            for (std::uint32_t idx : e->routing.by_part[shard]) {
              keyed(shard, e->items[idx], &e->slots[idx], arena);
            }
          } catch (...) {
            std::lock_guard<std::mutex> lk(st.mu);
            if (!st.error) st.error = std::current_exception();
          }
        }
        {
          std::lock_guard<std::mutex> lk(st.mu);
          st.watermarks.Advance(shard, e->id);
        }
        st.cv.notify_all();
      }
      {
        // Notify under the lock: the coordinator destroys RunState as
        // soon as it observes active_drains == 0, so the wakeup must not
        // touch the condition variable after the mutex is released.
        std::lock_guard<std::mutex> lk(st.mu);
        --st.active_drains;
        st.cv.notify_all();
      }
    };

    auto post = [this, &st, &drain, pool](std::size_t shard, Epoch* e) {
      enqueue_counter_->Add();
      Mailbox& mb = st.mailboxes[shard];
      bool schedule = false;
      {
        std::lock_guard<std::mutex> lk(mb.mu);
        mb.epochs.push_back(e);
        if (!mb.draining) {
          mb.draining = true;
          schedule = true;
        }
      }
      if (schedule) {
        {
          std::lock_guard<std::mutex> lk(st.mu);
          ++st.active_drains;
        }
        // The future is discarded: drain() catches everything itself.
        pool->Submit([&drain, shard] { drain(shard); });
      }
    };

    std::deque<Epoch> ring;

    auto front_done = [&]() {  // st.mu must be held
      return st.watermarks.AllPassed(ring.front().id);
    };

    // Runs the global stage over the oldest epoch and retires it. When
    // `blocking`, waits for every shard's watermark to pass it first.
    auto consume_front = [&](bool blocking) -> bool {
      {
        std::unique_lock<std::mutex> lk(st.mu);
        if (blocking) {
          if (!front_done()) {
            obs::TraceSpan span("shard.barrier", "shard");
            span.set_epoch(ring.front().id);
            const std::int64_t wait_start = MonotonicNanos();
            st.cv.wait(lk, front_done);
            barrier_wait_hist_->Observe(
                static_cast<double>(MonotonicNanos() - wait_start));
          }
        } else if (!front_done()) {
          return false;
        }
      }
      Epoch& e = ring.front();
      bool failed;
      {
        std::lock_guard<std::mutex> lk(st.mu);
        failed = st.error != nullptr;
      }
      if (!failed) {
        try {
          obs::ScopedTraceContext trace_ctx(e.id);
          DATACRON_TRACE_SPAN("shard.global", "shard");
          global(e.items, std::span<Slot>(e.slots),
                 std::span<Arena>(e.arenas));
        } catch (...) {
          std::lock_guard<std::mutex> lk(st.mu);
          if (!st.error) st.error = std::current_exception();
        }
      }
      ring.pop_front();
      return true;
    };

    ForEachEpoch(input.size(), opts_.epoch_size, [&](std::int64_t id,
                                                     std::size_t pos,
                                                     std::size_t len) {
      while (ring.size() >= opts_.max_epochs_in_flight) {
        consume_front(/*blocking=*/true);
      }
      while (!ring.empty() && consume_front(/*blocking=*/false)) {
      }

      epoch_counter_->Add();
      ring.emplace_back();
      Epoch& e = ring.back();
      e.id = id;
      e.items = input.subspan(pos, len);
      e.slots.resize(len);
      e.arenas = std::vector<Arena>(n);
      {
        obs::TraceSpan span("shard.route", "shard");
        span.set_epoch(id);
        e.routing = EpochRouting::Build(e.items, n, key);
      }
      // Every shard receives every epoch (possibly with an empty index
      // list) so its watermark advances and the barrier can release. This
      // is the only mailbox traffic: one message per shard per epoch,
      // never per item.
      for (std::size_t s = 0; s < n; ++s) post(s, &e);
    });

    while (!ring.empty()) consume_front(/*blocking=*/true);

    // Epochs are all retired, but the last drain tasks may still be
    // between their final watermark update and exit; they touch `st`, so
    // join them before it leaves scope, then surface the first failure.
    std::unique_lock<std::mutex> lk(st.mu);
    st.cv.wait(lk, [&st] { return st.active_drains == 0; });
    if (st.error) {
      std::exception_ptr err = st.error;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

  Options opts_;
  /// Registry instruments resolved once at construction so the routing
  /// and barrier hot paths skip the static-guard check per call.
  obs::Counter* enqueue_counter_;
  obs::Counter* epoch_counter_;
  obs::AtomicLogHistogram* barrier_wait_hist_;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_SHARDED_RUNTIME_H_
