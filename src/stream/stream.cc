// The stream module is mostly header-only templates; this translation
// unit holds the few non-template symbols and syntax-checks the headers
// during library builds.
#include "stream/admission.h"
#include "stream/epoch.h"
#include "stream/operator.h"
#include "stream/pipeline.h"
#include "stream/queue.h"
#include "stream/window.h"

namespace datacron {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kDropOldest:
      return "drop-oldest";
    case AdmissionPolicy::kDropFair:
      return "drop-fair";
  }
  return "unknown";
}

namespace {
// Force a couple of common instantiations to catch template errors early.
[[maybe_unused]] void InstantiationCheck() {
  MapOperator<int, int> map_op("m", [](const int& x) { return x + 1; });
  FilterOperator<int> filter_op("f", [](const int& x) { return x > 0; });
  std::vector<int> out;
  map_op.ProcessCounted(1, &out);
  filter_op.ProcessCounted(2, &out);
  AdmissionQueue<int> queue({2, AdmissionPolicy::kDropOldest});
  queue.Push(1);
  queue.Close();
  EpochWatermarks marks(2);
  marks.Advance(0, 0);
  ForEachEpoch(4, 2, [&](std::int64_t, std::size_t, std::size_t) {});
}
}  // namespace
}  // namespace datacron
