// The stream module is header-only templates; this translation unit exists
// so the static library has an archive member and template headers get a
// syntax check during library builds.
#include "stream/operator.h"
#include "stream/pipeline.h"
#include "stream/queue.h"
#include "stream/window.h"

namespace datacron {
namespace {
// Force a couple of common instantiations to catch template errors early.
[[maybe_unused]] void InstantiationCheck() {
  MapOperator<int, int> map_op("m", [](const int& x) { return x + 1; });
  FilterOperator<int> filter_op("f", [](const int& x) { return x > 0; });
  std::vector<int> out;
  map_op.ProcessCounted(1, &out);
  filter_op.ProcessCounted(2, &out);
}
}  // namespace
}  // namespace datacron
