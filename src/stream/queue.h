#ifndef DATACRON_STREAM_QUEUE_H_
#define DATACRON_STREAM_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace datacron {

/// Bounded blocking multi-producer/multi-consumer queue used to connect
/// pipeline stages. Close() signals end-of-stream: consumers drain remaining
/// items and then Pop() returns nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. nullopt means closed-and-drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks end-of-stream; wakes all waiters.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool IsClosed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_QUEUE_H_
