#ifndef DATACRON_STREAM_PIPELINE_H_
#define DATACRON_STREAM_PIPELINE_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stream/operator.h"
#include "stream/queue.h"

namespace datacron {

/// Two-stage executions of an operator over a batch or a live queue.
///
/// The in-situ processing component runs operators either inline (lowest
/// latency, one thread walks the whole chain per tuple) or staged (each
/// operator on its own thread connected by bounded queues — the
/// backpressure model of distributed stream engines). Both are provided;
/// benchmarks compare them (E2).
namespace pipeline {

/// Runs `op` over all of `input` inline, returning all outputs including
/// flushed state.
template <typename In, typename Out>
std::vector<Out> RunBatch(Operator<In, Out>* op, const std::vector<In>& input) {
  std::vector<Out> out;
  for (const In& item : input) op->ProcessCounted(item, &out);
  op->Flush(&out);
  return out;
}

/// Chains two operators inline over a batch.
template <typename A, typename B, typename C>
std::vector<C> RunBatch2(Operator<A, B>* op1, Operator<B, C>* op2,
                         const std::vector<A>& input) {
  std::vector<B> mid;
  std::vector<C> out;
  for (const A& item : input) {
    mid.clear();
    op1->ProcessCounted(item, &mid);
    for (const B& m : mid) op2->ProcessCounted(m, &out);
  }
  mid.clear();
  op1->Flush(&mid);
  for (const B& m : mid) op2->ProcessCounted(m, &out);
  op2->Flush(&out);
  return out;
}

/// Stage thread: drains `in`, applies `op`, pushes to `outq`, closes `outq`
/// when done. Returns the thread; caller joins.
///
/// Metrics ownership: the stage thread mutates `op->metrics_` via
/// ProcessCounted, so the operator instance belongs to the stage until its
/// thread is joined — reading op->metrics() concurrently is a data race.
/// Callers that need live counters give each stage its own operator copy
/// and fold the results afterwards with OperatorMetrics::Merge (the model
/// the sharded runtime uses for its per-shard keyed operators).
template <typename In, typename Out>
std::thread SpawnStage(Operator<In, Out>* op, BoundedQueue<In>* in,
                       BoundedQueue<Out>* outq) {
  return std::thread([op, in, outq] {
    std::vector<Out> buf;
    while (auto item = in->Pop()) {
      buf.clear();
      op->ProcessCounted(*item, &buf);
      for (Out& o : buf) outq->Push(std::move(o));
    }
    buf.clear();
    op->Flush(&buf);
    for (Out& o : buf) outq->Push(std::move(o));
    outq->Close();
  });
}

/// Runs op1 | op2 as two queue-connected threads over `input`; the caller's
/// thread feeds the source queue and collects the sink.
template <typename A, typename B, typename C>
std::vector<C> RunThreaded2(Operator<A, B>* op1, Operator<B, C>* op2,
                            const std::vector<A>& input,
                            std::size_t queue_capacity = 1024) {
  BoundedQueue<A> q0(queue_capacity);
  BoundedQueue<B> q1(queue_capacity);
  BoundedQueue<C> q2(queue_capacity);
  std::thread t1 = SpawnStage(op1, &q0, &q1);
  std::thread t2 = SpawnStage(op2, &q1, &q2);
  std::thread feeder([&] {
    for (const A& item : input) q0.Push(item);
    q0.Close();
  });
  std::vector<C> out;
  while (auto item = q2.Pop()) out.push_back(std::move(*item));
  feeder.join();
  t1.join();
  t2.join();
  return out;
}

}  // namespace pipeline
}  // namespace datacron

#endif  // DATACRON_STREAM_PIPELINE_H_
