#ifndef DATACRON_STREAM_WINDOW_H_
#define DATACRON_STREAM_WINDOW_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/time_utils.h"
#include "stream/operator.h"

namespace datacron {

/// Result of one closed window for one key.
template <typename Key, typename Acc>
struct WindowResult {
  Key key{};
  TimestampMs window_start = 0;
  TimestampMs window_end = 0;  // exclusive
  Acc value{};
};

/// Event-time tumbling window with watermark-based triggering.
///
/// Elements are assigned to [k*size, (k+1)*size) windows by their event
/// timestamp. The watermark is max-seen-event-time minus
/// `allowed_lateness`; a window fires when the watermark passes its end.
/// Elements older than the watermark are counted as dropped-late (streams
/// from surveillance receivers are mildly out of order, which this absorbs).
template <typename T, typename Key, typename Acc>
class TumblingWindowOperator
    : public Operator<T, WindowResult<Key, Acc>> {
 public:
  using Out = WindowResult<Key, Acc>;
  using KeyFn = std::function<Key(const T&)>;
  using TimeFn = std::function<TimestampMs(const T&)>;
  using AddFn = std::function<void(Acc*, const T&)>;

  TumblingWindowOperator(std::string name, DurationMs window_size,
                         DurationMs allowed_lateness, KeyFn key_fn,
                         TimeFn time_fn, AddFn add_fn)
      : Operator<T, Out>(std::move(name)),
        window_size_(window_size),
        allowed_lateness_(allowed_lateness),
        key_fn_(std::move(key_fn)),
        time_fn_(std::move(time_fn)),
        add_fn_(std::move(add_fn)) {}

  void Process(const T& item, std::vector<Out>* out) override {
    const TimestampMs ts = time_fn_(item);
    if (ts < Watermark()) {
      ++dropped_late_;
      return;
    }
    max_event_time_ = std::max(max_event_time_, ts);
    const TimestampMs start = WindowStartOf(ts);
    Acc& acc = windows_[{start, key_fn_(item)}];
    add_fn_(&acc, item);
    EmitRipeWindows(out);
  }

  void Flush(std::vector<Out>* out) override {
    for (auto& [sk, acc] : windows_) {
      out->push_back(Out{sk.second, sk.first, sk.first + window_size_,
                         std::move(acc)});
    }
    windows_.clear();
  }

  std::size_t dropped_late() const { return dropped_late_; }
  TimestampMs Watermark() const {
    return max_event_time_ == kNoTime
               ? kNoTime
               : max_event_time_ - allowed_lateness_;
  }

 private:
  static constexpr TimestampMs kNoTime = INT64_MIN;

  TimestampMs WindowStartOf(TimestampMs ts) const {
    TimestampMs start = ts / window_size_ * window_size_;
    if (ts < 0 && start > ts) start -= window_size_;
    return start;
  }

  void EmitRipeWindows(std::vector<Out>* out) {
    const TimestampMs wm = Watermark();
    // Keyed windows are ordered by start time, so ripe ones are a prefix.
    auto it = windows_.begin();
    while (it != windows_.end() && it->first.first + window_size_ <= wm) {
      out->push_back(Out{it->first.second, it->first.first,
                         it->first.first + window_size_,
                         std::move(it->second)});
      it = windows_.erase(it);
    }
  }

  const DurationMs window_size_;
  const DurationMs allowed_lateness_;
  KeyFn key_fn_;
  TimeFn time_fn_;
  AddFn add_fn_;
  // (window_start, key) -> accumulator; map keeps starts sorted for cheap
  // ripe-prefix eviction.
  std::map<std::pair<TimestampMs, Key>, Acc> windows_;
  TimestampMs max_event_time_ = kNoTime;
  std::size_t dropped_late_ = 0;
};

/// Event-time session window: elements of one key belong to the same
/// session while consecutive timestamps are within `session_gap`; a
/// longer silence closes the session (emitted on the next element or at
/// Flush). This is online trip segmentation — the streaming counterpart
/// of trajectory/SplitAtGaps.
template <typename T, typename Key, typename Acc>
class SessionWindowOperator
    : public Operator<T, WindowResult<Key, Acc>> {
 public:
  using Out = WindowResult<Key, Acc>;
  using KeyFn = std::function<Key(const T&)>;
  using TimeFn = std::function<TimestampMs(const T&)>;
  using AddFn = std::function<void(Acc*, const T&)>;

  SessionWindowOperator(std::string name, DurationMs session_gap,
                        KeyFn key_fn, TimeFn time_fn, AddFn add_fn)
      : Operator<T, Out>(std::move(name)),
        session_gap_(session_gap),
        key_fn_(std::move(key_fn)),
        time_fn_(std::move(time_fn)),
        add_fn_(std::move(add_fn)) {}

  void Process(const T& item, std::vector<Out>* out) override {
    const Key key = key_fn_(item);
    const TimestampMs ts = time_fn_(item);
    auto it = sessions_.find(key);
    if (it != sessions_.end() && ts - it->second.last_time > session_gap_) {
      out->push_back(Out{key, it->second.start_time, it->second.last_time,
                         std::move(it->second.acc)});
      sessions_.erase(it);
      it = sessions_.end();
    }
    if (it == sessions_.end()) {
      Session s;
      s.start_time = ts;
      s.last_time = ts;
      add_fn_(&s.acc, item);
      sessions_.emplace(key, std::move(s));
    } else {
      it->second.last_time = std::max(it->second.last_time, ts);
      add_fn_(&it->second.acc, item);
    }
  }

  void Flush(std::vector<Out>* out) override {
    for (auto& [key, s] : sessions_) {
      out->push_back(Out{key, s.start_time, s.last_time, std::move(s.acc)});
    }
    sessions_.clear();
  }

  std::size_t OpenSessions() const { return sessions_.size(); }

 private:
  struct Session {
    TimestampMs start_time = 0;
    TimestampMs last_time = 0;
    Acc acc{};
  };

  const DurationMs session_gap_;
  KeyFn key_fn_;
  TimeFn time_fn_;
  AddFn add_fn_;
  std::map<Key, Session> sessions_;
};

/// Per-key sliding window that retains raw elements within `span` of the
/// newest element for that key; on every input it emits a callback result
/// computed over the key's retained deque. Used by CEP primitives that need
/// the recent history of an entity (e.g. loitering detection).
template <typename T, typename Key, typename Out>
class SlidingWindowOperator : public Operator<T, Out> {
 public:
  using KeyFn = std::function<Key(const T&)>;
  using TimeFn = std::function<TimestampMs(const T&)>;
  /// Computes outputs from the retained window (oldest..newest) after the
  /// new element was appended.
  using EvalFn =
      std::function<void(const Key&, const std::vector<T>&, std::vector<Out>*)>;

  SlidingWindowOperator(std::string name, DurationMs span, KeyFn key_fn,
                        TimeFn time_fn, EvalFn eval_fn)
      : Operator<T, Out>(std::move(name)),
        span_(span),
        key_fn_(std::move(key_fn)),
        time_fn_(std::move(time_fn)),
        eval_fn_(std::move(eval_fn)) {}

  void Process(const T& item, std::vector<Out>* out) override {
    const Key key = key_fn_(item);
    std::vector<T>& buf = state_[key];
    buf.push_back(item);
    const TimestampMs newest = time_fn_(item);
    // Evict from the front anything older than the span.
    std::size_t keep_from = 0;
    while (keep_from < buf.size() &&
           time_fn_(buf[keep_from]) + span_ < newest) {
      ++keep_from;
    }
    if (keep_from > 0) buf.erase(buf.begin(), buf.begin() + keep_from);
    eval_fn_(key, buf, out);
  }

 private:
  const DurationMs span_;
  KeyFn key_fn_;
  TimeFn time_fn_;
  EvalFn eval_fn_;
  std::map<Key, std::vector<T>> state_;
};

}  // namespace datacron

#endif  // DATACRON_STREAM_WINDOW_H_
