#include "cep/detectors.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace datacron {

namespace {

/// Packed order-free pair key: (max << 32) | min. EntityId is uint32, so
/// the pair fits one FlatHashMap u64 key.
std::uint64_t PairKey(EntityId a, EntityId b) {
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  return (hi << 32) | lo;
}

/// Rate-limits alarms per key; returns true when a new alarm may fire.
template <typename Key>
bool MayAlarm(std::map<Key, TimestampMs>* last, const Key& key,
              TimestampMs now, DurationMs interval) {
  auto it = last->find(key);
  if (it != last->end() && now - it->second < interval) return false;
  (*last)[key] = now;
  return true;
}

/// FlatHashMap flavor used by the global detectors.
template <typename Key>
bool MayAlarm(FlatHashMap<Key, TimestampMs>* last, const Key& key,
              TimestampMs now, DurationMs interval) {
  TimestampMs* at = last->Find(key);
  if (at != nullptr) {
    if (now - *at < interval) return false;
    *at = now;
    return true;
  }
  (*last)[key] = now;
  return true;
}

}  // namespace

ProximityDetector::ProximityDetector(Config config)
    : Operator<PositionReport, Event>("proximity_detector"),
      config_(config),
      grid_(config.region, config.blocking_cell_deg),
      cpa_pairs_counter_(
          obs::MetricsRegistry::Global().counter("cep.cpa_pairs")),
      cpa_pairs_hist_(obs::MetricsRegistry::Global().histogram(
          "cep.cpa_pairs_per_epoch")) {}

void ProximityDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  RunBatch(std::span<const PositionReport>(&report, 1), nullptr, out,
           nullptr);
}

void ProximityDetector::ProcessBatch(std::span<const PositionReport> reports,
                                     ThreadPool* pool,
                                     std::vector<Event>* events,
                                     std::vector<std::size_t>* offsets) {
  RunBatch(reports, pool, events, offsets);
}

void ProximityDetector::ProcessBatchCounted(
    std::span<const PositionReport> reports, ThreadPool* pool,
    std::vector<Event>* events, std::vector<std::size_t>* offsets) {
  const std::size_t before = events->size();
  const std::int64_t t0 = MonotonicNanos();
  RunBatch(reports, pool, events, offsets);
  CountBatch(reports.size(), events->size() - before,
             MonotonicNanos() - t0);
}

void ProximityDetector::PlanReport(const PositionReport& report) {
  if (!has_watermark_ || report.timestamp > watermark_) {
    watermark_ = report.timestamp;
    has_watermark_ = true;
  }
  // Amortized state bound. The sweep triggers at identical report counts
  // on the serial (batch-of-one) and epoch-batched paths, so both see the
  // same membership state for every report. Entity eviction is
  // plan-coupled (it shapes candidate generation) and runs here; the
  // rate-limit prune is emit-coupled — the plan pass runs ahead of the
  // emit pass within an epoch, and pruning with this (future) watermark
  // would drop entries that must still suppress earlier reports' alarms —
  // so it is deferred to the emit pass at exactly this report index.
  if (++reports_since_sweep_ >= config_.evict_sweep_interval) {
    reports_since_sweep_ = 0;
    EvictStaleEntities();
    pending_prunes_.push_back(PendingPrune{
        static_cast<std::uint32_t>(cand_end_.size()), watermark_});
  }

  // Re-file the entity in the grid.
  const GridCell cell = grid_.CellOf(report.position.ll());
  const std::uint64_t cell_key = cell.Key();
  std::uint64_t* filed = entity_cell_.Find(report.entity_id);
  if (filed == nullptr || *filed != cell_key) {
    if (filed != nullptr) {
      std::vector<EntityId>* members = cell_members_.Find(*filed);
      if (members != nullptr) {
        members->erase(std::remove(members->begin(), members->end(),
                                   report.entity_id),
                       members->end());
      }
      *filed = cell_key;
    } else {
      entity_cell_[report.entity_id] = cell_key;
    }
    cell_members_[cell_key].push_back(report.entity_id);
  }
  const std::uint32_t a_row = fleet_.Append(report);
  latest_row_[report.entity_id] = a_row;

  // Assign the report to its cell's evaluation group; all CPA work of one
  // cell runs on one pool task.
  const std::uint32_t report_idx = static_cast<std::uint32_t>(
      cand_end_.size());
  std::uint32_t group;
  if (const std::uint32_t* g = cell_group_.Find(cell_key)) {
    group = *g;
  } else {
    group = static_cast<std::uint32_t>(live_groups_);
    if (groups_.size() == live_groups_) {
      groups_.emplace_back();
    } else {
      groups_[live_groups_].clear();
    }
    ++live_groups_;
    cell_group_[cell_key] = group;
  }
  groups_[group].push_back(report_idx);

  // Candidate partners from the own cell then the 3x3 neighborhood, in
  // the same order the per-report walk used to check them.
  auto consider = [&](EntityId other_id) {
    if (other_id == report.entity_id) return;
    const std::uint32_t* row = latest_row_.Find(other_id);
    // A member without a row was evicted; never default-insert a blank
    // report for an unknown id (the old code's latest_[other_id] bug).
    if (row == nullptr) return;
    if (report.timestamp - fleet_.ts[*row] > config_.staleness) return;
    // Different domains never conflict (vessels vs aircraft).
    if (fleet_.domain[*row] != static_cast<std::uint8_t>(report.domain)) {
      return;
    }
    candidates_.push_back(Candidate{a_row, *row});
  };
  if (const std::vector<EntityId>* own = cell_members_.Find(cell_key)) {
    for (EntityId other : *own) consider(other);
  }
  for (const GridCell& nb : grid_.Neighbors(cell)) {
    const std::vector<EntityId>* members = cell_members_.Find(nb.Key());
    if (members == nullptr) continue;
    for (EntityId other : *members) consider(other);
  }
  cand_end_.push_back(candidates_.size());
}

void ProximityDetector::RunBatch(std::span<const PositionReport> reports,
                                 ThreadPool* pool, std::vector<Event>* events,
                                 std::vector<std::size_t>* offsets) {
  const std::size_t n = reports.size();
  candidates_.clear();
  cand_end_.clear();
  cand_end_.reserve(n);
  cell_group_.Clear();
  live_groups_ = 0;
  pending_prunes_.clear();
  CompactSnapshotIfBloated(n);

  // Plan pass — serial, in input order: replays the exact per-report grid
  // and latest-state mutations of a serial run, recording each candidate
  // pair as (row, row) into the immutable snapshot log. Partner rows are
  // captured at plan time, so a later report of the same entity in the
  // same batch never changes an earlier report's pairing.
  for (const PositionReport& r : reports) PlanReport(r);

  // Evaluation pass — pure math over disjoint result slots, partitioned
  // by grid cell. Any schedule of the groups writes the same cpa_ values,
  // so parallelism cannot perturb output.
  cpa_.resize(candidates_.size());
  cpa_pairs_counter_->Add(candidates_.size());
  cpa_pairs_hist_->Observe(static_cast<double>(candidates_.size()));
  {
    DATACRON_TRACE_SPAN("cep.cpa_pairs", "cep");
    auto eval_group = [this](std::size_t g) {
      for (const std::uint32_t ri : groups_[g]) {
        const std::size_t begin = ri == 0 ? 0 : cand_end_[ri - 1];
        const std::size_t len = cand_end_[ri] - begin;
        if (len == 0) continue;
        // SIMD batch over the report's planned slice; lanes are
        // bit-identical to the per-pair ComputeCpa this replaced.
        ComputeCpaBatch(fleet_, candidates_.data() + begin, len,
                        cpa_.data() + begin);
      }
    };
    if (pool != nullptr && live_groups_ > 1 &&
        candidates_.size() >= config_.min_parallel_pairs) {
      pool->ParallelFor(live_groups_, eval_group);
    } else {
      for (std::size_t g = 0; g < live_groups_; ++g) eval_group(g);
    }
  }

  // Emit pass — serial, in input order: rate limiting and event
  // construction see reports in exactly the serial sequence.
  if (offsets != nullptr) {
    offsets->clear();
    offsets->reserve(n + 1);
    offsets->push_back(events->size());
  }
  std::size_t next_prune = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Replay rate-map prunes at the report index where the plan pass
    // scheduled them, with the watermark the serial run used there.
    while (next_prune < pending_prunes_.size() &&
           pending_prunes_[next_prune].report_idx == i) {
      PruneRateMaps(pending_prunes_[next_prune].watermark);
      ++next_prune;
    }
    const PositionReport& report = reports[i];
    const std::size_t begin = i == 0 ? 0 : cand_end_[i - 1];
    for (std::size_t c = begin; c < cand_end_[i]; ++c) {
      const Candidate& cand = candidates_[c];
      const CpaResult& cpa = cpa_[c];
      const EntityId other_id = fleet_.entity[cand.b_row];
      const bool vertical_relevant = report.domain == Domain::kAviation;
      if (cpa.d_now_m <= config_.encounter_m &&
          (!vertical_relevant ||
           std::fabs(report.position.alt_m - fleet_.alt_m[cand.b_row]) <=
               config_.danger_alt_m * 3)) {
        if (MayAlarm(&last_encounter_, PairKey(report.entity_id, other_id),
                     report.timestamp, config_.realarm_interval)) {
          Event e;
          e.kind = EventKind::kEncounter;
          e.time = report.timestamp;
          e.predicted_time = report.timestamp;
          e.entities = {report.entity_id, other_id};
          e.position = report.position;
          e.attributes["distance_m"] = cpa.d_now_m;
          events->push_back(std::move(e));
        }
      }

      if (cpa.t_cpa_s > 0 &&
          cpa.t_cpa_s * 1000 <= config_.cpa_lookahead &&
          cpa.d_cpa_m <= config_.danger_cpa_m &&
          (!vertical_relevant || cpa.d_alt_m <= config_.danger_alt_m)) {
        if (MayAlarm(&last_collision_, PairKey(report.entity_id, other_id),
                     report.timestamp, config_.realarm_interval)) {
          Event e;
          e.kind = EventKind::kCollisionForecast;
          e.time = report.timestamp;
          e.predicted_time =
              report.timestamp + static_cast<TimestampMs>(cpa.t_cpa_s * 1000);
          e.entities = {report.entity_id, other_id};
          e.position = report.position;
          e.attributes["cpa_m"] = cpa.d_cpa_m;
          e.attributes["d_now_m"] = cpa.d_now_m;
          if (vertical_relevant) e.attributes["cpa_alt_m"] = cpa.d_alt_m;
          events->push_back(std::move(e));
        }
      }
    }
    if (offsets != nullptr) offsets->push_back(events->size());
  }
}

void ProximityDetector::EvictStaleEntities() {
  // An entity whose latest report is stale can never pass the partner
  // staleness gate again on a time-ordered stream, so dropping it is
  // event-neutral. The maps are rebuilt wholesale because FlatHashMap
  // probing is tombstone-free (no per-entry erase).
  bool any_stale = false;
  latest_row_.ForEach([&](EntityId, const std::uint32_t& row) {
    if (watermark_ - fleet_.ts[row] > config_.staleness) any_stale = true;
  });
  if (any_stale) {
    FlatHashMap<EntityId, std::uint32_t> live;
    live.Reserve(latest_row_.size());
    latest_row_.ForEach([&](EntityId id, const std::uint32_t& row) {
      if (watermark_ - fleet_.ts[row] <= config_.staleness) live[id] = row;
    });
    FlatHashMap<EntityId, std::uint64_t> cells;
    cells.Reserve(live.size());
    entity_cell_.ForEach([&](EntityId id, const std::uint64_t& cell) {
      if (live.Contains(id)) cells[id] = cell;
    });
    FlatHashMap<std::uint64_t, std::vector<EntityId>> members;
    members.Reserve(cell_members_.size());
    cell_members_.ForEach(
        [&](std::uint64_t key, const std::vector<EntityId>& ids) {
          std::vector<EntityId> kept;
          kept.reserve(ids.size());
          for (EntityId id : ids) {
            if (live.Contains(id)) kept.push_back(id);
          }
          if (!kept.empty()) members[key] = std::move(kept);
        });
    latest_row_ = std::move(live);
    entity_cell_ = std::move(cells);
    cell_members_ = std::move(members);
  }
}

void ProximityDetector::PruneRateMaps(TimestampMs watermark) {
  // A rate-limit entry older than the re-alarm interval can never
  // suppress again, so dropping it is event-neutral — but only against
  // the watermark the serial run would have pruned with, which the emit
  // pass supplies.
  auto prune = [&](FlatHashMap<std::uint64_t, TimestampMs>* map) {
    bool any_dead = false;
    map->ForEach([&](std::uint64_t, const TimestampMs& t) {
      if (watermark - t >= config_.realarm_interval) any_dead = true;
    });
    if (!any_dead) return;
    FlatHashMap<std::uint64_t, TimestampMs> kept;
    kept.Reserve(map->size());
    map->ForEach([&](std::uint64_t key, const TimestampMs& t) {
      if (watermark - t < config_.realarm_interval) kept[key] = t;
    });
    *map = std::move(kept);
  };
  prune(&last_encounter_);
  prune(&last_collision_);
}

void ProximityDetector::CompactSnapshotIfBloated(std::size_t incoming) {
  const std::size_t projected = fleet_.size() + incoming;
  if (projected < 4096 ||
      projected < latest_row_.size() * 2 + incoming) {
    return;
  }
  FleetSnapshot compact;
  compact.Reserve(latest_row_.size() + incoming);
  FlatHashMap<EntityId, std::uint32_t> rows;
  rows.Reserve(latest_row_.size());
  latest_row_.ForEach([&](EntityId id, const std::uint32_t& row) {
    rows[id] = compact.Append(fleet_.ReportAt(row));
  });
  fleet_ = std::move(compact);
  latest_row_ = std::move(rows);
}

ProximityDetector::StateStats ProximityDetector::Stats() const {
  StateStats s;
  s.tracked_entities = latest_row_.size();
  s.snapshot_rows = fleet_.size();
  s.occupied_cells = cell_members_.size();
  s.rate_entries = last_encounter_.size() + last_collision_.size();
  return s;
}

AreaEventDetector::AreaEventDetector(std::vector<NamedArea> areas)
    : Operator<PositionReport, Event>("area_event_detector"),
      areas_(std::move(areas)) {}

void AreaEventDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  for (std::size_t ai = 0; ai < areas_.size(); ++ai) {
    const bool now = areas_[ai].polygon.Contains(report.position.ll());
    bool& was = inside_[{report.entity_id, ai}];
    if (now == was) continue;
    Event e;
    e.kind = now ? EventKind::kAreaEntry : EventKind::kAreaExit;
    e.time = report.timestamp;
    e.predicted_time = report.timestamp;
    e.entities = {report.entity_id};
    e.position = report.position;
    e.label = areas_[ai].name;
    out->push_back(std::move(e));
    was = now;
  }
}

LoiteringDetector::LoiteringDetector(Config config)
    : Operator<PositionReport, Event>("loitering_detector"),
      config_(config) {}

void LoiteringDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  std::deque<PositionReport>& win = window_[report.entity_id];
  win.push_back(report);
  while (!win.empty() &&
         report.timestamp - win.front().timestamp > config_.window) {
    win.pop_front();
  }
  // Need the window to actually span (most of) the configured duration.
  if (win.size() < 3 ||
      report.timestamp - win.front().timestamp < config_.window * 9 / 10) {
    return;
  }
  if (report.speed_mps < config_.min_speed_mps) return;
  // Net displacement and max excursion within the window. The latitude
  // cosine is hoisted out of the loop (the window stays within the
  // loitering radius, so one reference latitude serves every pair).
  double max_excursion = 0.0;
  const double cos_lat = std::cos(report.position.lat_deg * kDegToRad);
  for (const PositionReport& p : win) {
    max_excursion = std::max(
        max_excursion, EquirectangularMetersWithCos(cos_lat, p.position.ll(),
                                                    report.position.ll()));
  }
  if (max_excursion > config_.radius_m) return;
  if (!MayAlarm(&last_alarm_, report.entity_id, report.timestamp,
                config_.realarm_interval)) {
    return;
  }
  Event e;
  e.kind = EventKind::kLoitering;
  e.time = report.timestamp;
  e.predicted_time = report.timestamp;
  e.entities = {report.entity_id};
  e.position = report.position;
  e.attributes["excursion_m"] = max_excursion;
  e.attributes["window_s"] = config_.window / 1000.0;
  out->push_back(std::move(e));
}

CapacityMonitor::CapacityMonitor(std::vector<Sector> sectors, Config config)
    : Operator<PositionReport, Event>("capacity_monitor"),
      sectors_(std::move(sectors)),
      config_(config),
      delta_updates_counter_(obs::MetricsRegistry::Global().counter(
          "cep.sector_delta_updates")) {
  occupancy_.assign(sectors_.size(), 0);
  predicted_.assign(sectors_.size(), 0);

  // Alarm-evaluation gate per sector: the legacy fixed 0.5 deg inflation
  // skipped sectors a fast mover could dead-reckon into within the
  // forecast horizon, silently suppressing kCapacityForecast near the
  // bbox edge. Size the margin from the worst-case reach instead.
  const double horizon_s =
      static_cast<double>(config_.forecast_horizon) / 1000.0;
  const double reach_m = config_.max_speed_mps * horizon_s;
  const double meters_per_deg = kEarthRadiusMeters * kDegToRad;
  eval_bbox_.reserve(sectors_.size());
  for (const Sector& sector : sectors_) {
    const BoundingBox& bb = sector.polygon.bbox();
    // Longitude degrees shrink by cos(lat); use the sector's extreme
    // latitude, clamped away from the poles.
    const double lat_deg = std::max(std::fabs(bb.min_lat),
                                    std::fabs(bb.max_lat));
    const double cos_lat = std::max(0.1, std::cos(lat_deg * kDegToRad));
    const double reach_deg = reach_m / (meters_per_deg * cos_lat);
    eval_bbox_.push_back(bb.Inflated(std::max(0.5, reach_deg)));
  }
  for (const BoundingBox& bb : eval_bbox_) eval_bbox_soa_.Add(bb);
  bbox_near_.resize(eval_bbox_.size());
}

void CapacityMonitor::Process(const PositionReport& report,
                              std::vector<Event>* out) {
  if (config_.incremental) {
    ProcessIncremental(report, out);
  } else {
    ProcessRescan(report, out);
  }
}

void CapacityMonitor::Retire(EntityState* st) {
  for (const std::uint32_t si : st->inside) --occupancy_[si];
  for (const std::uint32_t si : st->predicted) --predicted_[si];
  st->inside.clear();
  st->predicted.clear();
  st->active = false;
  --active_entities_;
}

void CapacityMonitor::ExpireStale() {
  // at = ts + staleness, so `at < watermark` is exactly the rescan path's
  // strict `now - ts > staleness` on a time-ordered stream.
  while (!expiry_.empty() && expiry_.front().at < watermark_) {
    std::pop_heap(expiry_.begin(), expiry_.end(), HeapLater);
    const Expiry e = expiry_.back();
    expiry_.pop_back();
    EntityState* st = entities_.Find(e.entity);
    // Superseded entries (entity re-reported since) carry an old version.
    if (st != nullptr && st->active && st->version == e.version) {
      Retire(st);
    }
  }
}

void CapacityMonitor::ProcessIncremental(const PositionReport& report,
                                         std::vector<Event>* out) {
  if (!has_watermark_ || report.timestamp > watermark_) {
    watermark_ = report.timestamp;
    has_watermark_ = true;
  }
  ExpireStale();

  // Delta update: retire the entity's previous sector contributions, add
  // its new ones. O(sectors) per report, independent of fleet size.
  EntityState& st = entities_[report.entity_id];
  if (st.active) Retire(&st);
  st.ts = report.timestamp;
  ++st.version;
  st.active = true;
  ++active_entities_;
  const GeoPoint future =
      DeadReckon(report.position, report.course_deg, report.speed_mps,
                 report.vertical_rate_mps, config_.forecast_horizon / 1000.0);
  for (std::size_t si = 0; si < sectors_.size(); ++si) {
    const Sector& sector = sectors_[si];
    if (sector.polygon.Contains(report.position.ll())) {
      ++occupancy_[si];
      st.inside.push_back(static_cast<std::uint32_t>(si));
    }
    if (sector.polygon.Contains(future.ll())) {
      ++predicted_[si];
      st.predicted.push_back(static_cast<std::uint32_t>(si));
    }
  }
  delta_updates_counter_->Add();
  expiry_.push_back(Expiry{report.timestamp + config_.staleness,
                           report.entity_id, st.version});
  std::push_heap(expiry_.begin(), expiry_.end(), HeapLater);

  EmitAlarms(report, occupancy_, predicted_, out);

  if (++reports_since_compact_ >= config_.compact_interval) {
    reports_since_compact_ = 0;
    CompactEntities();
  }
}

void CapacityMonitor::ProcessRescan(const PositionReport& report,
                                    std::vector<Event>* out) {
  latest_[report.entity_id] = report;

  std::vector<int> occupancy(sectors_.size(), 0);
  std::vector<int> predicted(sectors_.size(), 0);
  BboxContainsBatch(eval_bbox_soa_, report.position.ll(), bbox_near_.data());
  for (std::size_t si = 0; si < sectors_.size(); ++si) {
    // Only sectors near the reporting entity get re-evaluated.
    if (!bbox_near_[si]) continue;
    const Sector& sector = sectors_[si];
    latest_.ForEach([&](EntityId, const PositionReport& r) {
      if (report.timestamp - r.timestamp > config_.staleness) return;
      if (sector.polygon.Contains(r.position.ll())) ++occupancy[si];
      const GeoPoint future = DeadReckon(r.position, r.course_deg,
                                         r.speed_mps, r.vertical_rate_mps,
                                         config_.forecast_horizon / 1000.0);
      if (sector.polygon.Contains(future.ll())) ++predicted[si];
    });
  }
  EmitAlarms(report, occupancy, predicted, out);
}

void CapacityMonitor::EmitAlarms(const PositionReport& report,
                                 std::span<const int> occupancy,
                                 std::span<const int> predicted,
                                 std::vector<Event>* out) {
  BboxContainsBatch(eval_bbox_soa_, report.position.ll(), bbox_near_.data());
  for (std::size_t si = 0; si < sectors_.size(); ++si) {
    if (!bbox_near_[si]) continue;
    const Sector& sector = sectors_[si];
    if (occupancy[si] > sector.capacity &&
        MayAlarm(&last_warning_, si, report.timestamp,
                 config_.realarm_interval)) {
      Event e;
      e.kind = EventKind::kCapacityWarning;
      e.time = report.timestamp;
      e.predicted_time = report.timestamp;
      e.position = {sector.polygon.Centroid().lat_deg,
                    sector.polygon.Centroid().lon_deg, 0.0};
      e.label = sector.name;
      e.attributes["occupancy"] = occupancy[si];
      e.attributes["capacity"] = sector.capacity;
      out->push_back(std::move(e));
    }
    if (predicted[si] > sector.capacity && occupancy[si] <= sector.capacity &&
        MayAlarm(&last_forecast_, si, report.timestamp,
                 config_.realarm_interval)) {
      Event e;
      e.kind = EventKind::kCapacityForecast;
      e.time = report.timestamp;
      e.predicted_time = report.timestamp + config_.forecast_horizon;
      e.position = {sector.polygon.Centroid().lat_deg,
                    sector.polygon.Centroid().lon_deg, 0.0};
      e.label = sector.name;
      e.attributes["predicted_occupancy"] = predicted[si];
      e.attributes["capacity"] = sector.capacity;
      out->push_back(std::move(e));
    }
  }
}

void CapacityMonitor::CompactEntities() {
  // Drop inactive (expired) entities; FlatHashMap has no erase, so the
  // table is rebuilt. Heap entries of dropped entities are filtered too —
  // a re-appearing entity restarts at version 1, and a stale heap entry
  // must not be able to collide with the new version stream.
  bool any_inactive = false;
  entities_.ForEach([&](EntityId, const EntityState& st) {
    if (!st.active) any_inactive = true;
  });
  if (!any_inactive) return;
  FlatHashMap<EntityId, EntityState> live;
  live.Reserve(entities_.size());
  entities_.ForEach([&](EntityId id, const EntityState& st) {
    if (st.active) live[id] = st;
  });
  entities_ = std::move(live);
  std::vector<Expiry> kept;
  kept.reserve(expiry_.size());
  for (const Expiry& e : expiry_) {
    if (entities_.Contains(e.entity)) kept.push_back(e);
  }
  expiry_ = std::move(kept);
  std::make_heap(expiry_.begin(), expiry_.end(), HeapLater);
}

}  // namespace datacron
