#include "cep/detectors.h"

#include <algorithm>
#include <cmath>

namespace datacron {

namespace {

std::pair<EntityId, EntityId> PairOf(EntityId a, EntityId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Rate-limits alarms per key; returns true when a new alarm may fire.
template <typename Key>
bool MayAlarm(std::map<Key, TimestampMs>* last, const Key& key,
              TimestampMs now, DurationMs interval) {
  auto it = last->find(key);
  if (it != last->end() && now - it->second < interval) return false;
  (*last)[key] = now;
  return true;
}

}  // namespace

ProximityDetector::ProximityDetector(Config config)
    : Operator<PositionReport, Event>("proximity_detector"),
      config_(config),
      grid_(config.region, config.blocking_cell_deg) {}

void ProximityDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  // Re-file the entity in the grid.
  const GridCell cell = grid_.CellOf(report.position.ll());
  auto cell_it = entity_cell_.find(report.entity_id);
  if (cell_it == entity_cell_.end() || !(cell_it->second == cell)) {
    if (cell_it != entity_cell_.end()) {
      auto& members = cell_members_[cell_it->second];
      members.erase(std::remove(members.begin(), members.end(),
                                report.entity_id),
                    members.end());
    }
    cell_members_[cell].push_back(report.entity_id);
    entity_cell_[report.entity_id] = cell;
  }
  latest_[report.entity_id] = report;

  // Check partners in the 3x3 neighborhood.
  auto check_partner = [&](EntityId other_id) {
    if (other_id == report.entity_id) return;
    const PositionReport& other = latest_[other_id];
    if (report.timestamp - other.timestamp > config_.staleness) return;
    // Different domains never conflict (vessels vs aircraft).
    if (other.domain != report.domain) return;

    const CpaResult cpa = ComputeCpa(report, other);
    const bool vertical_relevant = report.domain == Domain::kAviation;
    if (cpa.d_now_m <= config_.encounter_m &&
        (!vertical_relevant ||
         std::fabs(report.position.alt_m - other.position.alt_m) <=
             config_.danger_alt_m * 3)) {
      if (MayAlarm(&last_encounter_, PairOf(report.entity_id, other_id),
                   report.timestamp, config_.realarm_interval)) {
        Event e;
        e.kind = EventKind::kEncounter;
        e.time = report.timestamp;
        e.predicted_time = report.timestamp;
        e.entities = {report.entity_id, other_id};
        e.position = report.position;
        e.attributes["distance_m"] = cpa.d_now_m;
        out->push_back(std::move(e));
      }
    }

    if (cpa.t_cpa_s > 0 &&
        cpa.t_cpa_s * 1000 <= config_.cpa_lookahead &&
        cpa.d_cpa_m <= config_.danger_cpa_m &&
        (!vertical_relevant || cpa.d_alt_m <= config_.danger_alt_m)) {
      if (MayAlarm(&last_collision_, PairOf(report.entity_id, other_id),
                   report.timestamp, config_.realarm_interval)) {
        Event e;
        e.kind = EventKind::kCollisionForecast;
        e.time = report.timestamp;
        e.predicted_time =
            report.timestamp + static_cast<TimestampMs>(cpa.t_cpa_s * 1000);
        e.entities = {report.entity_id, other_id};
        e.position = report.position;
        e.attributes["cpa_m"] = cpa.d_cpa_m;
        e.attributes["d_now_m"] = cpa.d_now_m;
        if (vertical_relevant) e.attributes["cpa_alt_m"] = cpa.d_alt_m;
        out->push_back(std::move(e));
      }
    }
  };

  for (EntityId other : cell_members_[cell]) check_partner(other);
  for (const GridCell& n : grid_.Neighbors(cell)) {
    auto it = cell_members_.find(n);
    if (it == cell_members_.end()) continue;
    for (EntityId other : it->second) check_partner(other);
  }
}

AreaEventDetector::AreaEventDetector(std::vector<NamedArea> areas)
    : Operator<PositionReport, Event>("area_event_detector"),
      areas_(std::move(areas)) {}

void AreaEventDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  for (std::size_t ai = 0; ai < areas_.size(); ++ai) {
    const bool now = areas_[ai].polygon.Contains(report.position.ll());
    bool& was = inside_[{report.entity_id, ai}];
    if (now == was) continue;
    Event e;
    e.kind = now ? EventKind::kAreaEntry : EventKind::kAreaExit;
    e.time = report.timestamp;
    e.predicted_time = report.timestamp;
    e.entities = {report.entity_id};
    e.position = report.position;
    e.label = areas_[ai].name;
    out->push_back(std::move(e));
    was = now;
  }
}

LoiteringDetector::LoiteringDetector(Config config)
    : Operator<PositionReport, Event>("loitering_detector"),
      config_(config) {}

void LoiteringDetector::Process(const PositionReport& report,
                                std::vector<Event>* out) {
  std::deque<PositionReport>& win = window_[report.entity_id];
  win.push_back(report);
  while (!win.empty() &&
         report.timestamp - win.front().timestamp > config_.window) {
    win.pop_front();
  }
  // Need the window to actually span (most of) the configured duration.
  if (win.size() < 3 ||
      report.timestamp - win.front().timestamp < config_.window * 9 / 10) {
    return;
  }
  if (report.speed_mps < config_.min_speed_mps) return;
  // Net displacement and max excursion within the window.
  double max_excursion = 0.0;
  for (const PositionReport& p : win) {
    max_excursion = std::max(
        max_excursion,
        EquirectangularMeters(p.position.ll(), report.position.ll()));
  }
  if (max_excursion > config_.radius_m) return;
  if (!MayAlarm(&last_alarm_, report.entity_id, report.timestamp,
                config_.realarm_interval)) {
    return;
  }
  Event e;
  e.kind = EventKind::kLoitering;
  e.time = report.timestamp;
  e.predicted_time = report.timestamp;
  e.entities = {report.entity_id};
  e.position = report.position;
  e.attributes["excursion_m"] = max_excursion;
  e.attributes["window_s"] = config_.window / 1000.0;
  out->push_back(std::move(e));
}

CapacityMonitor::CapacityMonitor(std::vector<Sector> sectors, Config config)
    : Operator<PositionReport, Event>("capacity_monitor"),
      sectors_(std::move(sectors)),
      config_(config) {}

void CapacityMonitor::Process(const PositionReport& report,
                              std::vector<Event>* out) {
  latest_[report.entity_id] = report;

  for (std::size_t si = 0; si < sectors_.size(); ++si) {
    const Sector& sector = sectors_[si];
    // Cheap prefilter: only sectors near the reporting entity get
    // re-evaluated on this tuple.
    if (!sector.polygon.bbox().Inflated(0.5).Contains(
            report.position.ll())) {
      continue;
    }
    int occupancy = 0;
    int predicted = 0;
    for (const auto& [id, r] : latest_) {
      if (report.timestamp - r.timestamp > config_.staleness) continue;
      if (sector.polygon.Contains(r.position.ll())) ++occupancy;
      const GeoPoint future =
          DeadReckon(r.position, r.course_deg, r.speed_mps,
                     r.vertical_rate_mps, config_.forecast_horizon / 1000.0);
      if (sector.polygon.Contains(future.ll())) ++predicted;
    }
    if (occupancy > sector.capacity &&
        MayAlarm(&last_warning_, si, report.timestamp,
                 config_.realarm_interval)) {
      Event e;
      e.kind = EventKind::kCapacityWarning;
      e.time = report.timestamp;
      e.predicted_time = report.timestamp;
      e.position = {sector.polygon.Centroid().lat_deg,
                    sector.polygon.Centroid().lon_deg, 0.0};
      e.label = sector.name;
      e.attributes["occupancy"] = occupancy;
      e.attributes["capacity"] = sector.capacity;
      out->push_back(std::move(e));
    }
    if (predicted > sector.capacity && occupancy <= sector.capacity &&
        MayAlarm(&last_forecast_, si, report.timestamp,
                 config_.realarm_interval)) {
      Event e;
      e.kind = EventKind::kCapacityForecast;
      e.time = report.timestamp;
      e.predicted_time = report.timestamp + config_.forecast_horizon;
      e.position = {sector.polygon.Centroid().lat_deg,
                    sector.polygon.Centroid().lon_deg, 0.0};
      e.label = sector.name;
      e.attributes["predicted_occupancy"] = predicted;
      e.attributes["capacity"] = sector.capacity;
      out->push_back(std::move(e));
    }
  }
}

}  // namespace datacron
