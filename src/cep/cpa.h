#ifndef DATACRON_CEP_CPA_H_
#define DATACRON_CEP_CPA_H_

#include <cstddef>
#include <cstdint>

#include "cep/fleet_snapshot.h"
#include "common/simd/simd.h"
#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Closest Point of Approach of two entities under constant-velocity
/// extrapolation from their current reports — the standard collision-risk
/// primitive in both maritime (COLREG alerting) and ATM (conflict
/// detection).
struct CpaResult {
  /// Seconds from the later of the two reports until closest approach;
  /// 0 when the entities are already diverging.
  double t_cpa_s = 0.0;
  /// Horizontal separation at closest approach (meters).
  double d_cpa_m = 0.0;
  /// Vertical separation at closest approach (meters).
  double d_alt_m = 0.0;
  /// Current separation (meters).
  double d_now_m = 0.0;
};

/// Computes the CPA of `a` and `b`. The kinematics are taken from the
/// reports' speed/course/vertical rate; `a` and `b` may have different
/// timestamps (the earlier one is projected forward to the later one
/// first). Works in a local ENU plane around `a`.
CpaResult ComputeCpa(const PositionReport& a, const PositionReport& b);

/// Same computation over two rows of a struct-of-arrays fleet snapshot —
/// the form the batched cell-parallel proximity stage evaluates. Shares
/// the scalar core with the report overload, so results are bit-identical
/// to ComputeCpa(fleet.ReportAt(a), fleet.ReportAt(b)).
CpaResult ComputeCpa(const FleetSnapshot& fleet, std::size_t a,
                     std::size_t b);

/// A pair of FleetSnapshot row indices to evaluate. Matches the
/// proximity detector's candidate layout so planned slices feed the
/// batch kernel without repacking.
struct CpaPair {
  std::uint32_t a_row = 0;
  std::uint32_t b_row = 0;
};

/// Evaluates CPA for `n` row pairs of `fleet` into `out`.
///
/// Two phases: a scalar per-pair phase does the branchy, transcendental
/// work (dead-reckoning clock alignment; latitude cosines come
/// precomputed from the snapshot), then a vectorized pure-arithmetic
/// phase runs the CPA math over SIMD lanes. The vector phase mirrors
/// the scalar core op for op, so out[i] is bit-identical to
/// ComputeCpa(fleet, pairs[i].a_row, pairs[i].b_row) under either
/// dispatch — CPA results feed the collision/encounter gates, where
/// a last-ulp difference would change emitted events.
void ComputeCpaBatch(const FleetSnapshot& fleet, const CpaPair* pairs,
                     std::size_t n, CpaResult* out,
                     SimdDispatch dispatch = SimdDispatch::kNative);

}  // namespace datacron

#endif  // DATACRON_CEP_CPA_H_
