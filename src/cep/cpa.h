#ifndef DATACRON_CEP_CPA_H_
#define DATACRON_CEP_CPA_H_

#include <cstddef>

#include "cep/fleet_snapshot.h"
#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Closest Point of Approach of two entities under constant-velocity
/// extrapolation from their current reports — the standard collision-risk
/// primitive in both maritime (COLREG alerting) and ATM (conflict
/// detection).
struct CpaResult {
  /// Seconds from the later of the two reports until closest approach;
  /// 0 when the entities are already diverging.
  double t_cpa_s = 0.0;
  /// Horizontal separation at closest approach (meters).
  double d_cpa_m = 0.0;
  /// Vertical separation at closest approach (meters).
  double d_alt_m = 0.0;
  /// Current separation (meters).
  double d_now_m = 0.0;
};

/// Computes the CPA of `a` and `b`. The kinematics are taken from the
/// reports' speed/course/vertical rate; `a` and `b` may have different
/// timestamps (the earlier one is projected forward to the later one
/// first). Works in a local ENU plane around `a`.
CpaResult ComputeCpa(const PositionReport& a, const PositionReport& b);

/// Same computation over two rows of a struct-of-arrays fleet snapshot —
/// the form the batched cell-parallel proximity stage evaluates. Shares
/// the scalar core with the report overload, so results are bit-identical
/// to ComputeCpa(fleet.ReportAt(a), fleet.ReportAt(b)).
CpaResult ComputeCpa(const FleetSnapshot& fleet, std::size_t a,
                     std::size_t b);

}  // namespace datacron

#endif  // DATACRON_CEP_CPA_H_
