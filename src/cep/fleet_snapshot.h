#ifndef DATACRON_CEP_FLEET_SNAPSHOT_H_
#define DATACRON_CEP_FLEET_SNAPSHOT_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Struct-of-arrays log of per-report kinematic states. The proximity
/// detector appends one row per processed report and keeps a map from
/// entity id to its latest row, so a batch of CPA evaluations loads
/// lat/lon/speed/course as contiguous lanes instead of chasing
/// PositionReport structs — the layout the ROADMAP's SIMD kernel item
/// needs. Rows are immutable once appended (a newer report for the same
/// entity appends a new row), which is what lets the parallel CPA stage
/// read partner rows planned earlier in the same epoch without
/// synchronization.
struct FleetSnapshot {
  std::vector<double> lat_deg;
  std::vector<double> lon_deg;
  std::vector<double> alt_m;
  std::vector<double> speed_mps;
  std::vector<double> course_deg;
  std::vector<double> vrate_mps;
  // Derived columns precomputed at Append so the batched CPA kernel
  // loads them as lanes instead of calling sin/cos per pair. Computed
  // with the exact expressions the scalar CPA core used at call time
  // (CourseToVelocityMps, std::cos(lat * kDegToRad)), so consuming the
  // columns is bit-identical to recomputing.
  std::vector<double> ve_mps;
  std::vector<double> vn_mps;
  std::vector<double> cos_lat;
  std::vector<TimestampMs> ts;
  std::vector<EntityId> entity;
  std::vector<std::uint8_t> domain;

  std::size_t size() const { return ts.size(); }
  bool empty() const { return ts.empty(); }

  void Reserve(std::size_t n) {
    lat_deg.reserve(n);
    lon_deg.reserve(n);
    alt_m.reserve(n);
    speed_mps.reserve(n);
    course_deg.reserve(n);
    vrate_mps.reserve(n);
    ve_mps.reserve(n);
    vn_mps.reserve(n);
    cos_lat.reserve(n);
    ts.reserve(n);
    entity.reserve(n);
    domain.reserve(n);
  }

  void Clear() {
    lat_deg.clear();
    lon_deg.clear();
    alt_m.clear();
    speed_mps.clear();
    course_deg.clear();
    vrate_mps.clear();
    ve_mps.clear();
    vn_mps.clear();
    cos_lat.clear();
    ts.clear();
    entity.clear();
    domain.clear();
  }

  /// Appends one row; returns its index.
  std::uint32_t Append(const PositionReport& r) {
    const std::uint32_t slot = static_cast<std::uint32_t>(ts.size());
    lat_deg.push_back(r.position.lat_deg);
    lon_deg.push_back(r.position.lon_deg);
    alt_m.push_back(r.position.alt_m);
    speed_mps.push_back(r.speed_mps);
    course_deg.push_back(r.course_deg);
    vrate_mps.push_back(r.vertical_rate_mps);
    double ve, vn;
    CourseToVelocityMps(r.course_deg, r.speed_mps, &ve, &vn);
    ve_mps.push_back(ve);
    vn_mps.push_back(vn);
    cos_lat.push_back(std::cos(r.position.lat_deg * kDegToRad));
    ts.push_back(r.timestamp);
    entity.push_back(r.entity_id);
    domain.push_back(static_cast<std::uint8_t>(r.domain));
    return slot;
  }

  /// Reconstructs row `i` as a PositionReport (compaction, tests).
  PositionReport ReportAt(std::size_t i) const {
    PositionReport r;
    r.entity_id = entity[i];
    r.domain = static_cast<Domain>(domain[i]);
    r.timestamp = ts[i];
    r.position = {lat_deg[i], lon_deg[i], alt_m[i]};
    r.speed_mps = speed_mps[i];
    r.course_deg = course_deg[i];
    r.vertical_rate_mps = vrate_mps[i];
    return r;
  }
};

}  // namespace datacron

#endif  // DATACRON_CEP_FLEET_SNAPSHOT_H_
