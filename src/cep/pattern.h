#ifndef DATACRON_CEP_PATTERN_H_
#define DATACRON_CEP_PATTERN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cep/event.h"
#include "stream/operator.h"

namespace datacron {

/// Declarative sequence pattern over the event stream:
///   SEQ(step_1, step_2, ..., step_n) WITHIN window, keyed per entity.
/// Each step is a predicate on events; a partial match advances when the
/// next event of the *same entity* satisfies the next step inside the
/// window. `negated` steps are "NOT before next": seeing such an event
/// kills the partial match instead of advancing it.
///
/// This NFA-per-key design is the core of SASE/Flink-CEP-style engines and
/// is exactly what maritime pattern rules ("stop, then gap, then reappear
/// elsewhere" = possible rendezvous) compile to.
struct PatternStep {
  std::string name;
  std::function<bool(const Event&)> predicate;
  bool negated = false;
};

struct Pattern {
  std::string name;
  std::vector<PatternStep> steps;
  DurationMs within = 1 * kHour;

  /// Convenience: step matching a specific event kind.
  static PatternStep OnKind(EventKind kind);
  static PatternStep NotKind(EventKind kind);
};

/// Streaming matcher: Event -> kComposite Event on full matches. Multiple
/// simultaneous partial matches per entity are tracked (skip-till-next-
/// match semantics: an event may both advance a run and start a new one).
class PatternMatcher : public Operator<Event, Event> {
 public:
  explicit PatternMatcher(Pattern pattern);

  void Process(const Event& event, std::vector<Event>* out) override;

  std::size_t ActiveRuns() const;

 private:
  struct Run {
    std::size_t next_step = 0;
    TimestampMs started = 0;
    std::vector<TimestampMs> step_times;
  };

  Pattern pattern_;
  /// Keyed by the first involved entity.
  std::map<EntityId, std::vector<Run>> runs_;
};

}  // namespace datacron

#endif  // DATACRON_CEP_PATTERN_H_
