#ifndef DATACRON_CEP_DETECTORS_H_
#define DATACRON_CEP_DETECTORS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cep/cpa.h"
#include "cep/event.h"
#include "cep/fleet_snapshot.h"
#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "geo/grid.h"
#include "geo/kernels.h"
#include "geo/polygon.h"
#include "obs/metrics.h"
#include "stream/operator.h"

namespace datacron {

/// Streaming encounter + collision-forecast detector.
///
/// Keeps the latest report per entity in a spatial grid; each incoming
/// report is checked against its grid neighborhood:
///  - current distance < encounter threshold  -> kEncounter
///  - CPA within lookahead & below the danger radius -> kCollisionForecast
/// Re-alarms for the same pair are suppressed for `realarm_interval`.
///
/// Two entry points share one batch pipeline (plan -> CPA eval -> emit):
/// Process() runs it over a single report, ProcessBatch() over an epoch
/// of reports with the CPA evaluations fanned out over grid cells on a
/// ThreadPool. The plan and emit passes are serial and replay input
/// order, so batch output is byte-identical to calling Process() per
/// report — the serial path is literally the batch-of-one case.
class ProximityDetector : public Operator<PositionReport, Event> {
 public:
  /// Pair state spans entities: must see the whole stream.
  static constexpr StageKind kStage = StageKind::kGlobal;

  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    /// Encounter distance.
    double encounter_m = 2000.0;
    /// Collision forecast: horizontal danger radius at CPA...
    double danger_cpa_m = 500.0;
    /// ...within this lookahead.
    DurationMs cpa_lookahead = 20 * kMinute;
    /// Vertical separation below which aviation pairs are in conflict.
    double danger_alt_m = 300.0;
    /// A stored report older than this is ignored as a partner.
    DurationMs staleness = 3 * kMinute;
    DurationMs realarm_interval = 5 * kMinute;
    /// Grid cell sizing: covers max(encounter, lookahead reach) blocking.
    double blocking_cell_deg = 0.05;
    /// Reports between eviction sweeps of entities staler than
    /// `staleness` (bounds detector state on long-running fleets). The
    /// sweep runs at identical report counts on the serial and batch
    /// paths, so it never perturbs serial/batch equivalence.
    std::size_t evict_sweep_interval = 1024;
    /// Below this many candidate pairs a batch is evaluated inline even
    /// when a pool is available (dispatch would cost more than the math).
    std::size_t min_parallel_pairs = 256;
  };

  explicit ProximityDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

  /// Epoch-batched form: plans candidate pairs serially in input order,
  /// evaluates CPA per grid-cell group in parallel on `pool` (inline when
  /// null), then rate-limits and emits serially in input order. Events
  /// append to `events`; when `offsets` is non-null it receives
  /// reports.size()+1 cumulative event positions so the caller can splice
  /// per-report slices back into a serial-identical interleaving.
  void ProcessBatch(std::span<const PositionReport> reports,
                    ThreadPool* pool, std::vector<Event>* events,
                    std::vector<std::size_t>* offsets);

  /// ProcessBatch + operator-metrics accounting (one latency sample per
  /// batch, per-item items_in/out).
  void ProcessBatchCounted(std::span<const PositionReport> reports,
                           ThreadPool* pool, std::vector<Event>* events,
                           std::vector<std::size_t>* offsets);

  /// Introspection for state-bound tests and benches.
  struct StateStats {
    std::size_t tracked_entities = 0;
    /// Rows in the SoA snapshot log (>= tracked until compaction).
    std::size_t snapshot_rows = 0;
    std::size_t occupied_cells = 0;
    std::size_t rate_entries = 0;
  };
  StateStats Stats() const;

  /// Candidate CPA pairs evaluated by the most recent batch (bench).
  std::size_t last_batch_pairs() const { return candidates_.size(); }

 private:
  /// One planned CPA evaluation: latest-row indices into fleet_ for the
  /// incoming report (a) and its partner (b) at plan time. Snapshot rows
  /// are immutable, so the pair can be evaluated on any thread later.
  /// Aliased to the batch kernel's pair type so a planned slice feeds
  /// ComputeCpaBatch directly.
  using Candidate = CpaPair;

  void RunBatch(std::span<const PositionReport> reports, ThreadPool* pool,
                std::vector<Event>* events,
                std::vector<std::size_t>* offsets);
  /// Serial plan step for one report: re-files it in the blocking grid,
  /// appends its snapshot row, collects candidate partners, assigns the
  /// report to its cell's evaluation group, and runs the amortized
  /// eviction sweep when due.
  void PlanReport(const PositionReport& report);
  /// Drops entities staler than `staleness` by rebuilding the
  /// tombstone-free maps. Plan-coupled: runs mid-plan at sweep points.
  void EvictStaleEntities();
  /// Drops rate-limit entries older than the re-alarm interval relative
  /// to `watermark`. Emit-coupled: the plan pass only schedules it (see
  /// pending_prunes_); the emit pass replays it at the exact report index
  /// a serial run would have pruned at.
  void PruneRateMaps(TimestampMs watermark);
  /// Rewrites fleet_ to live rows only when the append log has bloated
  /// past ~2x the live fleet. Runs only between batches (mid-batch rows
  /// are referenced by candidates).
  void CompactSnapshotIfBloated(std::size_t incoming);

  Config config_;
  UniformGrid grid_;
  /// Append-only SoA log of processed reports; latest_row_ points at the
  /// current row per entity.
  FleetSnapshot fleet_;
  FlatHashMap<EntityId, std::uint32_t> latest_row_;
  /// Entity -> GridCell::Key() it is filed under.
  FlatHashMap<EntityId, std::uint64_t> entity_cell_;
  /// GridCell::Key() -> entities currently filed there.
  FlatHashMap<std::uint64_t, std::vector<EntityId>> cell_members_;
  /// Packed (min,max) entity pair -> last alarm time, per alarm family.
  FlatHashMap<std::uint64_t, TimestampMs> last_encounter_;
  FlatHashMap<std::uint64_t, TimestampMs> last_collision_;
  TimestampMs watermark_ = 0;
  bool has_watermark_ = false;
  std::size_t reports_since_sweep_ = 0;

  /// Rate-map prune scheduled by the plan pass for the emit pass.
  struct PendingPrune {
    std::uint32_t report_idx = 0;
    TimestampMs watermark = 0;
  };

  // Per-batch scratch, reused across batches to avoid reallocation.
  std::vector<PendingPrune> pending_prunes_;
  std::vector<Candidate> candidates_;
  /// candidates_ prefix end per planned report (report i owns
  /// [cand_end_[i-1], cand_end_[i])).
  std::vector<std::size_t> cand_end_;
  std::vector<CpaResult> cpa_;
  /// Cell key -> evaluation-group index for the current batch.
  FlatHashMap<std::uint64_t, std::uint32_t> cell_group_;
  /// Group -> indices of planned reports in that cell (first
  /// `live_groups_` entries are active this batch).
  std::vector<std::vector<std::uint32_t>> groups_;
  std::size_t live_groups_ = 0;

  obs::Counter* cpa_pairs_counter_;
  obs::AtomicLogHistogram* cpa_pairs_hist_;
};

/// Area entry/exit recognizer over named polygons.
class AreaEventDetector : public Operator<PositionReport, Event> {
 public:
  /// Inside/outside state is per (entity, area): safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  explicit AreaEventDetector(std::vector<NamedArea> areas);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  std::vector<NamedArea> areas_;
  /// (entity, area index) -> inside?
  std::map<std::pair<EntityId, std::size_t>, bool> inside_;
};

/// Loitering: the entity keeps reporting with nonzero speed but its net
/// displacement over the window stays under the radius.
class LoiteringDetector : public Operator<PositionReport, Event> {
 public:
  /// Displacement window is per entity: safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  struct Config {
    DurationMs window = 20 * kMinute;
    double radius_m = 1000.0;
    /// Entity must be nominally under way (anchored vessels don't loiter).
    double min_speed_mps = 0.5;
    DurationMs realarm_interval = 30 * kMinute;
  };

  explicit LoiteringDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  Config config_;
  std::map<EntityId, std::deque<PositionReport>> window_;
  std::map<EntityId, TimestampMs> last_alarm_;
};

/// Sector occupancy monitor with demand forecasting (the ATM use case:
/// "prediction of ... capacity demand"). Occupancy is evaluated per
/// entity report; when the number of entities currently inside a sector
/// exceeds its capacity -> kCapacityWarning. Dead-reckoning entities
/// `forecast_horizon` ahead gives predicted occupancy ->
/// kCapacityForecast before the overload happens.
///
/// Occupancy is maintained *incrementally*: each report retires the
/// entity's previous sector contributions and adds its new ones (plus a
/// staleness-expiry heap), so per-report cost is O(sectors) regardless of
/// fleet size. Config::incremental = false keeps the legacy
/// O(fleet x sectors) rescan as an equivalence baseline.
class CapacityMonitor : public Operator<PositionReport, Event> {
 public:
  /// Sector occupancy counts all entities: must see the whole stream.
  static constexpr StageKind kStage = StageKind::kGlobal;

  struct Sector {
    std::string name;
    Polygon polygon;
    int capacity = 10;
  };
  struct Config {
    DurationMs forecast_horizon = 10 * kMinute;
    /// Entities unseen for longer are dropped from occupancy.
    DurationMs staleness = 5 * kMinute;
    DurationMs realarm_interval = 5 * kMinute;
    /// Fastest entity the evaluation prefilter must account for: sector
    /// alarm checks consider any report within
    /// max_speed_mps * forecast_horizon (plus a margin) of the sector
    /// bbox, so a fast mover can trigger a forecast for a sector it can
    /// dead-reckon into even while still outside it. 350 m/s covers
    /// airliner cruise; maritime-only deployments may lower it.
    double max_speed_mps = 350.0;
    /// Delta-maintained counters (default) vs legacy full rescan.
    bool incremental = true;
    /// Reports between amortized rebuilds dropping expired entities.
    std::size_t compact_interval = 4096;
  };

  CapacityMonitor(std::vector<Sector> sectors, Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

  /// Entities currently contributing to occupancy (tests).
  std::size_t tracked_entities() const { return active_entities_; }

 private:
  /// Per-entity contribution ledger of the incremental path.
  struct EntityState {
    TimestampMs ts = 0;
    /// Bumped on every update; expiry-heap entries carry the version they
    /// were pushed for, so superseded entries are ignored on pop.
    std::uint32_t version = 0;
    bool active = false;
    /// Sector indices this entity currently counts toward.
    std::vector<std::uint32_t> inside;
    std::vector<std::uint32_t> predicted;
  };
  struct Expiry {
    TimestampMs at = 0;
    EntityId entity = 0;
    std::uint32_t version = 0;
  };
  /// Comparator making std::push_heap/pop_heap a min-heap on `at`.
  static bool HeapLater(const Expiry& a, const Expiry& b) {
    return a.at > b.at;
  }

  void ProcessIncremental(const PositionReport& report,
                          std::vector<Event>* out);
  void ProcessRescan(const PositionReport& report, std::vector<Event>* out);
  /// Removes `st`'s sector contributions from the counters.
  void Retire(EntityState* st);
  /// Pops every entity whose latest report has gone stale as of
  /// `watermark_` and retires its contributions.
  void ExpireStale();
  /// Emits warning/forecast events for sectors near the report, from
  /// whichever counters the active mode maintains.
  void EmitAlarms(const PositionReport& report,
                  std::span<const int> occupancy,
                  std::span<const int> predicted, std::vector<Event>* out);
  void CompactEntities();

  std::vector<Sector> sectors_;
  Config config_;
  /// Per-sector alarm-evaluation gate: sector bbox inflated by the
  /// dead-reckoning reach (max_speed_mps x forecast_horizon), never less
  /// than the legacy 0.5 deg margin.
  std::vector<BoundingBox> eval_bbox_;
  /// Same boxes as SIMD lanes, plus per-report hit bytes (scratch):
  /// one batched containment test replaces the per-sector predicate in
  /// the rescan/alarm loops. Bit-identical kernel, so gating decisions
  /// are unchanged.
  BboxSoa eval_bbox_soa_;
  std::vector<std::uint8_t> bbox_near_;

  // Incremental-mode state.
  FlatHashMap<EntityId, EntityState> entities_;
  std::vector<int> occupancy_;
  std::vector<int> predicted_;
  /// Min-heap on `at` (std::greater via HeapLater).
  std::vector<Expiry> expiry_;
  TimestampMs watermark_ = 0;
  bool has_watermark_ = false;
  std::size_t active_entities_ = 0;
  std::size_t reports_since_compact_ = 0;

  // Rescan-mode state (legacy baseline).
  FlatHashMap<EntityId, PositionReport> latest_;

  FlatHashMap<std::size_t, TimestampMs> last_warning_;
  FlatHashMap<std::size_t, TimestampMs> last_forecast_;

  obs::Counter* delta_updates_counter_;
};

}  // namespace datacron

#endif  // DATACRON_CEP_DETECTORS_H_
