#ifndef DATACRON_CEP_DETECTORS_H_
#define DATACRON_CEP_DETECTORS_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cep/cpa.h"
#include "cep/event.h"
#include "geo/grid.h"
#include "geo/polygon.h"
#include "stream/operator.h"

namespace datacron {

/// Streaming encounter + collision-forecast detector.
///
/// Keeps the latest report per entity in a spatial grid; each incoming
/// report is checked against its grid neighborhood:
///  - current distance < encounter threshold  -> kEncounter
///  - CPA within lookahead & below the danger radius -> kCollisionForecast
/// Re-alarms for the same pair are suppressed for `realarm_interval`.
class ProximityDetector : public Operator<PositionReport, Event> {
 public:
  /// Pair state spans entities: must see the whole stream.
  static constexpr StageKind kStage = StageKind::kGlobal;

  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    /// Encounter distance.
    double encounter_m = 2000.0;
    /// Collision forecast: horizontal danger radius at CPA...
    double danger_cpa_m = 500.0;
    /// ...within this lookahead.
    DurationMs cpa_lookahead = 20 * kMinute;
    /// Vertical separation below which aviation pairs are in conflict.
    double danger_alt_m = 300.0;
    /// A stored report older than this is ignored as a partner.
    DurationMs staleness = 3 * kMinute;
    DurationMs realarm_interval = 5 * kMinute;
    /// Grid cell sizing: covers max(encounter, lookahead reach) blocking.
    double blocking_cell_deg = 0.05;
  };

  explicit ProximityDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  Config config_;
  UniformGrid grid_;
  /// Latest report per entity.
  std::map<EntityId, PositionReport> latest_;
  /// Cell -> entities currently filed there.
  std::unordered_map<GridCell, std::vector<EntityId>, GridCellHash>
      cell_members_;
  std::map<EntityId, GridCell> entity_cell_;
  /// (a<b pair) -> last alarm time, per alarm family.
  std::map<std::pair<EntityId, EntityId>, TimestampMs> last_encounter_;
  std::map<std::pair<EntityId, EntityId>, TimestampMs> last_collision_;
};

/// Area entry/exit recognizer over named polygons.
class AreaEventDetector : public Operator<PositionReport, Event> {
 public:
  /// Inside/outside state is per (entity, area): safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  explicit AreaEventDetector(std::vector<NamedArea> areas);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  std::vector<NamedArea> areas_;
  /// (entity, area index) -> inside?
  std::map<std::pair<EntityId, std::size_t>, bool> inside_;
};

/// Loitering: the entity keeps reporting with nonzero speed but its net
/// displacement over the window stays under the radius.
class LoiteringDetector : public Operator<PositionReport, Event> {
 public:
  /// Displacement window is per entity: safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  struct Config {
    DurationMs window = 20 * kMinute;
    double radius_m = 1000.0;
    /// Entity must be nominally under way (anchored vessels don't loiter).
    double min_speed_mps = 0.5;
    DurationMs realarm_interval = 30 * kMinute;
  };

  explicit LoiteringDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  Config config_;
  std::map<EntityId, std::deque<PositionReport>> window_;
  std::map<EntityId, TimestampMs> last_alarm_;
};

/// Sector occupancy monitor with demand forecasting (the ATM use case:
/// "prediction of ... capacity demand"). Occupancy is evaluated per
/// entity report; when the number of entities currently inside a sector
/// exceeds its capacity -> kCapacityWarning. Dead-reckoning every tracked
/// entity `forecast_horizon` ahead gives predicted occupancy ->
/// kCapacityForecast before the overload happens.
class CapacityMonitor : public Operator<PositionReport, Event> {
 public:
  /// Sector occupancy counts all entities: must see the whole stream.
  static constexpr StageKind kStage = StageKind::kGlobal;

  struct Sector {
    std::string name;
    Polygon polygon;
    int capacity = 10;
  };
  struct Config {
    DurationMs forecast_horizon = 10 * kMinute;
    /// Entities unseen for longer are dropped from occupancy.
    DurationMs staleness = 5 * kMinute;
    DurationMs realarm_interval = 5 * kMinute;
  };

  CapacityMonitor(std::vector<Sector> sectors, Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  std::vector<Sector> sectors_;
  Config config_;
  std::map<EntityId, PositionReport> latest_;
  std::map<std::size_t, TimestampMs> last_warning_;
  std::map<std::size_t, TimestampMs> last_forecast_;
};

}  // namespace datacron

#endif  // DATACRON_CEP_DETECTORS_H_
