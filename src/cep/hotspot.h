#ifndef DATACRON_CEP_HOTSPOT_H_
#define DATACRON_CEP_HOTSPOT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cep/event.h"
#include "common/flat_hash.h"
#include "geo/grid.h"
#include "sources/model.h"
#include "stream/operator.h"

namespace datacron {

/// Grid-density hotspot detection with a Getis-Ord-style local z-score:
/// a cell is hot when its (neighborhood-smoothed) count stands out from
/// the global density by more than `zscore_threshold` standard deviations.
/// Operates on batches (one analysis window of reports); the streaming
/// wrapper below maintains the window and also *forecasts* emerging
/// hotspots from the density trend — the paper's "prediction of ...
/// hot spots / paths".
class HotspotAnalyzer {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    double cell_deg = 0.1;
    double zscore_threshold = 3.0;
    /// Count distinct entities, not raw reports (a single anchored vessel
    /// spamming reports is not a hotspot).
    bool distinct_entities = true;
  };

  struct Hotspot {
    GridCell cell;
    LatLon center;
    double count = 0.0;
    double zscore = 0.0;
  };

  explicit HotspotAnalyzer(Config config);

  const UniformGrid& grid() const { return grid_; }
  const Config& config() const { return config_; }

  /// Density per cell (distinct entities or report counts).
  std::unordered_map<GridCell, double, GridCellHash> Density(
      const std::vector<PositionReport>& reports) const;

  /// Hotspots of one batch, ordered by descending z-score.
  std::vector<Hotspot> Detect(
      const std::vector<PositionReport>& reports) const;

  /// Same detection over a pre-computed density map — the form the
  /// streaming wrapper uses, since it maintains per-cell counts
  /// incrementally instead of re-scanning a window buffer.
  std::vector<Hotspot> DetectFromDensity(
      const std::unordered_map<GridCell, double, GridCellHash>& density)
      const;

  /// Trend-based forecast: cells whose density is rising fast enough that
  /// linear extrapolation crosses the hotspot bar within `horizon`
  /// windows. `previous` and `current` are densities of two consecutive
  /// windows.
  std::vector<Hotspot> ForecastEmerging(
      const std::unordered_map<GridCell, double, GridCellHash>& previous,
      const std::unordered_map<GridCell, double, GridCellHash>& current,
      double horizon_windows = 1.0) const;

 private:
  /// Mean/stddev of per-cell counts over occupied cells (zeros included
  /// for cells inside the data's bounding envelope would underestimate
  /// density contrast on sparse seas; occupied-cell statistics match how
  /// MSA hotspot tooling behaves).
  void GlobalStats(
      const std::unordered_map<GridCell, double, GridCellHash>& density,
      double* mean, double* stddev) const;

  Config config_;
  UniformGrid grid_;
};

/// Tumbling-window streaming wrapper: maintains per-cell density counts
/// incrementally as reports arrive; when a window closes it emits
/// kHotspot events for detected cells and kHotspotForecast for emerging
/// ones. Closing a window is O(occupied cells) — no window buffer is
/// kept, so memory and close cost are independent of report rate.
class HotspotDetector : public Operator<PositionReport, Event> {
 public:
  /// Cell density aggregates across entities: must see the whole stream.
  static constexpr StageKind kStage = StageKind::kGlobal;

  HotspotDetector(HotspotAnalyzer::Config config, DurationMs window);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;
  void Flush(std::vector<Event>* out) override;

 private:
  void CloseWindow(TimestampMs window_end, std::vector<Event>* out);

  HotspotAnalyzer analyzer_;
  DurationMs window_;
  TimestampMs window_start_ = 0;
  bool window_open_ = false;
  /// GridCell::Key() -> density count of the open window.
  FlatHashMap<std::uint64_t, double> counts_;
  /// GridCell::Key() -> entities already counted there this window
  /// (distinct_entities mode only).
  FlatHashMap<std::uint64_t, FlatHashSet<EntityId>> seen_;
  std::size_t window_reports_ = 0;
  std::unordered_map<GridCell, double, GridCellHash> prev_density_;
  bool has_prev_ = false;
};

}  // namespace datacron

#endif  // DATACRON_CEP_HOTSPOT_H_
