#ifndef DATACRON_CEP_ANOMALY_H_
#define DATACRON_CEP_ANOMALY_H_

#include <map>

#include "cep/event.h"
#include "stream/operator.h"

namespace datacron {

/// Communication-gap recognizer: an entity that was reporting goes silent
/// longer than `gap_threshold`; the kGap event fires when the entity
/// *reappears* (at reappearance we know the gap's extent) and carries the
/// silence duration plus the distance covered while dark — the inputs of
/// maritime "dark activity" analysis.
class GapDetector : public Operator<PositionReport, Event> {
 public:
  /// Last-report state is per entity: safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  struct Config {
    DurationMs gap_threshold = 10 * kMinute;
  };

  GapDetector() : GapDetector(Config()) {}
  explicit GapDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  Config config_;
  std::map<EntityId, PositionReport> last_;
};

/// Speed-anomaly recognizer: keeps a per-entity running speed profile
/// (mean/variance) and flags reports whose speed deviates more than
/// `zscore_threshold` standard deviations from the entity's own history —
/// the self-baselining anomaly definition used in MSA (a ferry doing 25 kn
/// is normal; a trawler doing 25 kn is not).
class SpeedAnomalyDetector : public Operator<PositionReport, Event> {
 public:
  /// Speed profile is per entity: safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  struct Config {
    /// Minimum history before the profile is trusted.
    std::size_t warmup_reports = 30;
    double zscore_threshold = 4.0;
    /// Profile floor: below this stddev, use this (quantization noise).
    double min_stddev_mps = 0.5;
    DurationMs realarm_interval = 10 * kMinute;
  };

  SpeedAnomalyDetector() : SpeedAnomalyDetector(Config()) {}
  explicit SpeedAnomalyDetector(Config config);

  void Process(const PositionReport& report,
               std::vector<Event>* out) override;

 private:
  struct Profile {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;

    double Stddev() const;
    void Add(double x);
  };

  Config config_;
  std::map<EntityId, Profile> profiles_;
  std::map<EntityId, TimestampMs> last_alarm_;
};

}  // namespace datacron

#endif  // DATACRON_CEP_ANOMALY_H_
