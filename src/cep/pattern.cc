#include "cep/pattern.h"

#include <algorithm>

namespace datacron {

PatternStep Pattern::OnKind(EventKind kind) {
  return PatternStep{EventKindName(kind),
                     [kind](const Event& e) { return e.kind == kind; },
                     /*negated=*/false};
}

PatternStep Pattern::NotKind(EventKind kind) {
  return PatternStep{std::string("not_") + EventKindName(kind),
                     [kind](const Event& e) { return e.kind == kind; },
                     /*negated=*/true};
}

PatternMatcher::PatternMatcher(Pattern pattern)
    : Operator<Event, Event>("pattern:" + pattern.name),
      pattern_(std::move(pattern)) {}

std::size_t PatternMatcher::ActiveRuns() const {
  std::size_t n = 0;
  for (const auto& [id, rs] : runs_) n += rs.size();
  return n;
}

void PatternMatcher::Process(const Event& event, std::vector<Event>* out) {
  if (event.entities.empty() || pattern_.steps.empty()) return;
  const EntityId key = event.entities.front();
  std::vector<Run>& runs = runs_[key];

  // Expire runs outside the window.
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [&](const Run& r) {
                              return event.time - r.started >
                                     pattern_.within;
                            }),
             runs.end());

  // Advance existing runs (iterate over a snapshot size; completed runs
  // are removed, killed runs too).
  std::vector<Run> survivors;
  survivors.reserve(runs.size() + 1);
  for (Run& run : runs) {
    const PatternStep& step = pattern_.steps[run.next_step];
    if (step.negated) {
      if (step.predicate(event)) continue;  // killed
      // A negated step is "pending" until the following step fires; check
      // whether this event satisfies the step after the negation.
      if (run.next_step + 1 < pattern_.steps.size() &&
          pattern_.steps[run.next_step + 1].predicate(event) &&
          !pattern_.steps[run.next_step + 1].negated) {
        run.next_step += 2;
        run.step_times.push_back(event.time);
        run.step_times.push_back(event.time);
      }
    } else if (step.predicate(event)) {
      run.next_step += 1;
      run.step_times.push_back(event.time);
    }
    if (run.next_step >= pattern_.steps.size()) {
      Event composite;
      composite.kind = EventKind::kComposite;
      composite.time = event.time;
      composite.predicted_time = event.time;
      composite.entities = event.entities;
      composite.position = event.position;
      composite.label = pattern_.name;
      composite.attributes["steps"] =
          static_cast<double>(pattern_.steps.size());
      composite.attributes["span_s"] =
          (event.time - run.started) / 1000.0;
      out->push_back(std::move(composite));
    } else {
      survivors.push_back(std::move(run));
    }
  }
  runs = std::move(survivors);

  // Start a new run if the event satisfies the first step.
  const PatternStep& first = pattern_.steps.front();
  if (!first.negated && first.predicate(event)) {
    Run run;
    run.started = event.time;
    run.step_times.push_back(event.time);
    run.next_step = 1;
    if (run.next_step >= pattern_.steps.size()) {
      Event composite;
      composite.kind = EventKind::kComposite;
      composite.time = event.time;
      composite.predicted_time = event.time;
      composite.entities = event.entities;
      composite.position = event.position;
      composite.label = pattern_.name;
      composite.attributes["steps"] = 1.0;
      composite.attributes["span_s"] = 0.0;
      out->push_back(std::move(composite));
    } else {
      runs.push_back(std::move(run));
    }
  }
}

}  // namespace datacron
