#ifndef DATACRON_CEP_EVENT_H_
#define DATACRON_CEP_EVENT_H_

#include <map>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Kinds of complex events the recognition component emits. The first
/// group are *recognized* (they happened); the k*Forecast group are
/// *forecast* (predicted to happen), each carrying a lead time.
enum class EventKind : std::uint8_t {
  kEncounter = 0,       // two entities within proximity threshold
  kAreaEntry,
  kAreaExit,
  kLoitering,           // low net displacement while under way
  kGap,                 // communication silence
  kSpeedAnomaly,        // speed outside the entity's plausible envelope
  kCapacityWarning,     // sector occupancy above threshold
  kHotspot,             // persistent high-density cell
  kCollisionForecast,   // CPA predicts dangerous approach
  kCapacityForecast,    // sector predicted to exceed capacity
  kHotspotForecast,     // cell density trending to hotspot
  kComposite,           // NFA pattern match
};

const char* EventKindName(EventKind kind);

/// True for the k*Forecast kinds.
bool IsForecastKind(EventKind kind);

/// One recognized or forecast complex event.
struct Event {
  EventKind kind = EventKind::kEncounter;
  /// Detection time (when the recognizer emitted it).
  TimestampMs time = 0;
  /// For forecasts: when the predicted situation occurs (== time for
  /// recognized events). lead = predicted_time - time.
  TimestampMs predicted_time = 0;
  /// Entities involved (1 for unary events, 2 for encounters/collisions,
  /// n for capacity).
  std::vector<EntityId> entities;
  /// Representative location.
  GeoPoint position;
  /// Free-form label (area name, pattern name, cell id).
  std::string label;
  /// Numeric attributes (distance_m, cpa_m, occupancy, zscore, ...).
  std::map<std::string, double> attributes;

  DurationMs LeadTime() const { return predicted_time - time; }

  /// Field-wise equality; lets tests assert byte-identity of event
  /// streams across serial and sharded engine runs.
  bool operator==(const Event&) const = default;

  std::string ToString() const;
};

}  // namespace datacron

#endif  // DATACRON_CEP_EVENT_H_
