#include "cep/event.h"

#include "common/strings.h"
#include "common/time_utils.h"

namespace datacron {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kEncounter:
      return "encounter";
    case EventKind::kAreaEntry:
      return "area_entry";
    case EventKind::kAreaExit:
      return "area_exit";
    case EventKind::kLoitering:
      return "loitering";
    case EventKind::kGap:
      return "gap";
    case EventKind::kSpeedAnomaly:
      return "speed_anomaly";
    case EventKind::kCapacityWarning:
      return "capacity_warning";
    case EventKind::kHotspot:
      return "hotspot";
    case EventKind::kCollisionForecast:
      return "collision_forecast";
    case EventKind::kCapacityForecast:
      return "capacity_forecast";
    case EventKind::kHotspotForecast:
      return "hotspot_forecast";
    case EventKind::kComposite:
      return "composite";
  }
  return "?";
}

bool IsForecastKind(EventKind kind) {
  return kind == EventKind::kCollisionForecast ||
         kind == EventKind::kCapacityForecast ||
         kind == EventKind::kHotspotForecast;
}

std::string Event::ToString() const {
  std::string ents;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    if (i > 0) ents += "+";
    ents += StrFormat("%u", entities[i]);
  }
  std::string out =
      StrFormat("[%s] t=%s entities=%s", EventKindName(kind),
                FormatIso8601(time).c_str(), ents.c_str());
  if (!label.empty()) out += " label=" + label;
  if (IsForecastKind(kind)) {
    out += StrFormat(" lead=%llds",
                     static_cast<long long>(LeadTime() / 1000));
  }
  for (const auto& [k, v] : attributes) {
    out += StrFormat(" %s=%.1f", k.c_str(), v);
  }
  return out;
}

}  // namespace datacron
