#include "cep/cpa.h"

#include <algorithm>
#include <cmath>

namespace datacron {

namespace {

/// The kinematic state CPA actually needs, extracted once from either a
/// PositionReport or a FleetSnapshot row so both entry points run the
/// exact same scalar core (bit-identical results).
struct Track {
  GeoPoint position;
  double speed_mps = 0.0;
  double course_deg = 0.0;
  double vrate_mps = 0.0;
  TimestampMs timestamp = 0;
};

Track TrackOf(const PositionReport& r) {
  return Track{r.position, r.speed_mps, r.course_deg, r.vertical_rate_mps,
               r.timestamp};
}

Track TrackOf(const FleetSnapshot& fleet, std::size_t i) {
  return Track{{fleet.lat_deg[i], fleet.lon_deg[i], fleet.alt_m[i]},
               fleet.speed_mps[i],
               fleet.course_deg[i],
               fleet.vrate_mps[i],
               fleet.ts[i]};
}

CpaResult CpaCore(Track a, Track b) {
  // Align both tracks to the later timestamp by dead reckoning.
  const TimestampMs t0 = std::max(a.timestamp, b.timestamp);
  auto align = [t0](Track* r) {
    const double dt_s = static_cast<double>(t0 - r->timestamp) / 1000.0;
    if (dt_s > 0) {
      r->position = DeadReckon(r->position, r->course_deg, r->speed_mps,
                               r->vrate_mps, dt_s);
      r->timestamp = t0;
    }
  };
  align(&a);
  align(&b);

  // Relative kinematics in ENU around a.
  const EnuVector rel_pos = ToEnu(a.position, b.position);
  auto velocity = [](const Track& r, double* ve, double* vn) {
    const double c = r.course_deg * kDegToRad;
    *ve = r.speed_mps * std::sin(c);
    *vn = r.speed_mps * std::cos(c);
  };
  double ave, avn, bve, bvn;
  velocity(a, &ave, &avn);
  velocity(b, &bve, &bvn);
  const double rve = bve - ave;
  const double rvn = bvn - avn;

  CpaResult out;
  out.d_now_m = std::sqrt(rel_pos.east_m * rel_pos.east_m +
                          rel_pos.north_m * rel_pos.north_m);
  const double speed2 = rve * rve + rvn * rvn;
  if (speed2 < 1e-9) {
    // No relative motion: separation is constant.
    out.t_cpa_s = 0.0;
    out.d_cpa_m = out.d_now_m;
    out.d_alt_m = std::fabs(rel_pos.up_m);
    return out;
  }
  // Minimize |p + v t|^2 -> t = -(p . v) / |v|^2, clamped to the future.
  double t = -(rel_pos.east_m * rve + rel_pos.north_m * rvn) / speed2;
  t = std::max(0.0, t);
  out.t_cpa_s = t;
  const double de = rel_pos.east_m + rve * t;
  const double dn = rel_pos.north_m + rvn * t;
  out.d_cpa_m = std::sqrt(de * de + dn * dn);
  const double rel_vrate = b.vrate_mps - a.vrate_mps;
  out.d_alt_m = std::fabs(rel_pos.up_m + rel_vrate * t);
  return out;
}

}  // namespace

CpaResult ComputeCpa(const PositionReport& a, const PositionReport& b) {
  return CpaCore(TrackOf(a), TrackOf(b));
}

CpaResult ComputeCpa(const FleetSnapshot& fleet, std::size_t a,
                     std::size_t b) {
  return CpaCore(TrackOf(fleet, a), TrackOf(fleet, b));
}

}  // namespace datacron
