#include "cep/cpa.h"

#include <algorithm>
#include <cmath>

namespace datacron {

CpaResult ComputeCpa(const PositionReport& a_in, const PositionReport& b_in) {
  // Align both reports to the later timestamp by dead reckoning.
  PositionReport a = a_in;
  PositionReport b = b_in;
  const TimestampMs t0 = std::max(a.timestamp, b.timestamp);
  auto align = [t0](PositionReport* r) {
    const double dt_s = static_cast<double>(t0 - r->timestamp) / 1000.0;
    if (dt_s > 0) {
      r->position = DeadReckon(r->position, r->course_deg, r->speed_mps,
                               r->vertical_rate_mps, dt_s);
      r->timestamp = t0;
    }
  };
  align(&a);
  align(&b);

  // Relative kinematics in ENU around a.
  const EnuVector rel_pos = ToEnu(a.position, b.position);
  auto velocity = [](const PositionReport& r, double* ve, double* vn) {
    const double c = r.course_deg * kDegToRad;
    *ve = r.speed_mps * std::sin(c);
    *vn = r.speed_mps * std::cos(c);
  };
  double ave, avn, bve, bvn;
  velocity(a, &ave, &avn);
  velocity(b, &bve, &bvn);
  const double rve = bve - ave;
  const double rvn = bvn - avn;

  CpaResult out;
  out.d_now_m = std::sqrt(rel_pos.east_m * rel_pos.east_m +
                          rel_pos.north_m * rel_pos.north_m);
  const double speed2 = rve * rve + rvn * rvn;
  if (speed2 < 1e-9) {
    // No relative motion: separation is constant.
    out.t_cpa_s = 0.0;
    out.d_cpa_m = out.d_now_m;
    out.d_alt_m = std::fabs(rel_pos.up_m);
    return out;
  }
  // Minimize |p + v t|^2 -> t = -(p . v) / |v|^2, clamped to the future.
  double t = -(rel_pos.east_m * rve + rel_pos.north_m * rvn) / speed2;
  t = std::max(0.0, t);
  out.t_cpa_s = t;
  const double de = rel_pos.east_m + rve * t;
  const double dn = rel_pos.north_m + rvn * t;
  out.d_cpa_m = std::sqrt(de * de + dn * dn);
  const double rel_vrate = b.vertical_rate_mps - a.vertical_rate_mps;
  out.d_alt_m = std::fabs(rel_pos.up_m + rel_vrate * t);
  return out;
}

}  // namespace datacron
