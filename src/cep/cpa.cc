#include "cep/cpa.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace datacron {

namespace {

/// The kinematic state CPA actually needs, extracted once from either a
/// PositionReport or a FleetSnapshot row so both entry points run the
/// exact same code (bit-identical results). The snapshot path loads the
/// precomputed ve/vn/cos_lat columns; the report path computes them
/// with the identical expressions.
struct Track {
  GeoPoint position;
  double speed_mps = 0.0;
  double course_deg = 0.0;
  double vrate_mps = 0.0;
  double ve_mps = 0.0;
  double vn_mps = 0.0;
  double cos_lat = 1.0;
  TimestampMs timestamp = 0;
};

Track TrackOf(const PositionReport& r) {
  Track t{r.position,   r.speed_mps, r.course_deg, r.vertical_rate_mps,
          0.0,          0.0,         0.0,          r.timestamp};
  CourseToVelocityMps(r.course_deg, r.speed_mps, &t.ve_mps, &t.vn_mps);
  t.cos_lat = std::cos(r.position.lat_deg * kDegToRad);
  return t;
}

Track TrackOf(const FleetSnapshot& fleet, std::size_t i) {
  return Track{{fleet.lat_deg[i], fleet.lon_deg[i], fleet.alt_m[i]},
               fleet.speed_mps[i],
               fleet.course_deg[i],
               fleet.vrate_mps[i],
               fleet.ve_mps[i],
               fleet.vn_mps[i],
               fleet.cos_lat[i],
               fleet.ts[i]};
}

/// One pair's inputs to the vector phase: positions aligned to a common
/// clock, latitude cosine of the ENU reference, velocity components.
/// Pure numbers — everything branchy or transcendental happened here.
struct CpaLane {
  double a_lat, a_lon, a_alt, a_cos, a_ve, a_vn, a_vr;
  double b_lat, b_lon, b_alt, b_ve, b_vn, b_vr;
};

/// Scalar phase 1: align both tracks to the later timestamp by dead
/// reckoning (branch + libm, rare in steady streams where partners
/// share epochs) and gather the lane inputs.
CpaLane MakeLane(Track a, Track b) {
  const TimestampMs t0 = std::max(a.timestamp, b.timestamp);
  auto align = [t0](Track* r) {
    const double dt_s = static_cast<double>(t0 - r->timestamp) / 1000.0;
    if (dt_s > 0) {
      r->position = DeadReckon(r->position, r->course_deg, r->speed_mps,
                               r->vrate_mps, dt_s);
      r->timestamp = t0;
      r->cos_lat = std::cos(r->position.lat_deg * kDegToRad);
    }
  };
  align(&a);
  align(&b);
  return CpaLane{a.position.lat_deg, a.position.lon_deg, a.position.alt_m,
                 a.cos_lat,          a.ve_mps,           a.vn_mps,
                 a.vrate_mps,        b.position.lat_deg, b.position.lon_deg,
                 b.position.alt_m,   b.ve_mps,           b.vn_mps,
                 b.vrate_mps};
}

/// SoA view over the lane inputs and result columns.
struct LaneView {
  const double *a_lat, *a_lon, *a_alt, *a_cos, *a_ve, *a_vn, *a_vr;
  const double *b_lat, *b_lon, *b_alt, *b_ve, *b_vn, *b_vr;
  double *t_cpa, *d_cpa, *d_alt, *d_now;
};

/// Vector phase 2: the CPA arithmetic, op-for-op the legacy scalar
/// core (ENU around a with the precomputed cosine, relative velocity,
/// quadratic minimization clamped to the future). Instantiated at both
/// abis; lanes are bit-identical between them, which is what the
/// detectors' byte-identical event guarantee rests on. NaN kinematics
/// flow through the no-relative-motion test exactly as in the scalar
/// branch (ordered compare -> moving path; MAXPD clamp -> t = 0).
template <typename Abi>
void CpaKernel(const LaneView& v, std::size_t begin, std::size_t end) {
  using D = simd::Simd<double, Abi>;
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    const D a_lat = D::Load(v.a_lat + i);
    const D b_lat = D::Load(v.b_lat + i);
    // ToEnu(a, b) with the hoisted cosine: sequential antimeridian
    // wrap, then scaled equirectangular east/north.
    D dlon = D::Load(v.b_lon + i) - D::Load(v.a_lon + i);
    dlon = Select(dlon > D(180.0), dlon - D(360.0), dlon);
    dlon = Select(dlon < D(-180.0), dlon + D(360.0), dlon);
    const D east =
        ((dlon * D(kDegToRad)) * D::Load(v.a_cos + i)) * D(kEarthRadiusMeters);
    const D north = ((b_lat - a_lat) * D(kDegToRad)) * D(kEarthRadiusMeters);
    const D up = D::Load(v.b_alt + i) - D::Load(v.a_alt + i);

    const D rve = D::Load(v.b_ve + i) - D::Load(v.a_ve + i);
    const D rvn = D::Load(v.b_vn + i) - D::Load(v.a_vn + i);

    const D d_now = Sqrt(east * east + north * north);
    const D speed2 = rve * rve + rvn * rvn;
    const auto still = speed2 < D(1e-9);

    D t = Max(-(east * rve + north * rvn) / speed2, D(0.0));
    t = Select(still, D(0.0), t);
    const D de = east + rve * t;
    const D dn = north + rvn * t;
    const D d_cpa = Select(still, d_now, Sqrt(de * de + dn * dn));
    const D rvr = D::Load(v.b_vr + i) - D::Load(v.a_vr + i);
    const D d_alt = Select(still, Abs(up), Abs(up + rvr * t));

    t.Store(v.t_cpa + i);
    d_cpa.Store(v.d_cpa + i);
    d_alt.Store(v.d_alt + i);
    d_now.Store(v.d_now + i);
  }
}

/// Single-pair evaluation through the same two phases at width 1.
CpaResult CpaOne(const CpaLane& l) {
  CpaResult r;
  const LaneView v{&l.a_lat, &l.a_lon, &l.a_alt, &l.a_cos,   &l.a_ve,
                   &l.a_vn,  &l.a_vr,  &l.b_lat, &l.b_lon,   &l.b_alt,
                   &l.b_ve,  &l.b_vn,  &l.b_vr,  &r.t_cpa_s, &r.d_cpa_m,
                   &r.d_alt_m, &r.d_now_m};
  CpaKernel<simd::scalar_abi>(v, 0, 1);
  return r;
}

/// Reused per-thread lane storage for the batch entry point (the
/// detector eval pass runs one batch per planned report slice on pool
/// threads; thread_local keeps it allocation-free and race-free).
struct CpaScratch {
  std::vector<double> a_lat, a_lon, a_alt, a_cos, a_ve, a_vn, a_vr;
  std::vector<double> b_lat, b_lon, b_alt, b_ve, b_vn, b_vr;
  std::vector<double> t_cpa, d_cpa, d_alt, d_now;

  void Resize(std::size_t n) {
    a_lat.resize(n);
    a_lon.resize(n);
    a_alt.resize(n);
    a_cos.resize(n);
    a_ve.resize(n);
    a_vn.resize(n);
    a_vr.resize(n);
    b_lat.resize(n);
    b_lon.resize(n);
    b_alt.resize(n);
    b_ve.resize(n);
    b_vn.resize(n);
    b_vr.resize(n);
    t_cpa.resize(n);
    d_cpa.resize(n);
    d_alt.resize(n);
    d_now.resize(n);
  }

  LaneView View() {
    return LaneView{a_lat.data(), a_lon.data(), a_alt.data(), a_cos.data(),
                    a_ve.data(),  a_vn.data(),  a_vr.data(),  b_lat.data(),
                    b_lon.data(), b_alt.data(), b_ve.data(),  b_vn.data(),
                    b_vr.data(),  t_cpa.data(), d_cpa.data(), d_alt.data(),
                    d_now.data()};
  }
};

}  // namespace

CpaResult ComputeCpa(const PositionReport& a, const PositionReport& b) {
  return CpaOne(MakeLane(TrackOf(a), TrackOf(b)));
}

CpaResult ComputeCpa(const FleetSnapshot& fleet, std::size_t a,
                     std::size_t b) {
  return CpaOne(MakeLane(TrackOf(fleet, a), TrackOf(fleet, b)));
}

void ComputeCpaBatch(const FleetSnapshot& fleet, const CpaPair* pairs,
                     std::size_t n, CpaResult* out, SimdDispatch dispatch) {
  if (n == 0) return;
  static thread_local CpaScratch scratch;
  scratch.Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CpaLane lane = MakeLane(TrackOf(fleet, pairs[i].a_row),
                                  TrackOf(fleet, pairs[i].b_row));
    scratch.a_lat[i] = lane.a_lat;
    scratch.a_lon[i] = lane.a_lon;
    scratch.a_alt[i] = lane.a_alt;
    scratch.a_cos[i] = lane.a_cos;
    scratch.a_ve[i] = lane.a_ve;
    scratch.a_vn[i] = lane.a_vn;
    scratch.a_vr[i] = lane.a_vr;
    scratch.b_lat[i] = lane.b_lat;
    scratch.b_lon[i] = lane.b_lon;
    scratch.b_alt[i] = lane.b_alt;
    scratch.b_ve[i] = lane.b_ve;
    scratch.b_vn[i] = lane.b_vn;
    scratch.b_vr[i] = lane.b_vr;
  }
  const LaneView v = scratch.View();
  std::size_t main = 0;
  if (dispatch == SimdDispatch::kNative) {
    constexpr std::size_t kW = simd::kNativeWidth;
    main = n - n % kW;
    CpaKernel<simd::native_abi>(v, 0, main);
  }
  CpaKernel<simd::scalar_abi>(v, main, n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = CpaResult{scratch.t_cpa[i], scratch.d_cpa[i], scratch.d_alt[i],
                       scratch.d_now[i]};
  }
}

}  // namespace datacron
