#include "cep/anomaly.h"

#include <cmath>

#include "geo/geo.h"

namespace datacron {

GapDetector::GapDetector(Config config)
    : Operator<PositionReport, Event>("gap_detector"), config_(config) {}

void GapDetector::Process(const PositionReport& report,
                          std::vector<Event>* out) {
  auto it = last_.find(report.entity_id);
  if (it != last_.end()) {
    const PositionReport& prev = it->second;
    const DurationMs silence = report.timestamp - prev.timestamp;
    if (silence >= config_.gap_threshold) {
      Event e;
      e.kind = EventKind::kGap;
      e.time = report.timestamp;
      e.predicted_time = report.timestamp;
      e.entities = {report.entity_id};
      e.position = report.position;
      e.attributes["silence_s"] = silence / 1000.0;
      e.attributes["dark_distance_m"] =
          HaversineMeters(prev.position.ll(), report.position.ll());
      out->push_back(std::move(e));
    }
  }
  last_[report.entity_id] = report;
}

double SpeedAnomalyDetector::Profile::Stddev() const {
  return count > 1 ? std::sqrt(m2 / count) : 0.0;
}

void SpeedAnomalyDetector::Profile::Add(double x) {
  ++count;
  const double delta = x - mean;
  mean += delta / count;
  m2 += delta * (x - mean);
}

SpeedAnomalyDetector::SpeedAnomalyDetector(Config config)
    : Operator<PositionReport, Event>("speed_anomaly_detector"),
      config_(config) {}

void SpeedAnomalyDetector::Process(const PositionReport& report,
                                   std::vector<Event>* out) {
  Profile& profile = profiles_[report.entity_id];
  if (profile.count >= config_.warmup_reports) {
    const double stddev =
        std::max(profile.Stddev(), config_.min_stddev_mps);
    const double z = (report.speed_mps - profile.mean) / stddev;
    if (std::fabs(z) >= config_.zscore_threshold) {
      auto alarm_it = last_alarm_.find(report.entity_id);
      if (alarm_it == last_alarm_.end() ||
          report.timestamp - alarm_it->second >=
              config_.realarm_interval) {
        last_alarm_[report.entity_id] = report.timestamp;
        Event e;
        e.kind = EventKind::kSpeedAnomaly;
        e.time = report.timestamp;
        e.predicted_time = report.timestamp;
        e.entities = {report.entity_id};
        e.position = report.position;
        e.attributes["speed_mps"] = report.speed_mps;
        e.attributes["profile_mean_mps"] = profile.mean;
        e.attributes["zscore"] = z;
        out->push_back(std::move(e));
      }
      // Do not poison the profile with the anomalous sample.
      return;
    }
  }
  profile.Add(report.speed_mps);
}

}  // namespace datacron
