#include "cep/hotspot.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"

namespace datacron {

namespace {

std::string CellLabel(const GridCell& c) {
  return StrFormat("cell:%d_%d", c.ix, c.iy);
}

}  // namespace

HotspotAnalyzer::HotspotAnalyzer(Config config)
    : config_(config), grid_(config.region, config.cell_deg) {}

std::unordered_map<GridCell, double, GridCellHash> HotspotAnalyzer::Density(
    const std::vector<PositionReport>& reports) const {
  std::unordered_map<GridCell, double, GridCellHash> density;
  if (config_.distinct_entities) {
    std::unordered_map<GridCell, std::set<EntityId>, GridCellHash> sets;
    for (const PositionReport& r : reports) {
      sets[grid_.CellOf(r.position.ll())].insert(r.entity_id);
    }
    for (const auto& [cell, ids] : sets) {
      density[cell] = static_cast<double>(ids.size());
    }
  } else {
    for (const PositionReport& r : reports) {
      density[grid_.CellOf(r.position.ll())] += 1.0;
    }
  }
  return density;
}

void HotspotAnalyzer::GlobalStats(
    const std::unordered_map<GridCell, double, GridCellHash>& density,
    double* mean, double* stddev) const {
  if (density.empty()) {
    *mean = 0.0;
    *stddev = 0.0;
    return;
  }
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& [cell, c] : density) {
    sum += c;
    sum_sq += c * c;
  }
  const double n = static_cast<double>(density.size());
  *mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - (*mean) * (*mean));
  *stddev = std::sqrt(var);
}

std::vector<HotspotAnalyzer::Hotspot> HotspotAnalyzer::Detect(
    const std::vector<PositionReport>& reports) const {
  return DetectFromDensity(Density(reports));
}

std::vector<HotspotAnalyzer::Hotspot> HotspotAnalyzer::DetectFromDensity(
    const std::unordered_map<GridCell, double, GridCellHash>& density)
    const {
  double mean = 0.0, stddev = 0.0;
  GlobalStats(density, &mean, &stddev);
  std::vector<Hotspot> out;
  if (stddev < 1e-9) return out;
  for (const auto& [cell, count] : density) {
    // Standard score of the cell's own density against the occupied-cell
    // distribution. (A neighborhood-smoothed variant was tried and
    // rejected: averaging over mostly-empty neighbors dilutes genuine
    // single-cell concentrations below any usable threshold.)
    const double z = (count - mean) / stddev;
    if (z >= config_.zscore_threshold) {
      out.push_back(Hotspot{cell, grid_.CellCenter(cell), count, z});
    }
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.zscore > b.zscore;
  });
  return out;
}

std::vector<HotspotAnalyzer::Hotspot> HotspotAnalyzer::ForecastEmerging(
    const std::unordered_map<GridCell, double, GridCellHash>& previous,
    const std::unordered_map<GridCell, double, GridCellHash>& current,
    double horizon_windows) const {
  double mean = 0.0, stddev = 0.0;
  GlobalStats(current, &mean, &stddev);
  std::vector<Hotspot> out;
  if (stddev < 1e-9) return out;
  const double bar = mean + config_.zscore_threshold * stddev;
  for (const auto& [cell, count] : current) {
    if (count >= bar) continue;  // already hot, not "emerging"
    auto it = previous.find(cell);
    const double prev = it == previous.end() ? 0.0 : it->second;
    const double trend = count - prev;
    if (trend <= 0) continue;
    const double projected = count + trend * horizon_windows;
    if (projected >= bar) {
      out.push_back(Hotspot{cell, grid_.CellCenter(cell), projected,
                            (projected - mean) / stddev});
    }
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.zscore > b.zscore;
  });
  return out;
}

HotspotDetector::HotspotDetector(HotspotAnalyzer::Config config,
                                 DurationMs window)
    : Operator<PositionReport, Event>("hotspot_detector"),
      analyzer_(config),
      window_(window) {}

void HotspotDetector::CloseWindow(TimestampMs window_end,
                                  std::vector<Event>* out) {
  // Materialize the incrementally-maintained counts as a density map for
  // the analyzer; O(occupied cells), not O(window reports).
  std::unordered_map<GridCell, double, GridCellHash> density;
  density.reserve(counts_.size());
  counts_.ForEach([&density](std::uint64_t key, const double& count) {
    density[GridCell::FromKey(key)] = count;
  });
  for (const HotspotAnalyzer::Hotspot& h :
       analyzer_.DetectFromDensity(density)) {
    Event e;
    e.kind = EventKind::kHotspot;
    e.time = window_end;
    e.predicted_time = window_end;
    e.position = {h.center.lat_deg, h.center.lon_deg, 0.0};
    e.label = CellLabel(h.cell);
    e.attributes["count"] = h.count;
    e.attributes["zscore"] = h.zscore;
    out->push_back(std::move(e));
  }
  if (has_prev_) {
    for (const HotspotAnalyzer::Hotspot& h :
         analyzer_.ForecastEmerging(prev_density_, density)) {
      Event e;
      e.kind = EventKind::kHotspotForecast;
      e.time = window_end;
      e.predicted_time = window_end + window_;
      e.position = {h.center.lat_deg, h.center.lon_deg, 0.0};
      e.label = CellLabel(h.cell);
      e.attributes["projected_count"] = h.count;
      e.attributes["zscore"] = h.zscore;
      out->push_back(std::move(e));
    }
  }
  prev_density_ = std::move(density);
  has_prev_ = true;
  counts_.Clear();
  seen_.Clear();
  window_reports_ = 0;
}

void HotspotDetector::Process(const PositionReport& report,
                              std::vector<Event>* out) {
  if (!window_open_) {
    window_open_ = true;
    window_start_ = report.timestamp / window_ * window_;
  }
  while (report.timestamp >= window_start_ + window_) {
    CloseWindow(window_start_ + window_, out);
    window_start_ += window_;
  }
  // Incremental density update: one grid lookup + one or two hash
  // upserts per report.
  const std::uint64_t key =
      analyzer_.grid().CellOf(report.position.ll()).Key();
  if (analyzer_.config().distinct_entities) {
    if (seen_[key].Insert(report.entity_id)) counts_[key] += 1.0;
  } else {
    counts_[key] += 1.0;
  }
  ++window_reports_;
}

void HotspotDetector::Flush(std::vector<Event>* out) {
  if (window_open_ && window_reports_ > 0) {
    CloseWindow(window_start_ + window_, out);
  }
}

}  // namespace datacron
