#ifndef DATACRON_OBS_TRACE_H_
#define DATACRON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time_utils.h"

namespace datacron {
namespace obs {

/// One closed span. `name` and `category` must be string literals (or
/// otherwise outlive the collector) — the recorder stores the pointers,
/// never copies, so the hot path does no allocation.
struct TraceSpanRecord {
  const char* name = nullptr;
  const char* category = nullptr;
  std::int64_t start_ns = 0;  // MonotonicNanos at open
  std::int64_t dur_ns = 0;
  std::int64_t epoch = -1;  // -1 = not epoch-scoped
  std::int32_t shard = -1;  // -1 = not shard-scoped
  std::uint32_t tid = 0;    // dense per-process thread index
};

/// --- global switch ------------------------------------------------------
///
/// Tracing is off by default. A disabled TraceSpan costs one relaxed
/// atomic load — no clock read, no buffer touch — so instrumentation can
/// stay compiled into every hot path.

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool on);

/// --- thread-local epoch/shard context -----------------------------------
///
/// Code that knows the current epoch/shard (the sharded runtime, the
/// cluster coordinator) sets the context once; every span opened inside
/// the scope inherits the ids without threading them through call sites.

struct TraceContext {
  std::int64_t epoch = -1;
  std::int32_t shard = -1;
};

const TraceContext& CurrentTraceContext();

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::int64_t epoch, std::int32_t shard = -1);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// --- RAII span ----------------------------------------------------------

namespace internal {
/// Commits one closed span to the calling thread's ring buffer.
void RecordSpan(const char* name, const char* category,
                std::int64_t start_ns, std::int64_t dur_ns,
                std::int64_t epoch, std::int32_t shard);
}  // namespace internal

class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) {
    if (!TracingEnabled()) return;
    name_ = name;
    category_ = category;
    const TraceContext& ctx = CurrentTraceContext();
    epoch_ = ctx.epoch;
    shard_ = ctx.shard;
    start_ns_ = MonotonicNanos();
  }

  ~TraceSpan() { End(); }

  /// Commits the span now instead of at scope exit; later End() calls
  /// (including the destructor's) are no-ops.
  void End() {
    if (start_ns_ < 0) return;
    internal::RecordSpan(name_, category_, start_ns_,
                         MonotonicNanos() - start_ns_, epoch_, shard_);
    start_ns_ = -1;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Overrides the inherited context (call right after construction).
  void set_epoch(std::int64_t epoch) { epoch_ = epoch; }
  void set_shard(std::int32_t shard) { shard_ = shard; }

  /// True when this span is live (tracing was on at construction).
  bool recording() const { return start_ns_ >= 0; }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_ns_ = -1;
  std::int64_t epoch_ = -1;
  std::int32_t shard_ = -1;
};

#define DATACRON_OBS_CONCAT_(a, b) a##b
#define DATACRON_OBS_CONCAT(a, b) DATACRON_OBS_CONCAT_(a, b)

/// Opens a span for the rest of the enclosing scope. `name`/`cat` must be
/// string literals.
#define DATACRON_TRACE_SPAN(name, cat) \
  ::datacron::obs::TraceSpan DATACRON_OBS_CONCAT(trace_span_, \
                                                 __LINE__)(name, cat)

/// --- collection ---------------------------------------------------------

class TraceCollector {
 public:
  /// Moves every thread's buffered spans out (ascending start_ns). Safe to
  /// call while other threads keep recording: each per-thread ring is
  /// single-producer/single-consumer and drains serialize internally.
  static std::vector<TraceSpanRecord> Drain();

  /// Spans lost to ring overflow since process start (cumulative).
  static std::uint64_t DroppedCount();

  /// Drain-and-discard; benches call it between phases they don't trace.
  static void Discard();
};

/// Renders spans as Chrome Trace Event JSON ("X" complete events with
/// epoch/shard args, plus thread-name metadata) loadable by
/// chrome://tracing and Perfetto.
std::string ChromeTraceJson(std::span<const TraceSpanRecord> spans);

/// Drains the collector and writes ChromeTraceJson to `path`. Returns
/// false when the file cannot be written.
bool WriteChromeTraceFile(const std::string& path);

}  // namespace obs
}  // namespace datacron

#endif  // DATACRON_OBS_TRACE_H_
