#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "stream/operator.h"

namespace datacron {
namespace obs {

std::size_t Counter::CellIndex() {
  // Dense per-thread index; threads spread over the cells round-robin so
  // a fixed worker set gets distinct cells up to kCells threads.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return slot;
}

void AtomicLogHistogram::Observe(double x) {
  // Same bucketing as LogHistogram::Add so snapshots merge exactly.
  const auto v =
      x <= 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(x);
  const std::size_t b =
      v == 0 ? 0
             : std::min<std::size_t>(kBuckets - 1, 64 - std::countl_zero(v));
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

LogHistogram AtomicLogHistogram::Snapshot() const {
  LogHistogram h;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    h.AddBucketCount(b, counts_[b].load(std::memory_order_relaxed));
  }
  return h;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-40s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-40s %20lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s n=%-10zu p50=%-12.0f p99=%.0f\n", name.c_str(),
                  h.count(), h.p50(), h.p99());
    out += line;
  }
  return out;
}

namespace {
void AppendJsonKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  // Metric names are code-chosen dotted identifiers; escape the two
  // characters that could break the quoting anyway.
  for (char c : name) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\":";
}
}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, v] : counters) {
    AppendJsonKey(&out, name, &first);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    AppendJsonKey(&out, name, &first);
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendJsonKey(&out, name, &first);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%zu,\"p50\":%.0f,\"p99\":%.0f,\"buckets\":[",
                  h.count(), h.p50(), h.p99());
    out += buf;
    bool first_bucket = true;
    for (std::size_t b = 0; b < LogHistogram::num_buckets(); ++b) {
      if (h.bucket_count(b) == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s[%zu,%zu]",
                    first_bucket ? "" : ",", b, h.bucket_count(b));
      out += buf;
      first_bucket = false;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

AtomicLogHistogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<AtomicLogHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h->Snapshot());
  }
  return snap;
}

void AddOperatorMetrics(const std::string& prefix, const OperatorMetrics& m,
                        MetricsSnapshot* snap) {
  snap->AddCounter(prefix + ".items_in", m.items_in);
  snap->AddCounter(prefix + ".items_out", m.items_out);
  snap->AddHistogram(prefix + ".process_ns", m.latency_ns);
}

}  // namespace obs
}  // namespace datacron
