#ifndef DATACRON_OBS_METRICS_H_
#define DATACRON_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stats.h"

namespace datacron {

struct OperatorMetrics;

namespace obs {

/// Process-wide named counters/gauges/histograms. One registry serves the
/// whole process (MetricsRegistry::Global()); every subsystem publishes
/// under a dotted name ("net.tx_bytes", "pool.queue_ns" — see
/// docs/OBSERVABILITY.md for the naming rules). Instruments are created on
/// first lookup and never destroyed, so hot paths cache the returned
/// pointer in a function-local static and pay only the instrument's own
/// (lock-free) update cost per event.

/// Monotonic counter. Adds are relaxed fetch_adds on one of kCells
/// cache-line-padded cells chosen per thread, so concurrent writers on
/// different threads rarely share a line; Value() folds the cells.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t CellIndex();

  std::array<Cell, kCells> cells_;
};

/// Last-write-wins signed value (queue depths, in-flight windows).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Thread-safe log2-bucketed histogram with the same bucket layout as
/// LogHistogram (bucket 0 holds zeros, bucket b>0 covers [2^(b-1), 2^b)).
/// Observe is two relaxed fetch_adds; Snapshot() converts to the plain
/// mergeable LogHistogram for reports.
class AtomicLogHistogram {
 public:
  void Observe(double x);
  std::uint64_t Count() const {
    return total_.load(std::memory_order_relaxed);
  }
  LogHistogram Snapshot() const;

 private:
  static constexpr std::size_t kBuckets = LogHistogram::num_buckets();
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
};

/// A point-in-time copy of a registry (or of any other metrics source —
/// the engine's operator table folds in through AddOperatorMetrics).
/// Snapshots merge across shards, nodes and processes, and dump to a
/// stable sorted text table or JSON object.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, LogHistogram> histograms;

  void AddCounter(const std::string& name, std::uint64_t v) {
    counters[name] += v;
  }
  void AddGauge(const std::string& name, std::int64_t v) {
    gauges[name] = v;
  }
  void AddHistogram(const std::string& name, const LogHistogram& h) {
    histograms[name].Merge(h);
  }

  /// Folds `other` in: counters add, gauges last-write-wins, histograms
  /// merge bucket-wise. Deterministic: merge order never changes the
  /// result for counters/histograms.
  void Merge(const MetricsSnapshot& other);

  /// "name value" lines sorted by name; histograms report count/p50/p99.
  std::string ToText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with histogram
  /// buckets as [bucket, count] pairs (round-trippable via
  /// LogHistogram::AddBucketCount).
  std::string ToJson() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Find-or-create; returned pointers are stable for the registry's
  /// lifetime (instruments are never removed).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  AtomicLogHistogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<AtomicLogHistogram>, std::less<>>
      histograms_;
};

/// Folds one operator's legacy counters (stream/operator.h) into a
/// snapshot as "<prefix>.items_in", "<prefix>.items_out" counters and a
/// "<prefix>.process_ns" histogram — the bridge that lets the scattered
/// OperatorMetrics tables land in the unified snapshot.
void AddOperatorMetrics(const std::string& prefix, const OperatorMetrics& m,
                        MetricsSnapshot* snap);

}  // namespace obs
}  // namespace datacron

#endif  // DATACRON_OBS_METRICS_H_
