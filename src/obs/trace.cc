#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

namespace datacron {
namespace obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

void EnableTracing(bool on) {
  internal::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

namespace {

thread_local TraceContext t_trace_context;

/// One thread's span ring. Single producer (the owning thread), single
/// consumer (TraceCollector::Drain, serialized by the registry mutex).
/// The producer publishes a slot with a release store of `head`; the
/// consumer acquires `head` before reading slots, and releases `tail` so
/// the producer never overwrites a slot still being read.
class ThreadRing {
 public:
  static constexpr std::size_t kCapacity = 1 << 16;

  explicit ThreadRing(std::uint32_t tid)
      : slots_(kCapacity), tid_(tid) {}

  std::uint32_t tid() const { return tid_; }

  void Push(const TraceSpanRecord& rec) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[h % kCapacity] = rec;
    head_.store(h + 1, std::memory_order_release);
  }

  void DrainInto(std::vector<TraceSpanRecord>* out) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i < h; ++i) {
      out->push_back(slots_[i % kCapacity]);
    }
    tail_.store(h, std::memory_order_release);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<TraceSpanRecord> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint32_t tid_;
};

/// Global registry of every thread's ring. Rings are shared_ptr-owned so
/// a thread may exit while the collector still drains its leftovers.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 0;
};

RingRegistry& Registry() {
  static RingRegistry* r = new RingRegistry();
  return *r;
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    auto r = std::make_shared<ThreadRing>(reg.next_tid++);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void JsonEscapeInto(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const TraceContext& CurrentTraceContext() { return t_trace_context; }

ScopedTraceContext::ScopedTraceContext(std::int64_t epoch,
                                       std::int32_t shard)
    : saved_(t_trace_context) {
  t_trace_context.epoch = epoch;
  if (shard >= 0) t_trace_context.shard = shard;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_context = saved_; }

namespace internal {
void RecordSpan(const char* name, const char* category,
                std::int64_t start_ns, std::int64_t dur_ns,
                std::int64_t epoch, std::int32_t shard) {
  TraceSpanRecord rec;
  rec.name = name;
  rec.category = category;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.epoch = epoch;
  rec.shard = shard;
  ThreadRing& ring = LocalRing();
  rec.tid = ring.tid();
  ring.Push(rec);
}
}  // namespace internal

std::vector<TraceSpanRecord> TraceCollector::Drain() {
  std::vector<TraceSpanRecord> out;
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (const std::shared_ptr<ThreadRing>& ring : reg.rings) {
    ring->DrainInto(&out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t TraceCollector::DroppedCount() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : reg.rings) {
    total += ring->dropped();
  }
  return total;
}

void TraceCollector::Discard() { Drain(); }

std::string ChromeTraceJson(std::span<const TraceSpanRecord> spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];

  // Thread-name metadata so Perfetto labels the rows.
  std::vector<std::uint32_t> tids;
  for (const TraceSpanRecord& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  bool first = true;
  for (std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"thread %u\"}}",
                  first ? "" : ",", tid, tid);
    out += buf;
    first = false;
  }

  for (const TraceSpanRecord& s : spans) {
    out += first ? "{" : ",{";
    first = false;
    out += "\"name\":\"";
    JsonEscapeInto(&out, s.name == nullptr ? "?" : s.name);
    out += "\",\"cat\":\"";
    JsonEscapeInto(&out, s.category == nullptr ? "?" : s.category);
    // Timestamps are microseconds in the Trace Event format.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"epoch\":%lld,\"shard\":%d}}",
                  s.tid, s.start_ns / 1e3, s.dur_ns / 1e3,
                  static_cast<long long>(s.epoch), s.shard);
    out += buf;
  }
  out += "]}";
  return out;
}

bool WriteChromeTraceFile(const std::string& path) {
  const std::vector<TraceSpanRecord> spans = TraceCollector::Drain();
  const std::string json = ChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace obs
}  // namespace datacron
