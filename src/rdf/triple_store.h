#ifndef DATACRON_RDF_TRIPLE_STORE_H_
#define DATACRON_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rdf/term.h"

namespace datacron {

class ThreadPool;

/// One dictionary-encoded RDF statement.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool operator==(const Triple&) const = default;
};

/// A triple pattern; kInvalidTermId (0) in a position means "wildcard".
struct TriplePattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  int BoundCount() const {
    return (s != kInvalidTermId) + (p != kInvalidTermId) +
           (o != kInvalidTermId);
  }
};

/// In-memory triple store with three sorted permutation indexes
/// (SPO, POS, OSP) — the RDF-3X layout. Writes are buffered and indexed on
/// Seal(); the streaming path appends batches and reseals per window, the
/// archival path bulk-loads once. Lookup of any pattern shape is a binary
/// search on the best-matching permutation.
class TripleStore {
 public:
  TripleStore() = default;

  /// Appends a triple to the unsealed buffer.
  void Add(const Triple& t);
  void AddBatch(const std::vector<Triple>& batch);

  /// Reserves buffer capacity for an upcoming bulk load.
  void Reserve(std::size_t n) { spo_.reserve(n); }

  /// Sorts the three permutations and deduplicates. Idempotent.
  /// With a pool, the SPO sort runs as a chunked parallel sort and the POS
  /// and OSP permutations build concurrently; the sealed indexes are
  /// byte-identical to the serial path (sorted + deduplicated is a
  /// canonical form). Safe to call from inside a pool task.
  void Seal(ThreadPool* pool = nullptr);

  bool sealed() const { return sealed_; }
  std::size_t size() const { return spo_.size(); }

  /// All triples matching `pattern`. Requires sealed().
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Visitor variant to avoid materialization; return false to stop early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& visit) const;

  /// Number of matches (exact, computed by range subtraction when the
  /// pattern is a prefix of a permutation). Used for join ordering.
  std::size_t Count(const TriplePattern& pattern) const;

  /// Distinct predicates in the store (diagnostics / stats).
  std::vector<TermId> Predicates() const;

 private:
  enum class Perm { kSpo, kPos, kOsp };

  /// Chooses the permutation whose sort order makes `pattern` a prefix.
  Perm ChoosePerm(const TriplePattern& pattern) const;

  std::vector<Triple> spo_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  bool sealed_ = false;
};

}  // namespace datacron

#endif  // DATACRON_RDF_TRIPLE_STORE_H_
