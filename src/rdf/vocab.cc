#include "rdf/vocab.h"

#include "common/strings.h"

namespace datacron {

Vocab::Vocab(TermDictionary* d) : dict(d) {
  c_vessel = d->Intern("dc:Vessel");
  c_aircraft = d->Intern("dc:Aircraft");
  c_position_node = d->Intern("dc:PositionNode");
  c_trajectory = d->Intern("dc:Trajectory");
  c_weather_obs = d->Intern("dc:WeatherObservation");
  c_event = d->Intern("dc:Event");
  c_area = d->Intern("dc:Area");

  p_type = d->Intern("rdf:type");
  p_of_entity = d->Intern("dc:ofMovingObject");
  p_timestamp = d->Intern("dc:hasTimestamp");
  p_lat = d->Intern("dc:hasLatitude");
  p_lon = d->Intern("dc:hasLongitude");
  p_alt = d->Intern("dc:hasAltitude");
  p_speed = d->Intern("dc:hasSpeed");
  p_course = d->Intern("dc:hasCourse");
  p_vrate = d->Intern("dc:hasVerticalRate");
  p_node_kind = d->Intern("dc:hasNodeKind");
  p_in_cell = d->Intern("dc:inSpatialCell");
  p_in_bucket = d->Intern("dc:inTimeBucket");
  p_has_node = d->Intern("dc:hasNode");
  p_next_node = d->Intern("dc:hasNextNode");

  p_wind_u = d->Intern("dc:windU");
  p_wind_v = d->Intern("dc:windV");
  p_wave_height = d->Intern("dc:waveHeight");

  p_near_entity = d->Intern("dc:nearEntity");
  p_within_area = d->Intern("dc:withinArea");
  p_weather_at = d->Intern("dc:experiencedWeather");

  p_event_kind = d->Intern("dc:eventKind");
  p_involves = d->Intern("dc:involves");
  p_event_start = d->Intern("dc:eventStart");
  p_event_end = d->Intern("dc:eventEnd");

  c_episode = d->Intern("dc:Episode");
  p_episode_kind = d->Intern("dc:episodeKind");
  p_episode_start = d->Intern("dc:episodeStart");
  p_episode_end = d->Intern("dc:episodeEnd");
  p_path_length = d->Intern("dc:pathLength");
}

std::string EntityIri(std::uint32_t entity_id) {
  return StrFormat("ent:%u", entity_id);
}

std::string PositionNodeIri(std::uint32_t entity_id,
                            std::int64_t timestamp) {
  return StrFormat("node:%u/%lld", entity_id,
                   static_cast<long long>(timestamp));
}

std::string TrajectoryIri(std::uint32_t entity_id) {
  return StrFormat("traj:%u", entity_id);
}

std::string CellIri(std::int32_t ix, std::int32_t iy) {
  return StrFormat("cell:%d_%d", ix, iy);
}

std::string BucketIri(std::int64_t bucket_index) {
  return StrFormat("bucket:%lld", static_cast<long long>(bucket_index));
}

std::string WeatherIri(std::int32_t ix, std::int32_t iy,
                       std::int64_t bucket_index) {
  return StrFormat("wx:%d_%d/%lld", ix, iy,
                   static_cast<long long>(bucket_index));
}

std::string AreaIri(const std::string& name) { return "area:" + name; }

std::string EventIri(std::uint64_t event_seq) {
  return StrFormat("evt:%llu", static_cast<unsigned long long>(event_seq));
}

std::string EpisodeIri(std::uint32_t entity_id, std::int64_t start_time) {
  return StrFormat("ep:%u/%lld", entity_id,
                   static_cast<long long>(start_time));
}

}  // namespace datacron
