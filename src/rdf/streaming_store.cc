#include "rdf/streaming_store.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace datacron {

StreamingRdfStore::StreamingRdfStore(Config config) : config_(config) {}

StreamingRdfStore::StreamingRdfStore(Config config, ThreadPool* pool)
    : config_(config), pool_(pool) {}

void StreamingRdfStore::Add(TimestampMs t,
                            const std::vector<Triple>& triples) {
  std::int64_t bucket = BucketOf(t);
  if (bucket <= sealed_through_) {
    // Late data for a sealed bucket: keep it in the oldest open bucket so
    // it remains queryable for the retention horizon.
    bucket = sealed_through_ + 1;
  }
  auto& buf = pending_[bucket];
  buf.insert(buf.end(), triples.begin(), triples.end());
}

void StreamingRdfStore::AdvanceTo(TimestampMs watermark) {
  const std::int64_t sealable_below = BucketOf(watermark);
  // Collect pending buckets strictly below the watermark's bucket, then
  // seal them — each bucket as an independent pool task when a pool is
  // attached (Seal itself also parallelizes large single buckets; nested
  // ParallelFor is safe because callers help-run).
  std::vector<Bucket> ripe;
  for (auto it = pending_.begin();
       it != pending_.end() && it->first < sealable_below;) {
    Bucket bucket;
    bucket.index = it->first;
    bucket.store.AddBatch(it->second);
    ripe.push_back(std::move(bucket));
    it = pending_.erase(it);
  }
  if (pool_ != nullptr && ripe.size() > 1) {
    pool_->ParallelFor(ripe.size(),
                       [&](std::size_t i) { ripe[i].store.Seal(); });
  } else {
    for (Bucket& b : ripe) b.store.Seal(pool_);
  }
  for (Bucket& b : ripe) {
    sealed_through_ = std::max(sealed_through_, b.index);
    sealed_.push_back(std::move(b));
  }
  std::sort(sealed_.begin(), sealed_.end(),
            [](const Bucket& a, const Bucket& b) { return a.index < b.index; });
  // Evict beyond the retention horizon.
  const std::int64_t keep_from =
      sealable_below - config_.retention_buckets;
  while (!sealed_.empty() && sealed_.front().index < keep_from) {
    evicted_triples_ += sealed_.front().store.size();
    sealed_.pop_front();
  }
}

std::vector<Triple> StreamingRdfStore::Match(
    const TriplePattern& pattern) const {
  std::vector<Triple> out;
  if (archival_ != nullptr) {
    const auto hits = archival_->Match(pattern);
    out.insert(out.end(), hits.begin(), hits.end());
  }
  for (const Bucket& b : sealed_) {
    const auto hits = b.store.Match(pattern);
    out.insert(out.end(), hits.begin(), hits.end());
  }
  auto matches = [&pattern](const Triple& t) {
    return (pattern.s == kInvalidTermId || t.s == pattern.s) &&
           (pattern.p == kInvalidTermId || t.p == pattern.p) &&
           (pattern.o == kInvalidTermId || t.o == pattern.o);
  };
  for (const auto& [idx, buf] : pending_) {
    for (const Triple& t : buf) {
      if (matches(t)) out.push_back(t);
    }
  }
  return out;
}

std::size_t StreamingRdfStore::Count(const TriplePattern& pattern) const {
  return Match(pattern).size();
}

TripleStore StreamingRdfStore::Snapshot() const {
  TripleStore snap;
  for (const Bucket& b : sealed_) {
    snap.AddBatch(b.store.Match(TriplePattern{}));
  }
  for (const auto& [idx, buf] : pending_) snap.AddBatch(buf);
  snap.Seal(pool_);
  return snap;
}

std::size_t StreamingRdfStore::LiveTriples() const {
  std::size_t n = 0;
  for (const Bucket& b : sealed_) n += b.store.size();
  for (const auto& [idx, buf] : pending_) n += buf.size();
  return n;
}

std::size_t StreamingRdfStore::OpenTriples() const {
  std::size_t n = 0;
  for (const auto& [idx, buf] : pending_) n += buf.size();
  return n;
}

}  // namespace datacron
