#include "rdf/triple_store.h"

#include <algorithm>

#include "common/parallel_sort.h"
#include "common/thread_pool.h"

namespace datacron {

namespace {

struct SpoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};

struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

bool MatchesResidual(const Triple& t, const TriplePattern& q) {
  return (q.s == kInvalidTermId || t.s == q.s) &&
         (q.p == kInvalidTermId || t.p == q.p) &&
         (q.o == kInvalidTermId || t.o == q.o);
}

/// Binary-search range in `index` where the bound prefix of `q` (under the
/// permutation described by key1/key2/key3 accessors) matches.
template <typename Less>
std::pair<std::size_t, std::size_t> PrefixRange(
    const std::vector<Triple>& index, const Triple& lo_key,
    const Triple& hi_key, Less less) {
  auto lo = std::lower_bound(index.begin(), index.end(), lo_key, less);
  auto hi = std::upper_bound(index.begin(), index.end(), hi_key, less);
  return {static_cast<std::size_t>(lo - index.begin()),
          static_cast<std::size_t>(hi - index.begin())};
}

constexpr TermId kMaxTerm = ~static_cast<TermId>(0);

}  // namespace

void TripleStore::Add(const Triple& t) {
  spo_.push_back(t);
  sealed_ = false;
}

void TripleStore::AddBatch(const std::vector<Triple>& batch) {
  // Reserve up front (keeping geometric growth across repeated batches) so
  // bulk load does not reallocate mid-insert.
  if (spo_.capacity() < spo_.size() + batch.size()) {
    spo_.reserve(std::max(spo_.size() + batch.size(), 2 * spo_.capacity()));
  }
  spo_.insert(spo_.end(), batch.begin(), batch.end());
  sealed_ = false;
}

void TripleStore::Seal(ThreadPool* pool) {
  if (sealed_) return;
  ParallelSort(&spo_, SpoLess(), pool);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  auto build_pos = [this, pool] {
    pos_.clear();
    pos_.reserve(spo_.size());
    pos_.assign(spo_.begin(), spo_.end());
    ParallelSort(&pos_, PosLess(), pool);
  };
  auto build_osp = [this, pool] {
    osp_.clear();
    osp_.reserve(spo_.size());
    osp_.assign(spo_.begin(), spo_.end());
    ParallelSort(&osp_, OspLess(), pool);
  };
  if (pool != nullptr && pool->num_threads() >= 2 &&
      spo_.size() >= kMinParallelSortSize) {
    // The two permutation builds are independent; run them as one
    // two-iteration ParallelFor so the caller help-runs if it is itself a
    // pool worker.
    pool->ParallelFor(2, [&](std::size_t i) {
      if (i == 0) {
        build_pos();
      } else {
        build_osp();
      }
    });
  } else {
    build_pos();
    build_osp();
  }
  sealed_ = true;
}

TripleStore::Perm TripleStore::ChoosePerm(const TriplePattern& q) const {
  const bool s = q.s != kInvalidTermId;
  const bool p = q.p != kInvalidTermId;
  const bool o = q.o != kInvalidTermId;
  // Prefer the permutation whose leading components are bound.
  if (s) return Perm::kSpo;                  // S**, SP*, S*O(->SPO w/ resid), SPO
  if (p) return Perm::kPos;                  // *P*, *PO
  if (o) return Perm::kOsp;                  // **O
  return Perm::kSpo;                         // full scan
}

void TripleStore::Scan(
    const TriplePattern& q,
    const std::function<bool(const Triple&)>& visit) const {
  const Perm perm = ChoosePerm(q);
  const std::vector<Triple>* index = nullptr;
  Triple lo, hi;
  std::pair<std::size_t, std::size_t> range;
  switch (perm) {
    case Perm::kSpo: {
      index = &spo_;
      lo = {q.s, q.s && q.p ? q.p : 0, q.s && q.p && q.o ? q.o : 0};
      hi = {q.s ? q.s : kMaxTerm, q.s && q.p ? q.p : kMaxTerm,
            q.s && q.p && q.o ? q.o : kMaxTerm};
      range = PrefixRange(*index, lo, hi, SpoLess());
      break;
    }
    case Perm::kPos: {
      index = &pos_;
      lo = {0, q.p, q.o ? q.o : 0};
      hi = {kMaxTerm, q.p, q.o ? q.o : kMaxTerm};
      range = PrefixRange(*index, lo, hi, PosLess());
      break;
    }
    case Perm::kOsp: {
      index = &osp_;
      lo = {0, 0, q.o};
      hi = {kMaxTerm, kMaxTerm, q.o};
      range = PrefixRange(*index, lo, hi, OspLess());
      break;
    }
  }
  for (std::size_t i = range.first; i < range.second; ++i) {
    const Triple& t = (*index)[i];
    if (MatchesResidual(t, q)) {
      if (!visit(t)) return;
    }
  }
}

std::vector<Triple> TripleStore::Match(const TriplePattern& q) const {
  std::vector<Triple> out;
  Scan(q, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

std::size_t TripleStore::Count(const TriplePattern& q) const {
  std::size_t n = 0;
  Scan(q, [&n](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<TermId> TripleStore::Predicates() const {
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : pos_) {
    if (t.p != last) {
      out.push_back(t.p);
      last = t.p;
    }
  }
  return out;
}

}  // namespace datacron
