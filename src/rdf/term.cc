#include "rdf/term.h"

#include "common/strings.h"

namespace datacron {

TermDictionary::TermDictionary() {
  texts_.reserve(1024);
  kinds_.reserve(1024);
}

TermId TermDictionary::Intern(const std::string& text, TermKind kind) {
  auto [it, inserted] = ids_.try_emplace(text, texts_.size() + 1);
  if (inserted) {
    texts_.push_back(text);
    kinds_.push_back(kind);
  }
  return it->second;
}

TermId TermDictionary::Find(const std::string& text) const {
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

Result<std::string> TermDictionary::Text(TermId id) const {
  if (id == kInvalidTermId || id > texts_.size()) {
    return Status::NotFound(StrFormat("unknown term id %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return texts_[id - 1];
}

TermKind TermDictionary::Kind(TermId id) const {
  if (id == kInvalidTermId || id > kinds_.size()) return TermKind::kIri;
  return kinds_[id - 1];
}

TermId TermDictionary::InternInt(std::int64_t value) {
  return Intern(StrFormat("%lld", static_cast<long long>(value)),
                TermKind::kLiteralInt);
}

TermId TermDictionary::InternDouble(double value) {
  return Intern(StrFormat("%.10g", value), TermKind::kLiteralDouble);
}

TermId TermDictionary::InternDateTime(std::int64_t epoch_ms) {
  return Intern(StrFormat("dt:%lld", static_cast<long long>(epoch_ms)),
                TermKind::kLiteralDateTime);
}

}  // namespace datacron
