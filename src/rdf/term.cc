#include "rdf/term.h"

#include <functional>

#include "common/strings.h"

namespace datacron {

TermId TermSource::InternInt(std::int64_t value) {
  return Intern(StrFormat("%lld", static_cast<long long>(value)),
                TermKind::kLiteralInt);
}

TermId TermSource::InternDouble(double value) {
  return Intern(StrFormat("%.10g", value), TermKind::kLiteralDouble);
}

TermId TermSource::InternDateTime(std::int64_t epoch_ms) {
  return Intern(StrFormat("dt:%lld", static_cast<long long>(epoch_ms)),
                TermKind::kLiteralDateTime);
}

TermDictionary::TermDictionary() = default;

TermDictionary::Stripe& TermDictionary::StripeOf(std::string_view text) const {
  const std::size_t h = std::hash<std::string_view>{}(text);
  // kStripes is a power of two; mix the high bits in so unordered_map
  // bucket selection (low bits) and stripe selection stay independent.
  return const_cast<Stripe&>(stripes_[(h ^ (h >> 17)) & (kStripes - 1)]);
}

TermId TermDictionary::Intern(std::string_view text, TermKind kind) {
  Stripe& stripe = StripeOf(text);
  std::lock_guard<std::mutex> stripe_lock(stripe.mu);
  auto it = stripe.ids.find(text);
  if (it != stripe.ids.end()) return it->second;

  TermId id;
  std::string_view stored;
  {
    std::lock_guard<std::mutex> id_lock(id_mu_);
    texts_.emplace_back(text);
    kinds_.push_back(kind);
    id = static_cast<TermId>(texts_.size());
    stored = texts_.back();
  }
  count_.fetch_add(1, std::memory_order_release);
  stripe.ids.emplace(stored, id);
  return id;
}

TermId TermDictionary::Find(std::string_view text) const {
  const Stripe& stripe = StripeOf(text);
  std::lock_guard<std::mutex> stripe_lock(stripe.mu);
  auto it = stripe.ids.find(text);
  return it == stripe.ids.end() ? kInvalidTermId : it->second;
}

Result<std::string> TermDictionary::Text(TermId id) const {
  std::lock_guard<std::mutex> id_lock(id_mu_);
  if (id == kInvalidTermId || id > texts_.size()) {
    return Status::NotFound(StrFormat("unknown term id %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return texts_[id - 1];
}

TermKind TermDictionary::Kind(TermId id) const {
  std::lock_guard<std::mutex> id_lock(id_mu_);
  if (id == kInvalidTermId || id > kinds_.size()) return TermKind::kIri;
  return kinds_[id - 1];
}

Result<std::vector<TermExport>> TermDictionary::ExportRange(
    TermId first_id, std::size_t count) const {
  std::vector<TermExport> out;
  out.reserve(count);
  std::lock_guard<std::mutex> id_lock(id_mu_);
  if (first_id == kInvalidTermId || first_id + count > texts_.size() + 1) {
    return Status::OutOfRange(
        StrFormat("export range [%llu, %llu) exceeds dictionary size %zu",
                  static_cast<unsigned long long>(first_id),
                  static_cast<unsigned long long>(first_id + count),
                  texts_.size()));
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(TermExport{texts_[first_id - 1 + i],
                             kinds_[first_id - 1 + i]});
  }
  return out;
}

void TermDictionary::ImportDelta(std::span<const TermExport> delta,
                                 std::vector<TermId>* remap) {
  remap->reserve(remap->size() + delta.size());
  for (const TermExport& t : delta) {
    remap->push_back(Intern(t.text, t.kind));
  }
}

std::vector<TermId> TermDictionary::MergeBatch(const TermBatch& batch) {
  std::vector<TermId> remap(batch.local_size());
  for (std::size_t i = 0; i < batch.local_size(); ++i) {
    remap[i] = Intern(batch.local_text(i), batch.local_kind(i));
  }
  return remap;
}

TermId TermBatch::Intern(std::string_view text, TermKind kind) {
  if (global_ != nullptr) {
    const TermId global_id = global_->Find(text);
    if (global_id != kInvalidTermId) return global_id;
  }
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  texts_.emplace_back(text);
  kinds_.push_back(kind);
  const TermId id = kLocalTermBit | static_cast<TermId>(texts_.size() - 1);
  ids_.emplace(std::string_view(texts_.back()), id);
  return id;
}

}  // namespace datacron
