#ifndef DATACRON_RDF_STREAMING_STORE_H_
#define DATACRON_RDF_STREAMING_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/time_utils.h"
#include "rdf/triple_store.h"

namespace datacron {

class ThreadPool;

/// Sliding-window triple store for data-in-motion (paper Section 1:
/// "data-at-rest (archival) and data-in-motion (streaming) ... following
/// an integrated approach").
///
/// Incoming triples carry an event time; they buffer in the open time
/// bucket, buckets seal (sort + index) when the watermark passes their
/// end, and sealed buckets older than the retention horizon are evicted.
/// Queries run over every sealed bucket plus an optional archival store —
/// one Match() answering over both live and historical data, which is the
/// "integrated" part.
///
/// The open bucket is queryable too (linear scan of its small buffer), so
/// freshly arrived knowledge is visible before its bucket seals.
class StreamingRdfStore {
 public:
  struct Config {
    /// Width of one window bucket.
    DurationMs bucket_ms = 5 * kMinute;
    /// Number of sealed buckets retained; older ones are evicted.
    int retention_buckets = 12;
  };

  StreamingRdfStore() : StreamingRdfStore(Config()) {}
  explicit StreamingRdfStore(Config config);
  StreamingRdfStore(Config config, ThreadPool* pool);

  /// Attaches the archival (data-at-rest) store; not owned, may be null.
  void AttachArchival(const TripleStore* archival) { archival_ = archival; }

  /// Attaches a worker pool (not owned, may be null): AdvanceTo then seals
  /// ripe buckets concurrently and Snapshot seals in parallel. Results are
  /// identical to the serial path.
  void AttachPool(ThreadPool* pool) { pool_ = pool; }

  /// Inserts triples with event time `t`. Out-of-order inserts into
  /// already-sealed buckets are routed to the open bucket (late data is
  /// retained, not lost — it just lives in a younger window).
  void Add(TimestampMs t, const std::vector<Triple>& triples);

  /// Advances the watermark: buckets ending at or before `watermark`
  /// seal; sealed buckets beyond the retention horizon are evicted.
  void AdvanceTo(TimestampMs watermark);

  /// Matches `pattern` across archival + sealed buckets + open buffer.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Count variant of Match.
  std::size_t Count(const TriplePattern& pattern) const;

  /// Materializes the current live contents (all retained buckets + open
  /// buffer, without archival) into one sealed store — the handoff point
  /// from data-in-motion to data-at-rest.
  TripleStore Snapshot() const;

  std::size_t SealedBuckets() const { return sealed_.size(); }
  /// Triples still in unsealed buckets.
  std::size_t OpenTriples() const;
  /// All retained triples (sealed + open, excluding archival).
  std::size_t LiveTriples() const;
  std::size_t evicted_triples() const { return evicted_triples_; }

 private:
  struct Bucket {
    std::int64_t index = 0;  // bucket start = index * bucket_ms
    TripleStore store;
  };

  std::int64_t BucketOf(TimestampMs t) const {
    std::int64_t b = t / config_.bucket_ms;
    if (t < 0 && b * config_.bucket_ms > t) --b;
    return b;
  }

  Config config_;
  ThreadPool* pool_ = nullptr;
  const TripleStore* archival_ = nullptr;
  std::deque<Bucket> sealed_;  // ascending bucket index
  /// Unsealed buckets: bucket index -> raw triple buffer.
  std::map<std::int64_t, std::vector<Triple>> pending_;
  /// Highest bucket index that has been sealed (or evicted).
  std::int64_t sealed_through_ = INT64_MIN;
  std::size_t evicted_triples_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_RDF_STREAMING_STORE_H_
