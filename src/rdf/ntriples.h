#ifndef DATACRON_RDF_NTRIPLES_H_
#define DATACRON_RDF_NTRIPLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace datacron {

class ThreadPool;

/// N-Triples-style serialization of dictionary-encoded triples — the
/// interchange path to external RDF tooling and the persistence format of
/// the archival store.
///
/// Terms render as `<iri>` for IRIs and `"lexical"^^kind` for literals
/// (kind in {string,int,double,dateTime}); one `s p o .` statement per
/// line. The dialect is self-inverse (Parse(Serialize(x)) == x) and close
/// enough to standard N-Triples for downstream tools that only read IRIs
/// and plain literals.

/// Serializes `triples` against `dict`. Unknown term ids render as
/// `<unknown:ID>` rather than failing — serialization is a diagnostics
/// path and must not lose the rest of the data.
std::string SerializeNTriples(const std::vector<Triple>& triples,
                              const TermDictionary& dict);

/// Parses a document produced by SerializeNTriples, interning all terms
/// into `dict` and appending the triples to `out`. Fails with ParseError
/// on the first malformed line (reporting its number).
Status ParseNTriples(const std::string& text, TermDictionary* dict,
                     std::vector<Triple>* out);

/// Parallel variant: splits the document on line boundaries into shards,
/// parses each shard on `pool` with a thread-local TermBatch, and merges
/// shard results in document order. On success the resulting dictionary
/// ids and triples are identical to the serial parse; on failure the
/// reported line number matches the serial parse (triples preceding the
/// bad line are still appended). Falls back to the serial parser when
/// `pool` is null or the document is small.
Status ParseNTriples(const std::string& text, TermDictionary* dict,
                     std::vector<Triple>* out, ThreadPool* pool);

}  // namespace datacron

#endif  // DATACRON_RDF_NTRIPLES_H_
