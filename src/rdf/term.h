#ifndef DATACRON_RDF_TERM_H_
#define DATACRON_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace datacron {

/// Dictionary-encoded RDF term identifier. 0 is reserved (invalid).
using TermId = std::uint64_t;

constexpr TermId kInvalidTermId = 0;

/// Kind of an RDF term. Spatiotemporal resource ids additionally embed a
/// grid cell / time bucket (see SpatioTemporalEncoder) but remain ordinary
/// IRIs at the dictionary level.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteralString,
  kLiteralInt,
  kLiteralDouble,
  kLiteralDateTime,
};

/// Bidirectional string<->id dictionary. Encoding datasets once and
/// operating on fixed-width ids is what makes triple joins cheap — the
/// standard design of RDF stores (RDF-3X, Virtuoso) that datAcron's
/// parallel stores build on.
class TermDictionary {
 public:
  TermDictionary();

  /// Returns the id of `text` (of kind `kind`), interning it if new.
  /// Deterministic: the same insertion sequence yields the same ids.
  TermId Intern(const std::string& text, TermKind kind = TermKind::kIri);

  /// Lookup without interning; kInvalidTermId when absent.
  TermId Find(const std::string& text) const;

  /// Inverse mapping. Returns an error for unknown ids.
  Result<std::string> Text(TermId id) const;

  TermKind Kind(TermId id) const;

  std::size_t size() const { return texts_.size(); }

  /// Convenience: intern a typed literal rendered from a value.
  TermId InternInt(std::int64_t value);
  TermId InternDouble(double value);
  TermId InternDateTime(std::int64_t epoch_ms);

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> texts_;   // index = id - 1
  std::vector<TermKind> kinds_;
};

}  // namespace datacron

#endif  // DATACRON_RDF_TERM_H_
