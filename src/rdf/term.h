#ifndef DATACRON_RDF_TERM_H_
#define DATACRON_RDF_TERM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace datacron {

/// Dictionary-encoded RDF term identifier. 0 is reserved (invalid).
using TermId = std::uint64_t;

constexpr TermId kInvalidTermId = 0;

/// High bit marking a *batch-local* id produced by TermBatch during
/// parallel ingest. Local ids never escape: TermDictionary::MergeBatch
/// rewrites them to global ids before triples reach any store.
constexpr TermId kLocalTermBit = TermId{1} << 63;

/// Kind of an RDF term. Spatiotemporal resource ids additionally embed a
/// grid cell / time bucket (see SpatioTemporalEncoder) but remain ordinary
/// IRIs at the dictionary level.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteralString,
  kLiteralInt,
  kLiteralDouble,
  kLiteralDateTime,
};

/// Anything that can intern terms: the global TermDictionary on the serial
/// path, a TermBatch on the parallel ingest path. The typed-literal
/// helpers render the value and forward to Intern.
class TermSource {
 public:
  virtual ~TermSource() = default;

  /// Returns the id of `text` (of kind `kind`), interning it if new.
  virtual TermId Intern(std::string_view text,
                        TermKind kind = TermKind::kIri) = 0;

  /// Convenience: intern a typed literal rendered from a value.
  TermId InternInt(std::int64_t value);
  TermId InternDouble(double value);
  TermId InternDateTime(std::int64_t epoch_ms);
};

class TermBatch;

/// One exported dictionary entry: the unit of the epoch dictionary deltas
/// a cluster node ships to the coordinator (see cluster/). Exported in id
/// order, so importing a delta reproduces the node's interning order.
struct TermExport {
  std::string text;
  TermKind kind = TermKind::kIri;

  bool operator==(const TermExport&) const = default;
};

/// Bidirectional string<->id dictionary. Encoding datasets once and
/// operating on fixed-width ids is what makes triple joins cheap — the
/// standard design of RDF stores (RDF-3X, Virtuoso) that datAcron's
/// parallel stores build on.
///
/// Thread-safe via lock striping: the text->id map is sharded into
/// kStripes stripes keyed by the text hash, so concurrent Intern/Find
/// calls only contend when they touch the same stripe (misses additionally
/// serialize briefly on the id allocator). Ids stay dense and are assigned
/// in arrival order, so the single-threaded path is bit-for-bit what it
/// always was; deterministic ids under parallel ingest come from the
/// two-phase TermBatch + MergeBatch scheme (see DESIGN.md).
class TermDictionary : public TermSource {
 public:
  TermDictionary();

  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;

  /// Returns the id of `text` (of kind `kind`), interning it if new.
  /// Deterministic: the same insertion sequence yields the same ids.
  TermId Intern(std::string_view text, TermKind kind = TermKind::kIri) override;

  /// Lookup without interning; kInvalidTermId when absent.
  TermId Find(std::string_view text) const;

  /// Inverse mapping. Returns an error for unknown ids.
  Result<std::string> Text(TermId id) const;

  TermKind Kind(TermId id) const;

  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Interns every batch-local term of `batch` in local-id order and
  /// returns the remap table: remap[i] is the global id of local id i.
  /// Because local dictionaries preserve first-occurrence order and
  /// callers merge chunks in input order, the resulting global ids are
  /// identical to what serial interning of the full input would produce —
  /// independent of thread count and chunk boundaries.
  std::vector<TermId> MergeBatch(const TermBatch& batch);

  /// Exports the `count` entries starting at id `first_id` in id order —
  /// the dictionary delta for one epoch (or one report) of cluster
  /// ingest. Ids outside [1, size()] yield an error, never a crash.
  Result<std::vector<TermExport>> ExportRange(TermId first_id,
                                              std::size_t count) const;

  /// Interns an exported delta in order, appending one global id per
  /// entry to `remap`. After importing node deltas in the node's id
  /// order, `(*remap)[i]` is the global id of node-local id `i + base`
  /// where `base` is the remap size before the first import — exactly the
  /// node-local-to-global translation table the cluster coordinator keeps
  /// per node. Idempotent: entries already present resolve to their
  /// existing ids. The span overload lets the cluster coordinator replay
  /// sub-ranges of one coalesced per-epoch delta (sliced per report by
  /// the shipped term counts) without copying.
  void ImportDelta(std::span<const TermExport> delta,
                   std::vector<TermId>* remap);
  void ImportDelta(const std::vector<TermExport>& delta,
                   std::vector<TermId>* remap) {
    ImportDelta(std::span<const TermExport>(delta), remap);
  }

 private:
  static constexpr std::size_t kStripes = 16;  // power of two

  struct Stripe {
    mutable std::mutex mu;
    /// Keys view into texts_ entries (std::deque never relocates), so the
    /// hot lookup path hashes the caller's bytes directly — no temporary
    /// std::string per probe.
    std::unordered_map<std::string_view, TermId> ids;
  };

  Stripe& StripeOf(std::string_view text) const;

  std::array<Stripe, kStripes> stripes_;
  mutable std::mutex id_mu_;       // guards texts_/kinds_ growth
  std::deque<std::string> texts_;  // index = id - 1; stable storage
  std::deque<TermKind> kinds_;
  std::atomic<std::size_t> count_{0};
};

/// Thread-local dictionary for one ingest chunk (phase 1 of the two-phase
/// parallel intern). Global hits resolve to real ids via a read-only probe
/// of the shared dictionary; new terms get batch-local ids tagged with
/// kLocalTermBit, later rewritten by TermDictionary::MergeBatch. No locks
/// on this path — each worker owns its batch exclusively.
class TermBatch : public TermSource {
 public:
  /// `global` may be null (pure local batch). Concurrent mutation of
  /// `global` while this batch interns is allowed (Find is lock-striped):
  /// a probe that misses a term another thread is adding just produces a
  /// batch-local id, and MergeBatch re-interning it later is idempotent —
  /// the remap resolves to the already-assigned global id.
  explicit TermBatch(const TermDictionary* global) : global_(global) {}

  TermId Intern(std::string_view text, TermKind kind = TermKind::kIri) override;

  /// Number of batch-local (new) terms.
  std::size_t local_size() const { return texts_.size(); }

  /// Local term text/kind by local index, in first-occurrence order.
  const std::string& local_text(std::size_t i) const { return texts_[i]; }
  TermKind local_kind(std::size_t i) const { return kinds_[i]; }

 private:
  const TermDictionary* global_;
  std::unordered_map<std::string_view, TermId> ids_;
  std::deque<std::string> texts_;  // stable storage for map keys
  std::vector<TermKind> kinds_;
};

/// Rewrites a possibly batch-local id through `remap` (from MergeBatch);
/// global ids pass through unchanged.
inline TermId RemapTerm(TermId id, const std::vector<TermId>& remap) {
  return (id & kLocalTermBit) ? remap[id & ~kLocalTermBit] : id;
}

}  // namespace datacron

#endif  // DATACRON_RDF_TERM_H_
