#include "rdf/ntriples.h"

#include "common/strings.h"

namespace datacron {

namespace {

const char* KindSuffix(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "";
    case TermKind::kLiteralString:
      return "string";
    case TermKind::kLiteralInt:
      return "int";
    case TermKind::kLiteralDouble:
      return "double";
    case TermKind::kLiteralDateTime:
      return "dateTime";
  }
  return "";
}

bool KindFromSuffix(std::string_view suffix, TermKind* kind) {
  if (suffix == "string") {
    *kind = TermKind::kLiteralString;
  } else if (suffix == "int") {
    *kind = TermKind::kLiteralInt;
  } else if (suffix == "double") {
    *kind = TermKind::kLiteralDouble;
  } else if (suffix == "dateTime") {
    *kind = TermKind::kLiteralDateTime;
  } else {
    return false;
  }
  return true;
}

void AppendTerm(TermId id, const TermDictionary& dict, std::string* out) {
  const Result<std::string> text = dict.Text(id);
  if (!text.ok()) {
    *out += StrFormat("<unknown:%llu>",
                      static_cast<unsigned long long>(id));
    return;
  }
  const TermKind kind = dict.Kind(id);
  if (kind == TermKind::kIri) {
    *out += '<';
    *out += text.value();
    *out += '>';
    return;
  }
  *out += '"';
  for (char c : text.value()) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\"^^";
  *out += KindSuffix(kind);
}

/// Parses one term starting at `*pos`; advances past it and any trailing
/// whitespace.
bool ParseTerm(const std::string& line, std::size_t* pos,
               TermDictionary* dict, TermId* out) {
  while (*pos < line.size() && line[*pos] == ' ') ++(*pos);
  if (*pos >= line.size()) return false;
  if (line[*pos] == '<') {
    const std::size_t end = line.find('>', *pos);
    if (end == std::string::npos) return false;
    *out = dict->Intern(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    return true;
  }
  if (line[*pos] == '"') {
    std::string lexical;
    std::size_t i = *pos + 1;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      lexical += line[i];
      ++i;
    }
    if (i >= line.size()) return false;
    // Expect ^^kind.
    if (i + 2 >= line.size() || line[i + 1] != '^' || line[i + 2] != '^') {
      return false;
    }
    std::size_t k = i + 3;
    std::size_t k_end = k;
    while (k_end < line.size() && line[k_end] != ' ') ++k_end;
    TermKind kind;
    if (!KindFromSuffix(
            std::string_view(line).substr(k, k_end - k), &kind)) {
      return false;
    }
    *out = dict->Intern(lexical, kind);
    *pos = k_end;
    return true;
  }
  return false;
}

}  // namespace

std::string SerializeNTriples(const std::vector<Triple>& triples,
                              const TermDictionary& dict) {
  std::string out;
  out.reserve(triples.size() * 64);
  for (const Triple& t : triples) {
    AppendTerm(t.s, dict, &out);
    out += ' ';
    AppendTerm(t.p, dict, &out);
    out += ' ';
    AppendTerm(t.o, dict, &out);
    out += " .\n";
  }
  return out;
}

Status ParseNTriples(const std::string& text, TermDictionary* dict,
                     std::vector<Triple>* out) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (Trim(line).empty()) continue;

    Triple t;
    std::size_t pos = 0;
    if (!ParseTerm(line, &pos, dict, &t.s) ||
        !ParseTerm(line, &pos, dict, &t.p) ||
        !ParseTerm(line, &pos, dict, &t.o)) {
      return Status::ParseError(
          StrFormat("line %zu: malformed term", line_no));
    }
    // Statement terminator.
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size() || line[pos] != '.') {
      return Status::ParseError(
          StrFormat("line %zu: missing terminating '.'", line_no));
    }
    out->push_back(t);
  }
  return Status::OK();
}

}  // namespace datacron
