#include "rdf/ntriples.h"

#include <algorithm>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace datacron {

namespace {

/// Documents below this size parse serially even when a pool is supplied.
constexpr std::size_t kMinParallelParseBytes = 1u << 16;

const char* KindSuffix(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "";
    case TermKind::kLiteralString:
      return "string";
    case TermKind::kLiteralInt:
      return "int";
    case TermKind::kLiteralDouble:
      return "double";
    case TermKind::kLiteralDateTime:
      return "dateTime";
  }
  return "";
}

bool KindFromSuffix(std::string_view suffix, TermKind* kind) {
  if (suffix == "string") {
    *kind = TermKind::kLiteralString;
  } else if (suffix == "int") {
    *kind = TermKind::kLiteralInt;
  } else if (suffix == "double") {
    *kind = TermKind::kLiteralDouble;
  } else if (suffix == "dateTime") {
    *kind = TermKind::kLiteralDateTime;
  } else {
    return false;
  }
  return true;
}

void AppendTerm(TermId id, const TermDictionary& dict, std::string* out) {
  const Result<std::string> text = dict.Text(id);
  if (!text.ok()) {
    *out += StrFormat("<unknown:%llu>",
                      static_cast<unsigned long long>(id));
    return;
  }
  const TermKind kind = dict.Kind(id);
  if (kind == TermKind::kIri) {
    *out += '<';
    *out += text.value();
    *out += '>';
    return;
  }
  *out += '"';
  for (char c : text.value()) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\"^^";
  *out += KindSuffix(kind);
}

/// Parses one term starting at `*pos`; advances past it and any trailing
/// whitespace. Terms intern through `terms` — the shared dictionary on the
/// serial path, a shard-local TermBatch on the parallel path. IRIs intern
/// straight from the document slice (no temporary string).
bool ParseTerm(std::string_view line, std::size_t* pos, TermSource* terms,
               TermId* out) {
  while (*pos < line.size() && line[*pos] == ' ') ++(*pos);
  if (*pos >= line.size()) return false;
  if (line[*pos] == '<') {
    const std::size_t end = line.find('>', *pos);
    if (end == std::string_view::npos) return false;
    *out = terms->Intern(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    return true;
  }
  if (line[*pos] == '"') {
    std::string lexical;
    std::size_t i = *pos + 1;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      lexical += line[i];
      ++i;
    }
    if (i >= line.size()) return false;
    // Expect ^^kind.
    if (i + 2 >= line.size() || line[i + 1] != '^' || line[i + 2] != '^') {
      return false;
    }
    std::size_t k = i + 3;
    std::size_t k_end = k;
    while (k_end < line.size() && line[k_end] != ' ') ++k_end;
    TermKind kind;
    if (!KindFromSuffix(line.substr(k, k_end - k), &kind)) {
      return false;
    }
    *out = terms->Intern(lexical, kind);
    *pos = k_end;
    return true;
  }
  return false;
}

/// Parses one `s p o .` statement. Returns the empty string on success
/// (or blank line, with *parsed=false), else the error description.
const char* ParseLine(std::string_view line, TermSource* terms, Triple* t,
                      bool* parsed) {
  *parsed = false;
  if (Trim(line).empty()) return nullptr;
  std::size_t pos = 0;
  if (!ParseTerm(line, &pos, terms, &t->s) ||
      !ParseTerm(line, &pos, terms, &t->p) ||
      !ParseTerm(line, &pos, terms, &t->o)) {
    return "malformed term";
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size() || line[pos] != '.') {
    return "missing terminating '.'";
  }
  *parsed = true;
  return nullptr;
}

/// Parses the byte range `text` line by line, interning via `terms`.
/// On error fills *err_line (1-based within the range) and *err_msg;
/// triples preceding the bad line are kept in *out. Returns total lines
/// consumed (up to and including an erroring line).
bool ParseRange(std::string_view text, TermSource* terms,
                std::vector<Triple>* out, std::size_t* lines,
                std::size_t* err_line, const char** err_msg) {
  *lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++(*lines);
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    Triple t;
    bool parsed = false;
    const char* msg = ParseLine(line, terms, &t, &parsed);
    if (msg != nullptr) {
      *err_line = *lines;
      *err_msg = msg;
      return false;
    }
    if (parsed) out->push_back(t);
  }
  return true;
}

}  // namespace

std::string SerializeNTriples(const std::vector<Triple>& triples,
                              const TermDictionary& dict) {
  std::string out;
  out.reserve(triples.size() * 64);
  for (const Triple& t : triples) {
    AppendTerm(t.s, dict, &out);
    out += ' ';
    AppendTerm(t.p, dict, &out);
    out += ' ';
    AppendTerm(t.o, dict, &out);
    out += " .\n";
  }
  return out;
}

Status ParseNTriples(const std::string& text, TermDictionary* dict,
                     std::vector<Triple>* out) {
  std::size_t lines = 0;
  std::size_t err_line = 0;
  const char* err_msg = nullptr;
  if (!ParseRange(text, dict, out, &lines, &err_line, &err_msg)) {
    return Status::ParseError(StrFormat("line %zu: %s", err_line, err_msg));
  }
  return Status::OK();
}

Status ParseNTriples(const std::string& text, TermDictionary* dict,
                     std::vector<Triple>* out, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() < 2 ||
      text.size() < kMinParallelParseBytes) {
    return ParseNTriples(text, dict, out);
  }

  // Shard boundaries: equal byte ranges snapped forward to the next '\n'
  // so every shard owns whole lines.
  const std::size_t want = pool->num_threads() * 2;
  std::vector<std::size_t> starts;
  starts.push_back(0);
  for (std::size_t s = 1; s < want; ++s) {
    std::size_t pos = s * (text.size() / want);
    pos = text.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
    if (pos > starts.back() && pos < text.size()) starts.push_back(pos);
  }
  const std::size_t shards = starts.size();

  struct Shard {
    explicit Shard(const TermDictionary* global) : terms(global) {}
    TermBatch terms;
    std::vector<Triple> triples;
    std::size_t lines = 0;
    std::size_t err_line = 0;  // 1-based within the shard; 0 = no error
    const char* err_msg = nullptr;
  };
  std::vector<Shard> results;
  results.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) results.emplace_back(dict);

  const std::string_view doc(text);
  pool->ParallelFor(shards, [&](std::size_t s) {
    Shard& sh = results[s];
    const std::size_t begin = starts[s];
    const std::size_t end = s + 1 < shards ? starts[s + 1] : doc.size();
    ParseRange(doc.substr(begin, end - begin), &sh.terms, &sh.triples,
               &sh.lines, &sh.err_line, &sh.err_msg);
  });

  // Merge in document order; the first erroring shard determines the
  // global error line. Shards before it merge fully (as the serial parser
  // would have appended them), including the partial erroring shard.
  std::size_t line_offset = 0;
  for (const Shard& sh : results) {
    const std::vector<TermId> remap = dict->MergeBatch(sh.terms);
    out->reserve(out->size() + sh.triples.size());
    for (const Triple& t : sh.triples) {
      out->push_back({RemapTerm(t.s, remap), RemapTerm(t.p, remap),
                      RemapTerm(t.o, remap)});
    }
    if (sh.err_line != 0) {
      return Status::ParseError(StrFormat(
          "line %zu: %s", line_offset + sh.err_line, sh.err_msg));
    }
    line_offset += sh.lines;
  }
  return Status::OK();
}

}  // namespace datacron
