#ifndef DATACRON_RDF_RDFIZER_H_
#define DATACRON_RDF_RDFIZER_H_

#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "sources/model.h"
#include "sources/weather.h"
#include "synopses/critical_points.h"
#include "trajectory/episodes.h"

namespace datacron {

class ThreadPool;

/// Spatiotemporal placement of a resource: grid cell + time bucket.
/// Partitioners and the query planner prune on these.
struct StTag {
  GridCell cell;
  std::int64_t bucket = 0;

  bool operator==(const StTag&) const = default;
};

/// Exact geometry/time of a position node, kept as a side table so spatial
/// and temporal FILTERs evaluate without string-decoding literals.
struct NodeGeo {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;
  TimestampMs timestamp = 0;

  bool operator==(const NodeGeo&) const = default;
};

/// The "data transformation" component (paper Section 2): converts
/// position reports, synopses (critical points) and archival weather into
/// the common RDF representation, tagging every spatiotemporal resource
/// with its grid cell and time bucket.
class Rdfizer {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    double cell_deg = 0.25;
    DurationMs bucket_ms = kHour;
    /// Bucket 0 starts here.
    TimestampMs epoch = 1490000000000;
    /// Also emit dc:hasNextNode links between consecutive nodes of the
    /// same entity (costs one triple per report; enables path queries).
    bool emit_sequence_links = true;
  };

  /// Where one transform call reads/writes shared ingest state. The serial
  /// path points this at the members; parallel paths (TransformBatch
  /// chunks, the sharded engine's per-report outputs) point it at local
  /// tables (with a TermBatch as the term source) so workers never
  /// contend, then merge deterministically.
  struct Sink {
    TermSource* terms = nullptr;
    std::unordered_map<TermId, StTag>* tags = nullptr;
    std::unordered_map<TermId, NodeGeo>* node_geo = nullptr;
    std::unordered_map<EntityId, TermId>* prev_node = nullptr;
    std::unordered_map<EntityId, TermId>* known_entities = nullptr;
    /// Batch-only extras (null on the serial path): entities in
    /// first-occurrence order, and the first node per entity, both needed
    /// to stitch chunks back together deterministically.
    std::vector<EntityId>* entity_order = nullptr;
    std::unordered_map<EntityId, TermId>* first_node = nullptr;
  };

  Rdfizer(const Config& config, TermDictionary* dict, const Vocab* vocab);

  /// Triples for one position report (~10 per report). The node resource
  /// is registered in tags() and node_geo().
  std::vector<Triple> TransformReport(const PositionReport& report);

  /// Re-entrant TransformReport: all mutable state lives in `sink`, so
  /// shard workers can transform concurrently against per-shard sinks.
  /// No Rdfizer member is touched.
  void TransformReportInto(const PositionReport& report, const Sink& sink,
                           std::vector<Triple>* out) const;

  /// Re-entrant TransformCriticalPoint (see TransformReportInto).
  void TransformCriticalPointInto(const CriticalPoint& cp, const Sink& sink,
                                  std::vector<Triple>* out) const;

  /// Re-entrant TransformEpisode: needs only sink.terms/tags/node_geo.
  void TransformEpisodeInto(const Episode& episode, const Sink& sink,
                            std::vector<Triple>* out) const;

  /// Merges sink-local tags/node_geo tables (keyed by possibly batch-local
  /// TermIds) into the member side tables, rewriting ids through `remap`
  /// (pass an empty remap when the sink interned straight into the global
  /// dictionary).
  void AbsorbSideTables(const std::unordered_map<TermId, StTag>& tags,
                        const std::unordered_map<TermId, NodeGeo>& node_geo,
                        const std::vector<TermId>& remap);

  /// Bulk variant of TransformReport: fans contiguous report chunks across
  /// `pool` workers, each interning into a thread-local TermBatch, then
  /// merges chunk results in input order. The merged dictionary ids,
  /// tags()/node_geo() side tables and the triple *set* (entity typing
  /// emitted once, sequence links stitched across chunk boundaries) are
  /// identical to calling TransformReport serially — independent of thread
  /// count and chunking. Falls back to the serial loop when `pool` is null
  /// or the batch is small.
  std::vector<Triple> TransformBatch(const std::vector<PositionReport>& reports,
                                     ThreadPool* pool);

  /// Triples for one critical point — a report plus its semantic node
  /// kind. This is what flows to the store on the synopses path.
  std::vector<Triple> TransformCriticalPoint(const CriticalPoint& cp);

  /// Triples for one archival weather observation.
  std::vector<Triple> TransformWeather(const WeatherSample& sample);

  /// Triples for one semantic-trajectory episode; the episode resource is
  /// tagged by its start position/time so partitioning and pruning apply.
  std::vector<Triple> TransformEpisode(const Episode& episode);

  /// The node's StTag index (cell/bucket of every transformed resource).
  const std::unordered_map<TermId, StTag>& tags() const { return tags_; }

  /// Exact geometry side table for position nodes.
  const std::unordered_map<TermId, NodeGeo>& node_geo() const {
    return node_geo_;
  }

  const UniformGrid& grid() const { return grid_; }
  const Config& config() const { return config_; }

  std::int64_t BucketOf(TimestampMs t) const {
    return (t - config_.epoch) / config_.bucket_ms;
  }

  /// The TermId a report's node would get (without transforming).
  TermId NodeIdOf(const PositionReport& report) const;

 private:
  /// Emits the shared node skeleton (type, entity, kinematics, cell,
  /// bucket, optional sequence link); returns the node TermId.
  TermId EmitNode(const PositionReport& report, const Sink& sink,
                  std::vector<Triple>* out) const;

  /// Sink over the member state (the serial path).
  Sink MemberSink();

  Config config_;
  TermDictionary* dict_;
  const Vocab* vocab_;
  UniformGrid grid_;
  std::unordered_map<TermId, StTag> tags_;
  std::unordered_map<TermId, NodeGeo> node_geo_;
  /// entity -> previous node (for dc:hasNextNode).
  std::unordered_map<EntityId, TermId> prev_node_;
  /// Entities whose entity-level triples were already emitted.
  std::unordered_map<EntityId, TermId> known_entities_;
};

}  // namespace datacron

#endif  // DATACRON_RDF_RDFIZER_H_
