#include "rdf/rdfizer.h"

#include <unordered_set>

#include "common/thread_pool.h"

namespace datacron {

namespace {

/// Below this batch size the chunk/merge overhead of the parallel path is
/// not worth paying.
constexpr std::size_t kMinParallelBatch = 256;

}  // namespace

Rdfizer::Rdfizer(const Config& config, TermDictionary* dict,
                 const Vocab* vocab)
    : config_(config),
      dict_(dict),
      vocab_(vocab),
      grid_(config.region, config.cell_deg) {}

TermId Rdfizer::NodeIdOf(const PositionReport& report) const {
  return dict_->Find(PositionNodeIri(report.entity_id, report.timestamp));
}

Rdfizer::Sink Rdfizer::MemberSink() {
  Sink sink;
  sink.terms = dict_;
  sink.tags = &tags_;
  sink.node_geo = &node_geo_;
  sink.prev_node = &prev_node_;
  sink.known_entities = &known_entities_;
  return sink;
}

TermId Rdfizer::EmitNode(const PositionReport& report, const Sink& sink,
                         std::vector<Triple>* out) const {
  TermSource& terms = *sink.terms;
  const TermId node =
      terms.Intern(PositionNodeIri(report.entity_id, report.timestamp));

  // Entity-level triples, once per entity.
  auto [ent_it, is_new_entity] =
      sink.known_entities->try_emplace(report.entity_id, kInvalidTermId);
  if (is_new_entity) {
    const TermId entity = terms.Intern(EntityIri(report.entity_id));
    ent_it->second = entity;
    out->push_back({entity, vocab_->p_type,
                    report.domain == Domain::kMaritime ? vocab_->c_vessel
                                                       : vocab_->c_aircraft});
    const TermId traj = terms.Intern(TrajectoryIri(report.entity_id));
    out->push_back({traj, vocab_->p_type, vocab_->c_trajectory});
    if (sink.entity_order != nullptr) {
      sink.entity_order->push_back(report.entity_id);
    }
  }
  const TermId entity = ent_it->second;
  const TermId traj = terms.Intern(TrajectoryIri(report.entity_id));

  const GridCell cell = grid_.CellOf(report.position.ll());
  const std::int64_t bucket = BucketOf(report.timestamp);

  out->push_back({node, vocab_->p_type, vocab_->c_position_node});
  out->push_back({node, vocab_->p_of_entity, entity});
  out->push_back({traj, vocab_->p_has_node, node});
  out->push_back(
      {node, vocab_->p_timestamp, terms.InternDateTime(report.timestamp)});
  out->push_back(
      {node, vocab_->p_lat, terms.InternDouble(report.position.lat_deg)});
  out->push_back(
      {node, vocab_->p_lon, terms.InternDouble(report.position.lon_deg)});
  if (report.domain == Domain::kAviation) {
    out->push_back(
        {node, vocab_->p_alt, terms.InternDouble(report.position.alt_m)});
    out->push_back({node, vocab_->p_vrate,
                    terms.InternDouble(report.vertical_rate_mps)});
  }
  out->push_back(
      {node, vocab_->p_speed, terms.InternDouble(report.speed_mps)});
  out->push_back(
      {node, vocab_->p_course, terms.InternDouble(report.course_deg)});
  out->push_back(
      {node, vocab_->p_in_cell, terms.Intern(CellIri(cell.ix, cell.iy))});
  out->push_back(
      {node, vocab_->p_in_bucket, terms.Intern(BucketIri(bucket))});

  if (config_.emit_sequence_links) {
    auto prev_it = sink.prev_node->find(report.entity_id);
    if (prev_it != sink.prev_node->end()) {
      if (prev_it->second != node) {
        out->push_back({prev_it->second, vocab_->p_next_node, node});
      }
    } else if (sink.first_node != nullptr) {
      (*sink.first_node)[report.entity_id] = node;
    }
    (*sink.prev_node)[report.entity_id] = node;
  }

  (*sink.tags)[node] = StTag{cell, bucket};
  (*sink.node_geo)[node] =
      NodeGeo{report.position.lat_deg, report.position.lon_deg,
              report.position.alt_m, report.timestamp};
  return node;
}

std::vector<Triple> Rdfizer::TransformReport(const PositionReport& report) {
  std::vector<Triple> out;
  out.reserve(14);
  TransformReportInto(report, MemberSink(), &out);
  return out;
}

void Rdfizer::TransformReportInto(const PositionReport& report,
                                  const Sink& sink,
                                  std::vector<Triple>* out) const {
  EmitNode(report, sink, out);
}

void Rdfizer::TransformCriticalPointInto(const CriticalPoint& cp,
                                         const Sink& sink,
                                         std::vector<Triple>* out) const {
  const TermId node = EmitNode(cp.report, sink, out);
  out->push_back({node, vocab_->p_node_kind,
                  sink.terms->Intern(CriticalPointTypeName(cp.type),
                                     TermKind::kLiteralString)});
}

void Rdfizer::TransformEpisodeInto(const Episode& episode, const Sink& sink,
                                   std::vector<Triple>* out) const {
  TermSource& terms = *sink.terms;
  const TermId ep =
      terms.Intern(EpisodeIri(episode.entity, episode.start_time));
  const TermId entity = terms.Intern(EntityIri(episode.entity));
  out->push_back({ep, vocab_->p_type, vocab_->c_episode});
  out->push_back({ep, vocab_->p_of_entity, entity});
  out->push_back({ep, vocab_->p_episode_kind,
                  terms.Intern(EpisodeKindName(episode.kind),
                               TermKind::kLiteralString)});
  out->push_back({ep, vocab_->p_episode_start,
                  terms.InternDateTime(episode.start_time)});
  out->push_back(
      {ep, vocab_->p_episode_end, terms.InternDateTime(episode.end_time)});
  out->push_back(
      {ep, vocab_->p_path_length, terms.InternDouble(episode.path_m)});
  if (!episode.area.empty()) {
    const TermId area = terms.Intern(AreaIri(episode.area));
    out->push_back({area, vocab_->p_type, vocab_->c_area});
    out->push_back({ep, vocab_->p_within_area, area});
  }
  const GridCell cell = grid_.CellOf(episode.start_pos.ll());
  const std::int64_t bucket = BucketOf(episode.start_time);
  out->push_back(
      {ep, vocab_->p_in_cell, terms.Intern(CellIri(cell.ix, cell.iy))});
  out->push_back(
      {ep, vocab_->p_in_bucket, terms.Intern(BucketIri(bucket))});
  (*sink.tags)[ep] = StTag{cell, bucket};
  (*sink.node_geo)[ep] =
      NodeGeo{episode.start_pos.lat_deg, episode.start_pos.lon_deg,
              episode.start_pos.alt_m, episode.start_time};
}

void Rdfizer::AbsorbSideTables(
    const std::unordered_map<TermId, StTag>& tags,
    const std::unordered_map<TermId, NodeGeo>& node_geo,
    const std::vector<TermId>& remap) {
  for (const auto& [node, tag] : tags) {
    tags_[RemapTerm(node, remap)] = tag;
  }
  for (const auto& [node, geo] : node_geo) {
    node_geo_[RemapTerm(node, remap)] = geo;
  }
}

std::vector<Triple> Rdfizer::TransformBatch(
    const std::vector<PositionReport>& reports, ThreadPool* pool) {
  std::vector<Triple> out;
  if (reports.empty()) return out;

  const std::size_t max_chunks = std::max<std::size_t>(1, reports.size() / 64);
  const std::size_t chunks =
      pool == nullptr
          ? 1
          : std::min(max_chunks, pool->num_threads() * 2);
  if (chunks < 2 || reports.size() < kMinParallelBatch) {
    out.reserve(reports.size() * 12);
    for (const PositionReport& r : reports) {
      const auto ts = TransformReport(r);
      out.insert(out.end(), ts.begin(), ts.end());
    }
    return out;
  }

  // Phase 1: chunk-local transform. Each worker interns into its own
  // TermBatch (read-only probes of the shared dictionary, batch-local ids
  // for new terms) and tracks entity/link state locally.
  struct Chunk {
    explicit Chunk(const TermDictionary* global) : terms(global) {}
    TermBatch terms;
    std::vector<Triple> triples;
    std::unordered_map<TermId, StTag> tags;
    std::unordered_map<TermId, NodeGeo> node_geo;
    std::unordered_map<EntityId, TermId> prev_node;  // final value = last node
    std::unordered_map<EntityId, TermId> first_node;
    std::unordered_map<EntityId, TermId> known_entities;
    std::vector<EntityId> entity_order;
  };
  const std::size_t per_chunk = (reports.size() + chunks - 1) / chunks;
  std::vector<Chunk> results;
  results.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) results.emplace_back(dict_);

  pool->ParallelFor(chunks, [&](std::size_t c) {
    Chunk& ch = results[c];
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(reports.size(), begin + per_chunk);
    Sink sink;
    sink.terms = &ch.terms;
    sink.tags = &ch.tags;
    sink.node_geo = &ch.node_geo;
    sink.prev_node = &ch.prev_node;
    sink.known_entities = &ch.known_entities;
    sink.entity_order = &ch.entity_order;
    sink.first_node = &ch.first_node;
    ch.triples.reserve((end - begin) * 12);
    for (std::size_t i = begin; i < end; ++i) {
      EmitNode(reports[i], sink, &ch.triples);
    }
  });

  // Phase 2: deterministic merge in chunk (= input) order. Merging local
  // dictionaries in order reproduces the global first-occurrence order of
  // every term, so the ids match the serial path exactly.
  out.reserve(reports.size() * 12);
  for (Chunk& ch : results) {
    const std::vector<TermId> remap = dict_->MergeBatch(ch.terms);

    // Entities this chunk saw first locally but that were already known
    // globally: their entity/trajectory typing triples are redundant
    // re-emissions — drop them, as the serial path emits them once.
    std::unordered_set<TermId> drop_typing_subjects;
    for (EntityId e : ch.entity_order) {
      const TermId entity = RemapTerm(ch.known_entities[e], remap);
      auto [it, is_new] = known_entities_.try_emplace(e, entity);
      if (!is_new) {
        drop_typing_subjects.insert(entity);
        drop_typing_subjects.insert(dict_->Find(TrajectoryIri(e)));
      }
    }

    for (const Triple& t : ch.triples) {
      const Triple g{RemapTerm(t.s, remap), RemapTerm(t.p, remap),
                     RemapTerm(t.o, remap)};
      if (!drop_typing_subjects.empty() && g.p == vocab_->p_type &&
          drop_typing_subjects.count(g.s) > 0) {
        continue;
      }
      out.push_back(g);
    }

    AbsorbSideTables(ch.tags, ch.node_geo, remap);

    // Stitch sequence links across the chunk boundary: last node of the
    // previous chunk (or batch) chains to this chunk's first node.
    if (config_.emit_sequence_links) {
      for (EntityId e : ch.entity_order) {
        const TermId first = RemapTerm(ch.first_node[e], remap);
        auto prev_it = prev_node_.find(e);
        if (prev_it != prev_node_.end() && prev_it->second != first) {
          out.push_back({prev_it->second, vocab_->p_next_node, first});
        }
        prev_node_[e] = RemapTerm(ch.prev_node[e], remap);
      }
    }
  }
  return out;
}

std::vector<Triple> Rdfizer::TransformCriticalPoint(const CriticalPoint& cp) {
  std::vector<Triple> out;
  out.reserve(15);
  TransformCriticalPointInto(cp, MemberSink(), &out);
  return out;
}

std::vector<Triple> Rdfizer::TransformEpisode(const Episode& episode) {
  std::vector<Triple> out;
  out.reserve(9);
  TransformEpisodeInto(episode, MemberSink(), &out);
  return out;
}

std::vector<Triple> Rdfizer::TransformWeather(const WeatherSample& sample) {
  std::vector<Triple> out;
  out.reserve(7);
  const std::int64_t bucket = BucketOf(sample.bucket_start);
  const TermId wx = dict_->Intern(
      WeatherIri(sample.cell.ix, sample.cell.iy, bucket));
  out.push_back({wx, vocab_->p_type, vocab_->c_weather_obs});
  out.push_back({wx, vocab_->p_in_cell,
                 dict_->Intern(CellIri(sample.cell.ix, sample.cell.iy))});
  out.push_back({wx, vocab_->p_in_bucket, dict_->Intern(BucketIri(bucket))});
  out.push_back(
      {wx, vocab_->p_wind_u, dict_->InternDouble(sample.wind_u_mps)});
  out.push_back(
      {wx, vocab_->p_wind_v, dict_->InternDouble(sample.wind_v_mps)});
  out.push_back(
      {wx, vocab_->p_wave_height, dict_->InternDouble(sample.wave_height_m)});
  tags_[wx] = StTag{sample.cell, bucket};
  return out;
}

}  // namespace datacron
