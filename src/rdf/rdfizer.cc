#include "rdf/rdfizer.h"

namespace datacron {

Rdfizer::Rdfizer(const Config& config, TermDictionary* dict,
                 const Vocab* vocab)
    : config_(config),
      dict_(dict),
      vocab_(vocab),
      grid_(config.region, config.cell_deg) {}

TermId Rdfizer::NodeIdOf(const PositionReport& report) const {
  return dict_->Find(PositionNodeIri(report.entity_id, report.timestamp));
}

TermId Rdfizer::EmitNode(const PositionReport& report,
                         std::vector<Triple>* out) {
  const TermId node =
      dict_->Intern(PositionNodeIri(report.entity_id, report.timestamp));

  // Entity-level triples, once per entity.
  auto [ent_it, is_new_entity] =
      known_entities_.try_emplace(report.entity_id, kInvalidTermId);
  if (is_new_entity) {
    const TermId entity = dict_->Intern(EntityIri(report.entity_id));
    ent_it->second = entity;
    out->push_back({entity, vocab_->p_type,
                    report.domain == Domain::kMaritime ? vocab_->c_vessel
                                                       : vocab_->c_aircraft});
    const TermId traj = dict_->Intern(TrajectoryIri(report.entity_id));
    out->push_back({traj, vocab_->p_type, vocab_->c_trajectory});
  }
  const TermId entity = ent_it->second;
  const TermId traj = dict_->Intern(TrajectoryIri(report.entity_id));

  const GridCell cell = grid_.CellOf(report.position.ll());
  const std::int64_t bucket = BucketOf(report.timestamp);

  out->push_back({node, vocab_->p_type, vocab_->c_position_node});
  out->push_back({node, vocab_->p_of_entity, entity});
  out->push_back({traj, vocab_->p_has_node, node});
  out->push_back(
      {node, vocab_->p_timestamp, dict_->InternDateTime(report.timestamp)});
  out->push_back(
      {node, vocab_->p_lat, dict_->InternDouble(report.position.lat_deg)});
  out->push_back(
      {node, vocab_->p_lon, dict_->InternDouble(report.position.lon_deg)});
  if (report.domain == Domain::kAviation) {
    out->push_back(
        {node, vocab_->p_alt, dict_->InternDouble(report.position.alt_m)});
    out->push_back({node, vocab_->p_vrate,
                    dict_->InternDouble(report.vertical_rate_mps)});
  }
  out->push_back(
      {node, vocab_->p_speed, dict_->InternDouble(report.speed_mps)});
  out->push_back(
      {node, vocab_->p_course, dict_->InternDouble(report.course_deg)});
  out->push_back(
      {node, vocab_->p_in_cell, dict_->Intern(CellIri(cell.ix, cell.iy))});
  out->push_back(
      {node, vocab_->p_in_bucket, dict_->Intern(BucketIri(bucket))});

  if (config_.emit_sequence_links) {
    auto prev_it = prev_node_.find(report.entity_id);
    if (prev_it != prev_node_.end() && prev_it->second != node) {
      out->push_back({prev_it->second, vocab_->p_next_node, node});
    }
    prev_node_[report.entity_id] = node;
  }

  tags_[node] = StTag{cell, bucket};
  node_geo_[node] = NodeGeo{report.position.lat_deg, report.position.lon_deg,
                            report.position.alt_m, report.timestamp};
  return node;
}

std::vector<Triple> Rdfizer::TransformReport(const PositionReport& report) {
  std::vector<Triple> out;
  out.reserve(14);
  EmitNode(report, &out);
  return out;
}

std::vector<Triple> Rdfizer::TransformCriticalPoint(const CriticalPoint& cp) {
  std::vector<Triple> out;
  out.reserve(15);
  const TermId node = EmitNode(cp.report, &out);
  out.push_back({node, vocab_->p_node_kind,
                 dict_->Intern(CriticalPointTypeName(cp.type),
                               TermKind::kLiteralString)});
  return out;
}

std::vector<Triple> Rdfizer::TransformEpisode(const Episode& episode) {
  std::vector<Triple> out;
  out.reserve(9);
  const TermId ep = dict_->Intern(
      EpisodeIri(episode.entity, episode.start_time));
  const TermId entity = dict_->Intern(EntityIri(episode.entity));
  out.push_back({ep, vocab_->p_type, vocab_->c_episode});
  out.push_back({ep, vocab_->p_of_entity, entity});
  out.push_back({ep, vocab_->p_episode_kind,
                 dict_->Intern(EpisodeKindName(episode.kind),
                               TermKind::kLiteralString)});
  out.push_back({ep, vocab_->p_episode_start,
                 dict_->InternDateTime(episode.start_time)});
  out.push_back({ep, vocab_->p_episode_end,
                 dict_->InternDateTime(episode.end_time)});
  out.push_back(
      {ep, vocab_->p_path_length, dict_->InternDouble(episode.path_m)});
  if (!episode.area.empty()) {
    const TermId area = dict_->Intern(AreaIri(episode.area));
    out.push_back({area, vocab_->p_type, vocab_->c_area});
    out.push_back({ep, vocab_->p_within_area, area});
  }
  const GridCell cell = grid_.CellOf(episode.start_pos.ll());
  const std::int64_t bucket = BucketOf(episode.start_time);
  out.push_back(
      {ep, vocab_->p_in_cell, dict_->Intern(CellIri(cell.ix, cell.iy))});
  out.push_back(
      {ep, vocab_->p_in_bucket, dict_->Intern(BucketIri(bucket))});
  tags_[ep] = StTag{cell, bucket};
  node_geo_[ep] =
      NodeGeo{episode.start_pos.lat_deg, episode.start_pos.lon_deg,
              episode.start_pos.alt_m, episode.start_time};
  return out;
}

std::vector<Triple> Rdfizer::TransformWeather(const WeatherSample& sample) {
  std::vector<Triple> out;
  out.reserve(7);
  const std::int64_t bucket = BucketOf(sample.bucket_start);
  const TermId wx = dict_->Intern(
      WeatherIri(sample.cell.ix, sample.cell.iy, bucket));
  out.push_back({wx, vocab_->p_type, vocab_->c_weather_obs});
  out.push_back({wx, vocab_->p_in_cell,
                 dict_->Intern(CellIri(sample.cell.ix, sample.cell.iy))});
  out.push_back({wx, vocab_->p_in_bucket, dict_->Intern(BucketIri(bucket))});
  out.push_back(
      {wx, vocab_->p_wind_u, dict_->InternDouble(sample.wind_u_mps)});
  out.push_back(
      {wx, vocab_->p_wind_v, dict_->InternDouble(sample.wind_v_mps)});
  out.push_back(
      {wx, vocab_->p_wave_height, dict_->InternDouble(sample.wave_height_m)});
  tags_[wx] = StTag{sample.cell, bucket};
  return out;
}

}  // namespace datacron
