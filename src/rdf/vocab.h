#ifndef DATACRON_RDF_VOCAB_H_
#define DATACRON_RDF_VOCAB_H_

#include "rdf/term.h"

namespace datacron {

/// The library's RDF vocabulary — a pragmatic subset of the datAcron
/// ontology (moving entities, semantic trajectory nodes, weather,
/// events). All predicates/classes are interned once into a shared
/// dictionary so modules can compare TermIds directly.
struct Vocab {
  explicit Vocab(TermDictionary* dict);

  // Classes.
  TermId c_vessel;
  TermId c_aircraft;
  TermId c_position_node;    // one semantic node per (kept) position report
  TermId c_trajectory;
  TermId c_weather_obs;
  TermId c_event;
  TermId c_area;

  // Core predicates.
  TermId p_type;             // rdf:type
  TermId p_of_entity;        // node -> moving entity
  TermId p_timestamp;        // node -> dateTime literal
  TermId p_lat;
  TermId p_lon;
  TermId p_alt;
  TermId p_speed;
  TermId p_course;
  TermId p_vrate;
  TermId p_node_kind;        // critical point kind literal
  TermId p_in_cell;          // node -> grid cell resource
  TermId p_in_bucket;        // node -> time bucket resource
  TermId p_has_node;         // trajectory -> node
  TermId p_next_node;        // node -> node (temporal succession)

  // Weather predicates.
  TermId p_wind_u;
  TermId p_wind_v;
  TermId p_wave_height;

  // Link-discovery predicates (the interlinking component's output).
  TermId p_near_entity;      // node -> other entity (proximity link)
  TermId p_within_area;      // node -> area
  TermId p_weather_at;       // node -> weather observation

  // Event predicates.
  TermId p_event_kind;
  TermId p_involves;
  TermId p_event_start;
  TermId p_event_end;

  // Semantic-trajectory episode vocabulary.
  TermId c_episode;
  TermId p_episode_kind;
  TermId p_episode_start;
  TermId p_episode_end;
  TermId p_path_length;

  TermDictionary* dict;
};

/// IRI builders for instance resources. Cell/bucket components are embedded
/// in the IRI so a resource's spatiotemporal placement is recoverable from
/// its name — the "spatiotemporally aware node naming" trick datAcron's
/// parallel RDF stores use for locality-preserving partitioning.
std::string EntityIri(std::uint32_t entity_id);
std::string PositionNodeIri(std::uint32_t entity_id, std::int64_t timestamp);
std::string TrajectoryIri(std::uint32_t entity_id);
std::string CellIri(std::int32_t ix, std::int32_t iy);
std::string BucketIri(std::int64_t bucket_index);
std::string WeatherIri(std::int32_t ix, std::int32_t iy,
                       std::int64_t bucket_index);
std::string AreaIri(const std::string& name);
std::string EventIri(std::uint64_t event_seq);
std::string EpisodeIri(std::uint32_t entity_id, std::int64_t start_time);

}  // namespace datacron

#endif  // DATACRON_RDF_VOCAB_H_
