#include "datacron/engine.h"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "obs/trace.h"
#include "stream/sharded_runtime.h"

namespace datacron {

// The engine's placement of each operator must agree with the operator's
// own declared stage kind — a keyed operator accidentally holding
// cross-entity state would silently break shard-count invariance.
static_assert(CriticalPointDetector::kStage == StageKind::kKeyed);
static_assert(AreaEventDetector::kStage == StageKind::kKeyed);
static_assert(LoiteringDetector::kStage == StageKind::kKeyed);
static_assert(GapDetector::kStage == StageKind::kKeyed);
static_assert(SpeedAnomalyDetector::kStage == StageKind::kKeyed);
static_assert(EpisodeBuilder::kStage == StageKind::kKeyed);
static_assert(ProximityDetector::kStage == StageKind::kGlobal);
static_assert(CapacityMonitor::kStage == StageKind::kGlobal);
static_assert(HotspotDetector::kStage == StageKind::kGlobal);

DatacronEngine::DatacronEngine(Config config)
    : config_(std::move(config)),
      reports_counter_(
          obs::MetricsRegistry::Global().counter("engine.reports")),
      cp_counter_(
          obs::MetricsRegistry::Global().counter("engine.critical_points")),
      merge_terms_counter_(
          obs::MetricsRegistry::Global().counter("engine.merge_terms")),
      merge_terms_hist_(obs::MetricsRegistry::Global().histogram(
          "engine.merge_terms_per_epoch")),
      synopses_hist_(
          obs::MetricsRegistry::Global().histogram("engine.synopses_ns")),
      transform_hist_(
          obs::MetricsRegistry::Global().histogram("engine.transform_ns")),
      trajectory_hist_(
          obs::MetricsRegistry::Global().histogram("engine.trajectory_ns")),
      cep_hist_(obs::MetricsRegistry::Global().histogram("engine.cep_ns")),
      vocab_(std::make_unique<Vocab>(&dict_)),
      rdfizer_(std::make_unique<Rdfizer>(config_.rdf, &dict_, vocab_.get())),
      proximity_(config_.proximity) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    shards_.emplace_back(config_);
  }
  SubscriptionRegistry::Options sub_opts;
  sub_opts.num_shards = config_.num_shards;
  subs_ = std::make_unique<SubscriptionRegistry>(sub_opts);
  if (!config_.sectors.empty()) {
    capacity_ = std::make_unique<CapacityMonitor>(config_.sectors,
                                                  config_.capacity);
  }
  if (config_.hotspot_window > 0) {
    hotspots_ = std::make_unique<HotspotDetector>(config_.hotspot,
                                                  config_.hotspot_window);
  }
}

std::size_t DatacronEngine::ShardOf(EntityId entity) const {
  return MixU64(entity) % shards_.size();
}

DatacronEngine::KeyedStats DatacronEngine::ProcessKeyedCore(
    std::size_t shard_idx, const PositionReport& report,
    const KeyedSink& sink) {
  Shard* shard = &shards_[shard_idx];
  KeyedStats stats;

  // 1. In-situ processing: synopses.
  const std::int64_t t0 = MonotonicNanos();
  std::vector<CriticalPoint> cps;
  shard->detector.ProcessCounted(report, &cps);
  stats.cp_count = cps.size();
  const std::int64_t t1 = MonotonicNanos();

  // 2. Data transformation: critical points (or everything) to RDF, and
  //    semantic-trajectory episodes derived from the synopsis.
  if (config_.rdfize_all_reports || !cps.empty()) {
    TermSource* terms = sink.terms;

    // Pre-seed the sink with this entity's RDF continuation state,
    // reconstructed by re-interning IRI text. Each IRI either already
    // exists in the global dictionary or was first interned by an earlier
    // report of this same entity — which merges earlier in input order —
    // so re-interning never allocates an id out of first-occurrence order
    // and the ids match the serial run.
    const EntityId entity = report.entity_id;
    std::unordered_map<EntityId, TermId> prev_node;
    std::unordered_map<EntityId, TermId> known;
    if (shard->rdf_known.count(entity) > 0) {
      known.emplace(entity, terms->Intern(EntityIri(entity)));
    }
    if (config_.rdf.emit_sequence_links) {
      auto prev_it = shard->prev_node_ts.find(entity);
      if (prev_it != shard->prev_node_ts.end()) {
        prev_node.emplace(
            entity, terms->Intern(PositionNodeIri(entity, prev_it->second)));
      }
    }
    Rdfizer::Sink rdf_sink;
    rdf_sink.terms = terms;
    rdf_sink.tags = sink.tags;
    rdf_sink.node_geo = sink.node_geo;
    rdf_sink.prev_node = &prev_node;
    rdf_sink.known_entities = &known;

    if (config_.rdfize_all_reports) {
      rdfizer_->TransformReportInto(report, rdf_sink, sink.triples);
      shard->prev_node_ts[entity] = report.timestamp;
      shard->rdf_known.insert(entity);
    } else {
      for (const CriticalPoint& cp : cps) {
        rdfizer_->TransformCriticalPointInto(cp, rdf_sink, sink.triples);
        // Gap-start points carry the pre-gap report, so the last cp's
        // timestamp — not the report's — is the continuation point.
        shard->prev_node_ts[cp.report.entity_id] = cp.report.timestamp;
        shard->rdf_known.insert(cp.report.entity_id);
      }
    }
    std::vector<Episode> completed;
    for (const CriticalPoint& cp : cps) {
      shard->episode_builder.Process(cp, &completed);
    }
    for (const Episode& e : completed) {
      rdfizer_->TransformEpisodeInto(e, rdf_sink, sink.triples);
    }
    sink.episodes->insert(sink.episodes->end(),
                          std::make_move_iterator(completed.begin()),
                          std::make_move_iterator(completed.end()));
  }
  const std::int64_t t2 = MonotonicNanos();

  // 4a. Keyed complex event recognition (global CEP runs in the absorb
  //     stage, which splices these events in after proximity).
  shard->area_events.ProcessCounted(report, sink.events);
  shard->loitering.ProcessCounted(report, sink.events);
  shard->gap.ProcessCounted(report, sink.events);
  shard->speed_anomaly.ProcessCounted(report, sink.events);

  // 4c. Shard-local standing-query evaluation: geofence transitions and
  //     hotspot count increments land in the shard's epoch sink and cross
  //     the barrier only when a subscription fires.
  if (subs_->keyed_active() && sink.sub_deltas != nullptr) {
    subs_->EvalKeyed(shard_idx, report, sink.sub_deltas, sink.sub_counts);
  }

  stats.synopses_ns = t1 - t0;
  stats.transform_ns = t2 - t1;
  stats.keyed_cep_ns = MonotonicNanos() - t2;
  return stats;
}

void DatacronEngine::ProcessKeyed(std::size_t shard,
                                  const PositionReport& report,
                                  TermSource* terms, ReportOutput* out) {
  KeyedSink sink;
  sink.terms = terms;
  sink.triples = &out->triples;
  sink.episodes = &out->episodes;
  sink.events = &out->keyed_events;
  sink.tags = &out->tags;
  sink.node_geo = &out->node_geo;
  sink.sub_deltas = &out->sub_deltas;
  sink.sub_counts = &out->sub_counts;
  const KeyedStats stats = ProcessKeyedCore(shard, report, sink);
  out->cp_count = stats.cp_count;
  out->synopses_ns = stats.synopses_ns;
  out->transform_ns = stats.transform_ns;
  out->keyed_cep_ns = stats.keyed_cep_ns;
}

void DatacronEngine::ProcessKeyedArena(std::size_t shard,
                                       const PositionReport& report,
                                       ShardSlot* slot, EpochArena* arena,
                                       bool use_batch) {
  KeyedSink sink;
  sink.terms = &dict_;
  if (use_batch) {
    // One batch-local dictionary per shard-epoch; every report of the
    // shard's epoch interns into it, so the merge cost is paid once per
    // epoch, not once per report.
    if (arena->terms == nullptr) {
      arena->terms = std::make_unique<TermBatch>(&dict_);
    }
    sink.terms = arena->terms.get();
  }
  sink.triples = &arena->triples;
  sink.episodes = &arena->episodes;
  sink.events = &arena->events;
  sink.tags = &arena->tags;
  sink.node_geo = &arena->node_geo;
  sink.sub_deltas = &arena->sub_deltas;
  sink.sub_counts = &arena->sub_counts;
  const KeyedStats stats = ProcessKeyedCore(shard, report, sink);
  slot->shard = static_cast<std::uint32_t>(shard);
  slot->cp_count = static_cast<std::uint32_t>(stats.cp_count);
  slot->terms_end = arena->terms != nullptr ? arena->terms->local_size() : 0;
  slot->triples_end = arena->triples.size();
  slot->episodes_end = arena->episodes.size();
  slot->events_end = arena->events.size();
  slot->subs_end = arena->sub_deltas.size();
  slot->synopses_ns = stats.synopses_ns;
  slot->transform_ns = stats.transform_ns;
  slot->keyed_cep_ns = stats.keyed_cep_ns;
}

void DatacronEngine::AbsorbOutput(const PositionReport& report,
                                  ReportOutput* out,
                                  std::vector<Event>* events) {
  ++reports_ingested_;
  critical_points_ += out->cp_count;
  reports_counter_->Add();
  cp_counter_->Add(out->cp_count);

  // 3. Trajectory management + absorption of the keyed outputs (ids are
  //    already global on this path).
  const std::int64_t t0 = MonotonicNanos();
  triples_.insert(triples_.end(), out->triples.begin(), out->triples.end());
  rdfizer_->AbsorbSideTables(out->tags, out->node_geo, {});
  for (Episode& e : out->episodes) episodes_.push_back(std::move(e));
  trajectories_.Add(report);
  predictor_.Observe(report);
  const std::int64_t t1 = MonotonicNanos();

  // 4b. Global complex event recognition. The serial engine emits
  //     proximity, area, loitering, gap, speed, capacity, hotspot per
  //     report; keyed_events holds the middle four already in order.
  const std::size_t prox_begin = events->size();
  proximity_.ProcessCounted(report, events);
  const std::size_t prox_end = events->size();
  events->insert(events->end(), out->keyed_events.begin(),
                 out->keyed_events.end());
  if (capacity_ != nullptr) capacity_->ProcessCounted(report, events);
  if (hotspots_ != nullptr) hotspots_->ProcessCounted(report, events);

  // Subscription barrier feed, in input order: the report's shard-emitted
  // deltas, its hotspot count increments, and the proximity events that
  // can wake proximity subscriptions.
  if (subs_->ever_active()) {
    subs_->AddKeyedDeltas(out->sub_deltas);
    subs_->AddHotspotCounts(out->sub_counts);
    subs_->AddGlobalEvents(std::span<const Event>(
        events->data() + prox_begin, prox_end - prox_begin));
  }
  const std::int64_t t2 = MonotonicNanos();

  RecordReportLatencies(out->synopses_ns, out->transform_ns,
                        out->keyed_cep_ns, t1 - t0, t2 - t1);
}

void DatacronEngine::RecordReportLatencies(std::int64_t synopses_ns,
                                           std::int64_t transform_ns,
                                           std::int64_t keyed_cep_ns,
                                           std::int64_t trajectory_ns,
                                           std::int64_t global_cep_ns) {
  latencies_.synopses_ms.Add(synopses_ns / 1e6);
  latencies_.transform_ms.Add(transform_ns / 1e6);
  latencies_.trajectory_ms.Add(trajectory_ns / 1e6);
  latencies_.cep_ms.Add((keyed_cep_ns + global_cep_ns) / 1e6);
  latencies_.total_ms.Add((synopses_ns + transform_ns + keyed_cep_ns +
                           trajectory_ns + global_cep_ns) /
                          1e6);

  // Always-on per-stage epoch timeline in the unified registry; two
  // relaxed adds per stage per report.
  synopses_hist_->Observe(static_cast<double>(synopses_ns));
  transform_hist_->Observe(static_cast<double>(transform_ns));
  trajectory_hist_->Observe(static_cast<double>(trajectory_ns));
  cep_hist_->Observe(static_cast<double>(keyed_cep_ns + global_cep_ns));
}

void DatacronEngine::AbsorbEpoch(std::span<const PositionReport> items,
                                 std::span<ShardSlot> slots,
                                 std::span<EpochArena> arenas,
                                 std::vector<Event>* events,
                                 ThreadPool* pool) {
  const std::size_t n = arenas.size();

  // Phase 1 — one coalesced dictionary merge for the whole epoch. Each
  // report's new terms occupy the contiguous TermBatch slice between its
  // predecessor's watermark and its own, so replaying those slices in
  // input order reproduces serial first-occurrence id assignment exactly
  // (cross-shard duplicates are idempotent re-interns). remaps[s] maps
  // shard s's batch-local ids to global ids.
  std::vector<std::vector<TermId>> remaps(n);
  {
    DATACRON_TRACE_SPAN("engine.term_merge_epoch", "engine");
    for (std::size_t s = 0; s < n; ++s) {
      if (arenas[s].terms != nullptr) {
        remaps[s].reserve(arenas[s].terms->local_size());
      }
    }
    std::size_t merged = 0;
    std::vector<std::size_t> cursor(n, 0);
    for (const ShardSlot& slot : slots) {
      const TermBatch* batch = arenas[slot.shard].terms.get();
      if (batch == nullptr) continue;
      std::vector<TermId>& remap = remaps[slot.shard];
      for (std::size_t j = cursor[slot.shard]; j < slot.terms_end; ++j) {
        remap.push_back(dict_.Intern(batch->local_text(j),
                                     batch->local_kind(j)));
      }
      merged += slot.terms_end - cursor[slot.shard];
      cursor[slot.shard] = slot.terms_end;
    }
    merge_terms_counter_->Add(merged);
    merge_terms_hist_->Observe(static_cast<double>(merged));
  }

  // Phase 2 — columnar bulk remap, one pass per shard arena. Side tables
  // are key→value overwrites whose shared keys always carry equal values
  // (grid-cell tags) or are entity-owned (node geometry), so per-shard
  // absorption is order-independent.
  for (std::size_t s = 0; s < n; ++s) {
    EpochArena& a = arenas[s];
    if (!remaps[s].empty()) {
      const std::vector<TermId>& remap = remaps[s];
      for (Triple& t : a.triples) {
        t.s = RemapTerm(t.s, remap);
        t.p = RemapTerm(t.p, remap);
        t.o = RemapTerm(t.o, remap);
      }
    }
    if (!a.tags.empty() || !a.node_geo.empty()) {
      rdfizer_->AbsorbSideTables(a.tags, a.node_geo, remaps[s]);
    }
  }

  // Phase 3a — epoch-batched global proximity CEP: the detector plans
  // candidate CPA pairs serially in input order, evaluates them
  // cell-parallel on the pool, and emits into prox_events_ with
  // per-report offsets. Running it once over the whole epoch (instead of
  // per report in the walk below) is what lets the pairwise CPA math —
  // the dominant global cost — leave the coordinator thread.
  std::int64_t prox_ns = 0;
  {
    DATACRON_TRACE_SPAN("engine.global_cep_epoch", "engine");
    prox_events_.clear();
    const std::int64_t b0 = MonotonicNanos();
    proximity_.ProcessBatchCounted(items, pool, &prox_events_,
                                   &prox_offsets_);
    prox_ns = MonotonicNanos() - b0;
  }
  // The batch cost is attributed evenly across the epoch's reports in
  // the per-report latency trackers.
  const std::int64_t prox_share_ns =
      items.empty() ? 0
                    : prox_ns / static_cast<std::int64_t>(items.size());

  // Phase 3b — input-order walk: splice each report's arena slices and
  // its proximity slice into the global sequences and run the remaining
  // cross-entity CEP per report, so triples/episodes/events land
  // byte-identically to a serial run.
  std::vector<std::size_t> triple_cur(n, 0);
  std::vector<std::size_t> episode_cur(n, 0);
  std::vector<std::size_t> event_cur(n, 0);
  std::vector<std::size_t> sub_cur(n, 0);
  const bool subs_active = subs_->ever_active();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const PositionReport& report = items[i];
    const ShardSlot& slot = slots[i];
    EpochArena& a = arenas[slot.shard];
    ++reports_ingested_;
    critical_points_ += slot.cp_count;
    reports_counter_->Add();
    cp_counter_->Add(slot.cp_count);

    const std::int64_t t0 = MonotonicNanos();
    triples_.insert(triples_.end(),
                    a.triples.begin() + triple_cur[slot.shard],
                    a.triples.begin() + slot.triples_end);
    triple_cur[slot.shard] = slot.triples_end;
    for (std::size_t j = episode_cur[slot.shard]; j < slot.episodes_end;
         ++j) {
      episodes_.push_back(std::move(a.episodes[j]));
    }
    episode_cur[slot.shard] = slot.episodes_end;
    trajectories_.Add(report);
    predictor_.Observe(report);
    const std::int64_t t1 = MonotonicNanos();

    events->insert(events->end(), prox_events_.begin() + prox_offsets_[i],
                   prox_events_.begin() + prox_offsets_[i + 1]);
    events->insert(events->end(), a.events.begin() + event_cur[slot.shard],
                   a.events.begin() + slot.events_end);
    event_cur[slot.shard] = slot.events_end;
    if (capacity_ != nullptr) capacity_->ProcessCounted(report, events);
    if (hotspots_ != nullptr) hotspots_->ProcessCounted(report, events);

    // Subscription barrier feed in global input order: each report's
    // shard-local delta slice, then the proximity events that can wake
    // proximity subscriptions — the same interleaving the serial path
    // produces per report.
    if (subs_active) {
      subs_->AddKeyedDeltas(std::span<const SubDelta>(
          a.sub_deltas.data() + sub_cur[slot.shard],
          slot.subs_end - sub_cur[slot.shard]));
      sub_cur[slot.shard] = slot.subs_end;
      subs_->AddGlobalEvents(std::span<const Event>(
          prox_events_.data() + prox_offsets_[i],
          prox_offsets_[i + 1] - prox_offsets_[i]));
    }
    const std::int64_t t2 = MonotonicNanos();

    RecordReportLatencies(slot.synopses_ns, slot.transform_ns,
                          slot.keyed_cep_ns, t1 - t0,
                          (t2 - t1) + prox_share_ns);
  }

  // Hotspot counts are summed (order-independent), so the per-shard maps
  // fold in at the end; then the epoch closes — coalesce + delta push.
  if (subs_active) {
    for (const EpochArena& a : arenas) subs_->AddHotspotCounts(a.sub_counts);
    subs_->CloseEpoch(items.empty() ? 0 : items.back().timestamp);
  }
}

std::vector<Event> DatacronEngine::Ingest(const PositionReport& report) {
  DATACRON_TRACE_SPAN("engine.ingest", "engine");
  std::vector<Event> events;
  ReportOutput out;
  ProcessKeyed(ShardOf(report.entity_id), report, &dict_, &out);
  AbsorbOutput(report, &out, &events);
  // Serial ingest is the epoch-of-one degenerate case: every report ends
  // a subscription epoch.
  FlushSubscriptionEpoch(report.timestamp);
  return events;
}

void DatacronEngine::ProcessKeyedOnly(const PositionReport& report,
                                      TermSource* terms, ReportOutput* out) {
  ProcessKeyed(ShardOf(report.entity_id), report, terms, out);
}

void DatacronEngine::FlushSubscriptionEpoch(TimestampMs close_ts) {
  if (subs_->ever_active()) subs_->CloseEpoch(close_ts);
}

void DatacronEngine::AbsorbKeyedOutput(const PositionReport& report,
                                       ReportOutput* out,
                                       std::vector<Event>* events) {
  AbsorbOutput(report, out, events);
}

std::vector<Event> DatacronEngine::IngestBatch(
    std::span<const PositionReport> reports, ThreadPool* pool) {
  std::vector<Event> events;
  using Runtime = ShardedRuntime<PositionReport, ShardSlot, EpochArena>;
  typename Runtime::Options opts;
  opts.num_shards = shards_.size();
  opts.epoch_size = config_.epoch_size;
  opts.max_epochs_in_flight = config_.max_epochs_in_flight;
  Runtime runtime(opts);

  // Without real parallelism, intern straight into the global dictionary
  // (no TermBatch indirection); the runtime routes by the same key and
  // accumulates into the same arenas either way, so keyed state and the
  // epoch-granular absorb path are identical.
  const bool parallel = pool != nullptr && shards_.size() > 1;
  runtime.Run(
      reports, parallel ? pool : nullptr,
      [](const PositionReport& r) { return MixU64(r.entity_id); },
      [this, parallel](std::size_t shard, const PositionReport& r,
                       ShardSlot* slot, EpochArena* arena) {
        ProcessKeyedArena(shard, r, slot, arena, parallel);
      },
      [this, &events, pool](std::span<const PositionReport> items,
                            std::span<ShardSlot> slots,
                            std::span<EpochArena> arenas) {
        // The CPA fan-out takes the pool whenever one exists — even a
        // single-shard run parallelizes the global stage.
        AbsorbEpoch(items, slots, arenas, &events, pool);
      });
  return events;
}

std::vector<Event> DatacronEngine::Finish() {
  KeyedFlush flush = FlushKeyed();
  return FinishFromFlushes(std::span<KeyedFlush>(&flush, 1));
}

KeyedFlush DatacronEngine::FlushKeyed() {
  KeyedFlush f;

  // Per-shard trajectory-end flushes, merged in ascending entity order —
  // exactly the std::map iteration order a single detector would emit.
  // Entity sets are disjoint across shards, so the order is total.
  for (Shard& s : shards_) s.detector.Flush(&f.critical_points);
  std::stable_sort(f.critical_points.begin(), f.critical_points.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     return a.report.entity_id < b.report.entity_id;
                   });

  // RDF continuation state for every entity in the flush, so the
  // coordinator-side transform can chain sequence links correctly.
  std::unordered_set<EntityId> seen;
  for (const CriticalPoint& cp : f.critical_points) {
    const EntityId entity = cp.report.entity_id;
    if (!seen.insert(entity).second) continue;
    Shard& shard = shards_[ShardOf(entity)];
    EntityRdfContinuation c;
    c.entity = entity;
    c.rdf_known = shard.rdf_known.count(entity) > 0;
    auto prev_it = shard.prev_node_ts.find(entity);
    if (prev_it != shard.prev_node_ts.end()) {
      c.has_prev_node = true;
      c.prev_node_ts = prev_it->second;
    }
    f.continuations.push_back(c);
  }

  // Feed the flush points through the episode builders (keyed state, no
  // dictionary access), then flush the still-open episodes per entity.
  for (const CriticalPoint& cp : f.critical_points) {
    shards_[ShardOf(cp.report.entity_id)].episode_builder.Process(
        cp, &f.completed_episodes);
  }
  for (Shard& s : shards_) s.episode_builder.Flush(&f.trailing_episodes);
  std::stable_sort(f.trailing_episodes.begin(), f.trailing_episodes.end(),
                   [](const Episode& a, const Episode& b) {
                     return a.entity < b.entity;
                   });

  // Keyed CEP flushes are no-ops today; looped per shard for symmetry.
  for (Shard& s : shards_) s.area_events.Flush(&f.events);
  for (Shard& s : shards_) s.loitering.Flush(&f.events);
  return f;
}

std::vector<Event> DatacronEngine::FinishFromFlushes(
    std::span<KeyedFlush> flushes) {
  std::vector<Event> events;

  // Entity sets are disjoint across flushes (one node owns each entity),
  // and every per-flush list is already grouped by ascending entity, so a
  // stable sort of the concatenation reproduces the order a single
  // engine's flush would have produced.
  std::vector<CriticalPoint> cps;
  std::unordered_map<EntityId, TimestampMs> prev_node_ts;
  std::unordered_set<EntityId> rdf_known;
  for (KeyedFlush& f : flushes) {
    cps.insert(cps.end(), f.critical_points.begin(),
               f.critical_points.end());
    for (const EntityRdfContinuation& c : f.continuations) {
      if (c.has_prev_node) prev_node_ts[c.entity] = c.prev_node_ts;
      if (c.rdf_known) rdf_known.insert(c.entity);
    }
  }
  std::stable_sort(cps.begin(), cps.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     return a.report.entity_id < b.report.entity_id;
                   });
  critical_points_ += cps.size();

  std::unordered_map<TermId, StTag> tags;
  std::unordered_map<TermId, NodeGeo> node_geo;
  if (!config_.rdfize_all_reports) {
    for (const CriticalPoint& cp : cps) {
      const EntityId entity = cp.report.entity_id;
      std::unordered_map<EntityId, TermId> prev_node;
      std::unordered_map<EntityId, TermId> known;
      if (rdf_known.count(entity) > 0) {
        known.emplace(entity, dict_.Intern(EntityIri(entity)));
      }
      if (config_.rdf.emit_sequence_links) {
        auto prev_it = prev_node_ts.find(entity);
        if (prev_it != prev_node_ts.end()) {
          prev_node.emplace(
              entity, dict_.Intern(PositionNodeIri(entity, prev_it->second)));
        }
      }
      Rdfizer::Sink sink;
      sink.terms = &dict_;
      sink.tags = &tags;
      sink.node_geo = &node_geo;
      sink.prev_node = &prev_node;
      sink.known_entities = &known;
      rdfizer_->TransformCriticalPointInto(cp, sink, &triples_);
      prev_node_ts[entity] = cp.report.timestamp;
      rdf_known.insert(entity);
    }
  }

  std::vector<Episode> completed;
  std::vector<Episode> trailing;
  for (KeyedFlush& f : flushes) {
    completed.insert(completed.end(), f.completed_episodes.begin(),
                     f.completed_episodes.end());
    trailing.insert(trailing.end(), f.trailing_episodes.begin(),
                    f.trailing_episodes.end());
  }
  const auto by_entity = [](const Episode& a, const Episode& b) {
    return a.entity < b.entity;
  };
  std::stable_sort(completed.begin(), completed.end(), by_entity);
  std::stable_sort(trailing.begin(), trailing.end(), by_entity);
  completed.insert(completed.end(), trailing.begin(), trailing.end());

  Rdfizer::Sink episode_sink;
  episode_sink.terms = &dict_;
  episode_sink.tags = &tags;
  episode_sink.node_geo = &node_geo;
  for (const Episode& e : completed) {
    rdfizer_->TransformEpisodeInto(e, episode_sink, &triples_);
    episodes_.push_back(e);
  }
  rdfizer_->AbsorbSideTables(tags, node_geo, {});

  proximity_.Flush(&events);
  for (KeyedFlush& f : flushes) {
    events.insert(events.end(), f.events.begin(), f.events.end());
  }
  if (capacity_ != nullptr) capacity_->Flush(&events);
  if (hotspots_ != nullptr) hotspots_->Flush(&events);
  return events;
}

TripleStore DatacronEngine::BuildStore(ThreadPool* pool) const {
  TripleStore store;
  store.AddBatch(triples_);
  store.Seal(pool);
  return store;
}

std::vector<MetricsRow> DatacronEngine::KeyedMetricsRows() const {
  std::vector<MetricsRow> rows;
  const auto merged = [this](auto member) {
    OperatorMetrics m;
    for (const Shard& s : shards_) m.Merge((s.*member).metrics());
    return m;
  };
  const std::size_t n = shards_.size();
  rows.push_back({"synopses", merged(&Shard::detector), n});
  rows.push_back({"cep-keyed", merged(&Shard::area_events), n});
  rows.push_back({"cep-keyed", merged(&Shard::loitering), n});
  rows.push_back({"cep-keyed", merged(&Shard::gap), n});
  rows.push_back({"cep-keyed", merged(&Shard::speed_anomaly), n});
  return rows;
}

std::vector<MetricsRow> DatacronEngine::GlobalMetricsRows() const {
  std::vector<MetricsRow> rows;
  rows.push_back({"cep-global", proximity_.metrics(), 1});
  if (capacity_ != nullptr) {
    rows.push_back({"cep-global", capacity_->metrics(), 1});
  }
  if (hotspots_ != nullptr) {
    rows.push_back({"cep-global", hotspots_->metrics(), 1});
  }
  return rows;
}

std::string DatacronEngine::RenderMetricsTable(
    std::span<const MetricsRow> rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-10s %-24s %6s %10s %10s %7s %10s %10s\n", "stage",
                "operator", "shards", "items_in", "items_out", "sel%",
                "p50_ns", "p99_ns");
  out += line;
  for (const MetricsRow& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-24s %6zu %10zu %10zu %6.1f%% %10.0f %10.0f\n",
                  r.stage.c_str(), r.metrics.name.c_str(), r.instances,
                  r.metrics.items_in, r.metrics.items_out,
                  r.metrics.SelectivityPct(), r.metrics.latency_ns.p50(),
                  r.metrics.latency_ns.p99());
    out += line;
  }
  return out;
}

std::string DatacronEngine::MetricsReport() const {
  std::vector<MetricsRow> rows = KeyedMetricsRows();
  std::vector<MetricsRow> global = GlobalMetricsRows();
  rows.insert(rows.end(), std::make_move_iterator(global.begin()),
              std::make_move_iterator(global.end()));
  std::string out = RenderMetricsTable(rows);
  // A lossy admission policy is part of the engine's observable contract,
  // so the report names it even before anything was shed.
  if (admission_dropped_ > 0 ||
      config_.admission != AdmissionPolicy::kBlock) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "admission: policy=%s dropped=%zu entities_hit=%zu\n",
                  AdmissionPolicyName(config_.admission),
                  admission_dropped_, admission_drops_.size());
    out += line;
    // Worst offenders first so the report names who was shed.
    std::vector<std::pair<std::uint64_t, std::size_t>> by_count =
        admission_drops_;
    std::stable_sort(by_count.begin(), by_count.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    const std::size_t shown = std::min<std::size_t>(by_count.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      std::snprintf(line, sizeof(line),
                    "  entity %llu: %zu dropped\n",
                    static_cast<unsigned long long>(by_count[i].first),
                    by_count[i].second);
      out += line;
    }
  }
  return out;
}

obs::MetricsSnapshot DatacronEngine::MetricsSnapshot() const {
  obs::MetricsSnapshot snap;
  std::vector<MetricsRow> rows = KeyedMetricsRows();
  std::vector<MetricsRow> global = GlobalMetricsRows();
  rows.insert(rows.end(), std::make_move_iterator(global.begin()),
              std::make_move_iterator(global.end()));
  for (const MetricsRow& r : rows) {
    obs::AddOperatorMetrics("engine." + r.stage + "." + r.metrics.name,
                            r.metrics, &snap);
  }
  snap.AddCounter("engine.reports", reports_ingested_);
  snap.AddCounter("engine.critical_points", critical_points_);
  snap.AddCounter("engine.triples", triples_.size());
  snap.AddCounter("engine.episodes", episodes_.size());
  snap.AddCounter("admission.dropped", admission_dropped_);
  return snap;
}

std::unique_ptr<AdmissionQueue<PositionReport>>
DatacronEngine::NewAdmissionQueue() const {
  AdmissionQueue<PositionReport>::Options opts;
  opts.capacity = config_.admission_capacity != 0
                      ? config_.admission_capacity
                      : config_.epoch_size * config_.max_epochs_in_flight;
  opts.policy = config_.admission;
  opts.drop_key = [](const PositionReport& r) {
    return static_cast<std::uint64_t>(r.entity_id);
  };
  return std::make_unique<AdmissionQueue<PositionReport>>(std::move(opts));
}

std::vector<Event> DatacronEngine::IngestFromQueue(
    AdmissionQueue<PositionReport>* queue, ThreadPool* pool) {
  std::vector<Event> events;
  for (;;) {
    const std::vector<PositionReport> batch =
        queue->PopBatch(config_.epoch_size * config_.max_epochs_in_flight);
    if (batch.empty()) break;  // closed and drained
    const std::vector<Event> evs = IngestBatch(batch, pool);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  RecordAdmissionDrops(*queue);
  return events;
}

void DatacronEngine::RecordAdmissionDrops(
    const AdmissionQueue<PositionReport>& queue) {
  admission_dropped_ = queue.dropped();
  admission_drops_ = queue.DropsByKey();
}

}  // namespace datacron
