#include "datacron/engine.h"

#include "common/time_utils.h"

namespace datacron {

DatacronEngine::DatacronEngine(Config config)
    : config_(std::move(config)),
      vocab_(std::make_unique<Vocab>(&dict_)),
      rdfizer_(std::make_unique<Rdfizer>(config_.rdf, &dict_, vocab_.get())),
      detector_(config_.synopses),
      proximity_(config_.proximity),
      area_events_(config_.areas),
      loitering_(config_.loitering),
      gap_(config_.gap),
      speed_anomaly_(config_.speed_anomaly),
      episode_builder_(config_.areas) {
  if (!config_.sectors.empty()) {
    capacity_ = std::make_unique<CapacityMonitor>(config_.sectors,
                                                  config_.capacity);
  }
  if (config_.hotspot_window > 0) {
    hotspots_ = std::make_unique<HotspotDetector>(config_.hotspot,
                                                  config_.hotspot_window);
  }
}

std::vector<Event> DatacronEngine::Ingest(const PositionReport& report) {
  std::vector<Event> events;
  const std::int64_t t_start = MonotonicNanos();
  ++reports_ingested_;

  // 1. In-situ processing: synopses.
  std::vector<CriticalPoint> cps;
  detector_.ProcessCounted(report, &cps);
  critical_points_ += cps.size();
  const std::int64_t t_synopses = MonotonicNanos();

  // 2. Data transformation: critical points (or everything) to RDF, and
  //    semantic-trajectory episodes derived from the synopsis.
  if (config_.rdfize_all_reports) {
    const std::vector<Triple> ts = rdfizer_->TransformReport(report);
    triples_.insert(triples_.end(), ts.begin(), ts.end());
  } else {
    for (const CriticalPoint& cp : cps) {
      const std::vector<Triple> ts = rdfizer_->TransformCriticalPoint(cp);
      triples_.insert(triples_.end(), ts.begin(), ts.end());
    }
  }
  std::vector<Episode> completed;
  for (const CriticalPoint& cp : cps) {
    episode_builder_.Process(cp, &completed);
  }
  for (const Episode& e : completed) {
    const std::vector<Triple> ts = rdfizer_->TransformEpisode(e);
    triples_.insert(triples_.end(), ts.begin(), ts.end());
    episodes_.push_back(e);
  }
  const std::int64_t t_transform = MonotonicNanos();

  // 3. Trajectory management.
  trajectories_.Add(report);
  predictor_.Observe(report);
  const std::int64_t t_trajectory = MonotonicNanos();

  // 4. Complex event recognition & forecasting.
  proximity_.ProcessCounted(report, &events);
  area_events_.ProcessCounted(report, &events);
  loitering_.ProcessCounted(report, &events);
  gap_.ProcessCounted(report, &events);
  speed_anomaly_.ProcessCounted(report, &events);
  if (capacity_ != nullptr) capacity_->ProcessCounted(report, &events);
  if (hotspots_ != nullptr) hotspots_->ProcessCounted(report, &events);
  const std::int64_t t_end = MonotonicNanos();

  latencies_.synopses_ms.Add((t_synopses - t_start) / 1e6);
  latencies_.transform_ms.Add((t_transform - t_synopses) / 1e6);
  latencies_.trajectory_ms.Add((t_trajectory - t_transform) / 1e6);
  latencies_.cep_ms.Add((t_end - t_trajectory) / 1e6);
  latencies_.total_ms.Add((t_end - t_start) / 1e6);
  return events;
}

std::vector<Event> DatacronEngine::Finish() {
  std::vector<Event> events;
  std::vector<CriticalPoint> cps;
  detector_.Flush(&cps);
  critical_points_ += cps.size();
  if (!config_.rdfize_all_reports) {
    for (const CriticalPoint& cp : cps) {
      const std::vector<Triple> ts = rdfizer_->TransformCriticalPoint(cp);
      triples_.insert(triples_.end(), ts.begin(), ts.end());
    }
  }
  std::vector<Episode> completed;
  for (const CriticalPoint& cp : cps) {
    episode_builder_.Process(cp, &completed);
  }
  episode_builder_.Flush(&completed);
  for (const Episode& e : completed) {
    const std::vector<Triple> ts = rdfizer_->TransformEpisode(e);
    triples_.insert(triples_.end(), ts.begin(), ts.end());
    episodes_.push_back(e);
  }
  proximity_.Flush(&events);
  area_events_.Flush(&events);
  loitering_.Flush(&events);
  if (capacity_ != nullptr) capacity_->Flush(&events);
  if (hotspots_ != nullptr) hotspots_->Flush(&events);
  return events;
}

TripleStore DatacronEngine::BuildStore(ThreadPool* pool) const {
  TripleStore store;
  store.AddBatch(triples_);
  store.Seal(pool);
  return store;
}

}  // namespace datacron
