#include "datacron/engine.h"

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"
#include "obs/trace.h"
#include "stream/sharded_runtime.h"

namespace datacron {

// The engine's placement of each operator must agree with the operator's
// own declared stage kind — a keyed operator accidentally holding
// cross-entity state would silently break shard-count invariance.
static_assert(CriticalPointDetector::kStage == StageKind::kKeyed);
static_assert(AreaEventDetector::kStage == StageKind::kKeyed);
static_assert(LoiteringDetector::kStage == StageKind::kKeyed);
static_assert(GapDetector::kStage == StageKind::kKeyed);
static_assert(SpeedAnomalyDetector::kStage == StageKind::kKeyed);
static_assert(EpisodeBuilder::kStage == StageKind::kKeyed);
static_assert(ProximityDetector::kStage == StageKind::kGlobal);
static_assert(CapacityMonitor::kStage == StageKind::kGlobal);
static_assert(HotspotDetector::kStage == StageKind::kGlobal);

DatacronEngine::DatacronEngine(Config config)
    : config_(std::move(config)),
      vocab_(std::make_unique<Vocab>(&dict_)),
      rdfizer_(std::make_unique<Rdfizer>(config_.rdf, &dict_, vocab_.get())),
      proximity_(config_.proximity) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    shards_.emplace_back(config_);
  }
  if (!config_.sectors.empty()) {
    capacity_ = std::make_unique<CapacityMonitor>(config_.sectors,
                                                  config_.capacity);
  }
  if (config_.hotspot_window > 0) {
    hotspots_ = std::make_unique<HotspotDetector>(config_.hotspot,
                                                  config_.hotspot_window);
  }
}

std::size_t DatacronEngine::ShardOf(EntityId entity) const {
  return MixU64(entity) % shards_.size();
}

void DatacronEngine::ProcessKeyed(Shard* shard, const PositionReport& report,
                                  TermSource* serial_terms,
                                  ReportOutput* out) {
  // 1. In-situ processing: synopses.
  const std::int64_t t0 = MonotonicNanos();
  std::vector<CriticalPoint> cps;
  shard->detector.ProcessCounted(report, &cps);
  out->cp_count = cps.size();
  const std::int64_t t1 = MonotonicNanos();

  // 2. Data transformation: critical points (or everything) to RDF, and
  //    semantic-trajectory episodes derived from the synopsis.
  if (config_.rdfize_all_reports || !cps.empty()) {
    TermSource* terms = serial_terms;
    if (terms == nullptr) {
      out->terms = std::make_unique<TermBatch>(&dict_);
      terms = out->terms.get();
    }

    // Pre-seed the sink with this entity's RDF continuation state,
    // reconstructed by re-interning IRI text. Each IRI either already
    // exists in the global dictionary or was first interned by an earlier
    // report of this same entity — whose batch merges earlier in input
    // order — so re-interning never allocates an id out of
    // first-occurrence order and the ids match the serial run.
    const EntityId entity = report.entity_id;
    std::unordered_map<EntityId, TermId> prev_node;
    std::unordered_map<EntityId, TermId> known;
    if (shard->rdf_known.count(entity) > 0) {
      known.emplace(entity, terms->Intern(EntityIri(entity)));
    }
    if (config_.rdf.emit_sequence_links) {
      auto prev_it = shard->prev_node_ts.find(entity);
      if (prev_it != shard->prev_node_ts.end()) {
        prev_node.emplace(
            entity, terms->Intern(PositionNodeIri(entity, prev_it->second)));
      }
    }
    Rdfizer::Sink sink;
    sink.terms = terms;
    sink.tags = &out->tags;
    sink.node_geo = &out->node_geo;
    sink.prev_node = &prev_node;
    sink.known_entities = &known;

    if (config_.rdfize_all_reports) {
      rdfizer_->TransformReportInto(report, sink, &out->triples);
      shard->prev_node_ts[entity] = report.timestamp;
      shard->rdf_known.insert(entity);
    } else {
      for (const CriticalPoint& cp : cps) {
        rdfizer_->TransformCriticalPointInto(cp, sink, &out->triples);
        // Gap-start points carry the pre-gap report, so the last cp's
        // timestamp — not the report's — is the continuation point.
        shard->prev_node_ts[cp.report.entity_id] = cp.report.timestamp;
        shard->rdf_known.insert(cp.report.entity_id);
      }
    }
    std::vector<Episode> completed;
    for (const CriticalPoint& cp : cps) {
      shard->episode_builder.Process(cp, &completed);
    }
    for (const Episode& e : completed) {
      rdfizer_->TransformEpisodeInto(e, sink, &out->triples);
    }
    out->episodes = std::move(completed);
  }
  const std::int64_t t2 = MonotonicNanos();

  // 4a. Keyed complex event recognition (global CEP runs in
  //     AbsorbOutput, which splices these events in after proximity).
  shard->area_events.ProcessCounted(report, &out->keyed_events);
  shard->loitering.ProcessCounted(report, &out->keyed_events);
  shard->gap.ProcessCounted(report, &out->keyed_events);
  shard->speed_anomaly.ProcessCounted(report, &out->keyed_events);

  out->synopses_ns = t1 - t0;
  out->transform_ns = t2 - t1;
  out->keyed_cep_ns = MonotonicNanos() - t2;
}

void DatacronEngine::AbsorbOutput(const PositionReport& report,
                                  ReportOutput* out,
                                  std::vector<Event>* events) {
  static obs::Counter* reports_counter =
      obs::MetricsRegistry::Global().counter("engine.reports");
  static obs::Counter* cp_counter =
      obs::MetricsRegistry::Global().counter("engine.critical_points");
  ++reports_ingested_;
  critical_points_ += out->cp_count;
  reports_counter->Add();
  cp_counter->Add(out->cp_count);

  // 3. Trajectory management + deterministic merge of keyed outputs.
  const std::int64_t t0 = MonotonicNanos();
  if (out->terms != nullptr) {
    // Only the parallel path pays a per-report batch merge — the span is
    // what lets a trace attribute the sharded runtime's coordination tax.
    DATACRON_TRACE_SPAN("engine.term_merge", "engine");
    const std::vector<TermId> remap = dict_.MergeBatch(*out->terms);
    triples_.reserve(triples_.size() + out->triples.size());
    for (const Triple& t : out->triples) {
      triples_.push_back({RemapTerm(t.s, remap), RemapTerm(t.p, remap),
                          RemapTerm(t.o, remap)});
    }
    rdfizer_->AbsorbSideTables(out->tags, out->node_geo, remap);
  } else {
    triples_.insert(triples_.end(), out->triples.begin(),
                    out->triples.end());
    rdfizer_->AbsorbSideTables(out->tags, out->node_geo, {});
  }
  for (Episode& e : out->episodes) episodes_.push_back(std::move(e));
  trajectories_.Add(report);
  predictor_.Observe(report);
  const std::int64_t t1 = MonotonicNanos();

  // 4b. Global complex event recognition. The serial engine emits
  //     proximity, area, loitering, gap, speed, capacity, hotspot per
  //     report; keyed_events holds the middle four already in order.
  proximity_.ProcessCounted(report, events);
  events->insert(events->end(), out->keyed_events.begin(),
                 out->keyed_events.end());
  if (capacity_ != nullptr) capacity_->ProcessCounted(report, events);
  if (hotspots_ != nullptr) hotspots_->ProcessCounted(report, events);
  const std::int64_t t2 = MonotonicNanos();

  latencies_.synopses_ms.Add(out->synopses_ns / 1e6);
  latencies_.transform_ms.Add(out->transform_ns / 1e6);
  latencies_.trajectory_ms.Add((t1 - t0) / 1e6);
  latencies_.cep_ms.Add((out->keyed_cep_ns + (t2 - t1)) / 1e6);
  latencies_.total_ms.Add(
      (out->synopses_ns + out->transform_ns + out->keyed_cep_ns +
       (t2 - t0)) /
      1e6);

  // Always-on per-stage epoch timeline in the unified registry; two
  // relaxed adds per stage per report.
  static obs::AtomicLogHistogram* synopses_hist =
      obs::MetricsRegistry::Global().histogram("engine.synopses_ns");
  static obs::AtomicLogHistogram* transform_hist =
      obs::MetricsRegistry::Global().histogram("engine.transform_ns");
  static obs::AtomicLogHistogram* trajectory_hist =
      obs::MetricsRegistry::Global().histogram("engine.trajectory_ns");
  static obs::AtomicLogHistogram* cep_hist =
      obs::MetricsRegistry::Global().histogram("engine.cep_ns");
  synopses_hist->Observe(static_cast<double>(out->synopses_ns));
  transform_hist->Observe(static_cast<double>(out->transform_ns));
  trajectory_hist->Observe(static_cast<double>(t1 - t0));
  cep_hist->Observe(static_cast<double>(out->keyed_cep_ns + (t2 - t1)));
}

std::vector<Event> DatacronEngine::Ingest(const PositionReport& report) {
  DATACRON_TRACE_SPAN("engine.ingest", "engine");
  std::vector<Event> events;
  ReportOutput out;
  ProcessKeyed(&shards_[ShardOf(report.entity_id)], report, &dict_, &out);
  AbsorbOutput(report, &out, &events);
  return events;
}

void DatacronEngine::ProcessKeyedOnly(const PositionReport& report,
                                      TermSource* terms, ReportOutput* out) {
  ProcessKeyed(&shards_[ShardOf(report.entity_id)], report, terms, out);
}

void DatacronEngine::AbsorbKeyedOutput(const PositionReport& report,
                                       ReportOutput* out,
                                       std::vector<Event>* events) {
  AbsorbOutput(report, out, events);
}

std::vector<Event> DatacronEngine::IngestBatch(
    std::span<const PositionReport> reports, ThreadPool* pool) {
  std::vector<Event> events;
  typename ShardedRuntime<PositionReport, ReportOutput>::Options opts;
  opts.num_shards = shards_.size();
  opts.epoch_size = config_.epoch_size;
  opts.max_epochs_in_flight = config_.max_epochs_in_flight;
  ShardedRuntime<PositionReport, ReportOutput> runtime(opts);

  // Without real parallelism, intern straight into the global dictionary
  // (no per-report TermBatch merge overhead); the runtime routes by the
  // same key either way, so keyed state lands on the same shards.
  const bool parallel = pool != nullptr && shards_.size() > 1;
  runtime.Run(
      reports, parallel ? pool : nullptr,
      [](const PositionReport& r) { return MixU64(r.entity_id); },
      [this, parallel](std::size_t shard, const PositionReport& r,
                       ReportOutput* out) {
        ProcessKeyed(&shards_[shard], r, parallel ? nullptr : &dict_, out);
      },
      [this, &events](std::span<const PositionReport> items,
                      std::span<ReportOutput> slots) {
        for (std::size_t i = 0; i < items.size(); ++i) {
          AbsorbOutput(items[i], &slots[i], &events);
        }
      });
  return events;
}

std::vector<Event> DatacronEngine::Finish() {
  KeyedFlush flush = FlushKeyed();
  return FinishFromFlushes(std::span<KeyedFlush>(&flush, 1));
}

KeyedFlush DatacronEngine::FlushKeyed() {
  KeyedFlush f;

  // Per-shard trajectory-end flushes, merged in ascending entity order —
  // exactly the std::map iteration order a single detector would emit.
  // Entity sets are disjoint across shards, so the order is total.
  for (Shard& s : shards_) s.detector.Flush(&f.critical_points);
  std::stable_sort(f.critical_points.begin(), f.critical_points.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     return a.report.entity_id < b.report.entity_id;
                   });

  // RDF continuation state for every entity in the flush, so the
  // coordinator-side transform can chain sequence links correctly.
  std::unordered_set<EntityId> seen;
  for (const CriticalPoint& cp : f.critical_points) {
    const EntityId entity = cp.report.entity_id;
    if (!seen.insert(entity).second) continue;
    Shard& shard = shards_[ShardOf(entity)];
    EntityRdfContinuation c;
    c.entity = entity;
    c.rdf_known = shard.rdf_known.count(entity) > 0;
    auto prev_it = shard.prev_node_ts.find(entity);
    if (prev_it != shard.prev_node_ts.end()) {
      c.has_prev_node = true;
      c.prev_node_ts = prev_it->second;
    }
    f.continuations.push_back(c);
  }

  // Feed the flush points through the episode builders (keyed state, no
  // dictionary access), then flush the still-open episodes per entity.
  for (const CriticalPoint& cp : f.critical_points) {
    shards_[ShardOf(cp.report.entity_id)].episode_builder.Process(
        cp, &f.completed_episodes);
  }
  for (Shard& s : shards_) s.episode_builder.Flush(&f.trailing_episodes);
  std::stable_sort(f.trailing_episodes.begin(), f.trailing_episodes.end(),
                   [](const Episode& a, const Episode& b) {
                     return a.entity < b.entity;
                   });

  // Keyed CEP flushes are no-ops today; looped per shard for symmetry.
  for (Shard& s : shards_) s.area_events.Flush(&f.events);
  for (Shard& s : shards_) s.loitering.Flush(&f.events);
  return f;
}

std::vector<Event> DatacronEngine::FinishFromFlushes(
    std::span<KeyedFlush> flushes) {
  std::vector<Event> events;

  // Entity sets are disjoint across flushes (one node owns each entity),
  // and every per-flush list is already grouped by ascending entity, so a
  // stable sort of the concatenation reproduces the order a single
  // engine's flush would have produced.
  std::vector<CriticalPoint> cps;
  std::unordered_map<EntityId, TimestampMs> prev_node_ts;
  std::unordered_set<EntityId> rdf_known;
  for (KeyedFlush& f : flushes) {
    cps.insert(cps.end(), f.critical_points.begin(),
               f.critical_points.end());
    for (const EntityRdfContinuation& c : f.continuations) {
      if (c.has_prev_node) prev_node_ts[c.entity] = c.prev_node_ts;
      if (c.rdf_known) rdf_known.insert(c.entity);
    }
  }
  std::stable_sort(cps.begin(), cps.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     return a.report.entity_id < b.report.entity_id;
                   });
  critical_points_ += cps.size();

  std::unordered_map<TermId, StTag> tags;
  std::unordered_map<TermId, NodeGeo> node_geo;
  if (!config_.rdfize_all_reports) {
    for (const CriticalPoint& cp : cps) {
      const EntityId entity = cp.report.entity_id;
      std::unordered_map<EntityId, TermId> prev_node;
      std::unordered_map<EntityId, TermId> known;
      if (rdf_known.count(entity) > 0) {
        known.emplace(entity, dict_.Intern(EntityIri(entity)));
      }
      if (config_.rdf.emit_sequence_links) {
        auto prev_it = prev_node_ts.find(entity);
        if (prev_it != prev_node_ts.end()) {
          prev_node.emplace(
              entity, dict_.Intern(PositionNodeIri(entity, prev_it->second)));
        }
      }
      Rdfizer::Sink sink;
      sink.terms = &dict_;
      sink.tags = &tags;
      sink.node_geo = &node_geo;
      sink.prev_node = &prev_node;
      sink.known_entities = &known;
      rdfizer_->TransformCriticalPointInto(cp, sink, &triples_);
      prev_node_ts[entity] = cp.report.timestamp;
      rdf_known.insert(entity);
    }
  }

  std::vector<Episode> completed;
  std::vector<Episode> trailing;
  for (KeyedFlush& f : flushes) {
    completed.insert(completed.end(), f.completed_episodes.begin(),
                     f.completed_episodes.end());
    trailing.insert(trailing.end(), f.trailing_episodes.begin(),
                    f.trailing_episodes.end());
  }
  const auto by_entity = [](const Episode& a, const Episode& b) {
    return a.entity < b.entity;
  };
  std::stable_sort(completed.begin(), completed.end(), by_entity);
  std::stable_sort(trailing.begin(), trailing.end(), by_entity);
  completed.insert(completed.end(), trailing.begin(), trailing.end());

  Rdfizer::Sink episode_sink;
  episode_sink.terms = &dict_;
  episode_sink.tags = &tags;
  episode_sink.node_geo = &node_geo;
  for (const Episode& e : completed) {
    rdfizer_->TransformEpisodeInto(e, episode_sink, &triples_);
    episodes_.push_back(e);
  }
  rdfizer_->AbsorbSideTables(tags, node_geo, {});

  proximity_.Flush(&events);
  for (KeyedFlush& f : flushes) {
    events.insert(events.end(), f.events.begin(), f.events.end());
  }
  if (capacity_ != nullptr) capacity_->Flush(&events);
  if (hotspots_ != nullptr) hotspots_->Flush(&events);
  return events;
}

TripleStore DatacronEngine::BuildStore(ThreadPool* pool) const {
  TripleStore store;
  store.AddBatch(triples_);
  store.Seal(pool);
  return store;
}

std::vector<MetricsRow> DatacronEngine::KeyedMetricsRows() const {
  std::vector<MetricsRow> rows;
  const auto merged = [this](auto member) {
    OperatorMetrics m;
    for (const Shard& s : shards_) m.Merge((s.*member).metrics());
    return m;
  };
  const std::size_t n = shards_.size();
  rows.push_back({"synopses", merged(&Shard::detector), n});
  rows.push_back({"cep-keyed", merged(&Shard::area_events), n});
  rows.push_back({"cep-keyed", merged(&Shard::loitering), n});
  rows.push_back({"cep-keyed", merged(&Shard::gap), n});
  rows.push_back({"cep-keyed", merged(&Shard::speed_anomaly), n});
  return rows;
}

std::vector<MetricsRow> DatacronEngine::GlobalMetricsRows() const {
  std::vector<MetricsRow> rows;
  rows.push_back({"cep-global", proximity_.metrics(), 1});
  if (capacity_ != nullptr) {
    rows.push_back({"cep-global", capacity_->metrics(), 1});
  }
  if (hotspots_ != nullptr) {
    rows.push_back({"cep-global", hotspots_->metrics(), 1});
  }
  return rows;
}

std::string DatacronEngine::RenderMetricsTable(
    std::span<const MetricsRow> rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-10s %-24s %6s %10s %10s %7s %10s %10s\n", "stage",
                "operator", "shards", "items_in", "items_out", "sel%",
                "p50_ns", "p99_ns");
  out += line;
  for (const MetricsRow& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-24s %6zu %10zu %10zu %6.1f%% %10.0f %10.0f\n",
                  r.stage.c_str(), r.metrics.name.c_str(), r.instances,
                  r.metrics.items_in, r.metrics.items_out,
                  r.metrics.SelectivityPct(), r.metrics.latency_ns.p50(),
                  r.metrics.latency_ns.p99());
    out += line;
  }
  return out;
}

std::string DatacronEngine::MetricsReport() const {
  std::vector<MetricsRow> rows = KeyedMetricsRows();
  std::vector<MetricsRow> global = GlobalMetricsRows();
  rows.insert(rows.end(), std::make_move_iterator(global.begin()),
              std::make_move_iterator(global.end()));
  std::string out = RenderMetricsTable(rows);
  if (admission_dropped_ > 0) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "admission: policy=%s dropped=%zu entities_hit=%zu\n",
                  AdmissionPolicyName(config_.admission),
                  admission_dropped_, admission_drops_.size());
    out += line;
    // Worst offenders first so the report names who was shed.
    std::vector<std::pair<std::uint64_t, std::size_t>> by_count =
        admission_drops_;
    std::stable_sort(by_count.begin(), by_count.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    const std::size_t shown = std::min<std::size_t>(by_count.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      std::snprintf(line, sizeof(line),
                    "  entity %llu: %zu dropped\n",
                    static_cast<unsigned long long>(by_count[i].first),
                    by_count[i].second);
      out += line;
    }
  }
  return out;
}

obs::MetricsSnapshot DatacronEngine::MetricsSnapshot() const {
  obs::MetricsSnapshot snap;
  std::vector<MetricsRow> rows = KeyedMetricsRows();
  std::vector<MetricsRow> global = GlobalMetricsRows();
  rows.insert(rows.end(), std::make_move_iterator(global.begin()),
              std::make_move_iterator(global.end()));
  for (const MetricsRow& r : rows) {
    obs::AddOperatorMetrics("engine." + r.stage + "." + r.metrics.name,
                            r.metrics, &snap);
  }
  snap.AddCounter("engine.reports", reports_ingested_);
  snap.AddCounter("engine.critical_points", critical_points_);
  snap.AddCounter("engine.triples", triples_.size());
  snap.AddCounter("engine.episodes", episodes_.size());
  snap.AddCounter("admission.dropped", admission_dropped_);
  return snap;
}

std::unique_ptr<AdmissionQueue<PositionReport>>
DatacronEngine::NewAdmissionQueue() const {
  AdmissionQueue<PositionReport>::Options opts;
  opts.capacity = config_.admission_capacity != 0
                      ? config_.admission_capacity
                      : config_.epoch_size * config_.max_epochs_in_flight;
  opts.policy = config_.admission;
  opts.drop_key = [](const PositionReport& r) {
    return static_cast<std::uint64_t>(r.entity_id);
  };
  return std::make_unique<AdmissionQueue<PositionReport>>(std::move(opts));
}

std::vector<Event> DatacronEngine::IngestFromQueue(
    AdmissionQueue<PositionReport>* queue, ThreadPool* pool) {
  std::vector<Event> events;
  for (;;) {
    const std::vector<PositionReport> batch =
        queue->PopBatch(config_.epoch_size * config_.max_epochs_in_flight);
    if (batch.empty()) break;  // closed and drained
    const std::vector<Event> evs = IngestBatch(batch, pool);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  RecordAdmissionDrops(*queue);
  return events;
}

void DatacronEngine::RecordAdmissionDrops(
    const AdmissionQueue<PositionReport>& queue) {
  admission_dropped_ = queue.dropped();
  admission_drops_ = queue.DropsByKey();
}

}  // namespace datacron
