#ifndef DATACRON_DATACRON_ENGINE_H_
#define DATACRON_DATACRON_ENGINE_H_

#include <memory>
#include <vector>

#include "cep/anomaly.h"
#include "cep/detectors.h"
#include "cep/event.h"
#include "cep/hotspot.h"
#include "common/stats.h"
#include "forecast/kinematic.h"
#include "link/link_discovery.h"
#include "rdf/rdfizer.h"
#include "rdf/triple_store.h"
#include "sources/model.h"
#include "synopses/critical_points.h"
#include "trajectory/episodes.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// The overall datAcron architecture (paper Section 2) as one object:
///
///   data sources -> in-situ processing (synopses) -> data transformation
///   (RDF-ization) -> store  +  analytics (trajectory mgmt, CEP,
///   forecasting) fed directly from the stream.
///
/// Ingest() pushes one report through every stage and accounts wall time
/// per stage — the "operational latency in ms" requirement of Section 4
/// is validated by E10 over these trackers.
class DatacronEngine {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    CriticalPointConfig synopses;
    Rdfizer::Config rdf;
    ProximityDetector::Config proximity;
    LoiteringDetector::Config loitering;
    GapDetector::Config gap;
    SpeedAnomalyDetector::Config speed_anomaly;
    std::vector<NamedArea> areas;
    /// ATM-style capacity-monitored sectors (empty = monitor disabled).
    std::vector<CapacityMonitor::Sector> sectors;
    CapacityMonitor::Config capacity;
    /// Hotspot analysis window (0 = hotspot detection disabled).
    DurationMs hotspot_window = 0;
    HotspotAnalyzer::Config hotspot;
    /// RDF-ize every report instead of only critical points (costlier;
    /// default keeps the synopses-compressed path the paper advocates).
    bool rdfize_all_reports = false;
  };

  explicit DatacronEngine(Config config);

  /// Processes one report through all stages; returns the complex events
  /// it triggered.
  std::vector<Event> Ingest(const PositionReport& report);

  /// Flushes stateful operators (trajectory ends, last windows).
  std::vector<Event> Finish();

  // -- component access -----------------------------------------------

  const TrajectoryStore& trajectories() const { return trajectories_; }
  TermDictionary* dictionary() { return &dict_; }
  const Vocab& vocab() const { return *vocab_; }
  Rdfizer* rdfizer() { return rdfizer_.get(); }

  /// All triples produced so far (synopses path + links); sealed copy.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Semantic-trajectory episodes completed so far (stop/move/gap per
  /// entity, derived online from the synopsis and also RDF-ized).
  const std::vector<Episode>& episodes() const { return episodes_; }

  /// Convenience: sealed single-node store over triples(). With a pool,
  /// sealing (the three permutation sorts) runs on the pool.
  TripleStore BuildStore(ThreadPool* pool = nullptr) const;

  /// Dead-reckoning predictor fed from the live stream (always-on cheap
  /// forecaster; heavier predictors are offline-trained, see forecast/).
  const DeadReckoningPredictor& predictor() const { return predictor_; }

  // -- per-stage ms latency -------------------------------------------

  struct StageLatencies {
    PercentileTracker synopses_ms;
    PercentileTracker transform_ms;
    PercentileTracker cep_ms;
    PercentileTracker trajectory_ms;
    PercentileTracker total_ms;
  };
  const StageLatencies& latencies() const { return latencies_; }

  std::size_t reports_ingested() const { return reports_ingested_; }
  std::size_t critical_points() const { return critical_points_; }

 private:
  Config config_;
  TermDictionary dict_;
  std::unique_ptr<Vocab> vocab_;
  std::unique_ptr<Rdfizer> rdfizer_;
  CriticalPointDetector detector_;
  ProximityDetector proximity_;
  AreaEventDetector area_events_;
  LoiteringDetector loitering_;
  GapDetector gap_;
  SpeedAnomalyDetector speed_anomaly_;
  std::unique_ptr<CapacityMonitor> capacity_;   // null when no sectors
  std::unique_ptr<HotspotDetector> hotspots_;   // null when window == 0
  EpisodeBuilder episode_builder_;
  std::vector<Episode> episodes_;
  TrajectoryStore trajectories_;
  DeadReckoningPredictor predictor_;
  std::vector<Triple> triples_;
  StageLatencies latencies_;
  std::size_t reports_ingested_ = 0;
  std::size_t critical_points_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_DATACRON_ENGINE_H_
