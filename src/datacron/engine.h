#ifndef DATACRON_DATACRON_ENGINE_H_
#define DATACRON_DATACRON_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cep/anomaly.h"
#include "cep/detectors.h"
#include "cep/event.h"
#include "cep/hotspot.h"
#include "common/flat_hash.h"
#include "common/stats.h"
#include "forecast/kinematic.h"
#include "obs/metrics.h"
#include "link/link_discovery.h"
#include "rdf/rdfizer.h"
#include "rdf/triple_store.h"
#include "sources/model.h"
#include "stream/admission.h"
#include "stream/operator.h"
#include "sub/registry.h"
#include "synopses/critical_points.h"
#include "trajectory/episodes.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// Per-entity RDF continuation state a keyed shard holds between reports,
/// exported at flush time so the coordinator (cluster Finish, see
/// FlushKeyed/FinishFromFlushes) can reconstruct sequence links and
/// entity-typing decisions for the trailing critical points.
struct EntityRdfContinuation {
  EntityId entity = 0;
  /// Timestamp of the entity's last emitted RDF node (valid when
  /// has_prev_node); the node IRI is reconstructed from it.
  bool has_prev_node = false;
  TimestampMs prev_node_ts = 0;
  /// Entity-level typing triples were already emitted for this entity.
  bool rdf_known = false;

  bool operator==(const EntityRdfContinuation&) const = default;
};

/// Everything the keyed half of the engine emits when its stateful
/// operators are flushed at end-of-stream — the unit a cluster node ships
/// to the coordinator so the final merge runs in one place, in the same
/// order a single-process Finish would use.
struct KeyedFlush {
  /// Trajectory-end (and friends) critical points, ascending entity order.
  std::vector<CriticalPoint> critical_points;
  /// Continuation state for every entity appearing in critical_points.
  std::vector<EntityRdfContinuation> continuations;
  /// Episodes completed by feeding critical_points through the builders.
  std::vector<Episode> completed_episodes;
  /// Still-open episodes flushed from the builders, ascending entity.
  std::vector<Episode> trailing_episodes;
  /// Keyed CEP flush events (empty for today's detectors).
  std::vector<Event> events;

  bool operator==(const KeyedFlush&) const = default;
};

/// One row of the per-stage observability table; keyed rows merge across
/// shards (and, in a cluster, across nodes).
struct MetricsRow {
  std::string stage;
  OperatorMetrics metrics;
  /// Shard/node instances folded into `metrics`.
  std::size_t instances = 1;

  bool operator==(const MetricsRow&) const = default;
};

/// The overall datAcron architecture (paper Section 2) as one object:
///
///   data sources -> in-situ processing (synopses) -> data transformation
///   (RDF-ization) -> store  +  analytics (trajectory mgmt, CEP,
///   forecasting) fed directly from the stream.
///
/// Ingest() pushes one report through every stage and accounts wall time
/// per stage — the "operational latency in ms" requirement of Section 4
/// is validated by E10 over these trackers.
///
/// The engine is key-partitioned: every per-entity ("keyed") operator —
/// synopses, keyed CEP detectors, episode building, per-entity RDF
/// continuation state — lives in one of `Config::num_shards` shards,
/// selected by hashing the entity id. IngestBatch() runs the shards in
/// parallel on a ThreadPool via ShardedRuntime while the cross-entity
/// ("global") stages — proximity/capacity/hotspot CEP, dictionary merge,
/// trajectory store, predictor — consume the per-report outputs on the
/// calling thread in input order. Events, triples, episodes, trajectories
/// and dictionary ids are byte-identical to a serial run at any shard
/// count (see DESIGN.md, "Sharded online engine").
class DatacronEngine {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    CriticalPointConfig synopses;
    Rdfizer::Config rdf;
    ProximityDetector::Config proximity;
    LoiteringDetector::Config loitering;
    GapDetector::Config gap;
    SpeedAnomalyDetector::Config speed_anomaly;
    std::vector<NamedArea> areas;
    /// ATM-style capacity-monitored sectors (empty = monitor disabled).
    std::vector<CapacityMonitor::Sector> sectors;
    CapacityMonitor::Config capacity;
    /// Hotspot analysis window (0 = hotspot detection disabled).
    DurationMs hotspot_window = 0;
    HotspotAnalyzer::Config hotspot;
    /// RDF-ize every report instead of only critical points (costlier;
    /// default keeps the synopses-compressed path the paper advocates).
    bool rdfize_all_reports = false;
    /// Keyed-state partitions (clamped to >= 1). IngestBatch runs them in
    /// parallel; output is identical at any value.
    std::size_t num_shards = 1;
    /// Reports per epoch of the sharded runtime (IngestBatch only).
    std::size_t epoch_size = 1024;
    /// Epochs the router may run ahead of the in-order merge stage.
    std::size_t max_epochs_in_flight = 4;
    /// What a live push source does when the in-flight window is full
    /// (see NewAdmissionQueue / IngestFromQueue).
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
    /// Admission buffer capacity; 0 derives the in-flight window
    /// (epoch_size * max_epochs_in_flight).
    std::size_t admission_capacity = 0;
  };

  explicit DatacronEngine(Config config);

  /// Processes one report through all stages; returns the complex events
  /// it triggered. This is the 1-shard special case of IngestBatch: the
  /// report runs through its shard inline, then through the global stages.
  std::vector<Event> Ingest(const PositionReport& report);

  /// Processes a batch through the sharded runtime: keyed stages in
  /// parallel on `pool` (null pool or a single shard degrade to the
  /// serial path), global stages on the calling thread in input order.
  /// Returns the concatenated events in the same order a serial
  /// report-by-report Ingest loop would produce.
  std::vector<Event> IngestBatch(std::span<const PositionReport> reports,
                                 ThreadPool* pool);

  /// Drains a live push source: repeatedly pops admitted batches from
  /// `queue` and runs them through IngestBatch until the queue is closed
  /// and empty. With Config::admission == kBlock the source stalls when
  /// the engine lags; with kDropOldest stale reports are shed at the
  /// queue (queue->dropped() counts them) and everything admitted is
  /// still processed in arrival order.
  std::vector<Event> IngestFromQueue(AdmissionQueue<PositionReport>* queue,
                                     ThreadPool* pool);

  /// Builds the admission buffer matching this engine's configuration:
  /// capacity = Config::admission_capacity (default: the in-flight window
  /// epoch_size * max_epochs_in_flight) and policy = Config::admission.
  /// The queue counts kDropOldest evictions per entity id.
  std::unique_ptr<AdmissionQueue<PositionReport>> NewAdmissionQueue() const;

  /// Copies `queue`'s cumulative shedding totals (dropped() and
  /// DropsByKey()) into this engine so MetricsReport()/MetricsSnapshot()
  /// can attribute load shedding. IngestFromQueue calls it on drain; the
  /// cluster coordinator calls it for its own queue loop.
  void RecordAdmissionDrops(const AdmissionQueue<PositionReport>& queue);

  /// Flushes stateful operators (trajectory ends, last windows).
  /// Per-shard flush outputs are merged in ascending entity order, so the
  /// result is independent of the shard count. Equivalent to
  /// FinishFromFlushes over this engine's own FlushKeyed().
  std::vector<Event> Finish();

  // -- cluster seams (src/cluster) ------------------------------------
  //
  // A cluster node owns a DatacronEngine but drives only its keyed half
  // (ProcessKeyedOnly against the node-local dictionary, FlushKeyed at
  // end-of-stream); the coordinator owns another and drives only its
  // global half (AbsorbKeyedOutput per report in input order,
  // FinishFromFlushes over every node's flush). Serial Ingest/Finish are
  // the two halves composed in one process, so cluster output is
  // byte-identical by construction.

  /// Everything the keyed stage produces for one report; carried from the
  /// shard to the in-order global stage. All term ids are real dictionary
  /// ids — a cluster node interns into its node-local dictionary and the
  /// coordinator remaps through the epoch dictionary deltas before
  /// absorbing. (The in-process parallel path does not use ReportOutput:
  /// IngestBatch accumulates whole shard-epochs in EpochArena instead.)
  struct ReportOutput {
    std::size_t cp_count = 0;
    std::vector<Event> keyed_events;
    std::vector<Episode> episodes;
    std::vector<Triple> triples;
    std::unordered_map<TermId, StTag> tags;
    std::unordered_map<TermId, NodeGeo> node_geo;
    /// Subscription deltas the keyed evaluation emitted for this report
    /// (geofence transitions) and the report's hotspot-count increments,
    /// keyed by subscription id. Cluster nodes ship both; the coordinator
    /// splices them into its epoch in global input order.
    std::vector<SubDelta> sub_deltas;
    FlatHashMap<std::uint64_t, double> sub_counts;
    std::int64_t synopses_ns = 0;
    std::int64_t transform_ns = 0;
    std::int64_t keyed_cep_ns = 0;
  };

  /// Runs only the keyed half for one report, on the local shard its
  /// entity hashes to, interning terms into `terms` (cluster nodes pass
  /// their node-local dictionary). No global stage runs.
  void ProcessKeyedOnly(const PositionReport& report, TermSource* terms,
                        ReportOutput* out);

  /// Runs only the global half for one report, on the calling thread, in
  /// input order. `out` must hold ids of this engine's dictionary (the
  /// cluster coordinator remaps node-local ids through the epoch
  /// dictionary deltas first).
  void AbsorbKeyedOutput(const PositionReport& report, ReportOutput* out,
                         std::vector<Event>* events);

  /// Drains this engine's keyed state (detector + builder flushes and the
  /// RDF continuation tables) without running any global stage or
  /// touching the dictionary — the node half of Finish.
  KeyedFlush FlushKeyed();

  /// The coordinator half of Finish: merges any number of keyed flushes
  /// (entity sets must be disjoint — each entity lives on one node) in
  /// ascending entity order, transforms the trailing critical points and
  /// episodes against this engine's dictionary, and flushes the global
  /// detectors. With a single flush from the same engine this is exactly
  /// the serial Finish.
  std::vector<Event> FinishFromFlushes(std::span<KeyedFlush> flushes);

  // -- continuous-query subscriptions (src/sub) -----------------------

  /// The standing-query registry evaluated inside this engine's shards.
  /// Register/unregister between ingest calls (control plane and data
  /// plane are phased); deltas are coalesced and pushed at every epoch
  /// barrier (IngestBatch) or after every report (serial Ingest, the
  /// epoch-of-one degenerate case).
  SubscriptionRegistry* subscriptions() { return subs_.get(); }
  const SubscriptionRegistry* subscriptions() const { return subs_.get(); }

  /// Closes the registry's current subscription epoch — the cluster
  /// coordinator calls this once per global epoch after absorbing every
  /// report (serial Ingest calls it internally). No-op while no
  /// subscription was ever registered.
  void FlushSubscriptionEpoch(TimestampMs close_ts);

  // -- component access -----------------------------------------------

  const TrajectoryStore& trajectories() const { return trajectories_; }
  TermDictionary* dictionary() { return &dict_; }
  const TermDictionary& dictionary() const { return dict_; }
  const Vocab& vocab() const { return *vocab_; }
  Rdfizer* rdfizer() { return rdfizer_.get(); }

  /// All triples produced so far (synopses path + links); sealed copy.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Semantic-trajectory episodes completed so far (stop/move/gap per
  /// entity, derived online from the synopsis and also RDF-ized).
  const std::vector<Episode>& episodes() const { return episodes_; }

  /// Convenience: sealed single-node store over triples(). With a pool,
  /// sealing (the three permutation sorts) runs on the pool.
  TripleStore BuildStore(ThreadPool* pool = nullptr) const;

  /// Dead-reckoning predictor fed from the live stream (always-on cheap
  /// forecaster; heavier predictors are offline-trained, see forecast/).
  const DeadReckoningPredictor& predictor() const { return predictor_; }

  // -- per-stage ms latency -------------------------------------------

  struct StageLatencies {
    PercentileTracker synopses_ms;
    PercentileTracker transform_ms;
    PercentileTracker cep_ms;
    PercentileTracker trajectory_ms;
    PercentileTracker total_ms;
  };
  const StageLatencies& latencies() const { return latencies_; }

  std::size_t reports_ingested() const { return reports_ingested_; }
  std::size_t critical_points() const { return critical_points_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Formatted per-stage, per-detector observability table: items in/out,
  /// selectivity and p50/p99 process nanos. Keyed operators report their
  /// per-shard metrics merged via OperatorMetrics::Merge. When reports
  /// were shed by a kDropOldest admission queue (IngestFromQueue), an
  /// admission section lists total and per-entity drop counts.
  std::string MetricsReport() const;

  /// The unified observability snapshot: every operator row folded in as
  /// "engine.<stage>.<operator>.*" counters/histograms, per-stage latency
  /// histograms, report/critical-point totals and admission drops — one
  /// mergeable object in the src/obs registry format.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// The keyed (entity-partitioned) rows of MetricsReport, merged across
  /// local shards. Cluster nodes ship these to the coordinator, which
  /// folds them across nodes into one fleet-wide table.
  std::vector<MetricsRow> KeyedMetricsRows() const;

  /// The global (cross-entity) rows: proximity, capacity, hotspot.
  std::vector<MetricsRow> GlobalMetricsRows() const;

  /// Renders rows in MetricsReport's table format.
  static std::string RenderMetricsTable(std::span<const MetricsRow> rows);

 private:
  /// All keyed (entity-partitioned) state. Each entity is owned by
  /// exactly one shard (ShardOf), so shards never share mutable state and
  /// the keyed stage runs lock-free in parallel.
  struct Shard {
    explicit Shard(const Config& config)
        : detector(config.synopses),
          area_events(config.areas),
          loitering(config.loitering),
          gap(config.gap),
          speed_anomaly(config.speed_anomaly),
          episode_builder(config.areas) {}

    CriticalPointDetector detector;
    AreaEventDetector area_events;
    LoiteringDetector loitering;
    GapDetector gap;
    SpeedAnomalyDetector speed_anomaly;
    EpisodeBuilder episode_builder;
    /// Timestamp of the entity's last emitted RDF node; the previous-node
    /// IRI is reconstructed from it when pre-seeding a transform sink, so
    /// sequence links chain correctly across reports without the shard
    /// holding (possibly batch-local) TermIds.
    std::unordered_map<EntityId, TimestampMs> prev_node_ts;
    /// Entities whose entity-level typing triples were already emitted.
    std::unordered_set<EntityId> rdf_known;
  };

  std::size_t ShardOf(EntityId entity) const;

  /// Per-shard, per-epoch accumulator of the in-process parallel path:
  /// the unit a shard hands to the global stage, one mailbox delivery per
  /// shard per epoch. Everything a shard's reports produce lands in these
  /// contiguous buffers; ShardSlot watermarks cut them back into
  /// per-report slices so the global stage can replay input order.
  struct EpochArena {
    /// Batch-local dictionary for every new term the shard's reports
    /// intern this epoch (null on the serial fallback, which interns
    /// straight into the engine dictionary).
    std::unique_ptr<TermBatch> terms;
    std::vector<Triple> triples;
    std::vector<Episode> episodes;
    std::vector<Event> events;  // keyed CEP events
    std::unordered_map<TermId, StTag> tags;
    std::unordered_map<TermId, NodeGeo> node_geo;
    /// Subscription deltas in shard-report order (sliced per report via
    /// ShardSlot::subs_end) and the epoch's hotspot counts by sub id.
    std::vector<SubDelta> sub_deltas;
    FlatHashMap<std::uint64_t, double> sub_counts;
  };

  /// Per-report slot of the sharded runtime: scalar results plus
  /// watermarks into the report's shard EpochArena (sizes *after* the
  /// report ran; the preceding report's watermark starts the slice).
  struct ShardSlot {
    std::uint32_t shard = 0;
    std::uint32_t cp_count = 0;
    std::size_t terms_end = 0;
    std::size_t triples_end = 0;
    std::size_t episodes_end = 0;
    std::size_t events_end = 0;
    std::size_t subs_end = 0;
    std::int64_t synopses_ns = 0;
    std::int64_t transform_ns = 0;
    std::int64_t keyed_cep_ns = 0;
  };

  /// Where one keyed-stage invocation writes: a ReportOutput's own
  /// buffers (per-report paths) or the shard's EpochArena (IngestBatch).
  struct KeyedSink {
    TermSource* terms = nullptr;
    std::vector<Triple>* triples = nullptr;
    std::vector<Episode>* episodes = nullptr;
    std::vector<Event>* events = nullptr;
    std::unordered_map<TermId, StTag>* tags = nullptr;
    std::unordered_map<TermId, NodeGeo>* node_geo = nullptr;
    std::vector<SubDelta>* sub_deltas = nullptr;
    FlatHashMap<std::uint64_t, double>* sub_counts = nullptr;
  };

  struct KeyedStats {
    std::size_t cp_count = 0;
    std::int64_t synopses_ns = 0;
    std::int64_t transform_ns = 0;
    std::int64_t keyed_cep_ns = 0;
  };

  /// Keyed stage: synopses, RDF transform, episode building, keyed CEP,
  /// shard-local subscription evaluation — touches only shard `shard`'s
  /// state and the sink.
  KeyedStats ProcessKeyedCore(std::size_t shard, const PositionReport& report,
                              const KeyedSink& sink);

  /// ReportOutput-shaped keyed stage (Ingest, cluster nodes). `terms` is
  /// the dictionary to intern into — never null.
  void ProcessKeyed(std::size_t shard, const PositionReport& report,
                    TermSource* terms, ReportOutput* out);

  /// Arena-shaped keyed stage (IngestBatch): appends to the shard's
  /// epoch arena and records the slot watermarks. With `use_batch` the
  /// transform interns into the arena's TermBatch (created on first use);
  /// otherwise straight into the engine dictionary (serial fallback).
  void ProcessKeyedArena(std::size_t shard, const PositionReport& report,
                         ShardSlot* slot, EpochArena* arena, bool use_batch);

  /// Global stage for one report whose ids are already global: CEP,
  /// triple/episode/side-table absorption, trajectory store, predictor,
  /// latency accounting. Runs on the calling thread in input order.
  void AbsorbOutput(const PositionReport& report, ReportOutput* out,
                    std::vector<Event>* events);

  /// Folds one report's stage timings into the percentile trackers and
  /// the always-on registry histograms.
  void RecordReportLatencies(std::int64_t synopses_ns,
                             std::int64_t transform_ns,
                             std::int64_t keyed_cep_ns,
                             std::int64_t trajectory_ns,
                             std::int64_t global_cep_ns);

  /// Global stage for one whole epoch (IngestBatch): one coalesced term
  /// merge per shard-epoch replayed in input order, columnar bulk remap
  /// of each arena, one epoch-batched proximity run (candidate CPA pairs
  /// evaluated cell-parallel on `pool`; null = inline), then an
  /// input-order walk splicing per-report slices through the remaining
  /// global CEP exactly like a serial run.
  void AbsorbEpoch(std::span<const PositionReport> items,
                   std::span<ShardSlot> slots, std::span<EpochArena> arenas,
                   std::vector<Event>* events, ThreadPool* pool);

  Config config_;
  TermDictionary dict_;
  /// Registry instruments for the per-report and per-epoch global-stage
  /// hot paths, resolved once at construction (no static-guard check per
  /// report).
  obs::Counter* reports_counter_;
  obs::Counter* cp_counter_;
  obs::Counter* merge_terms_counter_;
  obs::AtomicLogHistogram* merge_terms_hist_;
  obs::AtomicLogHistogram* synopses_hist_;
  obs::AtomicLogHistogram* transform_hist_;
  obs::AtomicLogHistogram* trajectory_hist_;
  obs::AtomicLogHistogram* cep_hist_;
  std::unique_ptr<Vocab> vocab_;
  std::unique_ptr<Rdfizer> rdfizer_;
  std::vector<Shard> shards_;
  /// Standing-query registry, sharded like shards_. Always constructed;
  /// every hook is guarded by ever_active()/keyed_active() so a
  /// subscription-free stream pays one predictable branch per report.
  std::unique_ptr<SubscriptionRegistry> subs_;
  ProximityDetector proximity_;
  std::unique_ptr<CapacityMonitor> capacity_;   // null when no sectors
  std::unique_ptr<HotspotDetector> hotspots_;   // null when window == 0
  std::vector<Episode> episodes_;
  TrajectoryStore trajectories_;
  DeadReckoningPredictor predictor_;
  std::vector<Triple> triples_;
  StageLatencies latencies_;
  std::size_t reports_ingested_ = 0;
  std::size_t critical_points_ = 0;
  /// AbsorbEpoch scratch for the epoch-batched proximity stage, reused
  /// across epochs: the epoch's proximity events and the per-report
  /// cumulative offsets that slice them back into input order.
  std::vector<Event> prox_events_;
  std::vector<std::size_t> prox_offsets_;
  /// Latest admission-queue shedding totals, captured by IngestFromQueue
  /// when its queue closes (cumulative per queue; kBlock leaves them 0).
  std::size_t admission_dropped_ = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> admission_drops_;
};

}  // namespace datacron

#endif  // DATACRON_DATACRON_ENGINE_H_
