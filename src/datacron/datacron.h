#ifndef DATACRON_DATACRON_DATACRON_H_
#define DATACRON_DATACRON_DATACRON_H_

/// Umbrella header: the library's public API in one include.
///
///   #include "datacron/datacron.h"
///
/// pulls in every component of the architecture; fine for applications,
/// while library code should include the specific headers it uses.

#include "cep/anomaly.h"          // IWYU pragma: export
#include "cep/cpa.h"              // IWYU pragma: export
#include "cep/detectors.h"        // IWYU pragma: export
#include "cep/event.h"            // IWYU pragma: export
#include "cep/hotspot.h"          // IWYU pragma: export
#include "cep/pattern.h"          // IWYU pragma: export
#include "common/status.h"        // IWYU pragma: export
#include "common/time_utils.h"    // IWYU pragma: export
#include "datacron/engine.h"      // IWYU pragma: export
#include "forecast/eval.h"        // IWYU pragma: export
#include "forecast/hybrid.h"      // IWYU pragma: export
#include "forecast/kalman.h"      // IWYU pragma: export
#include "forecast/kinematic.h"   // IWYU pragma: export
#include "forecast/markov.h"      // IWYU pragma: export
#include "forecast/route.h"       // IWYU pragma: export
#include "geo/bbox.h"             // IWYU pragma: export
#include "geo/curves.h"           // IWYU pragma: export
#include "geo/geo.h"              // IWYU pragma: export
#include "geo/grid.h"             // IWYU pragma: export
#include "geo/polygon.h"          // IWYU pragma: export
#include "geo/rtree.h"            // IWYU pragma: export
#include "link/link_discovery.h"  // IWYU pragma: export
#include "link/rdf_links.h"       // IWYU pragma: export
#include "partition/partitioned_store.h"  // IWYU pragma: export
#include "partition/partitioner.h"        // IWYU pragma: export
#include "query/aggregate.h"      // IWYU pragma: export
#include "query/engine.h"         // IWYU pragma: export
#include "query/parser.h"         // IWYU pragma: export
#include "query/query.h"          // IWYU pragma: export
#include "rdf/ntriples.h"         // IWYU pragma: export
#include "rdf/rdfizer.h"          // IWYU pragma: export
#include "rdf/term.h"             // IWYU pragma: export
#include "rdf/triple_store.h"     // IWYU pragma: export
#include "rdf/vocab.h"            // IWYU pragma: export
#include "sources/adsb_generator.h"  // IWYU pragma: export
#include "sources/ais_generator.h"   // IWYU pragma: export
#include "sources/codec.h"        // IWYU pragma: export
#include "sources/model.h"        // IWYU pragma: export
#include "sources/nmea.h"         // IWYU pragma: export
#include "sources/replay.h"       // IWYU pragma: export
#include "sources/weather.h"      // IWYU pragma: export
#include "stream/operator.h"      // IWYU pragma: export
#include "stream/pipeline.h"      // IWYU pragma: export
#include "stream/queue.h"         // IWYU pragma: export
#include "stream/window.h"        // IWYU pragma: export
#include "synopses/compression.h"       // IWYU pragma: export
#include "synopses/critical_points.h"   // IWYU pragma: export
#include "trajectory/episodes.h"        // IWYU pragma: export
#include "trajectory/reconstruct.h"     // IWYU pragma: export
#include "trajectory/similarity.h"      // IWYU pragma: export
#include "trajectory/trajectory_index.h"  // IWYU pragma: export
#include "trajectory/trajectory_store.h"  // IWYU pragma: export
#include "viz/geojson.h"          // IWYU pragma: export
#include "viz/raster.h"           // IWYU pragma: export
#include "viz/svg.h"              // IWYU pragma: export

#endif  // DATACRON_DATACRON_DATACRON_H_
