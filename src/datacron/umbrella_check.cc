// Compile check: the umbrella header must be self-contained.
#include "datacron/datacron.h"
