#include "cluster/local_cluster.h"

#include <utility>

namespace datacron {

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    const Options& opts) {
  if (opts.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::vector<std::unique_ptr<Transport>> coordinator_side;
  std::vector<std::unique_ptr<Transport>> node_side;
  coordinator_side.reserve(opts.num_nodes);
  node_side.reserve(opts.num_nodes);

  if (opts.wire == Wire::kLoopback) {
    for (std::size_t i = 0; i < opts.num_nodes; ++i) {
      auto [a, b] = LoopbackTransport::CreatePair();
      coordinator_side.push_back(std::move(a));
      node_side.push_back(std::move(b));
    }
  } else {
    Result<std::unique_ptr<TcpListener>> listener = TcpListener::Create();
    if (!listener.ok()) return listener.status();
    for (std::size_t i = 0; i < opts.num_nodes; ++i) {
      // Connect-then-accept sequentially: accept order matches connect
      // order here, but ClusterEngine::Connect orders by Hello node id
      // anyway, so nothing depends on it.
      Result<std::unique_ptr<Transport>> client =
          TcpConnect(listener.value()->port());
      if (!client.ok()) return client.status();
      Result<std::unique_ptr<Transport>> server =
          listener.value()->Accept();
      if (!server.ok()) return server.status();
      node_side.push_back(std::move(client).value());
      coordinator_side.push_back(std::move(server).value());
    }
  }

  std::unique_ptr<LocalCluster> cluster(new LocalCluster());
  for (std::size_t i = 0; i < opts.num_nodes; ++i) {
    cluster->nodes_.push_back(std::make_unique<ClusterNode>(
        opts.engine, std::move(node_side[i]), static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(opts.num_nodes)));
    cluster->nodes_.back()->Start();
  }
  ClusterEngine::Options engine_opts;
  engine_opts.engine = opts.engine;
  cluster->engine_ = std::make_unique<ClusterEngine>(
      std::move(engine_opts), std::move(coordinator_side));
  if (Status s = cluster->engine_->Connect(); !s.ok()) {
    (void)cluster->Stop();  // best effort; report the handshake failure
    return s;
  }
  return cluster;
}

LocalCluster::~LocalCluster() {
  if (!stopped_) (void)Stop();
}

Status LocalCluster::Stop() {
  if (stopped_) return Status::OK();
  stopped_ = true;
  Status first = engine_ != nullptr ? engine_->Shutdown() : Status::OK();
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    if (Status s = node->Join(); !s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace datacron
