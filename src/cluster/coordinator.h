#ifndef DATACRON_CLUSTER_COORDINATOR_H_
#define DATACRON_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "datacron/engine.h"
#include "net/transport.h"
#include "stream/epoch.h"

namespace datacron {

/// The cluster coordinator: a DatacronEngine fleet spread over N nodes
/// behind one engine-shaped facade. The coordinator owns the *global* half
/// of the dataflow — canonical term dictionary, triple/episode stores,
/// cross-entity CEP, trajectory store, predictor — while each node runs
/// the *keyed* half for the entities routed to it.
///
/// Determinism (byte-identity with serial DatacronEngine::Ingest at any
/// node count, epoch size, or transport):
///
///  - Routing is entity-sticky: node = MixU64(entity) % N, so each
///    entity's whole subsequence is processed by one node in input order —
///    the same per-key subsequence the in-process ShardedRuntime feeds a
///    shard (stream/epoch.h is the shared contract).
///  - Nodes intern into their own dictionary and ship *per-report*
///    dictionary deltas. The coordinator imports each report's delta in
///    global input order, so a term's canonical id is assigned at its
///    first-in-input occurrence — exactly the serial order. (A term new to
///    the stream is always new to its processing node too: the node's
///    dictionary only holds terms from that node's earlier reports, which
///    are earlier in the input.)
///  - All global stages run on the coordinator in input order, per report,
///    once the epoch barrier (EpochWatermarks) has released the epoch.
///
/// Flow control: up to Config::max_epochs_in_flight epochs are routed
/// ahead of the in-order merge; the front epoch is then retired by
/// blocking on every node's reply (transports are FIFO, nodes reply in
/// epoch order). That bound is what keeps the socket variant free of
/// send-send deadlock: node replies queue while at most a bounded window
/// of batches is buffered toward each node.
class ClusterEngine {
 public:
  struct Options {
    /// Must equal the config every ClusterNode was constructed with (the
    /// dictionary baselines have to line up).
    DatacronEngine::Config engine;
  };

  /// Takes one connected transport per node. Call Connect() (or any
  /// ingest entry point, which connects lazily) before use.
  ClusterEngine(Options opts,
                std::vector<std::unique_ptr<Transport>> nodes);

  /// Performs the Hello handshake: receives each node's id and dictionary
  /// baseline, orders transports by node id, and seeds the per-node term
  /// remap tables. Idempotent.
  Status Connect();

  /// Routes `reports` to the fleet epoch by epoch and absorbs the keyed
  /// outputs in input order. Returns the same events, in the same order,
  /// as a serial engine ingesting `reports`.
  Result<std::vector<Event>> IngestBatch(
      std::span<const PositionReport> reports);

  /// Drains a live push source through the fleet; same admission
  /// semantics as DatacronEngine::IngestFromQueue (the Config's
  /// AdmissionPolicy decides whether a lagging fleet blocks the producer
  /// or sheds the oldest queued reports).
  Result<std::vector<Event>> IngestFromQueue(
      AdmissionQueue<PositionReport>* queue);

  /// Admission buffer matching Options::engine (see
  /// DatacronEngine::NewAdmissionQueue).
  std::unique_ptr<AdmissionQueue<PositionReport>> NewAdmissionQueue() const {
    return local_.NewAdmissionQueue();
  }

  /// Registers a standing query fleet-wide: the coordinator assigns the
  /// id, registers locally (barrier-side state + delta coalescing), and
  /// broadcasts the registration so every node's shard-local evaluation
  /// carries the same registry under the same ids. Call between ingest
  /// calls (control plane and data plane are phased).
  Result<SubscriptionId> Subscribe(SubscriberId subscriber,
                                   const SubscriptionSpec& spec);

  /// Deactivates a standing query fleet-wide.
  Status Unsubscribe(SubscriptionId id);

  /// The coordinator-side registry: attach a delta sink / take batches
  /// here — every node's deltas funnel through it at the epoch barrier.
  SubscriptionRegistry* subscriptions() { return local_.subscriptions(); }

  /// End-of-stream: collects every node's KeyedFlush and runs the global
  /// merge — the distributed form of DatacronEngine::Finish().
  Result<std::vector<Event>> Finish();

  /// Fleet-wide observability table: per-node keyed operator rows merged
  /// by (stage, operator) across nodes, plus the coordinator's global
  /// rows, in DatacronEngine::MetricsReport's format.
  Result<std::string> MetricsReport();

  /// Tells every node to exit its serve loop and closes the transports.
  Status Shutdown();

  std::size_t num_nodes() const { return nodes_.size(); }

  /// The coordinator-side engine holding the merged global state: its
  /// triples(), episodes(), trajectories(), dictionary contents and
  /// latency trackers are the cluster's output.
  const DatacronEngine& engine() const { return local_; }

 private:
  /// One routed-but-unmerged epoch in the in-flight window.
  struct PendingEpoch {
    std::int64_t id = 0;
    std::span<const PositionReport> items;
    EpochRouting routing;
  };

  /// Receives every node's reply for the front epoch, advances the
  /// watermark barrier, and absorbs the epoch's outputs in input order.
  Status RetireFront(std::deque<PendingEpoch>* ring,
                     std::vector<Event>* events);

  /// Sends `frame` to every node and collects one SubAck from each.
  Status BroadcastSubControl(const std::string& frame);

  Options opts_;
  DatacronEngine local_;
  std::vector<std::unique_ptr<Transport>> nodes_;
  /// Per node: remap_[n][i] is the canonical (coordinator) id of the
  /// node's dense dictionary id i+1. Extended by each imported delta.
  std::vector<std::vector<TermId>> remap_;
  EpochWatermarks watermarks_;
  /// Epochs are numbered globally across IngestBatch calls so the
  /// watermark barrier stays monotonic over the whole session.
  std::int64_t next_epoch_ = 0;
  bool connected_ = false;
};

}  // namespace datacron

#endif  // DATACRON_CLUSTER_COORDINATOR_H_
