#ifndef DATACRON_CLUSTER_NODE_H_
#define DATACRON_CLUSTER_NODE_H_

#include <cstdint>
#include <memory>
#include <thread>

#include "datacron/engine.h"
#include "net/transport.h"

namespace datacron {

/// One cluster worker: owns a DatacronEngine whose *keyed* half it drives
/// against the node-local term dictionary, and a transport back to the
/// coordinator. The node never runs a global stage — cross-entity CEP,
/// the trajectory store and the canonical dictionary live on the
/// coordinator, which replays this node's outputs in input order.
///
/// Protocol (see net/codec.h): on Serve() the node sends a Hello carrying
/// its construction-time dictionary baseline, then answers each request
/// until Shutdown or transport close. Reports of a batch are processed in
/// batch order and each report's reply carries the dictionary delta it
/// created — the coordinator needs per-report granularity to reproduce the
/// serial engine's term-id assignment order.
///
/// The node must be constructed with the same Config as the coordinator's
/// ClusterEngine: the dictionary baselines have to match for the
/// coordinator's id remap to line up with a serial run.
class ClusterNode {
 public:
  ClusterNode(DatacronEngine::Config config,
              std::unique_ptr<Transport> transport, std::uint32_t node_id,
              std::uint32_t num_nodes);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Runs the serve loop on the calling thread until Shutdown, transport
  /// close (both OK), or a protocol/transport error.
  Status Serve();

  /// Runs Serve() on an internal thread.
  void Start();

  /// Joins the Start() thread and returns what Serve() returned.
  Status Join();

 private:
  Status SendHello();
  Status HandleBatch(const std::string& payload);

  DatacronEngine engine_;
  std::unique_ptr<Transport> transport_;
  std::uint32_t node_id_;
  std::uint32_t num_nodes_;
  std::thread thread_;
  Status serve_status_;
};

}  // namespace datacron

#endif  // DATACRON_CLUSTER_NODE_H_
