#include "cluster/node.h"

#include <algorithm>
#include <utility>

#include "net/codec.h"
#include "obs/trace.h"

namespace datacron {

ClusterNode::ClusterNode(DatacronEngine::Config config,
                         std::unique_ptr<Transport> transport,
                         std::uint32_t node_id, std::uint32_t num_nodes)
    : engine_(std::move(config)),
      transport_(std::move(transport)),
      node_id_(node_id),
      num_nodes_(num_nodes) {}

ClusterNode::~ClusterNode() {
  if (thread_.joinable()) {
    transport_->Close();
    thread_.join();
  }
}

Status ClusterNode::SendHello() {
  HelloMsg hello;
  hello.node_id = node_id_;
  hello.num_nodes = num_nodes_;
  TermDictionary* dict = engine_.dictionary();
  if (dict->size() > 0) {
    Result<std::vector<TermExport>> baseline =
        dict->ExportRange(1, dict->size());
    if (!baseline.ok()) return baseline.status();
    hello.baseline = std::move(baseline).value();
  }
  return transport_->Send(Encode(hello));
}

Status ClusterNode::HandleBatch(const std::string& payload) {
  ReportBatchMsg batch;
  if (Status s = Decode(payload, &batch); !s.ok()) return s;
  obs::ScopedTraceContext trace_ctx(batch.epoch,
                                    static_cast<std::int32_t>(node_id_));
  DATACRON_TRACE_SPAN("cluster.node_batch", "cluster");
  if (batch.reports.empty()) {
    // Empty sub-batch: reply with the epoch-watermark control message so
    // the coordinator's barrier can advance past this epoch.
    WatermarkMsg wm;
    wm.epoch = batch.epoch;
    return transport_->Send(Encode(wm));
  }

  TermDictionary* dict = engine_.dictionary();
  EpochResultMsg result;
  result.epoch = batch.epoch;
  result.dict_size_before = dict->size();
  result.results.reserve(batch.reports.size());
  for (const PositionReport& report : batch.reports) {
    const std::size_t before = dict->size();
    DatacronEngine::ReportOutput out;
    engine_.ProcessKeyedOnly(report, dict, &out);

    WireReportResult res;
    res.cp_count = out.cp_count;
    // The terms this report interned: the contiguous id range the node
    // dictionary grew by. Only the count travels per report — the epoch's
    // text payload is exported once, below.
    res.new_term_count = dict->size() - before;
    res.keyed_events = std::move(out.keyed_events);
    res.episodes = std::move(out.episodes);
    res.triples = std::move(out.triples);
    // Side tables travel id-sorted so the encoded bytes are canonical
    // regardless of hash-map iteration order.
    res.tags.assign(out.tags.begin(), out.tags.end());
    std::sort(res.tags.begin(), res.tags.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    res.node_geo.assign(out.node_geo.begin(), out.node_geo.end());
    std::sort(res.node_geo.begin(), res.node_geo.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    res.sub_deltas = std::move(out.sub_deltas);
    out.sub_counts.ForEach([&res](std::uint64_t id, const double& count) {
      res.sub_counts.emplace_back(id, count);
    });
    std::sort(res.sub_counts.begin(), res.sub_counts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    res.synopses_ns = out.synopses_ns;
    res.transform_ns = out.transform_ns;
    res.keyed_cep_ns = out.keyed_cep_ns;
    result.results.push_back(std::move(res));
  }
  if (dict->size() > result.dict_size_before) {
    // One coalesced dictionary delta for the whole epoch, in id (==
    // intern) order; the per-report counts slice it back apart at the
    // coordinator.
    DATACRON_TRACE_SPAN("cluster.delta_export", "cluster");
    Result<std::vector<TermExport>> delta = dict->ExportRange(
        static_cast<TermId>(result.dict_size_before) + 1,
        dict->size() - result.dict_size_before);
    if (!delta.ok()) return delta.status();
    result.new_terms = std::move(delta).value();
  }
  return transport_->Send(Encode(result));
}

Status ClusterNode::Serve() {
  if (Status s = SendHello(); !s.ok()) return s;
  for (;;) {
    Result<std::string> payload = transport_->Recv();
    if (!payload.ok()) {
      // Orderly close counts as shutdown; anything else is an error.
      if (payload.status().code() == StatusCode::kFailedPrecondition) {
        return Status::OK();
      }
      return payload.status();
    }
    MsgType type;
    if (Status s = DecodeType(payload.value(), &type); !s.ok()) return s;
    switch (type) {
      case MsgType::kReportBatch: {
        if (Status s = HandleBatch(payload.value()); !s.ok()) return s;
        break;
      }
      case MsgType::kFlushRequest: {
        FlushResultMsg msg;
        msg.flush = engine_.FlushKeyed();
        if (Status s = transport_->Send(Encode(msg)); !s.ok()) return s;
        break;
      }
      case MsgType::kMetricsRequest: {
        MetricsResultMsg msg;
        msg.rows = engine_.KeyedMetricsRows();
        if (Status s = transport_->Send(Encode(msg)); !s.ok()) return s;
        break;
      }
      case MsgType::kSubscribe: {
        // Coordinator broadcast: register under the coordinator-assigned
        // id so every node's registry carries identical slot assignment.
        SubscribeMsg msg;
        SubAckMsg ack;
        if (Status s = Decode(payload.value(), &msg); !s.ok()) {
          ack.ok = false;
          ack.error = s.message();
        } else {
          ack.id = msg.id;
          Status reg = engine_.subscriptions()->SubscribeWithId(
              msg.id, msg.subscriber, msg.spec);
          if (!reg.ok()) {
            ack.ok = false;
            ack.error = reg.message();
          }
        }
        if (Status s = transport_->Send(Encode(ack)); !s.ok()) return s;
        break;
      }
      case MsgType::kUnsubscribe: {
        UnsubscribeMsg msg;
        if (Status s = Decode(payload.value(), &msg); !s.ok()) return s;
        SubAckMsg ack;
        ack.id = msg.id;
        ack.ok = engine_.subscriptions()->Unsubscribe(msg.id);
        if (!ack.ok) ack.error = "unknown or inactive subscription";
        if (Status s = transport_->Send(Encode(ack)); !s.ok()) return s;
        break;
      }
      case MsgType::kShutdown:
        transport_->Close();
        return Status::OK();
      default:
        return Status::ParseError("unexpected message type at node");
    }
  }
}

void ClusterNode::Start() {
  thread_ = std::thread([this] { serve_status_ = Serve(); });
}

Status ClusterNode::Join() {
  if (thread_.joinable()) thread_.join();
  return serve_status_;
}

}  // namespace datacron
