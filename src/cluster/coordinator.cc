#include "cluster/coordinator.h"

#include <iterator>
#include <utility>

#include "common/flat_hash.h"
#include "net/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datacron {

ClusterEngine::ClusterEngine(Options opts,
                             std::vector<std::unique_ptr<Transport>> nodes)
    : opts_(std::move(opts)),
      local_(opts_.engine),
      nodes_(std::move(nodes)),
      watermarks_(nodes_.size()) {
  if (opts_.engine.epoch_size == 0) opts_.engine.epoch_size = 1;
  if (opts_.engine.max_epochs_in_flight == 0) {
    opts_.engine.max_epochs_in_flight = 1;
  }
}

Status ClusterEngine::Connect() {
  if (connected_) return Status::OK();
  const std::size_t n_nodes = nodes_.size();
  if (n_nodes == 0) {
    return Status::InvalidArgument("cluster has no nodes");
  }
  // Transports may arrive in any accept order (TCP); the Hello's node id
  // puts each one in its routing slot.
  std::vector<std::unique_ptr<Transport>> ordered(n_nodes);
  std::vector<HelloMsg> hellos(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Result<std::string> payload = nodes_[i]->Recv();
    if (!payload.ok()) return payload.status();
    HelloMsg hello;
    if (Status s = Decode(payload.value(), &hello); !s.ok()) return s;
    if (hello.num_nodes != n_nodes) {
      return Status::FailedPrecondition("node fleet-size mismatch");
    }
    if (hello.node_id >= n_nodes || ordered[hello.node_id] != nullptr) {
      return Status::FailedPrecondition("duplicate or bad node id");
    }
    ordered[hello.node_id] = std::move(nodes_[i]);
    hellos[hello.node_id] = std::move(hello);
  }
  nodes_ = std::move(ordered);

  // Seed each node's remap with its construction-time baseline. The nodes
  // share this engine's config, so the baselines resolve to the ids the
  // coordinator's own vocabulary already holds.
  remap_.assign(n_nodes, {});
  for (std::size_t n = 0; n < n_nodes; ++n) {
    local_.dictionary()->ImportDelta(hellos[n].baseline, &remap_[n]);
  }
  connected_ = true;
  return Status::OK();
}

Status ClusterEngine::RetireFront(std::deque<PendingEpoch>* ring,
                                  std::vector<Event>* events) {
  PendingEpoch& e = ring->front();
  const std::size_t n_nodes = nodes_.size();
  obs::ScopedTraceContext trace_ctx(e.id);

  obs::TraceSpan recv_span("cluster.epoch_recv", "cluster");
  std::vector<EpochResultMsg> replies(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    Result<std::string> payload = nodes_[n]->Recv();
    if (!payload.ok()) return payload.status();
    MsgType type;
    if (Status s = DecodeType(payload.value(), &type); !s.ok()) return s;
    if (type == MsgType::kWatermark) {
      WatermarkMsg wm;
      if (Status s = Decode(payload.value(), &wm); !s.ok()) return s;
      if (wm.epoch != e.id) {
        return Status::Internal("epoch watermark out of order");
      }
      if (!e.routing.by_part[n].empty()) {
        return Status::Internal("watermark reply for a nonempty sub-batch");
      }
      replies[n].epoch = wm.epoch;
    } else {
      if (Status s = Decode(payload.value(), &replies[n]); !s.ok()) return s;
      if (replies[n].epoch != e.id) {
        return Status::Internal("epoch result out of order");
      }
      if (replies[n].dict_size_before != remap_[n].size()) {
        return Status::Internal("node dictionary delta stream out of sync");
      }
      if (replies[n].results.size() != e.routing.by_part[n].size()) {
        return Status::Internal("epoch result count mismatch");
      }
      std::uint64_t claimed = 0;
      for (const WireReportResult& res : replies[n].results) {
        claimed += res.new_term_count;
      }
      if (claimed != replies[n].new_terms.size()) {
        return Status::Internal("epoch dictionary delta count mismatch");
      }
    }
    watermarks_.Advance(n, e.id);
  }
  if (!watermarks_.AllPassed(e.id)) {
    return Status::Internal("epoch barrier did not release");
  }
  recv_span.End();

  static obs::Counter* delta_terms_counter =
      obs::MetricsRegistry::Global().counter("cluster.delta_terms");

  // Absorb per report in *input* order, remapping each report's outputs
  // through its node's id table right after importing the report's slice
  // of the node's coalesced epoch dictionary delta — this interleaving is
  // what reproduces the serial engine's first-occurrence id assignment
  // even though each node ships one delta per epoch.
  DATACRON_TRACE_SPAN("cluster.epoch_absorb", "cluster");
  std::vector<std::size_t> cursor(n_nodes, 0);
  std::vector<std::size_t> term_cursor(n_nodes, 0);
  for (std::size_t i = 0; i < e.items.size(); ++i) {
    const std::size_t n =
        static_cast<std::size_t>(MixU64(e.items[i].entity_id) % n_nodes);
    WireReportResult& res = replies[n].results[cursor[n]++];
    std::vector<TermId>& remap = remap_[n];
    if (res.new_term_count > 0) {
      DATACRON_TRACE_SPAN("cluster.delta_import", "cluster");
      delta_terms_counter->Add(res.new_term_count);
      local_.dictionary()->ImportDelta(
          std::span<const TermExport>(replies[n].new_terms)
              .subspan(term_cursor[n], res.new_term_count),
          &remap);
      term_cursor[n] += res.new_term_count;
    }

    DatacronEngine::ReportOutput out;
    out.cp_count = res.cp_count;
    out.keyed_events = std::move(res.keyed_events);
    out.episodes = std::move(res.episodes);
    out.triples.reserve(res.triples.size());
    for (const Triple& t : res.triples) {
      if (t.s == kInvalidTermId || t.s > remap.size() ||
          t.p == kInvalidTermId || t.p > remap.size() ||
          t.o == kInvalidTermId || t.o > remap.size()) {
        return Status::Internal("triple term id outside node dictionary");
      }
      out.triples.push_back(
          {remap[t.s - 1], remap[t.p - 1], remap[t.o - 1]});
    }
    for (const auto& [id, tag] : res.tags) {
      if (id == kInvalidTermId || id > remap.size()) {
        return Status::Internal("tag term id outside node dictionary");
      }
      out.tags.emplace(remap[id - 1], tag);
    }
    for (const auto& [id, geo] : res.node_geo) {
      if (id == kInvalidTermId || id > remap.size()) {
        return Status::Internal("node-geo term id outside node dictionary");
      }
      out.node_geo.emplace(remap[id - 1], geo);
    }
    out.sub_deltas = std::move(res.sub_deltas);
    for (const auto& [id, count] : res.sub_counts) {
      out.sub_counts[id] = count;
    }
    out.synopses_ns = res.synopses_ns;
    out.transform_ns = res.transform_ns;
    out.keyed_cep_ns = res.keyed_cep_ns;
    local_.AbsorbKeyedOutput(e.items[i], &out, events);
  }
  // One subscription epoch per cluster epoch: coalesce the fleet's deltas
  // and push the batches through the coordinator registry's sink.
  if (!e.items.empty()) {
    local_.FlushSubscriptionEpoch(e.items.back().timestamp);
  }
  ring->pop_front();
  return Status::OK();
}

Status ClusterEngine::BroadcastSubControl(const std::string& frame) {
  Status first = Status::OK();
  for (const std::unique_ptr<Transport>& node : nodes_) {
    if (Status s = node->Send(frame); !s.ok() && first.ok()) first = s;
  }
  for (const std::unique_ptr<Transport>& node : nodes_) {
    Result<std::string> payload = node->Recv();
    if (!payload.ok()) {
      if (first.ok()) first = payload.status();
      continue;
    }
    SubAckMsg ack;
    if (Status s = Decode(payload.value(), &ack); !s.ok()) {
      if (first.ok()) first = s;
    } else if (!ack.ok && first.ok()) {
      first = Status::Internal("node rejected subscription: " + ack.error);
    }
  }
  return first;
}

Result<SubscriptionId> ClusterEngine::Subscribe(SubscriberId subscriber,
                                                const SubscriptionSpec& spec) {
  if (Status s = Connect(); !s.ok()) return s;
  Result<SubscriptionId> id = local_.subscriptions()->Subscribe(subscriber,
                                                                spec);
  if (!id.ok()) return id;
  SubscribeMsg msg;
  msg.id = id.value();
  msg.subscriber = subscriber;
  msg.spec = spec;
  if (Status s = BroadcastSubControl(Encode(msg)); !s.ok()) return s;
  return id;
}

Status ClusterEngine::Unsubscribe(SubscriptionId id) {
  if (Status s = Connect(); !s.ok()) return s;
  if (!local_.subscriptions()->Unsubscribe(id)) {
    return Status::InvalidArgument("unknown or inactive subscription");
  }
  UnsubscribeMsg msg;
  msg.id = id;
  return BroadcastSubControl(Encode(msg));
}

Result<std::vector<Event>> ClusterEngine::IngestBatch(
    std::span<const PositionReport> reports) {
  if (Status s = Connect(); !s.ok()) return s;
  const std::size_t n_nodes = nodes_.size();
  std::vector<Event> events;
  std::deque<PendingEpoch> ring;
  Status failure = Status::OK();
  std::int64_t epochs = 0;

  ForEachEpoch(reports.size(), opts_.engine.epoch_size,
               [&](std::int64_t id, std::size_t pos, std::size_t len) {
    if (!failure.ok()) return;
    while (ring.size() >= opts_.engine.max_epochs_in_flight) {
      if (Status s = RetireFront(&ring, &events); !s.ok()) {
        failure = s;
        return;
      }
    }
    PendingEpoch e;
    e.id = next_epoch_ + id;
    e.items = reports.subspan(pos, len);
    e.routing = EpochRouting::Build(
        e.items, n_nodes,
        [](const PositionReport& r) { return MixU64(r.entity_id); });
    // Every node receives every epoch (possibly empty) so its reply
    // stream stays aligned with the epoch sequence and the watermark
    // barrier can release.
    obs::TraceSpan send_span("cluster.epoch_send", "cluster");
    send_span.set_epoch(e.id);
    for (std::size_t n = 0; n < n_nodes; ++n) {
      ReportBatchMsg msg;
      msg.epoch = e.id;
      msg.reports.reserve(e.routing.by_part[n].size());
      for (std::uint32_t idx : e.routing.by_part[n]) {
        msg.reports.push_back(e.items[idx]);
      }
      if (Status s = nodes_[n]->Send(Encode(msg)); !s.ok()) {
        failure = s;
        return;
      }
    }
    ring.push_back(std::move(e));
    epochs = id + 1;
  });
  if (!failure.ok()) return failure;
  while (!ring.empty()) {
    if (Status s = RetireFront(&ring, &events); !s.ok()) return s;
  }
  next_epoch_ += epochs;
  return events;
}

Result<std::vector<Event>> ClusterEngine::IngestFromQueue(
    AdmissionQueue<PositionReport>* queue) {
  std::vector<Event> events;
  const std::size_t batch_max =
      opts_.engine.epoch_size * opts_.engine.max_epochs_in_flight;
  for (;;) {
    std::vector<PositionReport> batch = queue->PopBatch(batch_max);
    if (batch.empty()) break;  // closed and drained
    Result<std::vector<Event>> r = IngestBatch(batch);
    if (!r.ok()) return r.status();
    std::vector<Event> chunk = std::move(r).value();
    events.insert(events.end(), std::make_move_iterator(chunk.begin()),
                  std::make_move_iterator(chunk.end()));
  }
  local_.RecordAdmissionDrops(*queue);
  return events;
}

Result<std::vector<Event>> ClusterEngine::Finish() {
  if (Status s = Connect(); !s.ok()) return s;
  const std::size_t n_nodes = nodes_.size();
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (Status s = nodes_[n]->Send(EncodeControl(MsgType::kFlushRequest));
        !s.ok()) {
      return s;
    }
  }
  // Entity sets are disjoint across nodes (entity-sticky routing), so
  // FinishFromFlushes' ascending-entity merge over the collected flushes
  // reproduces the serial Finish order.
  std::vector<KeyedFlush> flushes(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    Result<std::string> payload = nodes_[n]->Recv();
    if (!payload.ok()) return payload.status();
    FlushResultMsg msg;
    if (Status s = Decode(payload.value(), &msg); !s.ok()) return s;
    flushes[n] = std::move(msg.flush);
  }
  return local_.FinishFromFlushes(flushes);
}

Result<std::string> ClusterEngine::MetricsReport() {
  if (Status s = Connect(); !s.ok()) return s;
  const std::size_t n_nodes = nodes_.size();
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (Status s = nodes_[n]->Send(EncodeControl(MsgType::kMetricsRequest));
        !s.ok()) {
      return s;
    }
  }
  // Fold rows across nodes by (stage, operator); node 0's row order is
  // the serial engine's, so the fleet table reads the same.
  std::vector<MetricsRow> merged;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    Result<std::string> payload = nodes_[n]->Recv();
    if (!payload.ok()) return payload.status();
    MetricsResultMsg msg;
    if (Status s = Decode(payload.value(), &msg); !s.ok()) return s;
    for (MetricsRow& row : msg.rows) {
      MetricsRow* match = nullptr;
      for (MetricsRow& m : merged) {
        if (m.stage == row.stage && m.metrics.name == row.metrics.name) {
          match = &m;
          break;
        }
      }
      if (match == nullptr) {
        merged.push_back(std::move(row));
      } else {
        match->metrics.Merge(row.metrics);
        match->instances += row.instances;
      }
    }
  }
  for (MetricsRow& row : local_.GlobalMetricsRows()) {
    merged.push_back(std::move(row));
  }
  return DatacronEngine::RenderMetricsTable(merged);
}

Status ClusterEngine::Shutdown() {
  Status first = Status::OK();
  for (const std::unique_ptr<Transport>& node : nodes_) {
    if (Status s = node->Send(EncodeControl(MsgType::kShutdown));
        !s.ok() && first.ok()) {
      first = s;
    }
    node->Close();
  }
  return first;
}

}  // namespace datacron
