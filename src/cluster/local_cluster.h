#ifndef DATACRON_CLUSTER_LOCAL_CLUSTER_H_
#define DATACRON_CLUSTER_LOCAL_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"

namespace datacron {

/// A whole fleet in one process: N ClusterNodes, each serving on its own
/// thread, wired to a connected ClusterEngine over the chosen transport.
/// This is how tests and benches stand up a cluster; a real deployment
/// runs ClusterNode::Serve in separate processes against TcpListener
/// endpoints instead.
class LocalCluster {
 public:
  enum class Wire { kLoopback, kTcp };

  struct Options {
    DatacronEngine::Config engine;
    std::size_t num_nodes = 2;
    Wire wire = Wire::kLoopback;
  };

  /// Spawns the node threads, performs the Hello handshake, and returns a
  /// ready-to-ingest cluster.
  static Result<std::unique_ptr<LocalCluster>> Start(const Options& opts);

  /// Stops the fleet if Stop() was not called.
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  ClusterEngine& engine() { return *engine_; }

  /// Shuts the fleet down and joins the node threads; returns the first
  /// node serve error, if any.
  Status Stop();

 private:
  LocalCluster() = default;

  std::unique_ptr<ClusterEngine> engine_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  bool stopped_ = false;
};

}  // namespace datacron

#endif  // DATACRON_CLUSTER_LOCAL_CLUSTER_H_
