#ifndef DATACRON_COMMON_STATUS_H_
#define DATACRON_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace datacron {

/// Coarse error classification used across the library. The library does not
/// throw exceptions on expected failure paths; operations that can fail
/// return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kParseError,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder. Either contains a T (when `ok()`) or an error
/// Status. Accessing `value()` when not OK aborts the process — callers must
/// check first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success case) keeps call sites
  /// readable: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("result not initialized");
};

}  // namespace datacron

#endif  // DATACRON_COMMON_STATUS_H_
