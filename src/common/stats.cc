#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace datacron {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  const double new_mean = mean_ + delta * other.count_ / n;
  m2_ += other.m2_ +
         delta * delta * (static_cast<double>(count_) * other.count_) / n;
  mean_ = new_mean;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::FromRaw(std::size_t count, double mean, double m2,
                                   double min, double max) {
  RunningStats s;
  if (count == 0) return s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g stddev=%.4g min=%.4g max=%.4g", count_,
                mean(), stddev(), min(), max());
  return buf;
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * (samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - lo;
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void LogHistogram::Add(double x) {
  const auto v = x <= 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(x);
  const std::size_t b =
      v == 0 ? 0
             : std::min<std::size_t>(kBuckets - 1,
                                     64 - std::countl_zero(v));
  ++counts_[b];
  ++total_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
}

double LogHistogram::Percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double want = p / 100.0 * static_cast<double>(total_);
  std::size_t rank = static_cast<std::size_t>(std::ceil(want));
  rank = std::min(std::max<std::size_t>(rank, 1), total_);
  std::size_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      if (b == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      return lo * 1.5;  // midpoint of [2^(b-1), 2^b)
    }
  }
  return 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const std::size_t i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[i];
}

std::string Histogram::ToString(int bar_width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar =
        static_cast<int>(static_cast<double>(counts_[i]) / max_count *
                         bar_width);
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8zu ", BinLow(i),
                  BinHigh(i), counts_[i]);
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  if (underflow_ || overflow_) {
    std::snprintf(line, sizeof(line), "underflow=%zu overflow=%zu\n",
                  underflow_, overflow_);
    out += line;
  }
  return out;
}

}  // namespace datacron
