#ifndef DATACRON_COMMON_STATS_H_
#define DATACRON_COMMON_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace datacron {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; suitable for per-operator metrics on unbounded streams.
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Raw sum of squared deviations (Welford's M2) — the mergeable state,
  /// exposed so accumulators can cross a process boundary (cluster
  /// metrics) without losing precision through variance().
  double m2() const { return m2_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * count_; }

  std::string ToString() const;

  /// Reconstructs an accumulator from its raw state (the inverse of
  /// count()/mean()/m2()/min()/max()); a decoded instance merges exactly
  /// like the original. `count == 0` yields an empty accumulator.
  static RunningStats FromRaw(std::size_t count, double mean, double m2,
                              double min, double max);

  bool operator==(const RunningStats&) const = default;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile collector: stores all samples, sorts on demand.
/// Use for latency distributions in benchmarks (bounded sample counts).
class PercentileTracker {
 public:
  void Add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }

  /// p in [0, 100]. Returns 0 when empty. Nearest-rank method.
  double Percentile(double p) const;

  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }
  double Max() const { return Percentile(100); }

  void Clear() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Mergeable log2-bucketed histogram of nonnegative values (operator
/// latencies in nanoseconds). O(1) memory and O(1) Add, so it can run on
/// the hot path of an unbounded stream; per-shard copies fold together
/// with Merge. Percentile answers with the arithmetic midpoint of the
/// bucket holding the rank — ~±25% relative error, plenty for p50/p99
/// latency reporting.
class LogHistogram {
 public:
  void Add(double x);
  void Merge(const LogHistogram& other);

  std::size_t count() const { return total_; }

  /// p in [0, 100]; nearest-rank over the bucket counts. 0 when empty.
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p99() const { return Percentile(99); }

  /// Raw bucket access for (de)serialization: a histogram rebuilt by
  /// feeding every bucket_count(b) through AddBucketCount merges exactly
  /// like the original. Before these existed, per-shard histograms could
  /// only merge within one process — the cluster metrics path needs them.
  static constexpr std::size_t num_buckets() { return kBuckets; }
  std::size_t bucket_count(std::size_t b) const {
    return b < kBuckets ? counts_[b] : 0;
  }
  void AddBucketCount(std::size_t b, std::size_t n) {
    if (b >= kBuckets || n == 0) return;
    counts_[b] += n;
    total_ += n;
  }

  bool operator==(const LogHistogram&) const = default;

 private:
  /// Bucket b>0 covers [2^(b-1), 2^b); bucket 0 holds zeros.
  static constexpr std::size_t kBuckets = 64;
  std::array<std::size_t, kBuckets> counts_{};
  std::size_t total_ = 0;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus
/// underflow/overflow counters. Used for density rasters and latency
/// summaries where exact samples would be too many.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t TotalCount() const { return total_; }
  std::size_t BinCount(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double BinLow(std::size_t i) const { return lo_ + i * width_; }
  double BinHigh(std::size_t i) const { return lo_ + (i + 1) * width_; }

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToString(int bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_STATS_H_
