#ifndef DATACRON_COMMON_FLAT_HASH_H_
#define DATACRON_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace datacron {

/// splitmix64 finalizer: mixes a 64-bit key into a well-distributed hash.
/// Also used by the query executor to pack multi-variable join keys into
/// one u64.
inline std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Open-addressing hash map for integer keys on query hot paths: linear
/// probing over a power-of-two slot array, keys mixed with MixU64, max
/// load factor 3/4. No erase — probe sequences stay tombstone-free, so
/// lookups terminate at the first empty slot. Values must be
/// default-constructible and movable.
template <typename K, typename V>
class FlatHashMap {
  static_assert(sizeof(K) <= sizeof(std::uint64_t),
                "keys must fit in the u64 mixer");

 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Pre-sizes the table for `n` entries without rehashing later.
  void Reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Inserts `key` with a default value if absent; returns the value slot.
  V& operator[](const K& key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t i = ProbeFor(key);
    if (!used_[i]) {
      used_[i] = 1;
      slots_[i].key = key;
      slots_[i].value = V();
      ++size_;
    }
    return slots_[i].value;
  }

  V* Find(const K& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t i = ProbeFor(key);
    return used_[i] ? &slots_[i].value : nullptr;
  }
  const V* Find(const K& key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t i = ProbeFor(key);
    return used_[i] ? &slots_[i].value : nullptr;
  }
  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Empties the table but keeps the slot array, so a map reused as
  /// per-batch scratch does not reallocate every batch. (The absence of
  /// erase is per-entry; dropping everything at once keeps probe
  /// sequences trivially tombstone-free.)
  void Clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    K key;
    V value;
  };

  std::size_t ProbeFor(const K& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = MixU64(static_cast<std::uint64_t>(key)) & mask;
    while (used_[i] && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void Rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, Slot());
    used_.assign(new_cap, 0);
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j =
          MixU64(static_cast<std::uint64_t>(old_slots[i].key)) & mask;
      while (used_[j]) j = (j + 1) & mask;
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

/// Companion set with the same layout and probing discipline.
template <typename K>
class FlatHashSet {
 public:
  FlatHashSet() = default;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Reserve(std::size_t n) { map_.Reserve(n); }

  /// Returns true when `key` was newly inserted.
  bool Insert(const K& key) {
    const std::size_t before = map_.size();
    map_[key] = 1;
    return map_.size() != before;
  }
  bool Contains(const K& key) const { return map_.Contains(key); }
  void Clear() { map_.Clear(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](const K& key, std::uint8_t) { fn(key); });
  }

 private:
  FlatHashMap<K, std::uint8_t> map_;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_FLAT_HASH_H_
