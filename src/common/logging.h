#ifndef DATACRON_COMMON_LOGGING_H_
#define DATACRON_COMMON_LOGGING_H_

#include <string>

namespace datacron {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes "[LEVEL ts] message" to stderr if `level` passes the filter.
void Log(LogLevel level, const std::string& message);

/// printf-style logging convenience.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace datacron

#endif  // DATACRON_COMMON_LOGGING_H_
