#ifndef DATACRON_COMMON_LOGGING_H_
#define DATACRON_COMMON_LOGGING_H_

#include <mutex>
#include <string>
#include <vector>

namespace datacron {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for log records that pass the level filter. Implementations
/// must be thread-safe — engine, pool, and cluster threads all log.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `component` is a short subsystem tag ("engine", "cluster", "net",
  /// ...) or nullptr for untagged messages.
  virtual void Write(LogLevel level, const char* component,
                     const std::string& message) = 0;
};

/// Swaps the process-wide sink, returning the previous one (nullptr means
/// the default stderr sink was active). The caller keeps ownership of the
/// installed sink and must outlive all logging calls; pass nullptr to
/// restore the stderr default.
LogSink* SetLogSink(LogSink* sink);

/// Writes "[LEVEL ts] message" to the active sink if `level` passes the
/// filter (default sink: stderr).
void Log(LogLevel level, const std::string& message);

/// Tagged variant: "[LEVEL ts component] message".
void Log(LogLevel level, const char* component, const std::string& message);

/// printf-style logging convenience.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// printf-style with a component tag.
void Logfc(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Test sink that buffers records instead of printing them. Install with
/// SetLogSink(&capture), restore with SetLogSink(previous).
class CaptureLogSink : public LogSink {
 public:
  struct Entry {
    LogLevel level;
    std::string component;  // "" for untagged
    std::string message;
  };

  void Write(LogLevel level, const char* component,
             const std::string& message) override;

  std::vector<Entry> Entries() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_LOGGING_H_
