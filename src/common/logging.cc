#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "common/time_utils.h"

namespace datacron {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s] %s\n", LevelName(level),
               FormatIso8601(NowMs()).c_str(), message.c_str());
}

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  Log(level, buf);
}

}  // namespace datacron
