#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "common/time_utils.h"

namespace datacron {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink*> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool Passes(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void Emit(LogLevel level, const char* component,
          const std::string& message) {
  if (LogSink* sink = g_sink.load(std::memory_order_acquire)) {
    sink->Write(level, component, message);
    return;
  }
  if (component != nullptr) {
    std::fprintf(stderr, "[%s %s %s] %s\n", LevelName(level),
                 FormatIso8601(NowMs()).c_str(), component, message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s] %s\n", LevelName(level),
                 FormatIso8601(NowMs()).c_str(), message.c_str());
  }
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void Log(LogLevel level, const std::string& message) {
  if (!Passes(level)) return;
  Emit(level, nullptr, message);
}

void Log(LogLevel level, const char* component, const std::string& message) {
  if (!Passes(level)) return;
  Emit(level, component, message);
}

void Logf(LogLevel level, const char* fmt, ...) {
  if (!Passes(level)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  Emit(level, nullptr, buf);
}

void Logfc(LogLevel level, const char* component, const char* fmt, ...) {
  if (!Passes(level)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  Emit(level, component, buf);
}

void CaptureLogSink::Write(LogLevel level, const char* component,
                           const std::string& message) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back({level, component ? component : "", message});
}

std::vector<CaptureLogSink::Entry> CaptureLogSink::Entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_;
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

}  // namespace datacron
