#ifndef DATACRON_COMMON_THREAD_POOL_H_
#define DATACRON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/time_utils.h"

namespace datacron {

/// Fixed-size worker pool used by the parallel query executor, the
/// pipeline runner and the bulk-ingest path. Tasks are
/// `std::function<void()>`; `Submit` returns a future for composition,
/// `ParallelFor` is a convenience barrier.
///
/// ParallelFor is re-entrant: a task running on a pool worker may itself
/// call ParallelFor (the ingest path nests bucket-level and sort-level
/// parallelism). The calling thread help-runs queued tasks while it waits,
/// so nested calls cannot deadlock even on a single-worker pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({[task] { (*task)(); }, MonotonicNanos()});
    }
    cv_.notify_one();
    return fut;
  }

  /// Distribution of enqueue-to-dequeue wait nanos over every task run so
  /// far — the scheduler-latency signal the observability layer publishes
  /// as "pool.queue_ns". Accounted under the queue mutex the pool already
  /// holds at dequeue, so the hot path pays one clock read per task.
  LogHistogram QueueWaitNanos() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_wait_ns_;
  }

  /// Runs fn(i) for i in [0, n), partitioned across the pool; blocks until
  /// every iteration has completed. The calling thread participates (it
  /// help-runs queued chunks), so ParallelFor may be invoked from inside a
  /// pool task. If any iteration throws, every chunk still runs to
  /// completion and the first exception is rethrown to the caller.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  /// Pops and runs one queued task if any is immediately available.
  /// Returns false when the queue was empty.
  bool TryRunOneTask();

  /// Pops the front task under mu_ (held by the caller) and accounts its
  /// queue wait.
  std::function<void()> PopFrontLocked();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  LogHistogram queue_wait_ns_;
  bool shutting_down_ = false;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_THREAD_POOL_H_
