#include "common/csv.h"

namespace datacron {

std::string CsvWriter::FormatRow(
    const std::vector<std::string>& fields) const {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delim_;
    const std::string& f = fields[i];
    const bool needs_quote = f.find(delim_) != std::string::npos ||
                             f.find('"') != std::string::npos ||
                             f.find('\n') != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out += '"';
    for (char c : f) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  }
  return out;
}

Result<std::vector<std::string>> CsvReader::ParseRow(
    std::string_view line) const {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("quote in the middle of unquoted field");
      }
      in_quotes = true;
    } else if (c == delim_) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace datacron
