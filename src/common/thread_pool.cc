#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

namespace datacron {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::function<void()> ThreadPool::PopFrontLocked() {
  QueuedTask task = std::move(queue_.front());
  queue_.pop_front();
  queue_wait_ns_.Add(
      static_cast<double>(MonotonicNanos() - task.enqueue_ns));
  return std::move(task.fn);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = PopFrontLocked();
    }
    task();
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = PopFrontLocked();
  }
  task();
  return true;
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Per-call completion state. Chunks reference `fn` (stack-bound), so the
  // call must not return before every chunk has finished — including after
  // an exception — or the remaining chunks would run against a dangling
  // reference.
  struct Barrier {
    std::atomic<std::size_t> remaining;
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  const std::size_t chunks = std::min(n, num_threads() * 4);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining.store((n + per_chunk - 1) / per_chunk,
                           std::memory_order_relaxed);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    auto chunk = [begin, end, &fn, barrier] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(barrier->mu);
        if (!barrier->first_error) {
          barrier->first_error = std::current_exception();
        }
      }
      if (barrier->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock so the notify cannot race a waiter between its predicate
        // check and its wait.
        std::lock_guard<std::mutex> lock(barrier->mu);
        barrier->done.notify_all();
      }
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({std::move(chunk), MonotonicNanos()});
    }
    cv_.notify_one();
  }

  // Help-run queued tasks while waiting. This makes nested ParallelFor
  // safe: a worker whose chunks queue behind it executes them itself
  // instead of blocking on a future forever. Stolen tasks may belong to
  // other submitters; running them here only speeds the pool up.
  while (barrier->remaining.load(std::memory_order_acquire) > 0) {
    if (TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(barrier->mu);
    barrier->done.wait(lock, [&] {
      return barrier->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (barrier->first_error) std::rethrow_exception(barrier->first_error);
}

}  // namespace datacron
