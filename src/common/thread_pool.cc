#include "common/thread_pool.h"

#include <algorithm>

namespace datacron {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, num_threads() * 4);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace datacron
