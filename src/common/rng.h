#ifndef DATACRON_COMMON_RNG_H_
#define DATACRON_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

namespace datacron {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All simulators and benchmarks take an explicit seed so every
/// experiment in EXPERIMENTS.md is exactly reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; the same seed always yields the same sequence.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double lambda) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-300;
    return -std::log(u) / lambda;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_RNG_H_
