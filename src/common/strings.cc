#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace datacron {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty() || out == nullptr) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view text, std::int64_t* out) {
  if (text.empty() || out == nullptr) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace datacron
