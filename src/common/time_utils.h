#ifndef DATACRON_COMMON_TIME_UTILS_H_
#define DATACRON_COMMON_TIME_UTILS_H_

#include <cstdint>
#include <string>

namespace datacron {

/// All event timestamps in the library are Unix epoch milliseconds (UTC).
/// Surveillance sources (AIS, ADS-B) report at second-or-finer granularity;
/// milliseconds is the operational unit the paper's latency requirements are
/// expressed in.
using TimestampMs = std::int64_t;

/// Signed interval in milliseconds.
using DurationMs = std::int64_t;

constexpr DurationMs kMillisecond = 1;
constexpr DurationMs kSecond = 1000;
constexpr DurationMs kMinute = 60 * kSecond;
constexpr DurationMs kHour = 60 * kMinute;
constexpr DurationMs kDay = 24 * kHour;

/// Current wall-clock time in Unix epoch milliseconds.
TimestampMs NowMs();

/// Monotonic clock reading in nanoseconds; used for latency measurement.
std::int64_t MonotonicNanos();

/// Formats `ts` as "YYYY-MM-DDTHH:MM:SS.mmmZ" (UTC).
std::string FormatIso8601(TimestampMs ts);

/// Parses "YYYY-MM-DDTHH:MM:SS[.mmm][Z]" into epoch milliseconds.
/// Returns false on malformed input.
bool ParseIso8601(const std::string& text, TimestampMs* out);

/// Simple stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}

  /// Resets the start point to now.
  void Reset() { start_ = MonotonicNanos(); }

  std::int64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  std::int64_t start_;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_TIME_UTILS_H_
