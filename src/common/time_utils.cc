#include "common/time_utils.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace datacron {

TimestampMs NowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

std::int64_t MonotonicNanos() {
  using namespace std::chrono;
  return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatIso8601(TimestampMs ts) {
  std::time_t secs = static_cast<std::time_t>(ts / 1000);
  int millis = static_cast<int>(ts % 1000);
  if (millis < 0) {
    millis += 1000;
    secs -= 1;
  }
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

bool ParseIso8601(const std::string& text, TimestampMs* out) {
  if (out == nullptr) return false;
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  int millis = 0;
  int consumed = 0;
  int fields = std::sscanf(text.c_str(), "%4d-%2d-%2dT%2d:%2d:%2d%n", &year,
                           &month, &day, &hour, &minute, &second, &consumed);
  if (fields != 6) return false;
  const char* rest = text.c_str() + consumed;
  if (*rest == '.') {
    // Up to 3 fractional digits are honored; further digits are truncated.
    ++rest;
    int digits = 0;
    int frac = 0;
    while (*rest >= '0' && *rest <= '9') {
      if (digits < 3) frac = frac * 10 + (*rest - '0');
      ++digits;
      ++rest;
    }
    if (digits == 0) return false;
    while (digits < 3) {
      frac *= 10;
      ++digits;
    }
    millis = frac;
  }
  if (*rest == 'Z') ++rest;
  if (*rest != '\0') return false;
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return false;
  }
  std::tm tm_utc = {};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  std::time_t secs = timegm(&tm_utc);
  if (secs == static_cast<std::time_t>(-1)) return false;
  *out = static_cast<TimestampMs>(secs) * 1000 + millis;
  return true;
}

}  // namespace datacron
