// Vectorizable transcendentals for the distance kernels.
//
// libm's sin/cos/asin are scalar; the haversine/SED kernels need them
// per lane. These are the classic cephes/fdlibm constructions written
// over the Simd<double, Abi> wrapper: Cody-Waite two-step range
// reduction to [-pi/4, pi/4] plus minimax polynomials (sin/cos), and
// the cephes rational approximations for asin.
//
// Accuracy (property-tested in tests/simd_test.cc):
//   * SinCos: <= 4 ulp of libm for |x| <= 1e5 (the geo kernels only
//     feed |x| <= 2*pi). The reduction multiple fits 33 bits, so
//     fj * pio2_hi is exact for |fj| < 2^20.
//   * Asin:   <= 4 ulp of libm on [-1, 1]; NaN outside, NaN in ->
//     NaN out.
// These are NOT bit-identical to libm — kernels built on them are the
// "ULP-bound" class (distances only), never gate inputs. Across abis
// the same function IS bit-identical lane for lane, since it only uses
// wrapper ops.
#ifndef DATACRON_COMMON_SIMD_MATH_H_
#define DATACRON_COMMON_SIMD_MATH_H_

#include <cstddef>

#include "common/simd/simd.h"

namespace datacron::simd {

namespace detail {

/// Horner evaluation, highest-degree coefficient first.
template <typename Abi, std::size_t N>
inline Simd<double, Abi> Polevl(Simd<double, Abi> x, const double (&c)[N]) {
  Simd<double, Abi> r(c[0]);
  for (std::size_t i = 1; i < N; ++i) {
    r = Fma(r, x, Simd<double, Abi>(c[i]));
  }
  return r;
}

/// Horner with an implicit leading coefficient of 1 (cephes p1evl).
template <typename Abi, std::size_t N>
inline Simd<double, Abi> P1evl(Simd<double, Abi> x, const double (&c)[N]) {
  Simd<double, Abi> r = x + Simd<double, Abi>(c[0]);
  for (std::size_t i = 1; i < N; ++i) {
    r = Fma(r, x, Simd<double, Abi>(c[i]));
  }
  return r;
}

inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
// fdlibm split of pi/2: pio2_hi carries 33 significant bits.
inline constexpr double kPio2Hi = 1.57079632673412561417e+00;
inline constexpr double kPio2Lo = 6.07710050650619224932e-11;

inline constexpr double kSinCoeffs[6] = {
    1.58962301576546568060e-10, -2.50507477628578072866e-8,
    2.75573136213857245213e-6,  -1.98412698295895385996e-4,
    8.33333333332211858878e-3,  -1.66666666666666307295e-1};

inline constexpr double kCosCoeffs[6] = {
    -1.13585365213876817300e-11, 2.08757008419747316778e-9,
    -2.75573141792967388112e-7,  2.48015872888517179954e-5,
    -1.38888888888730564116e-3,  4.16666666666665929218e-2};

// cephes asin.c rationals: P/Q on x^2 for |x| < 0.625, R/S on 1-|x|
// above.
inline constexpr double kAsinP[6] = {
    4.253011369004428248960e-3, -6.019598008014123785661e-1,
    5.444622390564711410273e0,  -1.626247967210700244449e1,
    1.956261983317594739197e1,  -8.198089802484824371615e0};
inline constexpr double kAsinQ[5] = {
    -1.474091372988853791896e1, 7.049610280856842141659e1,
    -1.471791292232726029859e2, 1.395105614657485689735e2,
    -4.918853881490881290097e1};
inline constexpr double kAsinR[5] = {
    2.967721961301243206100e-3, -5.634242780008963776856e-1,
    6.968710824104713396794e0,  -2.556901049652824852289e1,
    2.853665548261061424989e1};
inline constexpr double kAsinS[4] = {
    -2.194779531642920639778e1, 1.470656354026814941758e2,
    -3.838770957603691357202e2, 3.424398657913078477438e2};

inline constexpr double kPio4 = 7.85398163397448309616e-1;
inline constexpr double kAsinMoreBits = 6.123233995736765886130e-17;

}  // namespace detail

/// sin(x) and cos(x) per lane. See header comment for the accuracy
/// contract.
template <typename Abi>
inline void SinCos(Simd<double, Abi> x, Simd<double, Abi>* sin_out,
                   Simd<double, Abi>* cos_out) {
  using D = Simd<double, Abi>;
  using detail::Polevl;

  // Nearest multiple of pi/2, then two-step Cody-Waite remainder.
  const D fj = RoundNearest(x * D(detail::kTwoOverPi));
  D r = Fma(fj, D(-detail::kPio2Hi), x);
  r = Fma(fj, D(-detail::kPio2Lo), r);

  // Quadrant index 0..3 as a double: fj mod 4.
  const D q = Fma(Floor(fj * D(0.25)), D(-4.0), fj);

  const D z = r * r;
  const D sin_r = Fma(r * z, Polevl<Abi>(z, detail::kSinCoeffs), r);
  const D cos_r =
      Fma(z * z, Polevl<Abi>(z, detail::kCosCoeffs), Fma(z, D(-0.5), D(1.0)));

  const auto q1 = q == D(1.0);
  const auto q2 = q == D(2.0);
  const auto q3 = q == D(3.0);

  // Quadrant rotation: sin -> {sin, cos, -sin, -cos},
  //                    cos -> {cos, -sin, -cos, sin}.
  D s = Select(q1 || q3, cos_r, sin_r);
  s = Select(q2 || q3, -s, s);
  D c = Select(q1 || q3, sin_r, cos_r);
  c = Select(q1 || q2, -c, c);
  *sin_out = s;
  *cos_out = c;
}

/// asin(x) per lane (cephes rational form). NaN outside [-1, 1].
template <typename Abi>
inline Simd<double, Abi> Asin(Simd<double, Abi> x) {
  using D = Simd<double, Abi>;
  using detail::P1evl;
  using detail::Polevl;

  const D a = Abs(x);

  // |x| < 0.625: asin(x) = x + x * zz * P(zz)/Q(zz), zz = x^2.
  const D zz_s = a * a;
  const D p_s = zz_s * Polevl<Abi>(zz_s, detail::kAsinP) /
                P1evl<Abi>(zz_s, detail::kAsinQ);
  const D r_small = Fma(a, p_s, a);

  // |x| >= 0.625: asin(x) = pi/2 - 2*asin(sqrt((1-x)/2)), expanded as
  // in cephes with the pi/4 + morebits split for the last bits.
  const D zz_l = D(1.0) - a;
  const D p_l = zz_l * Polevl<Abi>(zz_l, detail::kAsinR) /
                P1evl<Abi>(zz_l, detail::kAsinS);
  const D s = Sqrt(zz_l + zz_l);
  const D r_large = (D(detail::kPio4) - s) -
                    Fma(s, p_l, D(-detail::kAsinMoreBits)) +
                    D(detail::kPio4);

  const D r = Select(a > D(0.625), r_large, r_small);
  return CopySign(r, x);
}

}  // namespace datacron::simd

#endif  // DATACRON_COMMON_SIMD_MATH_H_
