// Scalar (width 1) backend — the correctness reference.
//
// Ops are written to mirror the lane semantics of the x86 vector
// instructions, NOT the std:: conveniences:
//   * min(a,b) = a < b ? a : b  (returns b when unordered, like MINPD)
//   * max(a,b) = a > b ? a : b  (returns b when unordered, like MAXPD)
//   * comparisons are ordered+quiet (false on NaN)
//   * fma is std::fma — a true fused op, matching VFMADD
// With -ffp-contract=off (set globally in the top-level CMakeLists)
// every arithmetic op here is IEEE correctly rounded, so a kernel
// instantiated at scalar_abi produces bit-identical lanes to the same
// kernel at any vector abi.
#ifndef DATACRON_COMMON_SIMD_ABI_SCALAR_H_
#define DATACRON_COMMON_SIMD_ABI_SCALAR_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/simd/fwd.h"

namespace datacron::simd {

template <>
struct backend<double, scalar_abi> {
  static constexpr int kWidth = 1;
  using reg = double;
  using mask_reg = bool;

  static reg broadcast(double v) { return v; }
  static reg load(const double* p) { return *p; }
  static void store(double* p, reg v) { *p = v; }
  static reg load_strided(const double* p, std::ptrdiff_t) { return *p; }

  static reg add(reg a, reg b) { return a + b; }
  static reg sub(reg a, reg b) { return a - b; }
  static reg mul(reg a, reg b) { return a * b; }
  static reg div(reg a, reg b) { return a / b; }
  static reg neg(reg a) { return -a; }
  static reg fma(reg a, reg b, reg c) { return std::fma(a, b, c); }
  static reg sqrt(reg a) { return std::sqrt(a); }
  static reg abs(reg a) { return std::fabs(a); }
  static reg min(reg a, reg b) { return a < b ? a : b; }
  static reg max(reg a, reg b) { return a > b ? a : b; }
  static reg floor(reg a) { return std::floor(a); }
  // Matches VROUNDPD round-to-nearest-even (the process default mode).
  static reg round_nearest(reg a) { return std::nearbyint(a); }

  static mask_reg lt(reg a, reg b) { return a < b; }
  static mask_reg le(reg a, reg b) { return a <= b; }
  static mask_reg gt(reg a, reg b) { return a > b; }
  static mask_reg ge(reg a, reg b) { return a >= b; }
  static mask_reg eq(reg a, reg b) { return a == b; }

  static reg select(mask_reg m, reg if_true, reg if_false) {
    return m ? if_true : if_false;
  }
  static mask_reg mask_and(mask_reg a, mask_reg b) { return a && b; }
  static mask_reg mask_or(mask_reg a, mask_reg b) { return a || b; }
  static mask_reg mask_not(mask_reg a) { return !a; }
  static bool any(mask_reg m) { return m; }
  static bool all(mask_reg m) { return m; }
  static void mask_store_bytes(mask_reg m, std::uint8_t* out) {
    out[0] = m ? 1 : 0;
  }

  static reg bit_and(reg a, reg b) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) &
                                 std::bit_cast<std::uint64_t>(b));
  }
  static reg bit_or(reg a, reg b) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) |
                                 std::bit_cast<std::uint64_t>(b));
  }
  static reg bit_xor(reg a, reg b) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) ^
                                 std::bit_cast<std::uint64_t>(b));
  }
  // ANDNPD semantics: (~a) & b.
  static reg bit_andnot(reg a, reg b) {
    return std::bit_cast<double>(~std::bit_cast<std::uint64_t>(a) &
                                 std::bit_cast<std::uint64_t>(b));
  }
};

}  // namespace datacron::simd

#endif  // DATACRON_COMMON_SIMD_ABI_SCALAR_H_
