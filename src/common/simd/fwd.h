// Forward declarations for the portable SIMD layer.
//
// Backend headers (abi_*.h) include this file and specialize the
// `backend` primary template for their ABI tag. simd.h includes the
// backend headers and builds the value-type wrappers on top. Adding a
// new backend means: add an abi tag here, write abi_<name>.h
// specializing `backend<double, <name>_abi>`, and extend the native
// selection block in simd.h.
#ifndef DATACRON_COMMON_SIMD_FWD_H_
#define DATACRON_COMMON_SIMD_FWD_H_

namespace datacron::simd {

/// Width-1 reference backend. Every operation is defined to match the
/// semantics of the vector instructions lane for lane (e.g. min/max
/// return the second operand when the first comparison is unordered,
/// exactly like MINPD/MAXPD), so a kernel instantiated at scalar_abi
/// is the bit-exact per-lane reference for every other backend.
struct scalar_abi {};

/// 4 x double via AVX2 + FMA. Compiled in only when the translation
/// unit targets AVX2 (see simd.h).
struct avx2_abi {};

/// Per-(type, abi) implementation. Specializations provide:
///   kWidth, reg, mask_reg, and the static ops used by Simd<T, Abi>.
template <typename T, typename Abi>
struct backend;

}  // namespace datacron::simd

#endif  // DATACRON_COMMON_SIMD_FWD_H_
