// Portable SIMD value types, in the style of arbor's simd wrappers.
//
// Usage: write the kernel ONCE as a template over the abi tag, using
// Simd<double, Abi> lanes. Instantiate it at native_abi for the fast
// path and at scalar_abi for remainder tails and the forced-scalar
// build. Because every wrapper op maps to an IEEE correctly rounded
// instruction on both backends (and -ffp-contract=off stops the
// compiler from fusing the scalar side), the two instantiations are
// bit-identical per lane — which is what lets the batched CPA/bbox
// kernels feed event gates without perturbing engine output.
//
// Backend selection is compile time: building with -mavx2 -mfma (the
// default on x86-64, see the DATACRON_SIMD cache option) makes
// native_abi = avx2_abi; DATACRON_SIMD=scalar or a non-AVX2 toolchain
// makes it scalar_abi. Kernel entry points additionally take a runtime
// SimdDispatch so tests and benches can compare both paths in one
// binary.
#ifndef DATACRON_COMMON_SIMD_SIMD_H_
#define DATACRON_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "common/simd/abi_scalar.h"
#include "common/simd/fwd.h"

#if !defined(DATACRON_SIMD_FORCE_SCALAR) && defined(__AVX2__) && \
    defined(__FMA__)
#define DATACRON_SIMD_HAVE_AVX2 1
#include "common/simd/abi_avx2.h"
#else
#define DATACRON_SIMD_HAVE_AVX2 0
#endif

namespace datacron::simd {

#if DATACRON_SIMD_HAVE_AVX2
using native_abi = avx2_abi;
#else
using native_abi = scalar_abi;
#endif

template <typename T, typename Abi>
class SimdMask {
 public:
  using B = backend<T, Abi>;

  SimdMask() = default;
  explicit SimdMask(typename B::mask_reg m) : r_(m) {}

  typename B::mask_reg raw() const { return r_; }

  friend SimdMask operator&&(SimdMask a, SimdMask b) {
    return SimdMask(B::mask_and(a.r_, b.r_));
  }
  friend SimdMask operator||(SimdMask a, SimdMask b) {
    return SimdMask(B::mask_or(a.r_, b.r_));
  }
  SimdMask operator!() const { return SimdMask(B::mask_not(r_)); }

  friend bool Any(SimdMask m) { return B::any(m.r_); }
  friend bool All(SimdMask m) { return B::all(m.r_); }
  /// Writes one 0/1 byte per lane.
  void StoreBytes(std::uint8_t* out) const { B::mask_store_bytes(r_, out); }

 private:
  typename B::mask_reg r_;
};

template <typename T, typename Abi>
class Simd {
 public:
  using B = backend<T, Abi>;
  using Mask = SimdMask<T, Abi>;
  static constexpr int kWidth = B::kWidth;

  Simd() : r_(B::broadcast(T{})) {}
  Simd(T v) : r_(B::broadcast(v)) {}  // NOLINT: implicit broadcast
  /// Wraps a backend register. A named factory instead of a
  /// constructor because reg == T on the scalar backend.
  static Simd Raw(typename B::reg v) {
    Simd s;
    s.r_ = v;
    return s;
  }

  static Simd Load(const T* p) { return Raw(B::load(p)); }
  /// Lane i loads p[i * stride]. Used for walking matrix columns.
  static Simd LoadStrided(const T* p, std::ptrdiff_t stride) {
    return Raw(B::load_strided(p, stride));
  }
  void Store(T* p) const { B::store(p, r_); }
  typename B::reg raw() const { return r_; }

  friend Simd operator+(Simd a, Simd b) { return Raw(B::add(a.r_, b.r_)); }
  friend Simd operator-(Simd a, Simd b) { return Raw(B::sub(a.r_, b.r_)); }
  friend Simd operator*(Simd a, Simd b) { return Raw(B::mul(a.r_, b.r_)); }
  friend Simd operator/(Simd a, Simd b) { return Raw(B::div(a.r_, b.r_)); }
  Simd operator-() const { return Raw(B::neg(r_)); }

  friend Mask operator<(Simd a, Simd b) { return Mask(B::lt(a.r_, b.r_)); }
  friend Mask operator<=(Simd a, Simd b) { return Mask(B::le(a.r_, b.r_)); }
  friend Mask operator>(Simd a, Simd b) { return Mask(B::gt(a.r_, b.r_)); }
  friend Mask operator>=(Simd a, Simd b) { return Mask(B::ge(a.r_, b.r_)); }
  friend Mask operator==(Simd a, Simd b) { return Mask(B::eq(a.r_, b.r_)); }

  /// a*b + c as a single fused op (VFMADD / std::fma) on both backends.
  friend Simd Fma(Simd a, Simd b, Simd c) {
    return Raw(B::fma(a.r_, b.r_, c.r_));
  }
  friend Simd Sqrt(Simd a) { return Raw(B::sqrt(a.r_)); }
  friend Simd Abs(Simd a) { return Raw(B::abs(a.r_)); }
  /// MINPD semantics: a < b ? a : b (b when unordered).
  friend Simd Min(Simd a, Simd b) { return Raw(B::min(a.r_, b.r_)); }
  /// MAXPD semantics: a > b ? a : b (b when unordered).
  friend Simd Max(Simd a, Simd b) { return Raw(B::max(a.r_, b.r_)); }
  friend Simd Floor(Simd a) { return Raw(B::floor(a.r_)); }
  friend Simd RoundNearest(Simd a) { return Raw(B::round_nearest(a.r_)); }
  friend Simd Select(Mask m, Simd if_true, Simd if_false) {
    return Raw(B::select(m.raw(), if_true.r_, if_false.r_));
  }

  friend Simd BitAnd(Simd a, Simd b) { return Raw(B::bit_and(a.r_, b.r_)); }
  friend Simd BitOr(Simd a, Simd b) { return Raw(B::bit_or(a.r_, b.r_)); }
  friend Simd BitXor(Simd a, Simd b) { return Raw(B::bit_xor(a.r_, b.r_)); }
  /// ANDNPD semantics: (~a) & b.
  friend Simd BitAndNot(Simd a, Simd b) {
    return Raw(B::bit_andnot(a.r_, b.r_));
  }
  /// |magnitude| with the sign bit of `sign`.
  friend Simd CopySign(Simd magnitude, Simd sign) {
    const Simd sign_mask(-0.0);
    return BitOr(BitAndNot(sign_mask, magnitude), BitAnd(sign_mask, sign));
  }

 private:
  typename B::reg r_;
};

using DoubleV = Simd<double, native_abi>;
using DoubleS = Simd<double, scalar_abi>;

constexpr int kNativeWidth = Simd<double, native_abi>::kWidth;

inline const char* NativeBackendName() {
  return DATACRON_SIMD_HAVE_AVX2 ? "avx2" : "scalar";
}

}  // namespace datacron::simd

namespace datacron {

/// Runtime backend choice on kernel entry points. kNative uses the
/// compile-time native abi for full vectors (scalar tails as needed);
/// kScalarOnly forces the width-1 reference path. Both produce
/// bit-identical lanes; the knob exists so one binary can time and
/// cross-check both.
enum class SimdDispatch : std::uint8_t { kNative, kScalarOnly };

}  // namespace datacron

#endif  // DATACRON_COMMON_SIMD_SIMD_H_
