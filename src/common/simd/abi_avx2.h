// AVX2 + FMA backend: 4 x double in a __m256d.
//
// Only included when the TU is compiled with -mavx2 -mfma (the
// top-level CMakeLists adds both or neither). Masks are carried as
// __m256d lane masks straight out of VCMPPD; comparisons use the
// ordered+quiet predicates so NaN lanes compare false, matching the
// scalar backend.
#ifndef DATACRON_COMMON_SIMD_ABI_AVX2_H_
#define DATACRON_COMMON_SIMD_ABI_AVX2_H_

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/simd/fwd.h"

namespace datacron::simd {

template <>
struct backend<double, avx2_abi> {
  static constexpr int kWidth = 4;
  using reg = __m256d;
  using mask_reg = __m256d;

  static reg broadcast(double v) { return _mm256_set1_pd(v); }
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg load_strided(const double* p, std::ptrdiff_t stride) {
    return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }

  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_pd(a, b); }
  static reg neg(reg a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_pd(a, b, c); }
  static reg sqrt(reg a) { return _mm256_sqrt_pd(a); }
  static reg abs(reg a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static reg min(reg a, reg b) { return _mm256_min_pd(a, b); }
  static reg max(reg a, reg b) { return _mm256_max_pd(a, b); }
  static reg floor(reg a) { return _mm256_floor_pd(a); }
  static reg round_nearest(reg a) {
    return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }

  static mask_reg lt(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  }
  static mask_reg le(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
  }
  static mask_reg gt(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  }
  static mask_reg ge(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
  }
  static mask_reg eq(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
  }

  static reg select(mask_reg m, reg if_true, reg if_false) {
    return _mm256_blendv_pd(if_false, if_true, m);
  }
  static mask_reg mask_and(mask_reg a, mask_reg b) {
    return _mm256_and_pd(a, b);
  }
  static mask_reg mask_or(mask_reg a, mask_reg b) {
    return _mm256_or_pd(a, b);
  }
  static mask_reg mask_not(mask_reg a) {
    return _mm256_xor_pd(
        a, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
  }
  static bool any(mask_reg m) { return _mm256_movemask_pd(m) != 0; }
  static bool all(mask_reg m) { return _mm256_movemask_pd(m) == 0xF; }
  static void mask_store_bytes(mask_reg m, std::uint8_t* out) {
    const int bits = _mm256_movemask_pd(m);
    out[0] = static_cast<std::uint8_t>(bits & 1);
    out[1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    out[2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    out[3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }

  static reg bit_and(reg a, reg b) { return _mm256_and_pd(a, b); }
  static reg bit_or(reg a, reg b) { return _mm256_or_pd(a, b); }
  static reg bit_xor(reg a, reg b) { return _mm256_xor_pd(a, b); }
  static reg bit_andnot(reg a, reg b) { return _mm256_andnot_pd(a, b); }
};

}  // namespace datacron::simd

#endif  // DATACRON_COMMON_SIMD_ABI_AVX2_H_
