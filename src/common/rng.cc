#include "common/rng.h"

namespace datacron {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return (NextUint64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());
  // Modulo bias is negligible for the span sizes used here (<< 2^64).
  return lo + static_cast<std::int64_t>(NextUint64() % span);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace datacron
