#ifndef DATACRON_COMMON_STRINGS_H_
#define DATACRON_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace datacron {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strict double parse of the whole string. Returns false on any trailing
/// garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

/// Strict int64 parse of the whole string.
bool ParseInt64(std::string_view text, std::int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace datacron

#endif  // DATACRON_COMMON_STRINGS_H_
