#ifndef DATACRON_COMMON_PARALLEL_SORT_H_
#define DATACRON_COMMON_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/thread_pool.h"

namespace datacron {

/// Below this size the pool overhead dominates and a plain std::sort wins.
inline constexpr std::size_t kMinParallelSortSize = 1u << 14;

/// Sorts `*v` under `less` using `pool`: the vector is cut into one chunk
/// per worker, chunks sort as independent pool tasks, and sorted runs are
/// combined by rounds of pairwise std::inplace_merge (also pool tasks).
///
/// The result is byte-identical to a serial std::sort for the orderings
/// the triple store uses (total orders where equivalent elements are
/// bitwise equal), so parallel and serial Seal() build identical indexes.
/// Falls back to std::sort when `pool` is null or the input is small.
/// Safe to call from inside a pool task (ParallelFor help-runs).
template <typename T, typename Less>
void ParallelSort(std::vector<T>* v, Less less, ThreadPool* pool) {
  if (pool == nullptr || v->size() < kMinParallelSortSize ||
      pool->num_threads() < 2) {
    std::sort(v->begin(), v->end(), less);
    return;
  }
  const std::size_t n = v->size();
  const std::size_t chunks = std::min(n, pool->num_threads());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  // Chunk c covers [c*per_chunk, min(n, (c+1)*per_chunk)).
  const std::size_t runs = (n + per_chunk - 1) / per_chunk;
  auto begin_of = [&](std::size_t run) { return std::min(n, run * per_chunk); };

  pool->ParallelFor(runs, [&](std::size_t c) {
    std::sort(v->begin() + begin_of(c), v->begin() + begin_of(c + 1), less);
  });

  // Merge rounds: width doubles until one run remains.
  for (std::size_t width = 1; width < runs; width *= 2) {
    const std::size_t pairs = (runs + 2 * width - 1) / (2 * width);
    pool->ParallelFor(pairs, [&](std::size_t p) {
      const std::size_t lo = begin_of(p * 2 * width);
      const std::size_t mid = begin_of(std::min(runs, p * 2 * width + width));
      const std::size_t hi = begin_of(std::min(runs, p * 2 * width + 2 * width));
      if (mid < hi) {
        std::inplace_merge(v->begin() + lo, v->begin() + mid,
                           v->begin() + hi, less);
      }
    });
  }
}

}  // namespace datacron

#endif  // DATACRON_COMMON_PARALLEL_SORT_H_
