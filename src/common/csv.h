#ifndef DATACRON_COMMON_CSV_H_
#define DATACRON_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace datacron {

/// Minimal CSV support for the library's interchange files (position
/// reports, experiment outputs). Handles RFC-4180 quoting for fields
/// containing the delimiter, quotes, or newlines; does not support embedded
/// newlines inside quoted fields when reading line-by-line (our writers
/// never emit them).
class CsvWriter {
 public:
  explicit CsvWriter(char delim = ',') : delim_(delim) {}

  /// Serializes one row, quoting fields as needed. No trailing newline.
  std::string FormatRow(const std::vector<std::string>& fields) const;

 private:
  char delim_;
};

class CsvReader {
 public:
  explicit CsvReader(char delim = ',') : delim_(delim) {}

  /// Parses one line into fields, honoring double-quote escaping.
  Result<std::vector<std::string>> ParseRow(std::string_view line) const;

 private:
  char delim_;
};

}  // namespace datacron

#endif  // DATACRON_COMMON_CSV_H_
