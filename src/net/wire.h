#ifndef DATACRON_NET_WIRE_H_
#define DATACRON_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace datacron {

/// Binary wire primitives for the cluster protocol. Fixed-width
/// little-endian integers and IEEE doubles, u32-length-prefixed strings.
/// The writer never fails; every reader step is bounds-checked and
/// returns a Status — a truncated or corrupted payload yields ParseError,
/// never a crash or an unbounded allocation.

class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s);

  std::size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U8(std::uint8_t* v);
  Status U16(std::uint16_t* v);
  Status U32(std::uint32_t* v);
  Status U64(std::uint64_t* v);
  Status I64(std::int64_t* v);
  Status F64(double* v);
  Status Bool(bool* v);
  Status Str(std::string* v);

  /// Reads a u32 element count and sanity-checks it: each element of a
  /// sequence occupies at least `min_element_bytes` payload bytes, so a
  /// count larger than remaining()/min_element_bytes is corrupt — caught
  /// here, before the caller reserves memory for it.
  Status Count(std::size_t* n, std::size_t min_element_bytes = 1);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// ParseError unless every payload byte was consumed — trailing bytes
  /// mean a framing/codec mismatch.
  Status ExpectEnd() const;

 private:
  Status Take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_NET_WIRE_H_
