#ifndef DATACRON_NET_SUB_CHANNEL_H_
#define DATACRON_NET_SUB_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sub/subscription.h"

namespace datacron {

/// Server side of the subscriber channel: owns one framed transport per
/// subscriber and speaks the Subscribe/Unsubscribe/SubAck/DeltaBatch
/// protocol (net/codec.h) over it.
///
/// The broker is engine-agnostic — registration flows through the Hooks
/// callbacks, so the same broker fronts a single-process DatacronEngine
/// (hooks call its SubscriptionRegistry directly) or a ClusterEngine
/// coordinator (hooks broadcast to the fleet). Delta push is wired the
/// other way: point the registry's delta sink at PushBatch and every
/// coalesced epoch batch goes out as one kDeltaBatch frame.
///
/// Threading matches the engines: single-threaded control plane
/// (HandleControl) phased against the data plane (PushBatch from the
/// epoch barrier).
class SubscriptionBroker {
 public:
  struct Hooks {
    /// Registers a standing query; returns the assigned id.
    std::function<Result<SubscriptionId>(SubscriberId,
                                         const SubscriptionSpec&)> subscribe;
    /// Deactivates a standing query; false when unknown/inactive.
    std::function<bool(SubscriptionId)> unsubscribe;
  };

  explicit SubscriptionBroker(Hooks hooks);

  /// Registers `transport` as subscriber `subscriber`'s push channel.
  /// Replaces any previous transport for the same subscriber.
  void Attach(SubscriberId subscriber, std::unique_ptr<Transport> transport);

  /// Receives one control frame (Subscribe or Unsubscribe) from
  /// `subscriber` and replies with a SubAck. A malformed predicate is
  /// acked ok=false with the parse error — the channel survives it.
  /// Transport failures (close, I/O) are returned.
  Status HandleControl(SubscriberId subscriber);

  /// Pushes one coalesced epoch batch to its subscriber as a kDeltaBatch
  /// frame. Batches for subscribers with no attached transport are
  /// counted and dropped (the registry does not know who is connected).
  void PushBatch(const DeltaBatch& batch);

  /// Closes every attached transport.
  void CloseAll();

  std::uint64_t batches_pushed() const { return batches_pushed_; }
  std::uint64_t bytes_pushed() const { return bytes_pushed_; }
  std::uint64_t batches_dropped() const { return batches_dropped_; }

 private:
  struct Channel {
    SubscriberId subscriber = 0;
    std::unique_ptr<Transport> transport;
  };

  Transport* FindTransport(SubscriberId subscriber);

  Hooks hooks_;
  std::vector<Channel> channels_;
  std::uint64_t batches_pushed_ = 0;
  std::uint64_t bytes_pushed_ = 0;
  std::uint64_t batches_dropped_ = 0;

  obs::Counter* push_batches_counter_;
  obs::Counter* push_bytes_counter_;
  obs::Counter* push_dropped_counter_;
};

/// Client side of the subscriber channel. Subscribe is split into
/// SendSubscribe/AwaitAck so a single-threaded caller can interleave with
/// a single-threaded broker; AwaitAck buffers any kDeltaBatch frames that
/// arrive ahead of the ack (the push stream and the ack share one FIFO
/// transport), and NextBatch drains that buffer before touching the wire.
class SubscriberClient {
 public:
  SubscriberClient(SubscriberId subscriber,
                   std::unique_ptr<Transport> transport);

  SubscriberId subscriber() const { return subscriber_; }

  /// Sends a Subscribe frame (id 0 — the broker assigns one).
  Status SendSubscribe(const SubscriptionSpec& spec);

  /// Sends an Unsubscribe frame for `id`.
  Status SendUnsubscribe(SubscriptionId id);

  /// Receives the next SubAck, buffering delta batches that precede it.
  /// An ok=false ack surfaces as InvalidArgument with the broker's error.
  Result<SubscriptionId> AwaitAck();

  /// Returns the next delta batch (buffered or from the wire).
  Result<DeltaBatch> NextBatch();

  void Close();

 private:
  SubscriberId subscriber_;
  std::unique_ptr<Transport> transport_;
  std::deque<DeltaBatch> buffered_;
};

}  // namespace datacron

#endif  // DATACRON_NET_SUB_CHANNEL_H_
