#ifndef DATACRON_NET_CODEC_H_
#define DATACRON_NET_CODEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datacron/engine.h"
#include "net/wire.h"
#include "rdf/term.h"

namespace datacron {

/// Cluster protocol messages. Every payload is a u16 message type followed
/// by the body, encoded with the wire primitives (net/wire.h). Decoders
/// validate the type tag, every enum value, every sequence count, and that
/// the body consumes the payload exactly; anything off returns ParseError.
///
/// Flow (coordinator <-> node):
///
///   node        -> Hello            once, after connect: node id, fleet
///                                   size, and the node dictionary's
///                                   construction-time baseline terms
///   coordinator -> ReportBatch      one per (epoch, node); may be empty
///   node        -> EpochResult      keyed outputs + one coalesced
///                                   dictionary delta for a nonempty batch
///   node        -> Watermark        in place of EpochResult for an empty
///                                   batch: advances the epoch barrier
///   coordinator -> FlushRequest     end-of-stream
///   node        -> FlushResult      the node's KeyedFlush
///   coordinator -> MetricsRequest
///   node        -> MetricsResult    keyed operator rows, raw counters
///   coordinator -> Shutdown         node serve loop exits
///
/// Subscription tier (subscriber <-> coordinator, coordinator -> node):
///
///   subscriber  -> Subscribe        one standing query; predicate travels
///                                   as a nested length-prefixed payload
///   subscriber  -> Unsubscribe      by subscription id
///   coordinator -> SubAck           assigned id (or error) per request
///   coordinator -> DeltaBatch       one subscriber's coalesced deltas for
///                                   one closed epoch; push-only
///
/// The coordinator also forwards Subscribe/Unsubscribe to every node so
/// shard-local evaluation sees the same registry under the same ids.
enum class MsgType : std::uint16_t {
  kHello = 1,
  kReportBatch,
  kEpochResult,
  kWatermark,
  kFlushRequest,
  kFlushResult,
  kMetricsRequest,
  kMetricsResult,
  kShutdown,
  kSubscribe,
  kUnsubscribe,
  kSubAck,
  kDeltaBatch,
};

struct HelloMsg {
  std::uint32_t node_id = 0;
  std::uint32_t num_nodes = 0;
  /// The node dictionary's contents at connect time (vocab terms interned
  /// by construction, ids 1..baseline.size()); seeds the coordinator's
  /// id remap before any report flows.
  std::vector<TermExport> baseline;

  bool operator==(const HelloMsg&) const = default;
};

struct ReportBatchMsg {
  std::int64_t epoch = 0;
  std::vector<PositionReport> reports;

  bool operator==(const ReportBatchMsg&) const = default;
};

/// DatacronEngine::ReportOutput flattened for the wire. The report's
/// dictionary delta travels coalesced at the epoch level
/// (EpochResultMsg::new_terms); `new_term_count` is this report's share of
/// it, so the coordinator can slice the epoch delta back into per-report
/// sub-ranges and import them interleaved in global input order. Side
/// tables travel as id-sorted vectors so the encoded bytes are canonical
/// regardless of hash-map iteration order.
struct WireReportResult {
  std::uint64_t cp_count = 0;
  /// Number of EpochResultMsg::new_terms entries this report interned.
  std::uint64_t new_term_count = 0;
  std::vector<Event> keyed_events;
  std::vector<Episode> episodes;
  std::vector<Triple> triples;
  std::vector<std::pair<TermId, StTag>> tags;
  std::vector<std::pair<TermId, NodeGeo>> node_geo;
  /// Subscription deltas the node's shard-local evaluation emitted for
  /// this report, and the report's hotspot-count increments keyed by
  /// subscription id (id-sorted so encoded bytes are canonical).
  std::vector<SubDelta> sub_deltas;
  std::vector<std::pair<std::uint64_t, double>> sub_counts;
  std::int64_t synopses_ns = 0;
  std::int64_t transform_ns = 0;
  std::int64_t keyed_cep_ns = 0;

  bool operator==(const WireReportResult&) const = default;
};

struct EpochResultMsg {
  std::int64_t epoch = 0;
  /// Node dictionary size before the first report of this epoch; the
  /// coordinator cross-checks it against its remap table to catch lost or
  /// reordered epochs.
  std::uint64_t dict_size_before = 0;
  /// One entry per report of the epoch's sub-batch, in input order.
  std::vector<WireReportResult> results;
  /// One coalesced dictionary delta for the whole epoch: the contiguous
  /// id range the node dictionary grew by, exported once per epoch in
  /// intern order. Per-report shares are results[i].new_term_count, and
  /// the counts sum to new_terms.size().
  std::vector<TermExport> new_terms;

  bool operator==(const EpochResultMsg&) const = default;
};

/// Epoch-watermark control message: the node saw epoch `epoch` (an empty
/// sub-batch) and the coordinator's barrier may advance past it.
struct WatermarkMsg {
  std::int64_t epoch = 0;

  bool operator==(const WatermarkMsg&) const = default;
};

struct FlushResultMsg {
  KeyedFlush flush;

  bool operator==(const FlushResultMsg&) const = default;
};

struct MetricsResultMsg {
  std::vector<MetricsRow> rows;

  bool operator==(const MetricsResultMsg&) const = default;
};

/// Standing-query registration. `id` is 0 from a subscriber (the
/// coordinator assigns one) and nonzero on the coordinator->node
/// broadcast (every node registers the same id). The predicate itself is
/// a nested length-prefixed payload inside the frame; the decoder rejects
/// zero-length and larger-than-kMaxSubPredicateBytes payloads outright,
/// and validates the decoded spec with ValidateSpec.
struct SubscribeMsg {
  SubscriptionId id = 0;
  SubscriberId subscriber = 0;
  SubscriptionSpec spec;

  bool operator==(const SubscribeMsg&) const = default;
};

struct UnsubscribeMsg {
  SubscriptionId id = 0;
  SubscriberId subscriber = 0;

  bool operator==(const UnsubscribeMsg&) const = default;
};

/// Reply to Subscribe/Unsubscribe: `id` echoes (or assigns) the
/// subscription id; `ok` false carries a diagnostic in `error`.
struct SubAckMsg {
  SubscriptionId id = 0;
  bool ok = true;
  std::string error;

  bool operator==(const SubAckMsg&) const = default;
};

/// One coalesced epoch of deltas for one subscriber.
struct DeltaBatchMsg {
  DeltaBatch batch;

  bool operator==(const DeltaBatchMsg&) const = default;
};

/// --- encode -------------------------------------------------------------

std::string Encode(const HelloMsg& msg);
std::string Encode(const ReportBatchMsg& msg);
std::string Encode(const EpochResultMsg& msg);
std::string Encode(const WatermarkMsg& msg);
std::string Encode(const FlushResultMsg& msg);
std::string Encode(const MetricsResultMsg& msg);
std::string Encode(const SubscribeMsg& msg);
std::string Encode(const UnsubscribeMsg& msg);
std::string Encode(const SubAckMsg& msg);
std::string Encode(const DeltaBatchMsg& msg);
/// kFlushRequest, kMetricsRequest, kShutdown: type tag only.
std::string EncodeControl(MsgType type);

/// --- decode -------------------------------------------------------------

/// Peeks the envelope's message type without consuming the body.
Status DecodeType(const std::string& payload, MsgType* type);

Status Decode(const std::string& payload, HelloMsg* msg);
Status Decode(const std::string& payload, ReportBatchMsg* msg);
Status Decode(const std::string& payload, EpochResultMsg* msg);
Status Decode(const std::string& payload, WatermarkMsg* msg);
Status Decode(const std::string& payload, FlushResultMsg* msg);
Status Decode(const std::string& payload, MetricsResultMsg* msg);
Status Decode(const std::string& payload, SubscribeMsg* msg);
Status Decode(const std::string& payload, UnsubscribeMsg* msg);
Status Decode(const std::string& payload, SubAckMsg* msg);
Status Decode(const std::string& payload, DeltaBatchMsg* msg);

}  // namespace datacron

#endif  // DATACRON_NET_CODEC_H_
