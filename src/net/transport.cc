#include "net/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "net/wire.h"
#include "obs/metrics.h"

namespace datacron {

namespace {

/// Both transports funnel traffic through these process-wide counters so
/// a single metrics snapshot covers loopback and TCP fleets alike.
void CountTx(std::size_t bytes) {
  static obs::Counter* frames =
      obs::MetricsRegistry::Global().counter("net.tx_frames");
  static obs::Counter* total =
      obs::MetricsRegistry::Global().counter("net.tx_bytes");
  frames->Add();
  total->Add(static_cast<std::int64_t>(bytes));
}

void CountRx(std::size_t bytes) {
  static obs::Counter* frames =
      obs::MetricsRegistry::Global().counter("net.rx_frames");
  static obs::Counter* total =
      obs::MetricsRegistry::Global().counter("net.rx_bytes");
  frames->Add();
  total->Add(static_cast<std::int64_t>(bytes));
}

}  // namespace

std::uint32_t Fnv1a32(std::string_view bytes) {
  std::uint32_t h = 0x811C9DC5u;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x01000193u;
  }
  return h;
}

std::string EncodeFrame(std::string_view payload) {
  WireWriter w;
  w.U32(kFrameMagic);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Fnv1a32(payload));
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

Status DecodeFrameHeader(const char* header, std::uint32_t* payload_len) {
  WireReader r(std::string_view(header, kFrameHeaderBytes));
  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  std::uint32_t checksum = 0;
  if (Status s = r.U32(&magic); !s.ok()) return s;
  if (Status s = r.U32(&len); !s.ok()) return s;
  if (Status s = r.U32(&checksum); !s.ok()) return s;
  if (magic != kFrameMagic) {
    return Status::ParseError("bad frame magic");
  }
  if (len > kMaxFramePayloadBytes) {
    return Status::ParseError("frame payload length exceeds limit");
  }
  *payload_len = len;
  return Status::OK();
}

Status VerifyFramePayload(const char* header, std::string_view payload) {
  WireReader r(std::string_view(header, kFrameHeaderBytes));
  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  std::uint32_t checksum = 0;
  if (Status s = r.U32(&magic); !s.ok()) return s;
  if (Status s = r.U32(&len); !s.ok()) return s;
  if (Status s = r.U32(&checksum); !s.ok()) return s;
  if (payload.size() != len) {
    return Status::ParseError("frame payload length mismatch");
  }
  if (Fnv1a32(payload) != checksum) {
    return Status::ParseError("frame checksum mismatch");
  }
  return Status::OK();
}

/// --- Loopback -----------------------------------------------------------

struct LoopbackTransport::Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue;
  bool closed = false;
};

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
LoopbackTransport::CreatePair() {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  std::unique_ptr<Transport> a(new LoopbackTransport(a_to_b, b_to_a));
  std::unique_ptr<Transport> b(new LoopbackTransport(b_to_a, a_to_b));
  return {std::move(a), std::move(b)};
}

Status LoopbackTransport::Send(const std::string& payload) {
  std::lock_guard<std::mutex> lk(tx_->mu);
  if (tx_->closed) {
    return Status::FailedPrecondition("loopback transport closed");
  }
  tx_->queue.push_back(payload);
  tx_->cv.notify_all();
  CountTx(payload.size());
  return Status::OK();
}

Result<std::string> LoopbackTransport::Recv() {
  std::unique_lock<std::mutex> lk(rx_->mu);
  rx_->cv.wait(lk, [this] { return !rx_->queue.empty() || rx_->closed; });
  if (rx_->queue.empty()) {
    return Status::FailedPrecondition("loopback transport closed");
  }
  std::string payload = std::move(rx_->queue.front());
  rx_->queue.pop_front();
  CountRx(payload.size());
  return payload;
}

void LoopbackTransport::Close() {
  for (const auto& ch : {tx_, rx_}) {
    std::lock_guard<std::mutex> lk(ch->mu);
    ch->closed = true;
    ch->cv.notify_all();
  }
}

/// --- TCP ----------------------------------------------------------------

namespace {

/// Writes all of `data`, restarting on EINTR and short writes.
Status WriteAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("tcp send failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. FailedPrecondition on clean EOF at a frame
/// boundary (off == 0), Internal on EOF mid-frame or I/O error.
Status ReadExact(int fd, char* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("tcp recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) {
        return Status::FailedPrecondition("tcp transport closed by peer");
      }
      return Status::Internal("tcp connection truncated mid-frame");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override { Close(); }

  Status Send(const std::string& payload) override {
    std::lock_guard<std::mutex> lk(send_mu_);
    if (closed_) return Status::FailedPrecondition("tcp transport closed");
    const std::string frame = EncodeFrame(payload);
    Status s = WriteAll(fd_, frame);
    if (s.ok()) CountTx(frame.size());
    return s;
  }

  Result<std::string> Recv() override {
    std::lock_guard<std::mutex> lk(recv_mu_);
    if (closed_) return Status::FailedPrecondition("tcp transport closed");
    char header[kFrameHeaderBytes];
    if (Status s = ReadExact(fd_, header, kFrameHeaderBytes); !s.ok()) {
      return s;
    }
    std::uint32_t payload_len = 0;
    if (Status s = DecodeFrameHeader(header, &payload_len); !s.ok()) {
      return s;
    }
    std::string payload(payload_len, '\0');
    if (payload_len > 0) {
      if (Status s = ReadExact(fd_, payload.data(), payload_len); !s.ok()) {
        return s;
      }
    }
    if (Status s = VerifyFramePayload(header, payload); !s.ok()) return s;
    CountRx(kFrameHeaderBytes + payload.size());
    return payload;
  }

  void Close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::mutex recv_mu_;
};

Result<std::unique_ptr<TcpListener>> TcpListener::Create(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("bind() failed: ") +
                            std::strerror(errno));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return Status::Internal(std::string("listen() failed: ") +
                            std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname() failed: ") +
                            std::strerror(errno));
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { ::close(fd_); }

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("accept() failed: ") +
                              std::strerror(errno));
    }
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
  }
}

Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Status::Internal(std::string("connect() failed: ") +
                            std::strerror(errno));
  }
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

}  // namespace datacron
