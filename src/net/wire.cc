#include "net/wire.h"

#include <bit>
#include <cstring>

namespace datacron {

namespace {

template <typename T>
void AppendLe(std::string* buf, T v) {
  char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  buf->append(bytes, sizeof(T));
}

template <typename T>
T ReadLe(const char* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void WireWriter::U16(std::uint16_t v) { AppendLe(&buf_, v); }
void WireWriter::U32(std::uint32_t v) { AppendLe(&buf_, v); }
void WireWriter::U64(std::uint64_t v) { AppendLe(&buf_, v); }

void WireWriter::F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Status WireReader::Take(std::size_t n, const char** out) {
  if (remaining() < n) {
    return Status::ParseError("wire payload truncated");
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status WireReader::U8(std::uint8_t* v) {
  const char* p;
  if (Status s = Take(1, &p); !s.ok()) return s;
  *v = static_cast<std::uint8_t>(*p);
  return Status::OK();
}

Status WireReader::U16(std::uint16_t* v) {
  const char* p;
  if (Status s = Take(2, &p); !s.ok()) return s;
  *v = ReadLe<std::uint16_t>(p);
  return Status::OK();
}

Status WireReader::U32(std::uint32_t* v) {
  const char* p;
  if (Status s = Take(4, &p); !s.ok()) return s;
  *v = ReadLe<std::uint32_t>(p);
  return Status::OK();
}

Status WireReader::U64(std::uint64_t* v) {
  const char* p;
  if (Status s = Take(8, &p); !s.ok()) return s;
  *v = ReadLe<std::uint64_t>(p);
  return Status::OK();
}

Status WireReader::I64(std::int64_t* v) {
  std::uint64_t u;
  if (Status s = U64(&u); !s.ok()) return s;
  *v = static_cast<std::int64_t>(u);
  return Status::OK();
}

Status WireReader::F64(double* v) {
  std::uint64_t u;
  if (Status s = U64(&u); !s.ok()) return s;
  *v = std::bit_cast<double>(u);
  return Status::OK();
}

Status WireReader::Bool(bool* v) {
  std::uint8_t u;
  if (Status s = U8(&u); !s.ok()) return s;
  if (u > 1) return Status::ParseError("wire bool out of range");
  *v = u != 0;
  return Status::OK();
}

Status WireReader::Str(std::string* v) {
  std::uint32_t len;
  if (Status s = U32(&len); !s.ok()) return s;
  const char* p;
  if (Status s = Take(len, &p); !s.ok()) return s;
  v->assign(p, len);
  return Status::OK();
}

Status WireReader::Count(std::size_t* n, std::size_t min_element_bytes) {
  std::uint32_t count;
  if (Status s = U32(&count); !s.ok()) return s;
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (count > remaining() / min_element_bytes) {
    return Status::ParseError("wire sequence count exceeds payload");
  }
  *n = count;
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) return Status::ParseError("trailing bytes in wire payload");
  return Status::OK();
}

}  // namespace datacron
