#include "net/codec.h"

#include <utility>

namespace datacron {

namespace {

/// Status propagation for the deeply nested decoders.
#define DC_RET(expr)                              \
  do {                                            \
    if (Status _s = (expr); !_s.ok()) return _s;  \
  } while (0)

/// Reads a u8 enum value, rejecting anything past `max` — a corrupted
/// frame must not produce an out-of-range enum.
template <typename E>
Status GetEnum(WireReader& r, E* v, E max) {
  std::uint8_t u = 0;
  DC_RET(r.U8(&u));
  if (u > static_cast<std::uint8_t>(max)) {
    return Status::ParseError("enum value out of range");
  }
  *v = static_cast<E>(u);
  return Status::OK();
}

// --- field codecs, one Put/Get pair per struct --------------------------

void Put(WireWriter& w, const GeoPoint& p) {
  w.F64(p.lat_deg);
  w.F64(p.lon_deg);
  w.F64(p.alt_m);
}

Status Get(WireReader& r, GeoPoint* p) {
  DC_RET(r.F64(&p->lat_deg));
  DC_RET(r.F64(&p->lon_deg));
  DC_RET(r.F64(&p->alt_m));
  return Status::OK();
}

void Put(WireWriter& w, const PositionReport& rep) {
  w.U32(rep.entity_id);
  w.U8(static_cast<std::uint8_t>(rep.domain));
  w.I64(rep.timestamp);
  Put(w, rep.position);
  w.F64(rep.speed_mps);
  w.F64(rep.course_deg);
  w.F64(rep.vertical_rate_mps);
}
constexpr std::size_t kMinReportBytes = 61;

Status Get(WireReader& r, PositionReport* rep) {
  DC_RET(r.U32(&rep->entity_id));
  DC_RET(GetEnum(r, &rep->domain, Domain::kAviation));
  DC_RET(r.I64(&rep->timestamp));
  DC_RET(Get(r, &rep->position));
  DC_RET(r.F64(&rep->speed_mps));
  DC_RET(r.F64(&rep->course_deg));
  DC_RET(r.F64(&rep->vertical_rate_mps));
  return Status::OK();
}

void Put(WireWriter& w, const Event& e) {
  w.U8(static_cast<std::uint8_t>(e.kind));
  w.I64(e.time);
  w.I64(e.predicted_time);
  w.U32(static_cast<std::uint32_t>(e.entities.size()));
  for (EntityId id : e.entities) w.U32(id);
  Put(w, e.position);
  w.Str(e.label);
  w.U32(static_cast<std::uint32_t>(e.attributes.size()));
  for (const auto& [key, value] : e.attributes) {
    w.Str(key);
    w.F64(value);
  }
}
constexpr std::size_t kMinEventBytes = 53;

Status Get(WireReader& r, Event* e) {
  DC_RET(GetEnum(r, &e->kind, EventKind::kComposite));
  DC_RET(r.I64(&e->time));
  DC_RET(r.I64(&e->predicted_time));
  std::size_t n = 0;
  DC_RET(r.Count(&n, sizeof(std::uint32_t)));
  e->entities.resize(n);
  for (std::size_t i = 0; i < n; ++i) DC_RET(r.U32(&e->entities[i]));
  DC_RET(Get(r, &e->position));
  DC_RET(r.Str(&e->label));
  DC_RET(r.Count(&n, /*min_element_bytes=*/12));
  e->attributes.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::string key;
    double value = 0.0;
    DC_RET(r.Str(&key));
    DC_RET(r.F64(&value));
    e->attributes.emplace_hint(e->attributes.end(), std::move(key), value);
  }
  return Status::OK();
}

void Put(WireWriter& w, const Episode& e) {
  w.U32(e.entity);
  w.U8(static_cast<std::uint8_t>(e.kind));
  w.I64(e.start_time);
  w.I64(e.end_time);
  Put(w, e.start_pos);
  Put(w, e.end_pos);
  w.Str(e.area);
  w.F64(e.displacement_m);
  w.F64(e.path_m);
}
constexpr std::size_t kMinEpisodeBytes = 89;

Status Get(WireReader& r, Episode* e) {
  DC_RET(r.U32(&e->entity));
  DC_RET(GetEnum(r, &e->kind, EpisodeKind::kGap));
  DC_RET(r.I64(&e->start_time));
  DC_RET(r.I64(&e->end_time));
  DC_RET(Get(r, &e->start_pos));
  DC_RET(Get(r, &e->end_pos));
  DC_RET(r.Str(&e->area));
  DC_RET(r.F64(&e->displacement_m));
  DC_RET(r.F64(&e->path_m));
  return Status::OK();
}

void Put(WireWriter& w, const Triple& t) {
  w.U64(t.s);
  w.U64(t.p);
  w.U64(t.o);
}
constexpr std::size_t kMinTripleBytes = 24;

Status Get(WireReader& r, Triple* t) {
  DC_RET(r.U64(&t->s));
  DC_RET(r.U64(&t->p));
  DC_RET(r.U64(&t->o));
  return Status::OK();
}

void Put(WireWriter& w, const TermExport& t) {
  w.Str(t.text);
  w.U8(static_cast<std::uint8_t>(t.kind));
}
constexpr std::size_t kMinTermBytes = 5;

Status Get(WireReader& r, TermExport* t) {
  DC_RET(r.Str(&t->text));
  DC_RET(GetEnum(r, &t->kind, TermKind::kLiteralDateTime));
  return Status::OK();
}

void Put(WireWriter& w, const std::pair<TermId, StTag>& tag) {
  w.U64(tag.first);
  w.U32(static_cast<std::uint32_t>(tag.second.cell.ix));
  w.U32(static_cast<std::uint32_t>(tag.second.cell.iy));
  w.I64(tag.second.bucket);
}
constexpr std::size_t kMinTagBytes = 24;

Status Get(WireReader& r, std::pair<TermId, StTag>* tag) {
  DC_RET(r.U64(&tag->first));
  std::uint32_t ix = 0;
  std::uint32_t iy = 0;
  DC_RET(r.U32(&ix));
  DC_RET(r.U32(&iy));
  tag->second.cell.ix = static_cast<std::int32_t>(ix);
  tag->second.cell.iy = static_cast<std::int32_t>(iy);
  DC_RET(r.I64(&tag->second.bucket));
  return Status::OK();
}

void Put(WireWriter& w, const std::pair<TermId, NodeGeo>& g) {
  w.U64(g.first);
  w.F64(g.second.lat_deg);
  w.F64(g.second.lon_deg);
  w.F64(g.second.alt_m);
  w.I64(g.second.timestamp);
}
constexpr std::size_t kMinNodeGeoBytes = 40;

Status Get(WireReader& r, std::pair<TermId, NodeGeo>* g) {
  DC_RET(r.U64(&g->first));
  DC_RET(r.F64(&g->second.lat_deg));
  DC_RET(r.F64(&g->second.lon_deg));
  DC_RET(r.F64(&g->second.alt_m));
  DC_RET(r.I64(&g->second.timestamp));
  return Status::OK();
}

void Put(WireWriter& w, const LatLon& p) {
  w.F64(p.lat_deg);
  w.F64(p.lon_deg);
}
constexpr std::size_t kMinLatLonBytes = 16;

Status Get(WireReader& r, LatLon* p) {
  DC_RET(r.F64(&p->lat_deg));
  DC_RET(r.F64(&p->lon_deg));
  return Status::OK();
}

void Put(WireWriter& w, const BoundingBox& b) {
  w.F64(b.min_lat);
  w.F64(b.min_lon);
  w.F64(b.max_lat);
  w.F64(b.max_lon);
}

Status Get(WireReader& r, BoundingBox* b) {
  DC_RET(r.F64(&b->min_lat));
  DC_RET(r.F64(&b->min_lon));
  DC_RET(r.F64(&b->max_lat));
  DC_RET(r.F64(&b->max_lon));
  return Status::OK();
}

void Put(WireWriter& w, const SubDelta& d) {
  w.U64(d.sub);
  w.U8(static_cast<std::uint8_t>(d.kind));
  w.U32(d.entity);
  w.I64(d.time);
  w.F64(d.value);
}
constexpr std::size_t kMinSubDeltaBytes = 29;

Status Get(WireReader& r, SubDelta* d) {
  DC_RET(r.U64(&d->sub));
  DC_RET(GetEnum(r, &d->kind, DeltaKind::kHotspotOff));
  DC_RET(r.U32(&d->entity));
  DC_RET(r.I64(&d->time));
  DC_RET(r.F64(&d->value));
  return Status::OK();
}

void Put(WireWriter& w, const std::pair<std::uint64_t, double>& c) {
  w.U64(c.first);
  w.F64(c.second);
}
constexpr std::size_t kMinSubCountBytes = 16;

Status Get(WireReader& r, std::pair<std::uint64_t, double>* c) {
  DC_RET(r.U64(&c->first));
  DC_RET(r.F64(&c->second));
  return Status::OK();
}

void Put(WireWriter& w, const CriticalPoint& cp) {
  Put(w, cp.report);
  w.U8(static_cast<std::uint8_t>(cp.type));
}
constexpr std::size_t kMinCriticalPointBytes = kMinReportBytes + 1;

Status Get(WireReader& r, CriticalPoint* cp) {
  DC_RET(Get(r, &cp->report));
  DC_RET(GetEnum(r, &cp->type, CriticalPointType::kTrajectoryEnd));
  return Status::OK();
}

void Put(WireWriter& w, const EntityRdfContinuation& c) {
  w.U32(c.entity);
  w.Bool(c.has_prev_node);
  w.I64(c.prev_node_ts);
  w.Bool(c.rdf_known);
}
constexpr std::size_t kMinContinuationBytes = 14;

Status Get(WireReader& r, EntityRdfContinuation* c) {
  DC_RET(r.U32(&c->entity));
  DC_RET(r.Bool(&c->has_prev_node));
  DC_RET(r.I64(&c->prev_node_ts));
  DC_RET(r.Bool(&c->rdf_known));
  return Status::OK();
}

// Forward declarations so the vector helpers can encode compound elements
// whose Put/Get pairs are defined further down.
void Put(WireWriter& w, const WireReportResult& res);
Status Get(WireReader& r, WireReportResult* res);
void Put(WireWriter& w, const MetricsRow& row);
Status Get(WireReader& r, MetricsRow* row);

/// Vector helper over any element with a Put/Get pair above.
template <typename T>
void PutVec(WireWriter& w, const std::vector<T>& v) {
  w.U32(static_cast<std::uint32_t>(v.size()));
  for (const T& item : v) Put(w, item);
}

template <typename T>
Status GetVec(WireReader& r, std::vector<T>* v, std::size_t min_bytes) {
  std::size_t n = 0;
  DC_RET(r.Count(&n, min_bytes));
  v->resize(n);
  for (std::size_t i = 0; i < n; ++i) DC_RET(Get(r, &(*v)[i]));
  return Status::OK();
}

void Put(WireWriter& w, const WireReportResult& res) {
  w.U64(res.cp_count);
  w.U64(res.new_term_count);
  PutVec(w, res.keyed_events);
  PutVec(w, res.episodes);
  PutVec(w, res.triples);
  PutVec(w, res.tags);
  PutVec(w, res.node_geo);
  PutVec(w, res.sub_deltas);
  PutVec(w, res.sub_counts);
  w.I64(res.synopses_ns);
  w.I64(res.transform_ns);
  w.I64(res.keyed_cep_ns);
}
constexpr std::size_t kMinResultBytes = 68;

Status Get(WireReader& r, WireReportResult* res) {
  DC_RET(r.U64(&res->cp_count));
  DC_RET(r.U64(&res->new_term_count));
  DC_RET(GetVec(r, &res->keyed_events, kMinEventBytes));
  DC_RET(GetVec(r, &res->episodes, kMinEpisodeBytes));
  DC_RET(GetVec(r, &res->triples, kMinTripleBytes));
  DC_RET(GetVec(r, &res->tags, kMinTagBytes));
  DC_RET(GetVec(r, &res->node_geo, kMinNodeGeoBytes));
  DC_RET(GetVec(r, &res->sub_deltas, kMinSubDeltaBytes));
  DC_RET(GetVec(r, &res->sub_counts, kMinSubCountBytes));
  DC_RET(r.I64(&res->synopses_ns));
  DC_RET(r.I64(&res->transform_ns));
  DC_RET(r.I64(&res->keyed_cep_ns));
  return Status::OK();
}

// --- subscription predicate (nested payload inside Subscribe) -----------

void Put(WireWriter& w, const SubscriptionSpec& spec) {
  w.U8(static_cast<std::uint8_t>(spec.kind));
  switch (spec.kind) {
    case SubKind::kGeofence:
      Put(w, spec.geofence.bbox);
      PutVec(w, spec.geofence.polygon);
      w.U32(spec.geofence.entity);
      w.Bool(spec.geofence.all_entities);
      w.I64(spec.geofence.dwell_ms);
      break;
    case SubKind::kProximity:
      w.U32(spec.proximity.entity);
      w.I64(spec.proximity.min_interval_ms);
      break;
    case SubKind::kHotspot:
      Put(w, spec.hotspot.bbox);
      w.F64(spec.hotspot.threshold);
      w.U32(spec.hotspot.window_epochs);
      break;
  }
}

Status Get(WireReader& r, SubscriptionSpec* spec) {
  *spec = SubscriptionSpec{};
  DC_RET(GetEnum(r, &spec->kind, SubKind::kHotspot));
  switch (spec->kind) {
    case SubKind::kGeofence:
      DC_RET(Get(r, &spec->geofence.bbox));
      DC_RET(GetVec(r, &spec->geofence.polygon, kMinLatLonBytes));
      if (spec->geofence.polygon.size() > kMaxGeofenceVertices) {
        return Status::ParseError("geofence polygon too large");
      }
      DC_RET(r.U32(&spec->geofence.entity));
      DC_RET(r.Bool(&spec->geofence.all_entities));
      DC_RET(r.I64(&spec->geofence.dwell_ms));
      break;
    case SubKind::kProximity:
      DC_RET(r.U32(&spec->proximity.entity));
      DC_RET(r.I64(&spec->proximity.min_interval_ms));
      break;
    case SubKind::kHotspot:
      DC_RET(Get(r, &spec->hotspot.bbox));
      DC_RET(r.F64(&spec->hotspot.threshold));
      DC_RET(r.U32(&spec->hotspot.window_epochs));
      break;
  }
  return Status::OK();
}

void Put(WireWriter& w, const KeyedFlush& f) {
  PutVec(w, f.critical_points);
  PutVec(w, f.continuations);
  PutVec(w, f.completed_episodes);
  PutVec(w, f.trailing_episodes);
  PutVec(w, f.events);
}

Status Get(WireReader& r, KeyedFlush* f) {
  DC_RET(GetVec(r, &f->critical_points, kMinCriticalPointBytes));
  DC_RET(GetVec(r, &f->continuations, kMinContinuationBytes));
  DC_RET(GetVec(r, &f->completed_episodes, kMinEpisodeBytes));
  DC_RET(GetVec(r, &f->trailing_episodes, kMinEpisodeBytes));
  DC_RET(GetVec(r, &f->events, kMinEventBytes));
  return Status::OK();
}

/// OperatorMetrics ships its mergeable raw state: the Welford accumulator
/// fields and the nonzero histogram buckets (sparse — most of the 64 log2
/// buckets are empty for any real latency distribution).
void Put(WireWriter& w, const OperatorMetrics& m) {
  w.Str(m.name);
  w.U64(m.items_in);
  w.U64(m.items_out);
  w.U64(m.process_nanos.count());
  w.F64(m.process_nanos.mean());
  w.F64(m.process_nanos.m2());
  w.F64(m.process_nanos.min());
  w.F64(m.process_nanos.max());
  std::uint32_t nonzero = 0;
  for (std::size_t b = 0; b < LogHistogram::num_buckets(); ++b) {
    if (m.latency_ns.bucket_count(b) != 0) ++nonzero;
  }
  w.U32(nonzero);
  for (std::size_t b = 0; b < LogHistogram::num_buckets(); ++b) {
    const std::size_t c = m.latency_ns.bucket_count(b);
    if (c == 0) continue;
    w.U8(static_cast<std::uint8_t>(b));
    w.U64(c);
  }
}
constexpr std::size_t kMinMetricsBytes = 64;

Status Get(WireReader& r, OperatorMetrics* m) {
  DC_RET(r.Str(&m->name));
  std::uint64_t items_in = 0;
  std::uint64_t items_out = 0;
  DC_RET(r.U64(&items_in));
  DC_RET(r.U64(&items_out));
  m->items_in = items_in;
  m->items_out = items_out;
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  DC_RET(r.U64(&count));
  DC_RET(r.F64(&mean));
  DC_RET(r.F64(&m2));
  DC_RET(r.F64(&min));
  DC_RET(r.F64(&max));
  m->process_nanos = RunningStats::FromRaw(count, mean, m2, min, max);
  std::size_t buckets = 0;
  DC_RET(r.Count(&buckets, /*min_element_bytes=*/9));
  m->latency_ns = LogHistogram();
  for (std::size_t i = 0; i < buckets; ++i) {
    std::uint8_t b = 0;
    std::uint64_t c = 0;
    DC_RET(r.U8(&b));
    DC_RET(r.U64(&c));
    if (b >= LogHistogram::num_buckets() || c == 0) {
      return Status::ParseError("bad histogram bucket");
    }
    m->latency_ns.AddBucketCount(b, c);
  }
  return Status::OK();
}

void Put(WireWriter& w, const MetricsRow& row) {
  w.Str(row.stage);
  Put(w, row.metrics);
  w.U64(row.instances);
}
constexpr std::size_t kMinRowBytes = 4 + kMinMetricsBytes + 8;

Status Get(WireReader& r, MetricsRow* row) {
  DC_RET(r.Str(&row->stage));
  DC_RET(Get(r, &row->metrics));
  std::uint64_t instances = 0;
  DC_RET(r.U64(&instances));
  row->instances = instances;
  return Status::OK();
}

// --- envelope -----------------------------------------------------------

WireWriter Envelope(MsgType type) {
  WireWriter w;
  w.U16(static_cast<std::uint16_t>(type));
  return w;
}

Status OpenEnvelope(WireReader& r, MsgType expected) {
  std::uint16_t type = 0;
  DC_RET(r.U16(&type));
  if (type != static_cast<std::uint16_t>(expected)) {
    return Status::ParseError("unexpected message type");
  }
  return Status::OK();
}

}  // namespace

std::string Encode(const HelloMsg& msg) {
  WireWriter w = Envelope(MsgType::kHello);
  w.U32(msg.node_id);
  w.U32(msg.num_nodes);
  PutVec(w, msg.baseline);
  return w.Take();
}

std::string Encode(const ReportBatchMsg& msg) {
  WireWriter w = Envelope(MsgType::kReportBatch);
  w.I64(msg.epoch);
  PutVec(w, msg.reports);
  return w.Take();
}

std::string Encode(const EpochResultMsg& msg) {
  WireWriter w = Envelope(MsgType::kEpochResult);
  w.I64(msg.epoch);
  w.U64(msg.dict_size_before);
  PutVec(w, msg.results);
  PutVec(w, msg.new_terms);
  return w.Take();
}

std::string Encode(const WatermarkMsg& msg) {
  WireWriter w = Envelope(MsgType::kWatermark);
  w.I64(msg.epoch);
  return w.Take();
}

std::string Encode(const FlushResultMsg& msg) {
  WireWriter w = Envelope(MsgType::kFlushResult);
  Put(w, msg.flush);
  return w.Take();
}

std::string Encode(const MetricsResultMsg& msg) {
  WireWriter w = Envelope(MsgType::kMetricsResult);
  PutVec(w, msg.rows);
  return w.Take();
}

std::string Encode(const SubscribeMsg& msg) {
  WireWriter w = Envelope(MsgType::kSubscribe);
  w.U64(msg.id);
  w.U32(msg.subscriber);
  // The predicate travels as a nested length-prefixed payload so the
  // decoder can bound it before parsing a single field of it.
  WireWriter inner;
  Put(inner, msg.spec);
  w.Str(inner.data());
  return w.Take();
}

std::string Encode(const UnsubscribeMsg& msg) {
  WireWriter w = Envelope(MsgType::kUnsubscribe);
  w.U64(msg.id);
  w.U32(msg.subscriber);
  return w.Take();
}

std::string Encode(const SubAckMsg& msg) {
  WireWriter w = Envelope(MsgType::kSubAck);
  w.U64(msg.id);
  w.Bool(msg.ok);
  w.Str(msg.error);
  return w.Take();
}

std::string Encode(const DeltaBatchMsg& msg) {
  WireWriter w = Envelope(MsgType::kDeltaBatch);
  w.U32(msg.batch.subscriber);
  w.I64(msg.batch.epoch);
  PutVec(w, msg.batch.deltas);
  return w.Take();
}

std::string EncodeControl(MsgType type) {
  return Envelope(type).Take();
}

Status DecodeType(const std::string& payload, MsgType* type) {
  WireReader r(payload);
  std::uint16_t t = 0;
  DC_RET(r.U16(&t));
  if (t < static_cast<std::uint16_t>(MsgType::kHello) ||
      t > static_cast<std::uint16_t>(MsgType::kDeltaBatch)) {
    return Status::ParseError("unknown message type");
  }
  *type = static_cast<MsgType>(t);
  return Status::OK();
}

Status Decode(const std::string& payload, HelloMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kHello));
  DC_RET(r.U32(&msg->node_id));
  DC_RET(r.U32(&msg->num_nodes));
  DC_RET(GetVec(r, &msg->baseline, kMinTermBytes));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, ReportBatchMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kReportBatch));
  DC_RET(r.I64(&msg->epoch));
  DC_RET(GetVec(r, &msg->reports, kMinReportBytes));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, EpochResultMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kEpochResult));
  DC_RET(r.I64(&msg->epoch));
  DC_RET(r.U64(&msg->dict_size_before));
  DC_RET(GetVec(r, &msg->results, kMinResultBytes));
  DC_RET(GetVec(r, &msg->new_terms, kMinTermBytes));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, WatermarkMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kWatermark));
  DC_RET(r.I64(&msg->epoch));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, FlushResultMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kFlushResult));
  DC_RET(Get(r, &msg->flush));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, MetricsResultMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kMetricsResult));
  DC_RET(GetVec(r, &msg->rows, kMinRowBytes));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, SubscribeMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kSubscribe));
  DC_RET(r.U64(&msg->id));
  DC_RET(r.U32(&msg->subscriber));
  std::string predicate;
  DC_RET(r.Str(&predicate));
  DC_RET(r.ExpectEnd());
  // Bound the nested payload before parsing any of it: an empty predicate
  // is not a subscription, and an oversized one is corruption (or abuse),
  // not a request.
  if (predicate.empty()) {
    return Status::ParseError("empty subscription predicate");
  }
  if (predicate.size() > kMaxSubPredicateBytes) {
    return Status::ParseError("oversized subscription predicate");
  }
  WireReader pr(predicate);
  DC_RET(Get(pr, &msg->spec));
  DC_RET(pr.ExpectEnd());
  return ValidateSpec(msg->spec);
}

Status Decode(const std::string& payload, UnsubscribeMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kUnsubscribe));
  DC_RET(r.U64(&msg->id));
  DC_RET(r.U32(&msg->subscriber));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, SubAckMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kSubAck));
  DC_RET(r.U64(&msg->id));
  DC_RET(r.Bool(&msg->ok));
  DC_RET(r.Str(&msg->error));
  return r.ExpectEnd();
}

Status Decode(const std::string& payload, DeltaBatchMsg* msg) {
  WireReader r(payload);
  DC_RET(OpenEnvelope(r, MsgType::kDeltaBatch));
  DC_RET(r.U32(&msg->batch.subscriber));
  DC_RET(r.I64(&msg->batch.epoch));
  DC_RET(GetVec(r, &msg->batch.deltas, kMinSubDeltaBytes));
  return r.ExpectEnd();
}

#undef DC_RET

}  // namespace datacron
