#include "net/sub_channel.h"

#include <string>
#include <utility>

#include "net/codec.h"

namespace datacron {

SubscriptionBroker::SubscriptionBroker(Hooks hooks)
    : hooks_(std::move(hooks)),
      push_batches_counter_(
          obs::MetricsRegistry::Global().counter("sub.push_batches")),
      push_bytes_counter_(
          obs::MetricsRegistry::Global().counter("sub.push_bytes")),
      push_dropped_counter_(
          obs::MetricsRegistry::Global().counter("sub.push_dropped")) {}

void SubscriptionBroker::Attach(SubscriberId subscriber,
                                std::unique_ptr<Transport> transport) {
  for (Channel& c : channels_) {
    if (c.subscriber == subscriber) {
      c.transport = std::move(transport);
      return;
    }
  }
  channels_.push_back({subscriber, std::move(transport)});
}

Transport* SubscriptionBroker::FindTransport(SubscriberId subscriber) {
  for (Channel& c : channels_) {
    if (c.subscriber == subscriber) return c.transport.get();
  }
  return nullptr;
}

Status SubscriptionBroker::HandleControl(SubscriberId subscriber) {
  Transport* t = FindTransport(subscriber);
  if (t == nullptr) {
    return Status::InvalidArgument("no transport for subscriber");
  }
  Result<std::string> payload = t->Recv();
  if (!payload.ok()) return payload.status();
  MsgType type;
  SubAckMsg ack;
  if (Status s = DecodeType(payload.value(), &type); !s.ok()) {
    ack.ok = false;
    ack.error = s.message();
    return t->Send(Encode(ack));
  }
  switch (type) {
    case MsgType::kSubscribe: {
      SubscribeMsg msg;
      if (Status s = Decode(payload.value(), &msg); !s.ok()) {
        // Reject in-band: a bad predicate must not kill the channel.
        ack.ok = false;
        ack.error = s.message();
        break;
      }
      Result<SubscriptionId> id = hooks_.subscribe(subscriber, msg.spec);
      if (!id.ok()) {
        ack.ok = false;
        ack.error = id.status().message();
      } else {
        ack.id = id.value();
      }
      break;
    }
    case MsgType::kUnsubscribe: {
      UnsubscribeMsg msg;
      if (Status s = Decode(payload.value(), &msg); !s.ok()) {
        ack.ok = false;
        ack.error = s.message();
        break;
      }
      ack.id = msg.id;
      ack.ok = hooks_.unsubscribe(msg.id);
      if (!ack.ok) ack.error = "unknown or inactive subscription";
      break;
    }
    default:
      ack.ok = false;
      ack.error = "unexpected message type on subscriber channel";
      break;
  }
  return t->Send(Encode(ack));
}

void SubscriptionBroker::PushBatch(const DeltaBatch& batch) {
  Transport* t = FindTransport(batch.subscriber);
  if (t == nullptr) {
    ++batches_dropped_;
    push_dropped_counter_->Add();
    return;
  }
  DeltaBatchMsg msg;
  msg.batch = batch;
  const std::string frame = Encode(msg);
  if (!t->Send(frame).ok()) {
    ++batches_dropped_;
    push_dropped_counter_->Add();
    return;
  }
  ++batches_pushed_;
  bytes_pushed_ += frame.size();
  push_batches_counter_->Add();
  push_bytes_counter_->Add(frame.size());
}

void SubscriptionBroker::CloseAll() {
  for (Channel& c : channels_) {
    if (c.transport != nullptr) c.transport->Close();
  }
}

SubscriberClient::SubscriberClient(SubscriberId subscriber,
                                   std::unique_ptr<Transport> transport)
    : subscriber_(subscriber), transport_(std::move(transport)) {}

Status SubscriberClient::SendSubscribe(const SubscriptionSpec& spec) {
  SubscribeMsg msg;
  msg.subscriber = subscriber_;
  msg.spec = spec;
  return transport_->Send(Encode(msg));
}

Status SubscriberClient::SendUnsubscribe(SubscriptionId id) {
  UnsubscribeMsg msg;
  msg.id = id;
  msg.subscriber = subscriber_;
  return transport_->Send(Encode(msg));
}

Result<SubscriptionId> SubscriberClient::AwaitAck() {
  for (;;) {
    Result<std::string> payload = transport_->Recv();
    if (!payload.ok()) return payload.status();
    MsgType type;
    if (Status s = DecodeType(payload.value(), &type); !s.ok()) return s;
    if (type == MsgType::kDeltaBatch) {
      DeltaBatchMsg msg;
      if (Status s = Decode(payload.value(), &msg); !s.ok()) return s;
      buffered_.push_back(std::move(msg.batch));
      continue;
    }
    SubAckMsg ack;
    if (Status s = Decode(payload.value(), &ack); !s.ok()) return s;
    if (!ack.ok) return Status::InvalidArgument(ack.error);
    return ack.id;
  }
}

Result<DeltaBatch> SubscriberClient::NextBatch() {
  if (!buffered_.empty()) {
    DeltaBatch batch = std::move(buffered_.front());
    buffered_.pop_front();
    return batch;
  }
  Result<std::string> payload = transport_->Recv();
  if (!payload.ok()) return payload.status();
  DeltaBatchMsg msg;
  if (Status s = Decode(payload.value(), &msg); !s.ok()) return s;
  return msg.batch;
}

void SubscriberClient::Close() { transport_->Close(); }

}  // namespace datacron
