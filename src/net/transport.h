#ifndef DATACRON_NET_TRANSPORT_H_
#define DATACRON_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace datacron {

/// Point-to-point, ordered, reliable message channel between a cluster
/// coordinator and one node. Two implementations ship with the repo: an
/// in-process loopback (tests, benches) and a length-prefixed TCP socket
/// (deployment). Both deliver whole payloads in FIFO order.
///
/// Thread-safety: one thread may Send while another Recvs, but each
/// direction must be driven by at most one thread at a time.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers one payload. Blocks only for flow control (full peer queue
  /// or socket buffer). FailedPrecondition once the channel is closed.
  virtual Status Send(const std::string& payload) = 0;

  /// Blocks until one payload arrives. FailedPrecondition on orderly
  /// close with nothing left to drain, ParseError on a corrupt frame,
  /// Internal on I/O errors.
  virtual Result<std::string> Recv() = 0;

  /// Closes both directions; pending Recvs wake with FailedPrecondition.
  /// Idempotent.
  virtual void Close() = 0;
};

/// --- Frame codec (TCP framing; exposed for tests) -----------------------
///
/// Every TCP payload travels inside a frame:
///
///   u32 magic     "DACR" (0x44414352), little-endian
///   u32 length    payload byte count
///   u32 checksum  FNV-1a over the payload bytes
///   ...           payload
///
/// The magic catches stream desync, the length bounds the read, and the
/// checksum rejects corruption before the payload reaches the codec.

inline constexpr std::uint32_t kFrameMagic = 0x44414352;  // "DACR"
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on a single frame's payload; a length above this is treated
/// as corruption rather than an allocation request.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 30;

std::uint32_t Fnv1a32(std::string_view bytes);

/// Returns header + payload, ready to write to a byte stream.
std::string EncodeFrame(std::string_view payload);

/// Validates a 12-byte header. On success stores the payload length.
Status DecodeFrameHeader(const char* header, std::uint32_t* payload_len);

/// Validates the payload against the header's checksum.
Status VerifyFramePayload(const char* header, std::string_view payload);

/// --- In-process loopback ------------------------------------------------

class LoopbackTransport final : public Transport {
 public:
  /// Two connected endpoints: what one Sends the other Recvs.
  static std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
  CreatePair();

  Status Send(const std::string& payload) override;
  Result<std::string> Recv() override;
  void Close() override;

 private:
  struct Channel;
  LoopbackTransport(std::shared_ptr<Channel> tx, std::shared_ptr<Channel> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Channel> tx_;
  std::shared_ptr<Channel> rx_;
};

/// --- TCP (127.0.0.1) ----------------------------------------------------

class TcpTransport;

/// Listening socket bound to 127.0.0.1. Pass port 0 to let the kernel pick
/// one; `port()` reports the bound port either way.
class TcpListener {
 public:
  static Result<std::unique_ptr<TcpListener>> Create(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection.
  Result<std::unique_ptr<Transport>> Accept();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
};

/// Connects to a TcpListener on 127.0.0.1.
Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port);

}  // namespace datacron

#endif  // DATACRON_NET_TRANSPORT_H_
