#include "sources/ais_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/thread_pool.h"

namespace datacron {

namespace {

constexpr EntityId kMmsiBase = 200000000;

struct VesselState {
  GeoPoint position;
  double speed_mps = 0.0;
  double course_deg = 0.0;
  double target_speed_mps = 0.0;
  std::vector<LatLon> waypoints;
  std::vector<DurationMs> dwell_ms;  // dwell after reaching waypoint i
  std::size_t next_waypoint = 0;
  DurationMs dwell_remaining_ms = 0;
};

/// Steers `course` toward `target` limited by `max_step` degrees.
double TurnToward(double course, double target, double max_step) {
  double diff = std::fmod(target - course, 360.0);
  if (diff > 180.0) diff -= 360.0;
  if (diff < -180.0) diff += 360.0;
  const double step = std::clamp(diff, -max_step, max_step);
  double out = std::fmod(course + step, 360.0);
  if (out < 0) out += 360.0;
  return out;
}

}  // namespace

DurationMs AisReportIntervalMs(double speed_mps) {
  const double knots = speed_mps * kMpsToKnots;
  if (knots < 0.5) return 180 * kSecond;
  if (knots < 14.0) return 10 * kSecond;
  if (knots < 23.0) return 6 * kSecond;
  return 2 * kSecond;
}

std::vector<TruthTrace> GenerateAisFleet(const AisGeneratorConfig& config) {
  Rng rng(config.seed);
  std::vector<TruthTrace> traces;
  traces.reserve(config.num_vessels);
  const std::size_t ticks =
      static_cast<std::size_t>(config.duration / config.tick_ms) + 1;
  const double dt_s = config.tick_ms / 1000.0;
  // Keep routes away from the region border so kinematic overshoot during
  // turns stays inside the region.
  const BoundingBox inner = config.region.Inflated(
      -0.05 * (config.region.max_lat - config.region.min_lat));

  // Shared-lane mode: pre-generate the route pool once.
  struct Route {
    std::vector<LatLon> waypoints;
    std::vector<DurationMs> dwell_ms;
  };
  std::vector<Route> route_pool;
  auto make_route = [&]() {
    Route route;
    const int n_wp = static_cast<int>(
        rng.UniformInt(config.min_waypoints, config.max_waypoints));
    route.waypoints.reserve(static_cast<std::size_t>(n_wp));
    for (int w = 0; w < n_wp; ++w) {
      route.waypoints.push_back(
          {rng.Uniform(inner.min_lat, inner.max_lat),
           rng.Uniform(inner.min_lon, inner.max_lon)});
      route.dwell_ms.push_back(
          rng.Bernoulli(config.stop_probability)
              ? rng.UniformInt(config.min_dwell, config.max_dwell)
              : 0);
    }
    return route;
  };
  for (std::size_t r = 0; r < config.num_routes; ++r) {
    route_pool.push_back(make_route());
  }

  for (std::size_t v = 0; v < config.num_vessels; ++v) {
    VesselState state;
    Route route = route_pool.empty()
                      ? make_route()
                      : route_pool[v % route_pool.size()];
    state.waypoints = route.waypoints;
    state.dwell_ms = route.dwell_ms;
    // Shared routes: start at a random leg so vessels are spread along
    // the lane instead of sailing in convoy.
    std::size_t start_wp = 0;
    if (!route_pool.empty()) {
      start_wp = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(
                                state.waypoints.size()) - 1));
    }
    state.position = {state.waypoints[start_wp].lat_deg,
                      state.waypoints[start_wp].lon_deg, 0.0};
    state.next_waypoint = (start_wp + 1) % state.waypoints.size();
    state.target_speed_mps =
        rng.Uniform(config.min_speed_knots, config.max_speed_knots) *
        kKnotsToMps;
    state.speed_mps = state.target_speed_mps;
    state.course_deg =
        state.waypoints.size() > 1
            ? InitialBearingDeg(state.position.ll(),
                                state.waypoints[state.next_waypoint])
            : rng.Uniform(0.0, 360.0);

    TruthTrace trace;
    trace.entity_id = kMmsiBase + static_cast<EntityId>(v);
    trace.domain = Domain::kMaritime;
    trace.tick_ms = config.tick_ms;
    trace.start_time = config.start_time;
    trace.samples.reserve(ticks);

    double cruise_speed = state.target_speed_mps;
    for (std::size_t tick = 0; tick < ticks; ++tick) {
      // Record the current state.
      PositionReport r;
      r.entity_id = trace.entity_id;
      r.domain = Domain::kMaritime;
      r.timestamp =
          config.start_time + static_cast<TimestampMs>(tick) * config.tick_ms;
      r.position = state.position;
      r.speed_mps = state.speed_mps;
      r.course_deg = state.course_deg;
      trace.samples.push_back(r);

      // Advance the kinematics by one tick.
      if (state.dwell_remaining_ms > 0) {
        state.dwell_remaining_ms -= config.tick_ms;
        state.target_speed_mps = 0.0;
        if (state.dwell_remaining_ms <= 0) {
          state.dwell_remaining_ms = 0;
          state.target_speed_mps = cruise_speed;
        }
      } else if (state.next_waypoint < state.waypoints.size()) {
        const LatLon& target = state.waypoints[state.next_waypoint];
        const double dist = EquirectangularMeters(state.position.ll(), target);
        if (dist < config.arrival_radius_m) {
          const DurationMs dwell = state.dwell_ms[state.next_waypoint];
          ++state.next_waypoint;
          if (state.next_waypoint >= state.waypoints.size()) {
            // Loop the route so long simulations never run out of plan.
            state.next_waypoint = 0;
          }
          if (dwell > 0) state.dwell_remaining_ms = dwell;
        } else {
          const double desired = InitialBearingDeg(state.position.ll(), target);
          state.course_deg =
              TurnToward(state.course_deg, desired,
                         config.max_turn_rate_deg_s * dt_s);
          state.target_speed_mps = cruise_speed;
        }
      }

      // Speed approaches target under the acceleration limit.
      const double dv = state.target_speed_mps - state.speed_mps;
      const double max_dv = config.accel_mps2 * dt_s;
      state.speed_mps += std::clamp(dv, -max_dv, max_dv);
      state.speed_mps = std::max(0.0, state.speed_mps);

      const LatLon next = DestinationPoint(
          state.position.ll(), state.course_deg, state.speed_mps * dt_s);
      state.position = {next.lat_deg, next.lon_deg, 0.0};
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::vector<PositionReport> Observe(const TruthTrace& trace,
                                    const ObservationConfig& config) {
  // Per-entity RNG so observation of one entity is independent of fleet
  // composition.
  Rng rng(config.seed ^ (0x9E3779B97F4A7C15ULL * trace.entity_id));
  std::vector<PositionReport> out;
  if (trace.samples.empty()) return out;

  TimestampMs t = trace.start_time;
  const TimestampMs end = trace.EndTime();
  TimestampMs gap_until = INT64_MIN;
  while (t <= end) {
    PositionReport truth;
    trace.StateAt(t, &truth);
    const DurationMs interval = config.fixed_interval_ms > 0
                                    ? config.fixed_interval_ms
                                    : AisReportIntervalMs(truth.speed_mps);
    if (t >= gap_until) {
      if (rng.Bernoulli(config.gap_probability)) {
        gap_until = t + rng.UniformInt(config.min_gap, config.max_gap);
      } else if (!rng.Bernoulli(config.drop_probability)) {
        PositionReport obs = truth;
        // Isotropic position noise.
        const double noise_r = std::fabs(rng.Gaussian(0, config.position_noise_m));
        const double noise_bearing = rng.Uniform(0.0, 360.0);
        const LatLon noisy = DestinationPoint(obs.position.ll(),
                                              noise_bearing, noise_r);
        obs.position.lat_deg = noisy.lat_deg;
        obs.position.lon_deg = noisy.lon_deg;
        obs.speed_mps =
            std::max(0.0, obs.speed_mps +
                              rng.Gaussian(0, config.speed_noise_mps));
        obs.course_deg = std::fmod(
            obs.course_deg + rng.Gaussian(0, config.course_noise_deg) + 360.0,
            360.0);
        out.push_back(obs);
      }
    }
    t += interval;
  }
  return out;
}

std::vector<PositionReport> ObserveFleet(
    const std::vector<TruthTrace>& traces, const ObservationConfig& config,
    ThreadPool* pool) {
  std::vector<PositionReport> all;
  if (pool != nullptr && pool->num_threads() >= 2 && traces.size() > 1) {
    // Observation is per-entity-seeded, so traces are independent tasks;
    // concatenating in trace order matches the serial loop exactly.
    std::vector<std::vector<PositionReport>> streams(traces.size());
    pool->ParallelFor(traces.size(), [&](std::size_t i) {
      streams[i] = Observe(traces[i], config);
    });
    std::size_t total = 0;
    for (const auto& s : streams) total += s.size();
    all.reserve(total);
    for (const auto& s : streams) all.insert(all.end(), s.begin(), s.end());
  } else {
    for (const TruthTrace& trace : traces) {
      std::vector<PositionReport> reports = Observe(trace, config);
      all.insert(all.end(), reports.begin(), reports.end());
    }
  }
  if (config.out_of_order_jitter_ms > 0) {
    // Sort by simulated arrival time = event time + uniform delay.
    Rng rng(config.seed ^ 0xABCDEF12345ULL);
    std::vector<std::pair<TimestampMs, std::size_t>> arrival(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      arrival[i] = {all[i].timestamp +
                        rng.UniformInt(0, config.out_of_order_jitter_ms),
                    i};
    }
    std::sort(arrival.begin(), arrival.end());
    std::vector<PositionReport> shuffled;
    shuffled.reserve(all.size());
    for (const auto& [ts, idx] : arrival) shuffled.push_back(all[idx]);
    return shuffled;
  }
  std::sort(all.begin(), all.end(), ReportTimeOrder());
  return all;
}

}  // namespace datacron
