#include "sources/weather.h"

#include <cmath>

#include "common/rng.h"

namespace datacron {

double WeatherSample::WindSpeed() const {
  return std::sqrt(wind_u_mps * wind_u_mps + wind_v_mps * wind_v_mps);
}

WeatherSource::WeatherSource(const Config& config)
    : config_(config), grid_(config.region, config.cell_deg) {
  Rng rng(config.seed);
  constexpr int kModes = 6;
  modes_.reserve(kModes);
  for (int i = 0; i < kModes; ++i) {
    Mode m;
    m.kx = rng.Uniform(0.5, 3.0);
    m.ky = rng.Uniform(0.5, 3.0);
    m.kt = rng.Uniform(0.1, 0.8);
    m.phase = rng.Uniform(0.0, 2.0 * M_PI);
    m.amplitude = rng.Uniform(0.3, 1.0);
    modes_.push_back(m);
  }
}

double WeatherSource::FieldValue(const LatLon& center, std::int64_t bucket,
                                 std::uint64_t phase_salt) const {
  const double x = (center.lon_deg - config_.region.min_lon) /
                   (config_.region.max_lon - config_.region.min_lon);
  const double y = (center.lat_deg - config_.region.min_lat) /
                   (config_.region.max_lat - config_.region.min_lat);
  const double t = static_cast<double>(bucket);
  double acc = 0.0;
  double norm = 0.0;
  const double salt = static_cast<double>(phase_salt % 97) / 97.0 * 2.0 * M_PI;
  for (const Mode& m : modes_) {
    acc += m.amplitude * std::sin(2.0 * M_PI * (m.kx * x + m.ky * y) +
                                  m.kt * t + m.phase + salt);
    norm += m.amplitude;
  }
  return norm > 0 ? acc / norm : 0.0;  // in [-1, 1]
}

WeatherSample WeatherSource::At(const LatLon& p, TimestampMs t) const {
  WeatherSample s;
  s.cell = grid_.CellOf(p);
  std::int64_t bucket = (t - config_.start_time) / config_.bucket_ms;
  bucket = std::max<std::int64_t>(0, std::min(bucket, BucketCount() - 1));
  s.bucket_start = config_.start_time + bucket * config_.bucket_ms;
  const LatLon center = grid_.CellCenter(s.cell);
  s.wind_u_mps = config_.mean_wind_mps * 0.5 +
                 config_.wind_variability_mps * FieldValue(center, bucket, 1);
  s.wind_v_mps =
      config_.wind_variability_mps * FieldValue(center, bucket, 2);
  s.wave_height_m = std::max(
      0.0, config_.mean_wave_m +
               config_.wave_variability_m * FieldValue(center, bucket, 3));
  return s;
}

std::int64_t WeatherSource::BucketCount() const {
  return std::max<std::int64_t>(1, config_.duration / config_.bucket_ms);
}

std::vector<WeatherSample> WeatherSource::MaterializeAll() const {
  std::vector<WeatherSample> out;
  const std::int64_t buckets = BucketCount();
  out.reserve(static_cast<std::size_t>(grid_.CellCount() * buckets));
  for (std::int64_t b = 0; b < buckets; ++b) {
    const TimestampMs t = config_.start_time + b * config_.bucket_ms;
    for (std::int64_t i = 0; i < grid_.CellCount(); ++i) {
      const GridCell cell = grid_.FromLinearIndex(i);
      out.push_back(At(grid_.CellCenter(cell), t));
    }
  }
  return out;
}

}  // namespace datacron
