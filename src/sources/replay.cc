#include "sources/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/time_utils.h"

namespace datacron {

Replayer::Replayer(std::vector<PositionReport> reports, double speedup)
    : reports_(std::move(reports)), speedup_(speedup) {
  std::sort(reports_.begin(), reports_.end(), ReportTimeOrder());
}

bool Replayer::Next(PositionReport* out) {
  if (cursor_ >= reports_.size()) return false;
  const PositionReport& r = reports_[cursor_++];
  if (speedup_ > 0) {
    if (!anchored_) {
      anchored_ = true;
      first_event_time_ = r.timestamp;
      anchor_nanos_ = MonotonicNanos();
    } else {
      const double sim_elapsed_ms =
          static_cast<double>(r.timestamp - first_event_time_);
      const std::int64_t due_nanos =
          anchor_nanos_ +
          static_cast<std::int64_t>(sim_elapsed_ms / speedup_ * 1e6);
      const std::int64_t now = MonotonicNanos();
      if (due_nanos > now) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(due_nanos - now));
      }
    }
  }
  *out = r;
  return true;
}

}  // namespace datacron
