#include "sources/model.h"

#include <algorithm>
#include <cmath>

namespace datacron {

const char* DomainName(Domain d) {
  switch (d) {
    case Domain::kMaritime:
      return "maritime";
    case Domain::kAviation:
      return "aviation";
  }
  return "?";
}

namespace {

double LerpAngleDeg(double a, double b, double f) {
  double diff = std::fmod(b - a, 360.0);
  if (diff > 180.0) diff -= 360.0;
  if (diff < -180.0) diff += 360.0;
  double out = std::fmod(a + f * diff, 360.0);
  if (out < 0) out += 360.0;
  return out;
}

}  // namespace

bool TruthTrace::StateAt(TimestampMs t, PositionReport* out) const {
  if (samples.empty() || out == nullptr) return false;
  if (t <= start_time) {
    *out = samples.front();
    return true;
  }
  const TimestampMs offset = t - start_time;
  const std::size_t idx = static_cast<std::size_t>(offset / tick_ms);
  if (idx + 1 >= samples.size()) {
    *out = samples.back();
    return true;
  }
  const PositionReport& a = samples[idx];
  const PositionReport& b = samples[idx + 1];
  const double f =
      static_cast<double>(offset - static_cast<TimestampMs>(idx) * tick_ms) /
      static_cast<double>(tick_ms);
  PositionReport r = a;
  r.timestamp = t;
  r.position.lat_deg = a.position.lat_deg +
                       f * (b.position.lat_deg - a.position.lat_deg);
  // Longitude interpolation assumes no antimeridian crossing inside one
  // tick, which holds for the simulated regions.
  r.position.lon_deg = a.position.lon_deg +
                       f * (b.position.lon_deg - a.position.lon_deg);
  r.position.alt_m = a.position.alt_m + f * (b.position.alt_m - a.position.alt_m);
  r.speed_mps = a.speed_mps + f * (b.speed_mps - a.speed_mps);
  r.vertical_rate_mps =
      a.vertical_rate_mps + f * (b.vertical_rate_mps - a.vertical_rate_mps);
  r.course_deg = LerpAngleDeg(a.course_deg, b.course_deg, f);
  *out = r;
  return true;
}

}  // namespace datacron
