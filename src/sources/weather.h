#ifndef DATACRON_SOURCES_WEATHER_H_
#define DATACRON_SOURCES_WEATHER_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "sources/model.h"

namespace datacron {

/// One weather observation for a grid cell and time bucket. This is the
/// library's archival "data-at-rest" source (datAcron enriched moving-object
/// streams with meteorological data); link discovery associates position
/// reports with the cell/time weather record they experienced.
struct WeatherSample {
  GridCell cell;
  TimestampMs bucket_start = 0;
  double wind_u_mps = 0.0;  // eastward wind component
  double wind_v_mps = 0.0;  // northward wind component
  double wave_height_m = 0.0;

  double WindSpeed() const;
};

/// Deterministic synthetic weather field: smooth in space and time (sum of
/// seeded sinusoidal modes), discretized to a uniform grid and hourly-style
/// buckets. Being analytic, any (position, time) can be queried without
/// storing the full field; MaterializeAll() renders the archival dataset
/// for RDF loading.
class WeatherSource {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    double cell_deg = 0.25;
    DurationMs bucket_ms = kHour;
    TimestampMs start_time = 1490000000000;
    DurationMs duration = 24 * kHour;
    double mean_wind_mps = 8.0;
    double wind_variability_mps = 5.0;
    double mean_wave_m = 1.2;
    double wave_variability_m = 1.0;
    std::uint64_t seed = 99;
  };

  explicit WeatherSource(const Config& config);

  const Config& config() const { return config_; }
  const UniformGrid& grid() const { return grid_; }

  /// Weather at an arbitrary position/time (snapped to cell & bucket).
  WeatherSample At(const LatLon& p, TimestampMs t) const;

  /// Number of time buckets covered by the configured duration.
  std::int64_t BucketCount() const;

  /// Renders every (cell, bucket) record — the archival dataset.
  std::vector<WeatherSample> MaterializeAll() const;

 private:
  /// Smooth field value for (cell center, bucket index); `phase_salt`
  /// decorrelates the three physical fields.
  double FieldValue(const LatLon& center, std::int64_t bucket,
                    std::uint64_t phase_salt) const;

  Config config_;
  UniformGrid grid_;
  // Random mode parameters fixed at construction.
  struct Mode {
    double kx, ky, kt, phase, amplitude;
  };
  std::vector<Mode> modes_;
};

}  // namespace datacron

#endif  // DATACRON_SOURCES_WEATHER_H_
