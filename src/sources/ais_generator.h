#ifndef DATACRON_SOURCES_AIS_GENERATOR_H_
#define DATACRON_SOURCES_AIS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/bbox.h"
#include "sources/model.h"

namespace datacron {

class ThreadPool;

/// Configuration of the synthetic maritime (AIS) fleet simulator.
///
/// Substitutes for the live AIS feeds used by datAcron: each vessel sails a
/// waypoint route inside `region` with speed- and turn-rate-limited
/// kinematics and optional dwell (anchorage/port stop) at waypoints. The
/// defaults model a merchant/ferry mix in an Aegean-sized area.
struct AisGeneratorConfig {
  BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  std::size_t num_vessels = 100;
  TimestampMs start_time = 1490000000000;  // 2017-03-20, project era
  DurationMs duration = 2 * kHour;
  DurationMs tick_ms = 1000;

  /// When > 0, only this many distinct routes are generated and vessels
  /// are assigned to them round-robin, each starting at a random phase —
  /// the shared-lane structure of real traffic (ferry lines, shipping
  /// lanes) that pattern-based forecasting exploits. 0 (default) gives
  /// every vessel its own route.
  std::size_t num_routes = 0;

  int min_waypoints = 3;
  int max_waypoints = 8;
  double min_speed_knots = 5.0;
  double max_speed_knots = 22.0;
  /// Rudder limit: maximum course change per second.
  double max_turn_rate_deg_s = 1.0;
  /// Longitudinal acceleration limit.
  double accel_mps2 = 0.05;
  /// Probability that a waypoint is a dwell (stop) point.
  double stop_probability = 0.25;
  DurationMs min_dwell = 5 * kMinute;
  DurationMs max_dwell = 20 * kMinute;
  /// Arrival radius: waypoint considered reached within this distance.
  double arrival_radius_m = 300.0;

  std::uint64_t seed = 42;
};

/// Generates one dense ground-truth trace per vessel. Vessel ids are
/// MMSI-like, starting at 200000000.
std::vector<TruthTrace> GenerateAisFleet(const AisGeneratorConfig& config);

/// AIS Class-A-like reporting interval as a function of speed: fast movers
/// report every 2 s, mid-speed every 6 s, slow every 10 s, stationary every
/// 180 s. This is the speed-dependent cadence real AIS transponders use.
DurationMs AisReportIntervalMs(double speed_mps);

/// Receiver/observation model: converts a clean trace into the noisy,
/// lossy report stream a coastal receiver would emit.
struct ObservationConfig {
  /// 1-sigma GPS position noise (meters).
  double position_noise_m = 10.0;
  double speed_noise_mps = 0.2;
  double course_noise_deg = 2.0;
  /// Independent per-report loss.
  double drop_probability = 0.03;
  /// Per-report chance to start a reception gap episode.
  double gap_probability = 0.001;
  DurationMs min_gap = 3 * kMinute;
  DurationMs max_gap = 15 * kMinute;
  /// When > 0, each report's arrival is delayed by U(0, jitter) so the
  /// merged stream is mildly out of order (exercises watermarks).
  DurationMs out_of_order_jitter_ms = 0;
  /// When false, the cadence is AisReportIntervalMs; when set, a fixed
  /// interval overrides it (used by benchmarks that sweep cadence).
  DurationMs fixed_interval_ms = 0;
  std::uint64_t seed = 7;
};

/// Derives the observed report stream of one entity from its truth trace.
/// Reports carry event timestamps; ordering jitter only affects the order
/// in which Replayer delivers them.
std::vector<PositionReport> Observe(const TruthTrace& trace,
                                    const ObservationConfig& config);

/// Observes a whole fleet and merges the streams in arrival order. With a
/// pool, traces observe as parallel tasks; per-entity RNG seeding makes the
/// merged stream identical to the serial path.
std::vector<PositionReport> ObserveFleet(
    const std::vector<TruthTrace>& traces, const ObservationConfig& config,
    ThreadPool* pool = nullptr);

}  // namespace datacron

#endif  // DATACRON_SOURCES_AIS_GENERATOR_H_
