#ifndef DATACRON_SOURCES_REPLAY_H_
#define DATACRON_SOURCES_REPLAY_H_

#include <cstddef>
#include <vector>

#include "sources/model.h"

namespace datacron {

/// Replays a pre-merged report stream as a pull source, optionally scaled
/// against the wall clock. The analytics components consume streams tuple
/// by tuple; the replayer is how archival data (data-at-rest) is fed back
/// through the same streaming path as live data (data-in-motion) — the
/// paper's "integrated approach" to both.
class Replayer {
 public:
  /// `speedup` <= 0 replays as fast as possible (no sleeping); otherwise
  /// one simulated second takes 1/speedup wall seconds.
  explicit Replayer(std::vector<PositionReport> reports,
                    double speedup = 0.0);

  /// Pulls the next report; returns false at end of stream. When pacing is
  /// enabled this blocks until the report's due time.
  bool Next(PositionReport* out);

  /// Remaining items.
  std::size_t Remaining() const { return reports_.size() - cursor_; }

  void Reset() { cursor_ = 0; anchored_ = false; }

 private:
  std::vector<PositionReport> reports_;
  double speedup_;
  std::size_t cursor_ = 0;
  bool anchored_ = false;
  TimestampMs first_event_time_ = 0;
  std::int64_t anchor_nanos_ = 0;
};

}  // namespace datacron

#endif  // DATACRON_SOURCES_REPLAY_H_
