#ifndef DATACRON_SOURCES_MODEL_H_
#define DATACRON_SOURCES_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_utils.h"
#include "geo/geo.h"

namespace datacron {

/// Surveillance domain of an entity. The paper targets Maritime (2D, AIS)
/// and Aviation (3D, ADS-B/flight plans).
enum class Domain : std::uint8_t { kMaritime = 0, kAviation = 1 };

const char* DomainName(Domain d);

/// Numeric moving-entity identifier. Maritime ids model MMSIs (9 digits),
/// aviation ids model ICAO 24-bit addresses; both fit uint32.
using EntityId = std::uint32_t;

/// One surveillance position report — the unit tuple of every data-in-motion
/// stream in the system (paper Section 2, "Data sources").
struct PositionReport {
  EntityId entity_id = 0;
  Domain domain = Domain::kMaritime;
  TimestampMs timestamp = 0;
  GeoPoint position;
  /// Speed over ground, meters/second.
  double speed_mps = 0.0;
  /// Course over ground, degrees [0, 360).
  double course_deg = 0.0;
  /// Vertical rate, meters/second (0 for maritime).
  double vertical_rate_mps = 0.0;

  bool operator==(const PositionReport&) const = default;
};

/// Dense noise-free ground-truth trajectory of one simulated entity,
/// sampled at a fixed tick. Generators produce these; the observation
/// model (subsample + noise + loss) derives the reports a receiver would
/// actually see. Keeping truth and observation separate lets every
/// analytics experiment score against exact ground truth.
struct TruthTrace {
  EntityId entity_id = 0;
  Domain domain = Domain::kMaritime;
  DurationMs tick_ms = 1000;
  TimestampMs start_time = 0;
  /// Sample i is at start_time + i*tick_ms.
  std::vector<PositionReport> samples;

  TimestampMs EndTime() const {
    return samples.empty()
               ? start_time
               : start_time + static_cast<TimestampMs>(samples.size() - 1) *
                                  tick_ms;
  }

  /// Ground-truth state at `t`, linearly interpolated between ticks and
  /// clamped to the trace extent. Returns false when the trace is empty.
  bool StateAt(TimestampMs t, PositionReport* out) const;
};

/// Lexicographic (timestamp, entity) ordering for stream merging.
struct ReportTimeOrder {
  bool operator()(const PositionReport& a, const PositionReport& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.entity_id < b.entity_id;
  }
};

}  // namespace datacron

#endif  // DATACRON_SOURCES_MODEL_H_
