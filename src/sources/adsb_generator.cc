#include "sources/adsb_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geo/geo.h"

namespace datacron {

namespace {

constexpr EntityId kIcaoBase = 0x400000;

double TurnToward(double course, double target, double max_step) {
  double diff = std::fmod(target - course, 360.0);
  if (diff > 180.0) diff -= 360.0;
  if (diff < -180.0) diff += 360.0;
  const double step = std::clamp(diff, -max_step, max_step);
  double out = std::fmod(course + step, 360.0);
  if (out < 0) out += 360.0;
  return out;
}

}  // namespace

std::vector<TruthTrace> GenerateAdsbTraffic(
    const AdsbGeneratorConfig& config) {
  Rng rng(config.seed);
  // Lay out airports inside a margin so approach paths stay in-region.
  const BoundingBox inner = config.region.Inflated(
      -0.08 * (config.region.max_lat - config.region.min_lat));
  std::vector<LatLon> airports;
  airports.reserve(config.num_airports);
  for (std::size_t i = 0; i < config.num_airports; ++i) {
    airports.push_back({rng.Uniform(inner.min_lat, inner.max_lat),
                        rng.Uniform(inner.min_lon, inner.max_lon)});
  }

  std::vector<TruthTrace> traces;
  traces.reserve(config.num_flights);
  const double dt_s = config.tick_ms / 1000.0;

  for (std::size_t f = 0; f < config.num_flights; ++f) {
    // Pick distinct origin/destination.
    const std::size_t origin_idx =
        static_cast<std::size_t>(rng.UniformInt(0, airports.size() - 1));
    std::size_t dest_idx = origin_idx;
    while (dest_idx == origin_idx) {
      dest_idx =
          static_cast<std::size_t>(rng.UniformInt(0, airports.size() - 1));
    }
    const LatLon origin = airports[origin_idx];
    const LatLon dest = airports[dest_idx];

    const double cruise_alt =
        rng.Uniform(config.cruise_alt_min_m, config.cruise_alt_max_m);
    const double cruise_speed =
        rng.Uniform(config.cruise_speed_min_mps, config.cruise_speed_max_mps);
    const TimestampMs departure =
        config.start_time + rng.UniformInt(0, config.departure_window);

    TruthTrace trace;
    trace.entity_id = kIcaoBase + static_cast<EntityId>(f);
    trace.domain = Domain::kAviation;
    trace.tick_ms = config.tick_ms;
    trace.start_time = departure;

    GeoPoint pos{origin.lat_deg, origin.lon_deg, 0.0};
    double course = InitialBearingDeg(origin, dest);
    double speed = cruise_speed * 0.5;  // rotation/initial climb speed
    const TimestampMs sim_end = config.start_time + config.duration;

    // Total route length decides where top-of-descent falls.
    const double route_m = HaversineMeters(origin, dest);
    const double descent_dist_m =
        cruise_alt / config.descent_rate_mps * cruise_speed;

    for (TimestampMs t = departure; t <= sim_end;
         t += config.tick_ms) {
      PositionReport r;
      r.entity_id = trace.entity_id;
      r.domain = Domain::kAviation;
      r.timestamp = t;
      r.position = pos;
      r.speed_mps = speed;
      r.course_deg = course;

      const double remaining_m = HaversineMeters(pos.ll(), dest);
      const double flown_m = std::max(0.0, route_m - remaining_m);
      (void)flown_m;

      double vertical = 0.0;
      double target_speed = cruise_speed;
      if (remaining_m < descent_dist_m) {
        // Descent phase: come down so as to reach the field at ~0 m.
        vertical = -config.descent_rate_mps;
        target_speed = cruise_speed * 0.7;
      } else if (pos.alt_m < cruise_alt) {
        vertical = config.climb_rate_mps;
        target_speed = cruise_speed * 0.85;
      }
      r.vertical_rate_mps = vertical;
      trace.samples.push_back(r);

      // Landed?
      if (remaining_m < 2000.0 && pos.alt_m <= 50.0 &&
          trace.samples.size() > 2) {
        break;
      }

      // Advance kinematics.
      const double desired = InitialBearingDeg(pos.ll(), dest);
      course = TurnToward(course, desired, config.max_turn_rate_deg_s * dt_s);
      const double dv = target_speed - speed;
      speed += std::clamp(dv, -1.0 * dt_s, 1.0 * dt_s);
      const LatLon next =
          DestinationPoint(pos.ll(), course, speed * dt_s);
      pos.lat_deg = next.lat_deg;
      pos.lon_deg = next.lon_deg;
      pos.alt_m = std::clamp(pos.alt_m + vertical * dt_s, 0.0, cruise_alt);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace datacron
