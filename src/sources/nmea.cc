#include "sources/nmea.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "geo/geo.h"

namespace datacron {

namespace {

/// MSB-first bit packer for AIS payloads.
class BitWriter {
 public:
  void Write(std::uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      bits_.push_back(((value >> i) & 1) != 0);
    }
  }

  /// Two's-complement signed write.
  void WriteSigned(std::int64_t value, int bits) {
    Write(static_cast<std::uint64_t>(value) &
              ((bits >= 64 ? ~0ULL : (1ULL << bits) - 1)),
          bits);
  }

  /// 6-bit ASCII armoring ("payload armoring" per the AIVDM de-facto
  /// spec): 0..39 -> '0'.., 40..63 -> '`'..
  std::string ToArmor() const {
    std::string out;
    for (std::size_t i = 0; i < bits_.size(); i += 6) {
      int v = 0;
      for (std::size_t j = 0; j < 6; ++j) {
        v <<= 1;
        if (i + j < bits_.size() && bits_[i + j]) v |= 1;
      }
      out += static_cast<char>(v < 40 ? v + 48 : v + 56);
    }
    return out;
  }

  std::size_t size() const { return bits_.size(); }

 private:
  std::vector<bool> bits_;
};

/// MSB-first bit reader over an armored payload.
class BitReader {
 public:
  /// Returns false on characters outside the armor alphabet.
  bool LoadArmor(const std::string& armor) {
    bits_.clear();
    for (char c : armor) {
      int v = c - 48;
      if (v > 40) v -= 8;
      if (v < 0 || v > 63) return false;
      for (int i = 5; i >= 0; --i) bits_.push_back(((v >> i) & 1) != 0);
    }
    return true;
  }

  std::uint64_t Read(int bits) {
    std::uint64_t v = 0;
    for (int i = 0; i < bits; ++i) {
      v <<= 1;
      if (pos_ < bits_.size() && bits_[pos_]) v |= 1;
      ++pos_;
    }
    return v;
  }

  std::int64_t ReadSigned(int bits) {
    std::uint64_t v = Read(bits);
    const std::uint64_t sign = 1ULL << (bits - 1);
    if (v & sign) {
      return static_cast<std::int64_t>(v) -
             static_cast<std::int64_t>(1ULL << bits);
    }
    return static_cast<std::int64_t>(v);
  }

  std::size_t remaining() const {
    return bits_.size() > pos_ ? bits_.size() - pos_ : 0;
  }

 private:
  std::vector<bool> bits_;
  std::size_t pos_ = 0;
};

int NmeaChecksum(const std::string& body) {
  int sum = 0;
  for (char c : body) sum ^= static_cast<unsigned char>(c);
  return sum;
}

constexpr double kPosScale = 600000.0;  // 1/10000 arc-minute units

}  // namespace

std::string EncodeAivdm(const PositionReport& r) {
  BitWriter bits;
  bits.Write(1, 6);                                       // type 1
  bits.Write(0, 2);                                       // repeat
  bits.Write(r.entity_id, 30);                            // MMSI
  // Navigation status: 0 under way, 1 at anchor.
  bits.Write(r.speed_mps < 0.25 ? 1 : 0, 4);
  bits.WriteSigned(-128, 8);                              // ROT: N/A
  // SOG, 0.1 kn steps, capped at 102.2 kn.
  const double knots = r.speed_mps * kMpsToKnots;
  const std::uint64_t sog =
      knots >= 102.2 ? 1022
                     : static_cast<std::uint64_t>(std::lround(knots * 10));
  bits.Write(sog, 10);
  bits.Write(1, 1);                                       // accuracy: DGPS
  bits.WriteSigned(
      static_cast<std::int64_t>(std::lround(r.position.lon_deg * kPosScale)),
      28);
  bits.WriteSigned(
      static_cast<std::int64_t>(std::lround(r.position.lat_deg * kPosScale)),
      27);
  const std::uint64_t cog = static_cast<std::uint64_t>(
      std::lround(std::fmod(r.course_deg + 360.0, 360.0) * 10));
  bits.Write(cog % 3600, 12);
  bits.Write(511, 9);                                     // heading: N/A
  bits.Write(static_cast<std::uint64_t>((r.timestamp / 1000) % 60), 6);
  bits.Write(0, 2);                                       // maneuver
  bits.Write(0, 3);                                       // spare
  bits.Write(0, 1);                                       // RAIM
  bits.Write(0, 19);                                      // radio status

  const std::string body = "AIVDM,1,1,,A," + bits.ToArmor() + ",0";
  return StrFormat("!%s*%02X", body.c_str(), NmeaChecksum(body));
}

Result<PositionReport> DecodeAivdm(const std::string& sentence,
                                   TimestampMs receive_time) {
  if (sentence.empty() || sentence[0] != '!') {
    return Status::ParseError("missing '!' start");
  }
  const std::size_t star = sentence.rfind('*');
  if (star == std::string::npos || star + 3 > sentence.size()) {
    return Status::ParseError("missing checksum");
  }
  const std::string body = sentence.substr(1, star - 1);
  const std::string cs_hex = sentence.substr(star + 1, 2);
  const int expected = NmeaChecksum(body);
  int given = 0;
  if (std::sscanf(cs_hex.c_str(), "%02X", &given) != 1 ||
      given != expected) {
    return Status::ParseError("checksum mismatch");
  }
  const std::vector<std::string> fields = Split(body, ',');
  if (fields.size() != 7 || fields[0] != "AIVDM") {
    return Status::ParseError("not an AIVDM sentence");
  }
  if (fields[1] != "1" || fields[2] != "1") {
    return Status::ParseError("multi-fragment messages unsupported");
  }
  BitReader bits;
  if (!bits.LoadArmor(fields[5]) || bits.remaining() < 168) {
    return Status::ParseError("bad payload");
  }
  const std::uint64_t type = bits.Read(6);
  if (type != 1 && type != 2 && type != 3) {
    return Status::ParseError(
        StrFormat("unsupported message type %llu",
                  static_cast<unsigned long long>(type)));
  }
  bits.Read(2);  // repeat
  PositionReport r;
  r.domain = Domain::kMaritime;
  r.entity_id = static_cast<EntityId>(bits.Read(30));
  bits.Read(4);                    // nav status
  bits.ReadSigned(8);              // ROT
  const std::uint64_t sog = bits.Read(10);
  r.speed_mps = sog >= 1023 ? 0.0 : sog / 10.0 * kKnotsToMps;
  bits.Read(1);                    // accuracy
  r.position.lon_deg = bits.ReadSigned(28) / kPosScale;
  r.position.lat_deg = bits.ReadSigned(27) / kPosScale;
  const std::uint64_t cog = bits.Read(12);
  r.course_deg = cog >= 3600 ? 0.0 : cog / 10.0;
  bits.Read(9);                    // heading
  const std::uint64_t utc_second = bits.Read(6);
  // Reconstruct the event time: receiver time snapped back to the
  // payload's UTC second (within the preceding minute).
  TimestampMs t = receive_time / kMinute * kMinute +
                  static_cast<TimestampMs>(utc_second) * kSecond;
  if (t > receive_time) t -= kMinute;
  r.timestamp = utc_second >= 60 ? receive_time : t;
  if (!IsValidPosition(r.position.ll())) {
    return Status::ParseError("position out of range");
  }
  return r;
}

namespace {

/// AIS 6-bit text alphabet: value 0..63 -> "@A..Z[\]^_ !\"#$%&'()*+,-./0..9:;<=>?"
char SixBitToChar(int v) {
  static const char kAlphabet[] =
      "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?";
  return kAlphabet[v & 0x3F];
}

int CharToSixBit(char c) {
  if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  if (c >= '@' && c <= '_') return c - '@';
  if (c >= ' ' && c <= '?') return c - ' ' + 32;
  return 30;  // '?' -> unrepresentable marker
}

}  // namespace

std::string EncodeAivdmStatic(const StaticInfo& info) {
  BitWriter bits;
  bits.Write(24, 6);            // type 24
  bits.Write(0, 2);             // repeat
  bits.Write(info.entity_id, 30);
  bits.Write(0, 2);             // part A
  // Name: 20 characters, '@' (0) padded per spec.
  for (int i = 0; i < 20; ++i) {
    const char c = i < static_cast<int>(info.name.size())
                       ? info.name[static_cast<std::size_t>(i)]
                       : '@';
    bits.Write(static_cast<std::uint64_t>(CharToSixBit(c)), 6);
  }
  bits.Write(0, 8);             // spare: pads to 168 bits
  const std::string body = "AIVDM,1,1,,A," + bits.ToArmor() + ",0";
  return StrFormat("!%s*%02X", body.c_str(), NmeaChecksum(body));
}

Result<StaticInfo> DecodeAivdmStatic(const std::string& sentence) {
  if (sentence.empty() || sentence[0] != '!') {
    return Status::ParseError("missing '!' start");
  }
  const std::size_t star = sentence.rfind('*');
  if (star == std::string::npos || star + 3 > sentence.size()) {
    return Status::ParseError("missing checksum");
  }
  const std::string body = sentence.substr(1, star - 1);
  int given = 0;
  if (std::sscanf(sentence.substr(star + 1, 2).c_str(), "%02X", &given) !=
          1 ||
      given != NmeaChecksum(body)) {
    return Status::ParseError("checksum mismatch");
  }
  const std::vector<std::string> fields = Split(body, ',');
  if (fields.size() != 7 || fields[0] != "AIVDM") {
    return Status::ParseError("not an AIVDM sentence");
  }
  BitReader bits;
  if (!bits.LoadArmor(fields[5]) || bits.remaining() < 160) {
    return Status::ParseError("bad payload");
  }
  if (bits.Read(6) != 24) {
    return Status::ParseError("not a type-24 message");
  }
  bits.Read(2);  // repeat
  StaticInfo info;
  info.entity_id = static_cast<EntityId>(bits.Read(30));
  if (bits.Read(2) != 0) {
    return Status::ParseError("only part A carries the name");
  }
  for (int i = 0; i < 20; ++i) {
    const char c = SixBitToChar(static_cast<int>(bits.Read(6)));
    if (c == '@') break;  // pad terminator
    info.name += c;
  }
  // Trim trailing spaces (names are space-padded in practice too).
  while (!info.name.empty() && info.name.back() == ' ') {
    info.name.pop_back();
  }
  return info;
}

std::string EncodeAivdmStream(const std::vector<PositionReport>& reports) {
  std::string out;
  for (const PositionReport& r : reports) {
    out += EncodeAivdm(r);
    out += '\n';
  }
  return out;
}

std::vector<PositionReport> DecodeAivdmStream(const std::string& text,
                                              TimestampMs receive_time,
                                              AivdmDecodeStats* stats) {
  std::vector<PositionReport> out;
  AivdmDecodeStats local;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line(Trim(text.substr(start, end - start)));
    start = end + 1;
    if (line.empty()) continue;
    Result<PositionReport> r = DecodeAivdm(line, receive_time);
    if (r.ok()) {
      out.push_back(r.value());
      ++local.decoded;
    } else {
      ++local.failed;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace datacron
