#ifndef DATACRON_SOURCES_NMEA_H_
#define DATACRON_SOURCES_NMEA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sources/model.h"

namespace datacron {

/// AIS AIVDM sentence codec (ITU-R M.1371 Class A position report,
/// message type 1) — the wire format real AIS receivers emit. Makes the
/// library a drop-in consumer of genuine AIS feeds and lets the simulator
/// produce byte-realistic ones.
///
/// Encoding covers the 168-bit type-1 payload: MMSI, navigation status,
/// speed over ground (0.1 kn), position (1/10000 arc-minute), course over
/// ground (0.1 deg), plus the NMEA framing `!AIVDM,1,1,,A,<payload>,0*CS`
/// with the standard XOR checksum. Fields the simulator does not model
/// (rate of turn, true heading, maneuver indicator) encode as
/// "not available" per the spec.

/// Encodes a position report as a single-fragment AIVDM sentence.
/// The timestamp's UTC second goes into the 6-bit timestamp field; the
/// full timestamp does not fit in the AIS payload (real feeds timestamp
/// at the receiver), so decoding needs `receive_time` to reconstruct it.
std::string EncodeAivdm(const PositionReport& report);

/// Decodes a type-1 AIVDM sentence. `receive_time` supplies the epoch
/// context (the decoded report's timestamp is receive_time adjusted to
/// the payload's UTC-second field). Validates the checksum and payload
/// type. Aviation reports cannot be represented (AIS is maritime-only).
Result<PositionReport> DecodeAivdm(const std::string& sentence,
                                   TimestampMs receive_time);

/// Encodes a whole stream, one sentence per line.
std::string EncodeAivdmStream(const std::vector<PositionReport>& reports);

/// Decodes a multi-line AIVDM document; malformed sentences are counted
/// and skipped (real feeds contain corrupt sentences; a decoder that
/// stops at the first one is useless).
struct AivdmDecodeStats {
  std::size_t decoded = 0;
  std::size_t failed = 0;
};

std::vector<PositionReport> DecodeAivdmStream(const std::string& text,
                                              TimestampMs receive_time,
                                              AivdmDecodeStats* stats);

/// Class-B static data (message type 24 part A): the vessel's name — the
/// identity channel of AIS. Names are up to 20 characters from the AIS
/// 6-bit alphabet (uppercase letters, digits, limited punctuation);
/// lowercase input is upcased, unrepresentable characters encode as '?'.
struct StaticInfo {
  EntityId entity_id = 0;
  std::string name;
};

std::string EncodeAivdmStatic(const StaticInfo& info);

/// Decodes a type-24-part-A sentence (checksum validated).
Result<StaticInfo> DecodeAivdmStatic(const std::string& sentence);

}  // namespace datacron

#endif  // DATACRON_SOURCES_NMEA_H_
