#ifndef DATACRON_SOURCES_CODEC_H_
#define DATACRON_SOURCES_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sources/model.h"

namespace datacron {

/// CSV interchange format for position reports (one report per line):
///   entity_id,domain,timestamp_ms,lat,lon,alt_m,speed_mps,course_deg,vrate_mps
/// `domain` is "maritime" or "aviation". This is the library's bridge to
/// real archival dumps (e.g. AIS CSV exports) and the format examples use.
std::string kReportCsvHeader();

std::string EncodeReportCsv(const PositionReport& report);

Result<PositionReport> DecodeReportCsv(const std::string& line);

/// Encodes many reports with a header line.
std::string EncodeReportsCsv(const std::vector<PositionReport>& reports);

/// Decodes a whole CSV document (header optional). Malformed lines produce
/// an error identifying the line number.
Result<std::vector<PositionReport>> DecodeReportsCsv(const std::string& text);

}  // namespace datacron

#endif  // DATACRON_SOURCES_CODEC_H_
