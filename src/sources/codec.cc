#include "sources/codec.h"

#include <cstdio>

#include "common/strings.h"

namespace datacron {

std::string kReportCsvHeader() {
  return "entity_id,domain,timestamp_ms,lat,lon,alt_m,speed_mps,course_deg,"
         "vrate_mps";
}

std::string EncodeReportCsv(const PositionReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%u,%s,%lld,%.7f,%.7f,%.2f,%.3f,%.3f,%.3f",
                r.entity_id, DomainName(r.domain),
                static_cast<long long>(r.timestamp), r.position.lat_deg,
                r.position.lon_deg, r.position.alt_m, r.speed_mps,
                r.course_deg, r.vertical_rate_mps);
  return buf;
}

Result<PositionReport> DecodeReportCsv(const std::string& line) {
  const std::vector<std::string> fields = Split(line, ',');
  if (fields.size() != 9) {
    return Status::ParseError(
        StrFormat("expected 9 fields, got %zu", fields.size()));
  }
  PositionReport r;
  std::int64_t id = 0;
  if (!ParseInt64(fields[0], &id) || id < 0) {
    return Status::ParseError("bad entity_id: " + fields[0]);
  }
  r.entity_id = static_cast<EntityId>(id);
  if (fields[1] == "maritime") {
    r.domain = Domain::kMaritime;
  } else if (fields[1] == "aviation") {
    r.domain = Domain::kAviation;
  } else {
    return Status::ParseError("bad domain: " + fields[1]);
  }
  if (!ParseInt64(fields[2], &r.timestamp)) {
    return Status::ParseError("bad timestamp: " + fields[2]);
  }
  if (!ParseDouble(fields[3], &r.position.lat_deg) ||
      !ParseDouble(fields[4], &r.position.lon_deg) ||
      !ParseDouble(fields[5], &r.position.alt_m) ||
      !ParseDouble(fields[6], &r.speed_mps) ||
      !ParseDouble(fields[7], &r.course_deg) ||
      !ParseDouble(fields[8], &r.vertical_rate_mps)) {
    return Status::ParseError("bad numeric field in: " + line);
  }
  if (!IsValidPosition(r.position.ll())) {
    return Status::ParseError("position out of range in: " + line);
  }
  return r;
}

std::string EncodeReportsCsv(const std::vector<PositionReport>& reports) {
  std::string out = kReportCsvHeader();
  out += '\n';
  for (const PositionReport& r : reports) {
    out += EncodeReportCsv(r);
    out += '\n';
  }
  return out;
}

Result<std::vector<PositionReport>> DecodeReportsCsv(
    const std::string& text) {
  std::vector<PositionReport> out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (line_no == 1 && StartsWith(trimmed, "entity_id")) continue;
    Result<PositionReport> r = DecodeReportCsv(std::string(trimmed));
    if (!r.ok()) {
      return Status::ParseError(
          StrFormat("line %zu: %s", line_no, r.status().message().c_str()));
    }
    out.push_back(r.value());
  }
  return out;
}

}  // namespace datacron
