#ifndef DATACRON_SOURCES_ADSB_GENERATOR_H_
#define DATACRON_SOURCES_ADSB_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "sources/model.h"

namespace datacron {

/// Configuration of the synthetic aviation (ADS-B) traffic simulator —
/// the 3D counterpart of the AIS generator. Aircraft fly airport-to-airport
/// legs with climb / cruise / descent phases; the vertical profile is what
/// makes the aviation forecasting experiments genuinely 3D.
struct AdsbGeneratorConfig {
  BoundingBox region = BoundingBox::Of(36.0, 0.0, 50.0, 20.0);
  std::size_t num_airports = 12;
  std::size_t num_flights = 60;
  TimestampMs start_time = 1490000000000;
  DurationMs duration = 2 * kHour;
  DurationMs tick_ms = 1000;

  double cruise_alt_min_m = 9000.0;
  double cruise_alt_max_m = 12000.0;
  double cruise_speed_min_mps = 200.0;
  double cruise_speed_max_mps = 260.0;
  double climb_rate_mps = 12.0;
  double descent_rate_mps = 9.0;
  /// Bank-limited turn rate (standard rate turn is 3 deg/s).
  double max_turn_rate_deg_s = 3.0;
  /// Flights depart staggered within this window after start_time.
  DurationMs departure_window = 1 * kHour;

  std::uint64_t seed = 43;
};

/// Generates dense ground-truth traces, one per flight. A flight's trace
/// covers only its airborne interval (takeoff to landing, clipped to the
/// simulation window). Entity ids are ICAO-like, starting at 0x400000.
std::vector<TruthTrace> GenerateAdsbTraffic(const AdsbGeneratorConfig& config);

}  // namespace datacron

#endif  // DATACRON_SOURCES_ADSB_GENERATOR_H_
