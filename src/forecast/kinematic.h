#ifndef DATACRON_FORECAST_KINEMATIC_H_
#define DATACRON_FORECAST_KINEMATIC_H_

#include <map>

#include "forecast/predictor.h"

namespace datacron {

/// Dead-reckoning baseline: project the last report's speed/course
/// (and vertical rate) forward. Unbeatable at very short horizons, blind
/// to manoeuvres — the baseline every forecasting paper compares against.
class DeadReckoningPredictor : public Predictor {
 public:
  std::string name() const override { return "dead_reckoning"; }

  void Observe(const PositionReport& report) override {
    last_[report.entity_id] = report;
  }

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

 private:
  std::map<EntityId, PositionReport> last_;
};

/// Constant Turn Rate and Velocity (CTRV): estimates the current turn
/// rate from the last two reports and integrates the turning motion over
/// the horizon. Captures sustained turns that straight dead reckoning
/// misses; degrades to dead reckoning when the rate estimate is ~0.
class CtrvPredictor : public Predictor {
 public:
  /// `rate_smoothing` is the EWMA weight of the newest turn-rate sample;
  /// lower values suit noisy/high-rate feeds (ADS-B), higher values suit
  /// clean low-rate feeds (AIS).
  explicit CtrvPredictor(double rate_smoothing = 0.5)
      : rate_smoothing_(rate_smoothing) {}

  std::string name() const override { return "ctrv"; }

  void Observe(const PositionReport& report) override;

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

 private:
  struct State {
    PositionReport last;
    double turn_rate_deg_s = 0.0;
    bool warm = false;
  };
  double rate_smoothing_;
  std::map<EntityId, State> state_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_KINEMATIC_H_
