#ifndef DATACRON_FORECAST_MARKOV_H_
#define DATACRON_FORECAST_MARKOV_H_

#include <array>
#include <map>
#include <unordered_map>

#include "forecast/predictor.h"
#include "geo/grid.h"

namespace datacron {

/// Grid-based first-order Markov predictor: learns cell-to-cell transition
/// frequencies from all observed movement (Train or online Observe), then
/// predicts by walking the most likely cell chain from the entity's
/// current cell, spending the distance budget speed * horizon.
///
/// Captures "traffic follows lanes" structure that pure kinematics cannot;
/// loses to dead reckoning at horizons shorter than one cell crossing
/// (discretization error dominates there), which produces the E7 crossover.
class MarkovGridPredictor : public Predictor {
 public:
  struct Config {
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
    double cell_deg = 0.05;
    /// Transitions with fewer observations than this are ignored when
    /// choosing the next cell (noise floor).
    std::size_t min_transition_count = 2;
  };

  MarkovGridPredictor() : MarkovGridPredictor(Config()) {}
  explicit MarkovGridPredictor(Config config);

  std::string name() const override { return "markov_grid"; }

  /// Offline training on historical trajectories (dense or reconstructed).
  void Train(const std::vector<PositionReport>& history);

  void Observe(const PositionReport& report) override;

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

  std::size_t TransitionCount() const { return transitions_.size(); }

 private:
  /// Records a movement between consecutive cells of one entity.
  void Learn(EntityId entity, const GridCell& cell);

  Config config_;
  UniformGrid grid_;
  /// (from cell key) -> (to cell key) -> count.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::size_t>>
      transitions_;
  /// Learning state: last cell per entity.
  std::map<EntityId, GridCell> last_cell_;
  /// Prediction state: last report per entity.
  std::map<EntityId, PositionReport> last_report_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_MARKOV_H_
