#ifndef DATACRON_FORECAST_KALMAN_H_
#define DATACRON_FORECAST_KALMAN_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/flat_hash.h"
#include "forecast/predictor.h"

namespace datacron {

/// Per-entity constant-velocity Kalman filter in a local ENU frame
/// (anchored at the entity's first report), with altitude tracked by an
/// independent 1D CV filter for aviation. Measurements are position plus
/// the velocity implied by the report's speed/course — AIS and ADS-B both
/// carry over-ground velocity, so the full 4D measurement is available.
///
/// The filter smooths observation noise, so at mid horizons it beats raw
/// dead reckoning whose velocity estimate is one noisy sample.
///
/// Storage is a struct-of-arrays state block indexed by a dense slot id
/// (FlatHashMap entity -> slot): one contiguous column per filter field,
/// so a fleet-wide pass touches cache lines linearly instead of chasing
/// std::map nodes. The 4x4 predict/update algebra runs through the
/// portable SIMD layer (common/simd); rows of each matrix are vector
/// lanes, and both abi instantiations accumulate in the same order, so
/// forcing the scalar backend reproduces the native build's state
/// bit-for-bit.
class KalmanPredictor : public Predictor {
 public:
  struct Config {
    /// Process-noise acceleration density (m/s^2); larger = trust
    /// manoeuvre, smaller = trust inertia.
    double process_accel = 0.1;
    /// Measurement standard deviations.
    double meas_pos_m = 15.0;
    double meas_vel_mps = 0.5;
    /// Vertical channel (aviation).
    double process_vert_accel = 0.5;
    double meas_alt_m = 30.0;
    double meas_vrate_mps = 1.0;
    /// Runs the matrix kernels on the width-1 reference backend instead
    /// of the native one. Results are bit-identical either way (tested);
    /// the knob exists for that cross-check and for timing.
    bool force_scalar_simd = false;
  };

  KalmanPredictor() : KalmanPredictor(Config()) {}
  explicit KalmanPredictor(Config config) : config_(config) {}

  std::string name() const override { return "kalman_cv"; }

  void Observe(const PositionReport& report) override;

  /// Feeds a time-ordered slice of reports under one "forecast" trace
  /// span; equivalent to calling Observe per report.
  void ObserveBatch(std::span<const PositionReport> reports);

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

  /// Filtered current state (for diagnostics/tests): position and
  /// velocity. False when unknown.
  bool CurrentEstimate(EntityId entity, GeoPoint* pos, double* ve_mps,
                       double* vn_mps) const;

  /// Number of entities with initialized filters.
  std::size_t fleet_size() const { return states_.size(); }

 private:
  /// 4x4 covariance stored row-major.
  using Mat4 = std::array<double, 16>;
  using Vec4 = std::array<double, 4>;

  /// Struct-of-arrays filter state; column i belongs to the entity that
  /// slot_ maps to i. Slots are append-only (entities are never
  /// evicted), so raw column pointers stay valid between rehashes of the
  /// id map but not across Append calls.
  struct StateSoa {
    std::vector<GeoPoint> anchor;  // ENU reference
    std::vector<Vec4> x;           // [e, n, ve, vn]
    std::vector<Mat4> p;           // covariance
    std::vector<double> alt_m;     // vertical CV filter state
    std::vector<double> vrate_mps;
    std::vector<double> alt_var, vrate_var, alt_cov;
    std::vector<TimestampMs> last_time;
    std::vector<Domain> domain;

    std::size_t size() const { return x.size(); }
    std::uint32_t Append();
  };

  /// Warm-path predict+update, templated over the SIMD abi so the
  /// force_scalar_simd cross-check runs the identical source.
  template <typename Abi>
  void ObserveWarm(std::uint32_t slot, const PositionReport& report);

  Config config_;
  StateSoa states_;
  FlatHashMap<EntityId, std::uint32_t> slot_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_KALMAN_H_
