#ifndef DATACRON_FORECAST_KALMAN_H_
#define DATACRON_FORECAST_KALMAN_H_

#include <array>
#include <map>

#include "forecast/predictor.h"

namespace datacron {

/// Per-entity constant-velocity Kalman filter in a local ENU frame
/// (anchored at the entity's first report), with altitude tracked by an
/// independent 1D CV filter for aviation. Measurements are position plus
/// the velocity implied by the report's speed/course — AIS and ADS-B both
/// carry over-ground velocity, so the full 4D measurement is available.
///
/// The filter smooths observation noise, so at mid horizons it beats raw
/// dead reckoning whose velocity estimate is one noisy sample.
class KalmanPredictor : public Predictor {
 public:
  struct Config {
    /// Process-noise acceleration density (m/s^2); larger = trust
    /// manoeuvre, smaller = trust inertia.
    double process_accel = 0.1;
    /// Measurement standard deviations.
    double meas_pos_m = 15.0;
    double meas_vel_mps = 0.5;
    /// Vertical channel (aviation).
    double process_vert_accel = 0.5;
    double meas_alt_m = 30.0;
    double meas_vrate_mps = 1.0;
  };

  KalmanPredictor() : KalmanPredictor(Config()) {}
  explicit KalmanPredictor(Config config) : config_(config) {}

  std::string name() const override { return "kalman_cv"; }

  void Observe(const PositionReport& report) override;

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

  /// Filtered current state (for diagnostics/tests): position and
  /// velocity. False when unknown.
  bool CurrentEstimate(EntityId entity, GeoPoint* pos, double* ve_mps,
                       double* vn_mps) const;

 private:
  /// 4x4 covariance stored row-major.
  using Mat4 = std::array<double, 16>;
  using Vec4 = std::array<double, 4>;

  struct State {
    GeoPoint anchor;              // ENU reference
    Vec4 x{};                     // [e, n, ve, vn]
    Mat4 p{};                     // covariance
    double alt_m = 0.0;           // vertical CV filter state
    double vrate_mps = 0.0;
    double alt_var = 0.0, vrate_var = 0.0, alt_cov = 0.0;
    TimestampMs last_time = 0;
    Domain domain = Domain::kMaritime;
    bool warm = false;
  };

  void PredictStep(State* st, double dt_s) const;
  void UpdateStep(State* st, const Vec4& z, double z_alt,
                  double z_vrate) const;

  Config config_;
  std::map<EntityId, State> state_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_KALMAN_H_
