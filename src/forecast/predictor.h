#ifndef DATACRON_FORECAST_PREDICTOR_H_
#define DATACRON_FORECAST_PREDICTOR_H_

#include <string>

#include "geo/geo.h"
#include "sources/model.h"

namespace datacron {

/// Future-location predictor interface. Implementations consume the
/// observed report stream (time-ordered, entities interleaved) and answer
/// "where will entity X be `horizon` from its last report?" — the paper's
/// trajectory-forecasting task, in 2D (maritime) and 3D (aviation).
class Predictor {
 public:
  virtual ~Predictor() = default;

  virtual std::string name() const = 0;

  /// Feeds one observed report. Must be called in nondecreasing timestamp
  /// order per entity.
  virtual void Observe(const PositionReport& report) = 0;

  /// Predicts the entity's position `horizon` after its last observed
  /// report. Returns false when the entity is unknown or the model is not
  /// warm enough.
  virtual bool Predict(EntityId entity, DurationMs horizon,
                       GeoPoint* out) const = 0;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_PREDICTOR_H_
