#include "forecast/kinematic.h"

#include <cmath>

namespace datacron {

bool DeadReckoningPredictor::Predict(EntityId entity, DurationMs horizon,
                                     GeoPoint* out) const {
  auto it = last_.find(entity);
  if (it == last_.end()) return false;
  const PositionReport& r = it->second;
  *out = DeadReckon(r.position, r.course_deg, r.speed_mps,
                    r.vertical_rate_mps, horizon / 1000.0);
  return true;
}

void CtrvPredictor::Observe(const PositionReport& report) {
  State& st = state_[report.entity_id];
  if (st.warm) {
    const double dt_s =
        static_cast<double>(report.timestamp - st.last.timestamp) / 1000.0;
    if (dt_s > 0.1) {
      double dcourse = report.course_deg - st.last.course_deg;
      while (dcourse > 180.0) dcourse -= 360.0;
      while (dcourse < -180.0) dcourse += 360.0;
      // Exponential smoothing keeps the rate estimate stable under course
      // noise while adapting within a few reports.
      const double instant = dcourse / dt_s;
      st.turn_rate_deg_s = (1.0 - rate_smoothing_) * st.turn_rate_deg_s +
                           rate_smoothing_ * instant;
    }
  }
  st.last = report;
  st.warm = true;
}

bool CtrvPredictor::Predict(EntityId entity, DurationMs horizon,
                            GeoPoint* out) const {
  auto it = state_.find(entity);
  if (it == state_.end() || !it->second.warm) return false;
  const State& st = it->second;
  const double total_s = horizon / 1000.0;

  // Integrate the turn in fixed steps; each step is straight dead
  // reckoning at the step-start course. 10 s steps keep the arc smooth
  // at vessel/aircraft turn rates.
  constexpr double kStepS = 10.0;
  GeoPoint pos = st.last.position;
  double course = st.last.course_deg;
  double remaining = total_s;
  while (remaining > 1e-9) {
    const double step = remaining < kStepS ? remaining : kStepS;
    pos = DeadReckon(pos, course, st.last.speed_mps,
                     st.last.vertical_rate_mps, step);
    course += st.turn_rate_deg_s * step;
    remaining -= step;
  }
  *out = pos;
  return true;
}

}  // namespace datacron
