#include "forecast/route.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/kernels.h"
#include "trajectory/similarity.h"

namespace datacron {

RoutePredictor::RoutePredictor(Config config) : config_(config) {}

void RoutePredictor::Train(const std::vector<Trajectory>& history) {
  medoids_.clear();
  const ClusteringResult clusters =
      ClusterByThreshold(history, config_.cluster_threshold_m);
  medoids_.reserve(clusters.medoids.size());
  for (std::size_t idx : clusters.medoids) medoids_.push_back(history[idx]);

  // Cell edge ~ match radius so the 3x3 neighborhood covers candidates.
  const double cell_deg =
      std::max(0.005, config_.match_radius_m /
                          (kEarthRadiusMeters * kDegToRad *
                           std::cos(config_.region.Center().lat_deg *
                                    kDegToRad)));
  point_index_ = std::make_unique<GridIndex<std::uint64_t>>(config_.region,
                                                            cell_deg);
  for (std::size_t ri = 0; ri < medoids_.size(); ++ri) {
    const auto& pts = medoids_[ri].points;
    for (std::size_t pi = 0; pi < pts.size(); ++pi) {
      point_index_->Insert(pts[pi].position.ll(), Pack(ri, pi));
    }
  }
}

bool RoutePredictor::Predict(EntityId entity, DurationMs horizon,
                             GeoPoint* out) const {
  auto it = last_.find(entity);
  if (it == last_.end()) return false;
  const PositionReport& r = it->second;

  // Nearest course-compatible medoid point.
  double best_dist = std::numeric_limits<double>::infinity();
  std::size_t best_route = 0, best_point = 0;
  if (point_index_ != nullptr) {
    // One latitude cosine for the whole candidate scan: every candidate
    // is within the match radius of the query, so the scale is shared.
    const double cos_lat = std::cos(r.position.lat_deg * kDegToRad);
    for (std::uint64_t packed :
         point_index_->NeighborhoodCandidates(r.position.ll())) {
      const std::size_t ri = packed >> 32;
      const std::size_t pi = packed & 0xFFFFFFFFULL;
      const PositionReport& mp = medoids_[ri].points[pi];
      if (CourseDifferenceDeg(mp.course_deg, r.course_deg) >
          config_.max_course_diff_deg) {
        continue;
      }
      const double d =
          EquirectangularMetersWithCos(cos_lat, mp.position.ll(),
                                       r.position.ll());
      if (d < best_dist) {
        best_dist = d;
        best_route = ri;
        best_point = pi;
      }
    }
  }
  if (best_dist > config_.match_radius_m) {
    // Off-route: fall back to dead reckoning.
    *out = DeadReckon(r.position, r.course_deg, r.speed_mps,
                      r.vertical_rate_mps, horizon / 1000.0);
    return true;
  }

  // Follow the matched route's *direction sequence* from the vessel's own
  // position (not from the matched route point — teleporting onto the
  // route would add the match offset to every prediction). Each remaining
  // route leg contributes its bearing and length; the vessel traverses
  // them at its own current speed.
  double budget_m = r.speed_mps * (horizon / 1000.0);
  const auto& pts = medoids_[best_route].points;
  std::size_t i = best_point;
  LatLon pos = r.position.ll();
  while (i + 1 < pts.size() && budget_m > 0) {
    const LatLon leg_from = pts[i].position.ll();
    const LatLon leg_to = pts[i + 1].position.ll();
    const double leg = EquirectangularMeters(leg_from, leg_to);
    const double bearing = InitialBearingDeg(leg_from, leg_to);
    if (leg > budget_m) {
      pos = DestinationPoint(pos, bearing, budget_m);
      budget_m = 0;
      break;
    }
    budget_m -= leg;
    pos = DestinationPoint(pos, bearing, leg);
    ++i;
  }
  if (budget_m > 0) {
    // Ran off the end of the route: continue on the route's final course.
    const double final_course =
        pts.size() >= 2
            ? InitialBearingDeg(pts[pts.size() - 2].position.ll(),
                                pts.back().position.ll())
            : r.course_deg;
    pos = DestinationPoint(pos, final_course, budget_m);
  }
  *out = GeoPoint{pos.lat_deg, pos.lon_deg,
                  r.position.alt_m + r.vertical_rate_mps * (horizon / 1000.0)};
  return true;
}

}  // namespace datacron
