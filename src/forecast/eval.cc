#include "forecast/eval.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace datacron {

std::string ForecastEvaluation::ToTable() const {
  std::string out = StrFormat(
      "%-14s %10s %11s %11s %11s %11s %8s\n", predictor.c_str(),
      "horizon_s", "mean_err_m", "p50_err_m", "p90_err_m", "alt_err_m",
      "n");
  for (const HorizonError& h : horizons) {
    out += StrFormat("%-14s %10lld %11.1f %11.1f %11.1f %11.1f %8zu\n",
                     predictor.c_str(),
                     static_cast<long long>(h.horizon / 1000),
                     h.error_m.mean(), h.error_pct.Percentile(50),
                     h.error_pct.Percentile(90), h.error_alt_m.mean(),
                     h.predictions);
  }
  return out;
}

ForecastEvaluation EvaluatePredictor(Predictor* predictor,
                                     const std::vector<TruthTrace>& traces,
                                     const ForecastEvalConfig& config) {
  ForecastEvaluation eval;
  eval.predictor = predictor->name();
  eval.horizons.resize(config.horizons.size());
  for (std::size_t i = 0; i < config.horizons.size(); ++i) {
    eval.horizons[i].horizon = config.horizons[i];
  }

  // Observed stream + truth lookup.
  const std::vector<PositionReport> stream =
      ObserveFleet(traces, config.observation);
  std::map<EntityId, const TruthTrace*> truth;
  TimestampMs min_time = 0;
  for (const TruthTrace& t : traces) {
    truth[t.entity_id] = &t;
    min_time = truth.size() == 1 ? t.start_time
                                 : std::min(min_time, t.start_time);
  }

  std::map<EntityId, int> report_counter;
  for (const PositionReport& r : stream) {
    predictor->Observe(r);
    if (r.timestamp - min_time < config.warmup) continue;
    int& counter = report_counter[r.entity_id];
    ++counter;
    if (counter % config.anchor_stride != 0) continue;

    const TruthTrace* trace = truth[r.entity_id];
    for (std::size_t hi = 0; hi < config.horizons.size(); ++hi) {
      const DurationMs h = config.horizons[hi];
      if (r.timestamp + h > trace->EndTime()) continue;
      HorizonError& he = eval.horizons[hi];
      GeoPoint predicted;
      if (!predictor->Predict(r.entity_id, h, &predicted)) {
        ++he.failures;
        continue;
      }
      PositionReport actual;
      trace->StateAt(r.timestamp + h, &actual);
      const double err =
          HaversineMeters(predicted.ll(), actual.position.ll());
      he.error_m.Add(err);
      he.error_pct.Add(err);
      he.error_alt_m.Add(std::fabs(predicted.alt_m - actual.position.alt_m));
      ++he.predictions;
    }
  }
  return eval;
}

}  // namespace datacron
