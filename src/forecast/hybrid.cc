#include "forecast/hybrid.h"

namespace datacron {

HybridPredictor::HybridPredictor(Config config)
    : config_(config), kalman_(config.kalman), route_(config.route) {}

void HybridPredictor::Observe(const PositionReport& report) {
  kalman_.Observe(report);
  route_.Observe(report);
}

bool HybridPredictor::Predict(EntityId entity, DurationMs horizon,
                              GeoPoint* out) const {
  if (horizon <= config_.switch_horizon) {
    if (kalman_.Predict(entity, horizon, out)) return true;
    return route_.Predict(entity, horizon, out);
  }
  // Long horizon: prefer the route answer; if the route component had to
  // fall back to dead reckoning internally it is still no worse than the
  // raw kinematic answer, and the Kalman fallback covers unseen entities.
  if (route_.Predict(entity, horizon, out)) return true;
  return kalman_.Predict(entity, horizon, out);
}

}  // namespace datacron
