#ifndef DATACRON_FORECAST_HYBRID_H_
#define DATACRON_FORECAST_HYBRID_H_

#include <memory>

#include "forecast/kalman.h"
#include "forecast/route.h"

namespace datacron {

/// Horizon-switching ensemble: the Kalman filter owns short horizons
/// (noise suppression dominates there), the route-medoid predictor owns
/// long horizons when the entity is on a known lane (pattern knowledge
/// dominates there), with Kalman as the off-lane fallback. Encodes the
/// E7 crossover as a predictor instead of a chart.
class HybridPredictor : public Predictor {
 public:
  struct Config {
    /// Below this horizon the Kalman answer is used unconditionally.
    DurationMs switch_horizon = 5 * kMinute;
    KalmanPredictor::Config kalman;
    RoutePredictor::Config route;
  };

  HybridPredictor() : HybridPredictor(Config()) {}
  explicit HybridPredictor(Config config);

  std::string name() const override { return "hybrid_kalman_route"; }

  /// Trains the route component on historical trajectories.
  void Train(const std::vector<Trajectory>& history) {
    route_.Train(history);
  }

  void Observe(const PositionReport& report) override;

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

  const KalmanPredictor& kalman() const { return kalman_; }
  const RoutePredictor& route() const { return route_; }

 private:
  Config config_;
  KalmanPredictor kalman_;
  RoutePredictor route_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_HYBRID_H_
