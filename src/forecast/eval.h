#ifndef DATACRON_FORECAST_EVAL_H_
#define DATACRON_FORECAST_EVAL_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "forecast/predictor.h"
#include "sources/ais_generator.h"

namespace datacron {

/// Error distribution of one predictor at one horizon.
struct HorizonError {
  DurationMs horizon = 0;
  RunningStats error_m;        // 2D (horizontal) error
  RunningStats error_alt_m;    // vertical error (aviation)
  /// Same horizontal errors, retained for percentiles: the tail (p90) is
  /// where manoeuvre-blindness shows while the mean hides it.
  PercentileTracker error_pct;
  std::size_t predictions = 0;
  std::size_t failures = 0;    // Predict() returned false
};

/// Per-predictor evaluation result: one row per horizon.
struct ForecastEvaluation {
  std::string predictor;
  std::vector<HorizonError> horizons;

  std::string ToTable() const;
};

/// Evaluation protocol shared by E7/E8:
///  1. The fleet's truth traces are observed (subsample + noise) into the
///     report stream a receiver would see.
///  2. Reports are fed to the predictor in time order.
///  3. After `warmup`, every `anchor_stride`-th report of an entity becomes
///     an anchor: the predictor forecasts t+h for each horizon and the
///     error against TruthTrace::StateAt(t+h) is recorded. Anchors whose
///     horizon extends beyond the trace end are skipped.
struct ForecastEvalConfig {
  std::vector<DurationMs> horizons = {1 * kMinute, 5 * kMinute,
                                      10 * kMinute, 20 * kMinute,
                                      30 * kMinute};
  DurationMs warmup = 5 * kMinute;
  int anchor_stride = 5;
  ObservationConfig observation;
};

ForecastEvaluation EvaluatePredictor(Predictor* predictor,
                                     const std::vector<TruthTrace>& traces,
                                     const ForecastEvalConfig& config);

}  // namespace datacron

#endif  // DATACRON_FORECAST_EVAL_H_
