#ifndef DATACRON_FORECAST_ROUTE_H_
#define DATACRON_FORECAST_ROUTE_H_

#include <map>
#include <memory>
#include <vector>

#include "forecast/predictor.h"
#include "geo/grid.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// Route-based (cluster-medoid) predictor: historical trajectories are
/// clustered (DTW threshold, medoid per cluster); at prediction time the
/// entity's current position+course is matched to the nearest compatible
/// point on any medoid route and the prediction follows that route at the
/// entity's current speed.
///
/// This is the "movement patterns repeat" family of datAcron forecasting:
/// it wins at long horizons on route-bound traffic (ferries, airways)
/// where kinematic extrapolation drifts off at the first turn.
class RoutePredictor : public Predictor {
 public:
  struct Config {
    /// Trajectories closer than this (normalized DTW) share a cluster.
    double cluster_threshold_m = 5000.0;
    /// A medoid point is a match only when within this distance...
    double match_radius_m = 1500.0;
    /// ...and its local course differs less than this. Tight matching
    /// matters: a wrong-route match is worse than the dead-reckoning
    /// fallback.
    double max_course_diff_deg = 35.0;
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  };

  RoutePredictor() : RoutePredictor(Config()) {}
  explicit RoutePredictor(Config config);

  std::string name() const override { return "route_medoid"; }

  /// Clusters `history` and indexes the medoid routes.
  void Train(const std::vector<Trajectory>& history);

  void Observe(const PositionReport& report) override {
    last_[report.entity_id] = report;
  }

  bool Predict(EntityId entity, DurationMs horizon,
               GeoPoint* out) const override;

  std::size_t MedoidCount() const { return medoids_.size(); }

 private:
  /// (medoid index, point index) packed for the grid index.
  static std::uint64_t Pack(std::size_t route, std::size_t point) {
    return (static_cast<std::uint64_t>(route) << 32) | point;
  }

  Config config_;
  std::vector<Trajectory> medoids_;
  /// Spatial index over all medoid points for O(1) matching.
  std::unique_ptr<GridIndex<std::uint64_t>> point_index_;
  std::map<EntityId, PositionReport> last_;
};

}  // namespace datacron

#endif  // DATACRON_FORECAST_ROUTE_H_
