#include "forecast/kalman.h"

#include <cmath>

namespace datacron {

// -- small dense 4x4 helpers (row-major) -----------------------------------

namespace {

constexpr int kN = 4;

using Mat4 = std::array<double, 16>;
using Vec4 = std::array<double, 4>;

double Get(const Mat4& m, int r, int c) { return m[r * kN + c]; }
void Set(Mat4* m, int r, int c, double v) { (*m)[r * kN + c] = v; }

Mat4 Identity() {
  Mat4 m{};
  for (int i = 0; i < kN; ++i) Set(&m, i, i, 1.0);
  return m;
}

Mat4 Multiply(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (int i = 0; i < kN; ++i) {
    for (int k = 0; k < kN; ++k) {
      const double aik = Get(a, i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < kN; ++j) {
        out[i * kN + j] += aik * Get(b, k, j);
      }
    }
  }
  return out;
}

Mat4 Transpose(const Mat4& a) {
  Mat4 out{};
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) Set(&out, i, j, Get(a, j, i));
  }
  return out;
}

Mat4 Add(const Mat4& a, const Mat4& b) {
  Mat4 out;
  for (int i = 0; i < kN * kN; ++i) out[i] = a[i] + b[i];
  return out;
}

Vec4 MulVec(const Mat4& a, const Vec4& v) {
  Vec4 out{};
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) out[i] += Get(a, i, j) * v[j];
  }
  return out;
}

/// Gauss-Jordan inverse; inputs here are SPD (P + R), so pivoting on the
/// diagonal is safe in practice; a tiny ridge guards degeneracy.
Mat4 Inverse(Mat4 a) {
  Mat4 inv = Identity();
  for (int col = 0; col < kN; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < kN; ++r) {
      if (std::fabs(Get(a, r, col)) > std::fabs(Get(a, pivot, col))) {
        pivot = r;
      }
    }
    if (std::fabs(Get(a, pivot, col)) < 1e-12) {
      Set(&a, pivot, col, Get(a, pivot, col) + 1e-9);
    }
    if (pivot != col) {
      for (int j = 0; j < kN; ++j) {
        std::swap(a[col * kN + j], a[pivot * kN + j]);
        std::swap(inv[col * kN + j], inv[pivot * kN + j]);
      }
    }
    const double diag = Get(a, col, col);
    for (int j = 0; j < kN; ++j) {
      a[col * kN + j] /= diag;
      inv[col * kN + j] /= diag;
    }
    for (int r = 0; r < kN; ++r) {
      if (r == col) continue;
      const double factor = Get(a, r, col);
      if (factor == 0.0) continue;
      for (int j = 0; j < kN; ++j) {
        a[r * kN + j] -= factor * a[col * kN + j];
        inv[r * kN + j] -= factor * inv[col * kN + j];
      }
    }
  }
  return inv;
}

/// Velocity components implied by a report's speed/course. Course is the
/// direction of travel, so ve = v*sin(course), vn = v*cos(course).
void VelocityOf(const PositionReport& r, double* ve, double* vn) {
  const double c = r.course_deg * kDegToRad;
  *ve = r.speed_mps * std::sin(c);
  *vn = r.speed_mps * std::cos(c);
}

}  // namespace

void KalmanPredictor::PredictStep(State* st, double dt_s) const {
  Mat4 f = Identity();
  Set(&f, 0, 2, dt_s);
  Set(&f, 1, 3, dt_s);
  st->x = MulVec(f, st->x);
  Mat4 fp = Multiply(f, st->p);
  st->p = Multiply(fp, Transpose(f));
  // White-noise acceleration process model.
  const double q = config_.process_accel * config_.process_accel;
  const double dt2 = dt_s * dt_s;
  Mat4 qm{};
  Set(&qm, 0, 0, q * dt2 * dt2 / 4);
  Set(&qm, 1, 1, q * dt2 * dt2 / 4);
  Set(&qm, 0, 2, q * dt2 * dt_s / 2);
  Set(&qm, 2, 0, q * dt2 * dt_s / 2);
  Set(&qm, 1, 3, q * dt2 * dt_s / 2);
  Set(&qm, 3, 1, q * dt2 * dt_s / 2);
  Set(&qm, 2, 2, q * dt2);
  Set(&qm, 3, 3, q * dt2);
  st->p = Add(st->p, qm);

  // Vertical channel.
  const double qv = config_.process_vert_accel * config_.process_vert_accel;
  st->alt_m += st->vrate_mps * dt_s;
  const double new_alt_var = st->alt_var + 2 * dt_s * st->alt_cov +
                             dt2 * st->vrate_var + qv * dt2 * dt2 / 4;
  const double new_cov =
      st->alt_cov + dt_s * st->vrate_var + qv * dt2 * dt_s / 2;
  st->vrate_var += qv * dt2;
  st->alt_var = new_alt_var;
  st->alt_cov = new_cov;
}

void KalmanPredictor::UpdateStep(State* st, const Vec4& z, double z_alt,
                                 double z_vrate) const {
  Mat4 r{};
  Set(&r, 0, 0, config_.meas_pos_m * config_.meas_pos_m);
  Set(&r, 1, 1, config_.meas_pos_m * config_.meas_pos_m);
  Set(&r, 2, 2, config_.meas_vel_mps * config_.meas_vel_mps);
  Set(&r, 3, 3, config_.meas_vel_mps * config_.meas_vel_mps);
  const Mat4 s = Add(st->p, r);
  const Mat4 k = Multiply(st->p, Inverse(s));
  Vec4 innov;
  for (int i = 0; i < kN; ++i) innov[i] = z[i] - st->x[i];
  const Vec4 corr = MulVec(k, innov);
  for (int i = 0; i < kN; ++i) st->x[i] += corr[i];
  Mat4 ik = Identity();
  for (int i = 0; i < kN * kN; ++i) ik[i] -= k[i];
  st->p = Multiply(ik, st->p);

  // Vertical scalar update (sequential: altitude then rate).
  {
    const double rr = config_.meas_alt_m * config_.meas_alt_m;
    const double gain_a = st->alt_var / (st->alt_var + rr);
    const double gain_c = st->alt_cov / (st->alt_var + rr);
    const double resid = z_alt - st->alt_m;
    st->alt_m += gain_a * resid;
    st->vrate_mps += gain_c * resid;
    st->vrate_var -= gain_c * st->alt_cov;
    st->alt_cov *= (1 - gain_a);
    st->alt_var *= (1 - gain_a);
  }
  {
    const double rr = config_.meas_vrate_mps * config_.meas_vrate_mps;
    const double gain = st->vrate_var / (st->vrate_var + rr);
    st->vrate_mps += gain * (z_vrate - st->vrate_mps);
    st->vrate_var *= (1 - gain);
    st->alt_cov *= (1 - gain);
  }
}

void KalmanPredictor::Observe(const PositionReport& report) {
  State& st = state_[report.entity_id];
  if (!st.warm) {
    st.anchor = report.position;
    st.x = {0.0, 0.0, 0.0, 0.0};
    VelocityOf(report, &st.x[2], &st.x[3]);
    st.p = {};
    const double p0 = config_.meas_pos_m * config_.meas_pos_m;
    const double v0 = config_.meas_vel_mps * config_.meas_vel_mps * 4;
    Set(&st.p, 0, 0, p0);
    Set(&st.p, 1, 1, p0);
    Set(&st.p, 2, 2, v0);
    Set(&st.p, 3, 3, v0);
    st.alt_m = report.position.alt_m;
    st.vrate_mps = report.vertical_rate_mps;
    st.alt_var = config_.meas_alt_m * config_.meas_alt_m;
    st.vrate_var = config_.meas_vrate_mps * config_.meas_vrate_mps * 4;
    st.alt_cov = 0.0;
    st.last_time = report.timestamp;
    st.domain = report.domain;
    st.warm = true;
    return;
  }
  const double dt_s =
      static_cast<double>(report.timestamp - st.last_time) / 1000.0;
  if (dt_s < 0) return;  // out of order
  if (dt_s > 0) PredictStep(&st, dt_s);

  const EnuVector enu = ToEnu(st.anchor, report.position);
  Vec4 z{enu.east_m, enu.north_m, 0.0, 0.0};
  VelocityOf(report, &z[2], &z[3]);
  UpdateStep(&st, z, report.position.alt_m, report.vertical_rate_mps);
  st.last_time = report.timestamp;
}

bool KalmanPredictor::Predict(EntityId entity, DurationMs horizon,
                              GeoPoint* out) const {
  auto it = state_.find(entity);
  if (it == state_.end() || !it->second.warm) return false;
  const State& st = it->second;
  const double dt_s = horizon / 1000.0;
  EnuVector enu;
  enu.east_m = st.x[0] + st.x[2] * dt_s;
  enu.north_m = st.x[1] + st.x[3] * dt_s;
  enu.up_m = (st.alt_m + st.vrate_mps * dt_s) - st.anchor.alt_m;
  *out = FromEnu(st.anchor, enu);
  if (st.domain == Domain::kMaritime) out->alt_m = 0.0;
  return true;
}

bool KalmanPredictor::CurrentEstimate(EntityId entity, GeoPoint* pos,
                                      double* ve_mps, double* vn_mps) const {
  auto it = state_.find(entity);
  if (it == state_.end() || !it->second.warm) return false;
  const State& st = it->second;
  *pos = FromEnu(st.anchor, {st.x[0], st.x[1], st.alt_m - st.anchor.alt_m});
  *ve_mps = st.x[2];
  *vn_mps = st.x[3];
  return true;
}

}  // namespace datacron
