#include "forecast/kalman.h"

#include <cmath>

#include "common/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datacron {

// -- small dense 4x4 helpers (row-major) -----------------------------------
//
// Templated over the SIMD abi: matrix rows (or row segments) are vector
// lanes. Every lane accumulates in the same k/j-ascending order at both
// widths, so the scalar and native instantiations produce bit-identical
// matrices — the property Config::force_scalar_simd cross-checks.

namespace {

constexpr int kN = 4;

using Mat4 = std::array<double, 16>;
using Vec4 = std::array<double, 4>;

double Get(const Mat4& m, int r, int c) { return m[r * kN + c]; }
void Set(Mat4* m, int r, int c, double v) { (*m)[r * kN + c] = v; }

Mat4 Identity() {
  Mat4 m{};
  for (int i = 0; i < kN; ++i) Set(&m, i, i, 1.0);
  return m;
}

template <typename Abi>
Mat4 Multiply(const Mat4& a, const Mat4& b) {
  using D = simd::Simd<double, Abi>;
  constexpr int kW = D::kWidth;
  static_assert(kN % kW == 0, "row length must be a multiple of the width");
  Mat4 out;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; j += kW) {
      D acc(0.0);
      for (int k = 0; k < kN; ++k) {
        acc = acc + D(a[i * kN + k]) * D::Load(&b[k * kN + j]);
      }
      acc.Store(&out[i * kN + j]);
    }
  }
  return out;
}

Mat4 Transpose(const Mat4& a) {
  Mat4 out{};
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) Set(&out, i, j, Get(a, j, i));
  }
  return out;
}

template <typename Abi>
Mat4 Add(const Mat4& a, const Mat4& b) {
  using D = simd::Simd<double, Abi>;
  Mat4 out;
  for (int i = 0; i < kN * kN; i += D::kWidth) {
    (D::Load(&a[i]) + D::Load(&b[i])).Store(&out[i]);
  }
  return out;
}

template <typename Abi>
Vec4 MulVec(const Mat4& a, const Vec4& v) {
  using D = simd::Simd<double, Abi>;
  constexpr int kW = D::kWidth;
  Vec4 out;
  for (int i = 0; i < kN; i += kW) {
    D acc(0.0);
    for (int j = 0; j < kN; ++j) {
      // Lane l reads a[(i+l)*kN + j]: a column segment.
      acc = acc + D::LoadStrided(&a[i * kN + j], kN) * D(v[j]);
    }
    acc.Store(&out[i]);
  }
  return out;
}

/// Gauss-Jordan inverse; inputs here are SPD (P + R), so pivoting on the
/// diagonal is safe in practice; a tiny ridge guards degeneracy. Pivot
/// search and row swaps stay scalar (data-dependent); the row scale and
/// eliminate passes are lane-parallel. Eliminate uses separate mul and
/// sub, not Fma, to match the scalar expression under -ffp-contract=off.
template <typename Abi>
Mat4 Inverse(Mat4 a) {
  using D = simd::Simd<double, Abi>;
  constexpr int kW = D::kWidth;
  Mat4 inv = Identity();
  for (int col = 0; col < kN; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < kN; ++r) {
      if (std::fabs(Get(a, r, col)) > std::fabs(Get(a, pivot, col))) {
        pivot = r;
      }
    }
    if (std::fabs(Get(a, pivot, col)) < 1e-12) {
      Set(&a, pivot, col, Get(a, pivot, col) + 1e-9);
    }
    if (pivot != col) {
      for (int j = 0; j < kN; ++j) {
        std::swap(a[col * kN + j], a[pivot * kN + j]);
        std::swap(inv[col * kN + j], inv[pivot * kN + j]);
      }
    }
    const D diag(Get(a, col, col));
    for (int j = 0; j < kN; j += kW) {
      (D::Load(&a[col * kN + j]) / diag).Store(&a[col * kN + j]);
      (D::Load(&inv[col * kN + j]) / diag).Store(&inv[col * kN + j]);
    }
    for (int r = 0; r < kN; ++r) {
      if (r == col) continue;
      const double factor = Get(a, r, col);
      if (factor == 0.0) continue;
      const D f(factor);
      for (int j = 0; j < kN; j += kW) {
        (D::Load(&a[r * kN + j]) - f * D::Load(&a[col * kN + j]))
            .Store(&a[r * kN + j]);
        (D::Load(&inv[r * kN + j]) - f * D::Load(&inv[col * kN + j]))
            .Store(&inv[r * kN + j]);
      }
    }
  }
  return inv;
}

/// One entity's mutable filter columns, bundled so the predict/update
/// kernels read like the textbook equations.
struct StateRef {
  Vec4& x;
  Mat4& p;
  double& alt_m;
  double& vrate_mps;
  double& alt_var;
  double& vrate_var;
  double& alt_cov;
};

template <typename Abi>
void PredictStep(const KalmanPredictor::Config& config, StateRef st,
                 double dt_s) {
  Mat4 f = Identity();
  Set(&f, 0, 2, dt_s);
  Set(&f, 1, 3, dt_s);
  st.x = MulVec<Abi>(f, st.x);
  const Mat4 fp = Multiply<Abi>(f, st.p);
  st.p = Multiply<Abi>(fp, Transpose(f));
  // White-noise acceleration process model.
  const double q = config.process_accel * config.process_accel;
  const double dt2 = dt_s * dt_s;
  Mat4 qm{};
  Set(&qm, 0, 0, q * dt2 * dt2 / 4);
  Set(&qm, 1, 1, q * dt2 * dt2 / 4);
  Set(&qm, 0, 2, q * dt2 * dt_s / 2);
  Set(&qm, 2, 0, q * dt2 * dt_s / 2);
  Set(&qm, 1, 3, q * dt2 * dt_s / 2);
  Set(&qm, 3, 1, q * dt2 * dt_s / 2);
  Set(&qm, 2, 2, q * dt2);
  Set(&qm, 3, 3, q * dt2);
  st.p = Add<Abi>(st.p, qm);

  // Vertical channel.
  const double qv = config.process_vert_accel * config.process_vert_accel;
  st.alt_m += st.vrate_mps * dt_s;
  const double new_alt_var = st.alt_var + 2 * dt_s * st.alt_cov +
                             dt2 * st.vrate_var + qv * dt2 * dt2 / 4;
  const double new_cov =
      st.alt_cov + dt_s * st.vrate_var + qv * dt2 * dt_s / 2;
  st.vrate_var += qv * dt2;
  st.alt_var = new_alt_var;
  st.alt_cov = new_cov;
}

template <typename Abi>
void UpdateStep(const KalmanPredictor::Config& config, StateRef st,
                const Vec4& z, double z_alt, double z_vrate) {
  using D = simd::Simd<double, Abi>;
  Mat4 r{};
  Set(&r, 0, 0, config.meas_pos_m * config.meas_pos_m);
  Set(&r, 1, 1, config.meas_pos_m * config.meas_pos_m);
  Set(&r, 2, 2, config.meas_vel_mps * config.meas_vel_mps);
  Set(&r, 3, 3, config.meas_vel_mps * config.meas_vel_mps);
  const Mat4 s = Add<Abi>(st.p, r);
  const Mat4 k = Multiply<Abi>(st.p, Inverse<Abi>(s));
  Vec4 innov;
  for (int i = 0; i < kN; ++i) innov[i] = z[i] - st.x[i];
  const Vec4 corr = MulVec<Abi>(k, innov);
  for (int i = 0; i < kN; ++i) st.x[i] += corr[i];
  Mat4 ik = Identity();
  for (int i = 0; i < kN * kN; i += D::kWidth) {
    (D::Load(&ik[i]) - D::Load(&k[i])).Store(&ik[i]);
  }
  st.p = Multiply<Abi>(ik, st.p);

  // Vertical scalar update (sequential: altitude then rate).
  {
    const double rr = config.meas_alt_m * config.meas_alt_m;
    const double gain_a = st.alt_var / (st.alt_var + rr);
    const double gain_c = st.alt_cov / (st.alt_var + rr);
    const double resid = z_alt - st.alt_m;
    st.alt_m += gain_a * resid;
    st.vrate_mps += gain_c * resid;
    st.vrate_var -= gain_c * st.alt_cov;
    st.alt_cov *= (1 - gain_a);
    st.alt_var *= (1 - gain_a);
  }
  {
    const double rr = config.meas_vrate_mps * config.meas_vrate_mps;
    const double gain = st.vrate_var / (st.vrate_var + rr);
    st.vrate_mps += gain * (z_vrate - st.vrate_mps);
    st.vrate_var *= (1 - gain);
    st.alt_cov *= (1 - gain);
  }
}

}  // namespace

std::uint32_t KalmanPredictor::StateSoa::Append() {
  const std::uint32_t slot = static_cast<std::uint32_t>(x.size());
  anchor.emplace_back();
  x.emplace_back();
  p.emplace_back();
  alt_m.push_back(0.0);
  vrate_mps.push_back(0.0);
  alt_var.push_back(0.0);
  vrate_var.push_back(0.0);
  alt_cov.push_back(0.0);
  last_time.push_back(0);
  domain.push_back(Domain::kMaritime);
  return slot;
}

template <typename Abi>
void KalmanPredictor::ObserveWarm(std::uint32_t slot,
                                  const PositionReport& report) {
  const double dt_s =
      static_cast<double>(report.timestamp - states_.last_time[slot]) / 1000.0;
  if (dt_s < 0) return;  // out of order
  StateRef st{states_.x[slot],        states_.p[slot],
              states_.alt_m[slot],    states_.vrate_mps[slot],
              states_.alt_var[slot],  states_.vrate_var[slot],
              states_.alt_cov[slot]};
  if (dt_s > 0) PredictStep<Abi>(config_, st, dt_s);

  const EnuVector enu = ToEnu(states_.anchor[slot], report.position);
  Vec4 z{enu.east_m, enu.north_m, 0.0, 0.0};
  CourseToVelocityMps(report.course_deg, report.speed_mps, &z[2], &z[3]);
  UpdateStep<Abi>(config_, st, z, report.position.alt_m,
                  report.vertical_rate_mps);
  states_.last_time[slot] = report.timestamp;
}

void KalmanPredictor::Observe(const PositionReport& report) {
  const std::uint32_t* found = slot_.Find(report.entity_id);
  if (found == nullptr) {
    // Cold init: anchor the ENU frame here, seed velocity from the
    // report and covariance from the measurement noise.
    const std::uint32_t slot = states_.Append();
    slot_[report.entity_id] = slot;
    states_.anchor[slot] = report.position;
    Vec4 x0{0.0, 0.0, 0.0, 0.0};
    CourseToVelocityMps(report.course_deg, report.speed_mps, &x0[2], &x0[3]);
    states_.x[slot] = x0;
    Mat4 p0{};
    const double pp = config_.meas_pos_m * config_.meas_pos_m;
    const double vv = config_.meas_vel_mps * config_.meas_vel_mps * 4;
    Set(&p0, 0, 0, pp);
    Set(&p0, 1, 1, pp);
    Set(&p0, 2, 2, vv);
    Set(&p0, 3, 3, vv);
    states_.p[slot] = p0;
    states_.alt_m[slot] = report.position.alt_m;
    states_.vrate_mps[slot] = report.vertical_rate_mps;
    states_.alt_var[slot] = config_.meas_alt_m * config_.meas_alt_m;
    states_.vrate_var[slot] =
        config_.meas_vrate_mps * config_.meas_vrate_mps * 4;
    states_.alt_cov[slot] = 0.0;
    states_.last_time[slot] = report.timestamp;
    states_.domain[slot] = report.domain;
    return;
  }
  if (config_.force_scalar_simd) {
    ObserveWarm<simd::scalar_abi>(*found, report);
  } else {
    ObserveWarm<simd::native_abi>(*found, report);
  }
}

void KalmanPredictor::ObserveBatch(std::span<const PositionReport> reports) {
  DATACRON_TRACE_SPAN("forecast.kalman_batch", "forecast");
  static obs::Counter* const reports_counter =
      obs::MetricsRegistry::Global().counter("forecast.kalman_reports");
  reports_counter->Add(reports.size());
  for (const PositionReport& r : reports) Observe(r);
}

bool KalmanPredictor::Predict(EntityId entity, DurationMs horizon,
                              GeoPoint* out) const {
  const std::uint32_t* found = slot_.Find(entity);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  const double dt_s = horizon / 1000.0;
  const Vec4& x = states_.x[slot];
  EnuVector enu;
  enu.east_m = x[0] + x[2] * dt_s;
  enu.north_m = x[1] + x[3] * dt_s;
  enu.up_m = (states_.alt_m[slot] + states_.vrate_mps[slot] * dt_s) -
             states_.anchor[slot].alt_m;
  *out = FromEnu(states_.anchor[slot], enu);
  if (states_.domain[slot] == Domain::kMaritime) out->alt_m = 0.0;
  return true;
}

bool KalmanPredictor::CurrentEstimate(EntityId entity, GeoPoint* pos,
                                      double* ve_mps, double* vn_mps) const {
  const std::uint32_t* found = slot_.Find(entity);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  const Vec4& x = states_.x[slot];
  *pos = FromEnu(states_.anchor[slot],
                 {x[0], x[1], states_.alt_m[slot] - states_.anchor[slot].alt_m});
  *ve_mps = x[2];
  *vn_mps = x[3];
  return true;
}

}  // namespace datacron
