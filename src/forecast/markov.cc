#include "forecast/markov.h"

#include <algorithm>
#include <cmath>

namespace datacron {

MarkovGridPredictor::MarkovGridPredictor(Config config)
    : config_(config), grid_(config.region, config.cell_deg) {}

void MarkovGridPredictor::Learn(EntityId entity, const GridCell& cell) {
  auto it = last_cell_.find(entity);
  if (it != last_cell_.end() && !(it->second == cell)) {
    ++transitions_[it->second.Key()][cell.Key()];
  }
  last_cell_[entity] = cell;
}

void MarkovGridPredictor::Train(
    const std::vector<PositionReport>& history) {
  for (const PositionReport& r : history) {
    Learn(r.entity_id, grid_.CellOf(r.position.ll()));
  }
  // Training trajectories must not chain into live observation.
  last_cell_.clear();
}

void MarkovGridPredictor::Observe(const PositionReport& report) {
  Learn(report.entity_id, grid_.CellOf(report.position.ll()));
  last_report_[report.entity_id] = report;
}

bool MarkovGridPredictor::Predict(EntityId entity, DurationMs horizon,
                                  GeoPoint* out) const {
  auto it = last_report_.find(entity);
  if (it == last_report_.end()) return false;
  const PositionReport& r = it->second;

  // Distance budget to spend walking the likely cell chain.
  double budget_m = r.speed_mps * (horizon / 1000.0);
  const double cell_m = config_.cell_deg * kDegToRad * kEarthRadiusMeters *
                        std::cos(r.position.lat_deg * kDegToRad);

  GridCell cell = grid_.CellOf(r.position.ll());
  LatLon pos = r.position.ll();
  // Guard against cycles: cap steps.
  const int max_steps = static_cast<int>(budget_m / std::max(1.0, cell_m)) + 2;
  for (int step = 0; step < max_steps && budget_m > cell_m * 0.5; ++step) {
    auto trans_it = transitions_.find(cell.Key());
    if (trans_it == transitions_.end()) break;
    // Most frequent next cell, preferring continuation of current heading
    // on ties by taking the first maximal entry deterministically.
    std::uint64_t best_key = 0;
    std::size_t best_count = 0;
    for (const auto& [to_key, count] : trans_it->second) {
      if (count < config_.min_transition_count) continue;
      if (count > best_count ||
          (count == best_count && to_key < best_key)) {
        best_count = count;
        best_key = to_key;
      }
    }
    if (best_count == 0) break;
    const GridCell next = GridCell::FromKey(best_key);
    const LatLon next_center = grid_.CellCenter(next);
    const double hop = EquirectangularMeters(pos, next_center);
    if (hop > budget_m) {
      // Partial hop: move toward the next center by the remaining budget.
      const double bearing = InitialBearingDeg(pos, next_center);
      pos = DestinationPoint(pos, bearing, budget_m);
      budget_m = 0;
      cell = next;
      break;
    }
    budget_m -= hop;
    pos = next_center;
    cell = next;
  }
  if (budget_m > 0) {
    // No (more) learned structure: spend the rest as dead reckoning.
    pos = DestinationPoint(pos, r.course_deg, budget_m);
  }
  *out = GeoPoint{pos.lat_deg, pos.lon_deg,
                  r.position.alt_m +
                      r.vertical_rate_mps * (horizon / 1000.0)};
  return true;
}

}  // namespace datacron
