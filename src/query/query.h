#ifndef DATACRON_QUERY_QUERY_H_
#define DATACRON_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_utils.h"
#include "geo/bbox.h"
#include "rdf/term.h"

namespace datacron {

/// A position in a triple pattern: either a bound term or a variable.
struct QueryTerm {
  /// Bound term (kInvalidTermId when this is a variable).
  TermId term = kInvalidTermId;
  /// Variable index in [0, Query::num_vars); -1 when bound.
  int var = -1;

  bool IsVar() const { return var >= 0; }

  static QueryTerm Bound(TermId t) { return QueryTerm{t, -1}; }
  static QueryTerm Var(int v) { return QueryTerm{kInvalidTermId, v}; }
};

/// One triple pattern of a basic graph pattern.
struct QueryTriple {
  QueryTerm s, p, o;
};

/// FILTER: variable must bind to a position node located inside `box`.
struct SpatialConstraint {
  int var = -1;
  BoundingBox box;
};

/// FILTER: variable must bind to a position node with timestamp in
/// [t_min, t_max].
struct TemporalConstraint {
  int var = -1;
  TimestampMs t_min = 0;
  TimestampMs t_max = 0;
};

/// A conjunctive spatiotemporal RDF query: a BGP plus spatial/temporal
/// constraints on node variables — the query class the datAcron
/// spatiotemporal query-answering component serves. Constraints both
/// filter results and prune partitions before any index is touched.
struct Query {
  int num_vars = 0;
  std::vector<QueryTriple> bgp;
  std::vector<SpatialConstraint> spatial;
  std::vector<TemporalConstraint> temporal;
};

/// Fluent builder so examples/tests read declaratively.
class QueryBuilder {
 public:
  /// Returns the index of a named variable, creating it on first use.
  int Var(const std::string& name);

  QueryBuilder& Pattern(QueryTerm s, QueryTerm p, QueryTerm o);
  /// Convenience: subject variable name, bound predicate, object either
  /// variable name (prefixed "?") or bound id.
  QueryBuilder& Where(const std::string& subject_var, TermId predicate,
                      TermId object);
  QueryBuilder& WhereVar(const std::string& subject_var, TermId predicate,
                         const std::string& object_var);
  QueryBuilder& Within(const std::string& node_var, const BoundingBox& box);
  QueryBuilder& During(const std::string& node_var, TimestampMs t_min,
                       TimestampMs t_max);

  Query Build() const { return query_; }

 private:
  std::vector<std::string> var_names_;
  Query query_;
};

/// One result row: value of each variable (kInvalidTermId = unbound).
using Binding = std::vector<TermId>;

}  // namespace datacron

#endif  // DATACRON_QUERY_QUERY_H_
