#ifndef DATACRON_QUERY_AGGREGATE_H_
#define DATACRON_QUERY_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/engine.h"
#include "rdf/term.h"

namespace datacron {

/// Aggregation over query results — the reporting layer on top of the
/// BGP engine (SPARQL's GROUP BY / COUNT / AVG, reduced to what mobility
/// analytics needs: counts and numeric statistics of literal columns
/// grouped by a key column).
enum class AggregateFn : std::uint8_t { kCount = 0, kSum, kAvg, kMin, kMax };

const char* AggregateFnName(AggregateFn fn);

struct AggregateRow {
  /// Group key (term id of the group variable's binding).
  TermId key = kInvalidTermId;
  double value = 0.0;
  std::size_t count = 0;
};

/// Groups `rs` rows by the binding of `group_var` and aggregates the
/// numeric value of `value_var`'s binding (parsed from its literal text;
/// non-numeric / unbound values are skipped, kCount counts rows
/// regardless). Results are ordered by descending value.
///
/// `dict` resolves literal text. Fails on invalid variable indices.
Result<std::vector<AggregateRow>> Aggregate(const ResultSet& rs,
                                            int group_var, int value_var,
                                            AggregateFn fn,
                                            const TermDictionary& dict);

/// Formats aggregate rows as an aligned text table; keys resolved
/// through `dict`.
std::string AggregateTable(const std::vector<AggregateRow>& rows,
                           const TermDictionary& dict,
                           const std::string& key_header,
                           const std::string& value_header,
                           std::size_t max_rows = 20);

}  // namespace datacron

#endif  // DATACRON_QUERY_AGGREGATE_H_
