#include "query/parser.h"

#include <cctype>

#include "common/strings.h"
#include "common/time_utils.h"

namespace datacron {

namespace {

/// Token stream over the query text. Tokens: words, `?var`, `<iri>`,
/// `"literal"^^kind`, and the punctuation { } . * .
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  /// Next token; empty string at end. Sets `ok=false` on lexing errors.
  std::string Next() {
    SkipSpace();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (c == '{' || c == '}' || c == '.' || c == '*') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '<') {
      const std::size_t end = text_.find('>', pos_);
      if (end == std::string::npos) {
        ok_ = false;
        return "";
      }
      std::string tok = text_.substr(pos_, end - pos_ + 1);
      pos_ = end + 1;
      return tok;
    }
    if (c == '"') {
      std::size_t i = pos_ + 1;
      while (i < text_.size() && text_[i] != '"') {
        if (text_[i] == '\\') ++i;
        ++i;
      }
      if (i >= text_.size()) {
        ok_ = false;
        return "";
      }
      // Include the ^^kind suffix if present.
      std::size_t end = i + 1;
      if (end + 1 < text_.size() && text_[end] == '^' &&
          text_[end + 1] == '^') {
        end += 2;
        while (end < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[end])) &&
               text_[end] != '.') {
          ++end;
        }
      }
      std::string tok = text_.substr(pos_, end - pos_);
      pos_ = end;
      return tok;
    }
    // Word: ?var, keyword, number, ISO timestamp.
    std::size_t end = pos_;
    while (end < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[end])) &&
           text_[end] != '{' && text_[end] != '}') {
      ++end;
    }
    std::string tok = text_.substr(pos_, end - pos_);
    pos_ = end;
    return tok;
  }

  bool ok() const { return ok_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

bool IsVar(const std::string& tok) {
  return tok.size() > 1 && tok[0] == '?';
}

/// Parses a bound term token (<iri> or "literal"^^kind) into a TermId.
bool ParseBoundTerm(const std::string& tok, TermDictionary* dict,
                    TermId* out) {
  if (tok.size() >= 2 && tok.front() == '<' && tok.back() == '>') {
    *out = dict->Intern(tok.substr(1, tok.size() - 2));
    return true;
  }
  if (!tok.empty() && tok.front() == '"') {
    const std::size_t close = tok.rfind('"');
    if (close == 0) return false;
    std::string lexical;
    for (std::size_t i = 1; i < close; ++i) {
      if (tok[i] == '\\' && i + 1 < close) ++i;
      lexical += tok[i];
    }
    TermKind kind = TermKind::kLiteralString;
    if (close + 2 < tok.size() && tok[close + 1] == '^' &&
        tok[close + 2] == '^') {
      const std::string suffix = tok.substr(close + 3);
      if (suffix == "string") {
        kind = TermKind::kLiteralString;
      } else if (suffix == "int") {
        kind = TermKind::kLiteralInt;
      } else if (suffix == "double") {
        kind = TermKind::kLiteralDouble;
      } else if (suffix == "dateTime") {
        kind = TermKind::kLiteralDateTime;
      } else {
        return false;
      }
    }
    *out = dict->Intern(lexical, kind);
    return true;
  }
  return false;
}

/// Epoch-ms from either an ISO-8601 instant or a raw integer.
bool ParseInstant(const std::string& tok, TimestampMs* out) {
  if (ParseIso8601(tok, out)) return true;
  return ParseInt64(tok, out);
}

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text,
                               TermDictionary* dict) {
  Tokenizer lexer(text);
  ParsedQuery parsed;
  QueryBuilder builder;
  bool select_all = false;

  auto var_index = [&](const std::string& tok) {
    const int idx = builder.Var(tok.substr(1));
    if (static_cast<std::size_t>(idx) >= parsed.var_names.size()) {
      parsed.var_names.push_back(tok.substr(1));
    }
    return idx;
  };

  // SELECT clause.
  std::string tok = lexer.Next();
  if (Upper(tok) != "SELECT") {
    return Status::ParseError("expected SELECT, got '" + tok + "'");
  }
  std::vector<std::string> select_names;
  while (true) {
    tok = lexer.Next();
    if (tok == "*") {
      select_all = true;
      tok = lexer.Next();
      break;
    }
    if (IsVar(tok)) {
      select_names.push_back(tok.substr(1));
      continue;
    }
    break;
  }
  if (!select_all && select_names.empty()) {
    return Status::ParseError("SELECT needs at least one variable or *");
  }

  // WHERE { pattern . pattern . ... }
  if (Upper(tok) != "WHERE") {
    return Status::ParseError("expected WHERE, got '" + tok + "'");
  }
  if (lexer.Next() != "{") {
    return Status::ParseError("expected '{' after WHERE");
  }
  while (true) {
    std::string first = lexer.Next();
    if (first == "}") break;
    if (first.empty()) {
      return Status::ParseError("unterminated WHERE block");
    }
    std::string second = lexer.Next();
    std::string third = lexer.Next();
    if (second.empty() || third.empty()) {
      return Status::ParseError("incomplete triple pattern");
    }
    auto to_term = [&](const std::string& t, QueryTerm* out) {
      if (IsVar(t)) {
        *out = QueryTerm::Var(var_index(t));
        return true;
      }
      TermId id;
      if (!ParseBoundTerm(t, dict, &id)) return false;
      *out = QueryTerm::Bound(id);
      return true;
    };
    QueryTerm s, p, o;
    if (!to_term(first, &s) || !to_term(second, &p) || !to_term(third, &o)) {
      return Status::ParseError("bad term in pattern: " + first + " " +
                                second + " " + third);
    }
    builder.Pattern(s, p, o);
    const std::string dot = lexer.Next();
    if (dot == "}") break;
    if (dot != ".") {
      return Status::ParseError("expected '.' or '}' after pattern");
    }
  }

  // Optional WITHIN / DURING clauses.
  while (true) {
    tok = lexer.Next();
    if (tok.empty()) break;
    const std::string kw = Upper(tok);
    if (kw == "WITHIN") {
      double vals[4];
      for (double& v : vals) {
        if (!ParseDouble(lexer.Next(), &v)) {
          return Status::ParseError("WITHIN needs 4 numbers");
        }
      }
      if (Upper(lexer.Next()) != "ON") {
        return Status::ParseError("WITHIN needs ON ?var");
      }
      const std::string var = lexer.Next();
      if (!IsVar(var)) return Status::ParseError("WITHIN ON needs ?var");
      builder.Within(var.substr(1),
                     BoundingBox::Of(vals[0], vals[1], vals[2], vals[3]));
      var_index(var);
    } else if (kw == "DURING") {
      TimestampMs t0, t1;
      if (!ParseInstant(lexer.Next(), &t0) ||
          !ParseInstant(lexer.Next(), &t1)) {
        return Status::ParseError(
            "DURING needs two instants (ISO-8601 or epoch ms)");
      }
      if (Upper(lexer.Next()) != "ON") {
        return Status::ParseError("DURING needs ON ?var");
      }
      const std::string var = lexer.Next();
      if (!IsVar(var)) return Status::ParseError("DURING ON needs ?var");
      builder.During(var.substr(1), t0, t1);
      var_index(var);
    } else {
      return Status::ParseError("unexpected token '" + tok + "'");
    }
  }
  if (!lexer.ok()) return Status::ParseError("lexing error");

  parsed.query = builder.Build();
  // Resolve the projection.
  if (select_all) {
    parsed.select = parsed.var_names;
  } else {
    parsed.select = select_names;
  }
  for (const std::string& name : parsed.select) {
    int found = -1;
    for (std::size_t i = 0; i < parsed.var_names.size(); ++i) {
      if (parsed.var_names[i] == name) found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::ParseError("projected variable ?" + name +
                                " not used in WHERE");
    }
    parsed.select_vars.push_back(found);
  }
  return parsed;
}

}  // namespace datacron
