#ifndef DATACRON_QUERY_PARSER_H_
#define DATACRON_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "rdf/term.h"

namespace datacron {

/// A parsed query: the executable Query plus the SELECT projection (which
/// variable names, in which order) and the full variable-name table
/// (index = variable id in Bindings).
struct ParsedQuery {
  Query query;
  std::vector<std::string> select;       // projected variable names
  std::vector<int> select_vars;          // their indices
  std::vector<std::string> var_names;    // all variables by index
};

/// Parses the library's SPARQL-inspired spatiotemporal query dialect:
///
///   SELECT ?node ?speed
///   WHERE {
///     ?node <rdf:type> <dc:PositionNode> .
///     ?node <dc:hasSpeed> ?speed .
///   }
///   WITHIN 36.0 24.0 37.0 25.0 ON ?node
///   DURING 2017-03-20T00:00:00Z 2017-03-21T00:00:00Z ON ?node
///
/// Terms in patterns are `?var`, `<iri>`, or `"lexical"^^kind` with kind
/// in {string,int,double,dateTime} (the N-Triples dialect of
/// rdf/ntriples.h). WITHIN takes min_lat min_lon max_lat max_lon; DURING
/// takes two ISO-8601 instants or raw epoch-millisecond integers. Both
/// clauses may repeat. `SELECT *` projects every variable.
///
/// Bound terms are interned into `dict` (a query about an unknown IRI
/// simply matches nothing).
Result<ParsedQuery> ParseQuery(const std::string& text,
                               TermDictionary* dict);

}  // namespace datacron

#endif  // DATACRON_QUERY_PARSER_H_
