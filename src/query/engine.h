#ifndef DATACRON_QUERY_ENGINE_H_
#define DATACRON_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "partition/partitioned_store.h"
#include "query/query.h"
#include "rdf/rdfizer.h"

namespace datacron {

/// Execution diagnostics of one query run (E5 reports these), including a
/// per-stage wall-time breakdown so the bench can attribute cost to
/// planning, index scans, hash joins and the final constraint filter.
struct QueryExecStats {
  int partitions_total = 0;
  int partitions_scanned = 0;
  std::size_t intermediate_rows = 0;
  std::size_t result_rows = 0;
  double wall_ms = 0.0;
  double plan_ms = 0.0;
  double scan_ms = 0.0;
  double join_ms = 0.0;
  double filter_ms = 0.0;
  /// Intermediate row count after each hash join, in join order.
  std::vector<std::size_t> join_rows;

  std::string ToString() const;
};

/// A query answer: the rows plus execution statistics. Row order is
/// deterministic — identical for serial and pooled execution at any
/// thread count (partition-index / row-index merge order, never
/// lock-arrival order).
struct ResultSet {
  std::vector<Binding> rows;
  QueryExecStats stats;
};

/// The spatiotemporal query-answering component: parallel BGP evaluation
/// with spatial/temporal filter pushdown over a PartitionedRdfStore.
///
/// Two execution strategies are provided:
///  - ExecuteLocal: each (pruned) partition evaluates the whole BGP
///    independently and results are unioned. Complete whenever every
///    match's triples are colocated (true for subject-star queries under
///    subject-based placement; true for neighborhood queries under
///    locality-preserving placement most of the time).
///  - ExecuteGlobal: every triple pattern is scanned across the pruned
///    partitions in parallel into a columnar binding table (only the
///    pattern's own variables, rows in one flat TermId array), then
///    tables are hash-joined in selectivity order on packed u64 keys
///    over open-addressing FlatHashMaps, with a partitioned parallel
///    build side. Always complete, at higher cost.
/// The E5 benchmark quantifies the gap — the classic locality-versus-
/// completeness trade in distributed RDF stores.
class QueryEngine {
 public:
  /// `rdfizer` provides the node geometry/time side tables used by the
  /// constraints (snapshotted into a flat probe table at construction);
  /// `pool` may be null for sequential execution.
  QueryEngine(const PartitionedRdfStore* store, const Rdfizer* rdfizer,
              ThreadPool* pool = nullptr);

  ResultSet ExecuteLocal(const Query& query) const;
  ResultSet ExecuteGlobal(const Query& query) const;

  /// Partition indices surviving constraint-based pruning for `query`.
  std::vector<int> PrunedPartitions(const Query& query) const;

 private:
  /// Index-nested-loop evaluation of the whole BGP within one store.
  void EvalBgpInStore(const TripleStore& store, const Query& query,
                      std::vector<Binding>* out) const;

  /// Recursive pattern-at-a-time extension. Allocation-free per triple:
  /// a pattern has at most 3 free positions, so newly bound variables
  /// live in a fixed stack array.
  void Extend(const TripleStore& store, const Query& query,
              const std::vector<int>& pattern_order, std::size_t depth,
              Binding* binding, std::vector<Binding>* out) const;

  /// True when `binding` satisfies all spatial/temporal constraints whose
  /// variables are bound.
  bool SatisfiesConstraints(const Query& query, const Binding& binding,
                            bool require_bound) const;

  /// Greedy selectivity order of BGP patterns for `store`.
  std::vector<int> PlanOrder(const TripleStore& store,
                             const Query& query) const;

  const PartitionedRdfStore* store_;
  const Rdfizer* rdfizer_;
  ThreadPool* pool_;
  /// Flat open-addressing snapshot of the rdfizer's node geometry table —
  /// the constraint checks probe this on every candidate row.
  FlatHashMap<TermId, NodeGeo> geo_;
};

}  // namespace datacron

#endif  // DATACRON_QUERY_ENGINE_H_
