#include "query/engine.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/strings.h"
#include "common/time_utils.h"

namespace datacron {

std::string QueryExecStats::ToString() const {
  return StrFormat(
      "partitions=%d/%d intermediate=%zu results=%zu wall=%.3fms",
      partitions_scanned, partitions_total, intermediate_rows, result_rows,
      wall_ms);
}

QueryEngine::QueryEngine(const PartitionedRdfStore* store,
                         const Rdfizer* rdfizer, ThreadPool* pool)
    : store_(store), rdfizer_(rdfizer), pool_(pool) {}

namespace {

/// Substitutes current bindings into a pattern, producing a concrete
/// TriplePattern plus the variable index for each still-free position.
struct ResolvedPattern {
  TriplePattern concrete;
  int var_s = -1, var_p = -1, var_o = -1;
};

ResolvedPattern Resolve(const QueryTriple& qt, const Binding& binding) {
  ResolvedPattern r;
  auto resolve_one = [&binding](const QueryTerm& t, TermId* slot, int* var) {
    if (!t.IsVar()) {
      *slot = t.term;
    } else if (binding[t.var] != kInvalidTermId) {
      *slot = binding[t.var];
    } else {
      *var = t.var;
    }
  };
  resolve_one(qt.s, &r.concrete.s, &r.var_s);
  resolve_one(qt.p, &r.concrete.p, &r.var_p);
  resolve_one(qt.o, &r.concrete.o, &r.var_o);
  return r;
}

/// Binds the free positions of `rp` from a matched triple; returns false
/// when a repeated variable binds inconsistently.
bool BindMatch(const ResolvedPattern& rp, const Triple& t, Binding* binding,
               std::vector<int>* newly_bound) {
  auto bind_one = [&](int var, TermId value) {
    if (var < 0) return true;
    TermId& slot = (*binding)[var];
    if (slot == kInvalidTermId) {
      slot = value;
      newly_bound->push_back(var);
      return true;
    }
    return slot == value;
  };
  return bind_one(rp.var_s, t.s) && bind_one(rp.var_p, t.p) &&
         bind_one(rp.var_o, t.o);
}

}  // namespace

bool QueryEngine::SatisfiesConstraints(const Query& query,
                                       const Binding& binding,
                                       bool require_bound) const {
  const auto& geo = rdfizer_->node_geo();
  for (const SpatialConstraint& c : query.spatial) {
    const TermId value = binding[c.var];
    if (value == kInvalidTermId) {
      if (require_bound) return false;
      continue;
    }
    auto it = geo.find(value);
    if (it == geo.end()) return false;
    if (!c.box.Contains(LatLon{it->second.lat_deg, it->second.lon_deg})) {
      return false;
    }
  }
  for (const TemporalConstraint& c : query.temporal) {
    const TermId value = binding[c.var];
    if (value == kInvalidTermId) {
      if (require_bound) return false;
      continue;
    }
    auto it = geo.find(value);
    if (it == geo.end()) return false;
    if (it->second.timestamp < c.t_min || it->second.timestamp > c.t_max) {
      return false;
    }
  }
  return true;
}

std::vector<int> QueryEngine::PlanOrder(const TripleStore& store,
                                        const Query& query) const {
  // Static greedy order: cheapest (most selective) first, then prefer
  // patterns sharing a variable with what is already planned.
  const std::size_t n = query.bgp.size();
  std::vector<std::size_t> cost(n);
  Binding empty(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
  for (std::size_t i = 0; i < n; ++i) {
    cost[i] = store.Count(Resolve(query.bgp[i], empty).concrete);
  }
  std::vector<bool> used(n, false);
  std::vector<bool> var_bound(static_cast<std::size_t>(query.num_vars),
                              false);
  auto shares_var = [&](const QueryTriple& qt) {
    return (qt.s.IsVar() && var_bound[qt.s.var]) ||
           (qt.p.IsVar() && var_bound[qt.p.var]) ||
           (qt.o.IsVar() && var_bound[qt.o.var]);
  };
  auto mark_vars = [&](const QueryTriple& qt) {
    if (qt.s.IsVar()) var_bound[qt.s.var] = true;
    if (qt.p.IsVar()) var_bound[qt.p.var] = true;
    if (qt.o.IsVar()) var_bound[qt.o.var] = true;
  };
  std::vector<int> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      if (best == n) {
        best = i;
        continue;
      }
      const bool i_shares = !order.empty() && shares_var(query.bgp[i]);
      const bool b_shares = !order.empty() && shares_var(query.bgp[best]);
      if (i_shares != b_shares) {
        if (i_shares) best = i;
        continue;
      }
      if (cost[i] < cost[best]) best = i;
    }
    used[best] = true;
    mark_vars(query.bgp[best]);
    order.push_back(static_cast<int>(best));
  }
  return order;
}

void QueryEngine::Extend(const TripleStore& store, const Query& query,
                         std::vector<int>* pattern_order, std::size_t depth,
                         Binding* binding,
                         std::vector<Binding>* out) const {
  if (depth == pattern_order->size()) {
    if (SatisfiesConstraints(query, *binding, /*require_bound=*/true)) {
      out->push_back(*binding);
    }
    return;
  }
  const QueryTriple& qt = query.bgp[(*pattern_order)[depth]];
  const ResolvedPattern rp = Resolve(qt, *binding);
  store.Scan(rp.concrete, [&](const Triple& t) {
    std::vector<int> newly_bound;
    if (BindMatch(rp, t, binding, &newly_bound)) {
      // Early constraint check on whatever is bound so far.
      if (SatisfiesConstraints(query, *binding, /*require_bound=*/false)) {
        Extend(store, query, pattern_order, depth + 1, binding, out);
      }
    }
    for (int v : newly_bound) (*binding)[v] = kInvalidTermId;
    return true;
  });
}

void QueryEngine::EvalBgpInStore(const TripleStore& store, const Query& query,
                                 std::vector<Binding>* out) const {
  if (query.bgp.empty()) return;
  std::vector<int> order = PlanOrder(store, query);
  Binding binding(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
  Extend(store, query, &order, 0, &binding, out);
}

std::vector<int> QueryEngine::PrunedPartitions(const Query& query) const {
  std::vector<int> out;
  for (int i = 0; i < store_->num_partitions(); ++i) {
    const PartitionMeta& m = store_->meta(i);
    bool keep = true;
    if (m.tagged_resources > 0) {
      for (const SpatialConstraint& c : query.spatial) {
        if (!m.bbox.IsEmpty() && !m.bbox.Intersects(c.box)) {
          keep = false;
          break;
        }
      }
      if (keep && m.HasTimeRange()) {
        for (const TemporalConstraint& c : query.temporal) {
          const std::int64_t lo = rdfizer_->BucketOf(c.t_min);
          const std::int64_t hi = rdfizer_->BucketOf(c.t_max);
          if (m.max_bucket < lo || m.min_bucket > hi) {
            keep = false;
            break;
          }
        }
      }
    }
    if (keep) out.push_back(i);
  }
  return out;
}

ResultSet QueryEngine::ExecuteLocal(const Query& query) const {
  Stopwatch timer;
  ResultSet rs;
  const std::vector<int> candidates = PrunedPartitions(query);
  rs.stats.partitions_total = store_->num_partitions();
  rs.stats.partitions_scanned = static_cast<int>(candidates.size());

  std::mutex mu;
  auto eval_one = [&](std::size_t idx) {
    std::vector<Binding> local;
    EvalBgpInStore(store_->partition(candidates[idx]), query, &local);
    std::lock_guard<std::mutex> lock(mu);
    rs.rows.insert(rs.rows.end(), local.begin(), local.end());
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(candidates.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) eval_one(i);
  }
  rs.stats.result_rows = rs.rows.size();
  rs.stats.wall_ms = timer.ElapsedMillis();
  return rs;
}

namespace {

/// Binding table of one pattern: which vars it binds plus its rows.
struct BindingTable {
  std::vector<int> vars;           // bound variable indices (sorted)
  std::vector<Binding> rows;       // full-width rows
};

std::vector<int> SharedVars(const std::vector<int>& a,
                            const std::vector<int>& b) {
  std::vector<int> out;
  for (int v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) out.push_back(v);
  }
  return out;
}

/// Hash-joins two tables on their shared vars (cartesian when none).
BindingTable Join(const BindingTable& left, const BindingTable& right,
                  int num_vars) {
  BindingTable out;
  out.vars = left.vars;
  for (int v : right.vars) {
    if (std::find(out.vars.begin(), out.vars.end(), v) == out.vars.end()) {
      out.vars.push_back(v);
    }
  }
  std::sort(out.vars.begin(), out.vars.end());

  const std::vector<int> shared = SharedVars(left.vars, right.vars);
  auto key_of = [&shared](const Binding& b) {
    std::vector<TermId> key;
    key.reserve(shared.size());
    for (int v : shared) key.push_back(b[v]);
    return key;
  };

  std::map<std::vector<TermId>, std::vector<std::size_t>> hash;
  for (std::size_t i = 0; i < right.rows.size(); ++i) {
    hash[key_of(right.rows[i])].push_back(i);
  }
  for (const Binding& lrow : left.rows) {
    auto it = hash.find(key_of(lrow));
    if (it == hash.end()) continue;
    for (std::size_t ri : it->second) {
      Binding merged(static_cast<std::size_t>(num_vars), kInvalidTermId);
      for (int v : left.vars) merged[v] = lrow[v];
      for (int v : right.vars) merged[v] = right.rows[ri][v];
      out.rows.push_back(std::move(merged));
    }
  }
  return out;
}

}  // namespace

ResultSet QueryEngine::ExecuteGlobal(const Query& query) const {
  Stopwatch timer;
  ResultSet rs;
  rs.stats.partitions_total = store_->num_partitions();
  if (query.bgp.empty()) return rs;

  // Vars carrying spatial/temporal constraints: their patterns can be
  // scanned on the pruned partition subset only (tagged subjects obey the
  // partition envelopes); all other patterns scan everything.
  const std::vector<int> pruned = PrunedPartitions(query);
  std::vector<bool> constrained(static_cast<std::size_t>(query.num_vars),
                                false);
  for (const SpatialConstraint& c : query.spatial) constrained[c.var] = true;
  for (const TemporalConstraint& c : query.temporal)
    constrained[c.var] = true;

  std::vector<int> all_parts(static_cast<std::size_t>(store_->num_partitions()));
  for (int i = 0; i < store_->num_partitions(); ++i) all_parts[i] = i;

  // Scan every pattern (in parallel across partitions) into a table.
  std::vector<BindingTable> tables(query.bgp.size());
  std::size_t max_scanned = pruned.size();
  for (std::size_t pi = 0; pi < query.bgp.size(); ++pi) {
    const QueryTriple& qt = query.bgp[pi];
    BindingTable& table = tables[pi];
    if (qt.s.IsVar()) table.vars.push_back(qt.s.var);
    if (qt.p.IsVar() &&
        std::find(table.vars.begin(), table.vars.end(), qt.p.var) ==
            table.vars.end()) {
      table.vars.push_back(qt.p.var);
    }
    if (qt.o.IsVar() &&
        std::find(table.vars.begin(), table.vars.end(), qt.o.var) ==
            table.vars.end()) {
      table.vars.push_back(qt.o.var);
    }
    std::sort(table.vars.begin(), table.vars.end());

    const bool subject_constrained = qt.s.IsVar() && constrained[qt.s.var];
    const std::vector<int>& parts = subject_constrained ? pruned : all_parts;
    max_scanned = std::max(max_scanned, parts.size());

    Binding empty(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
    const ResolvedPattern rp = Resolve(qt, empty);

    std::mutex mu;
    auto scan_one = [&](std::size_t idx) {
      std::vector<Binding> local;
      store_->partition(parts[idx]).Scan(rp.concrete, [&](const Triple& t) {
        Binding b(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
        std::vector<int> newly;
        if (BindMatch(rp, t, &b, &newly)) {
          // Per-pattern constraint pushdown on this pattern's vars.
          if (SatisfiesConstraints(query, b, /*require_bound=*/false)) {
            local.push_back(std::move(b));
          }
        }
        return true;
      });
      std::lock_guard<std::mutex> lock(mu);
      table.rows.insert(table.rows.end(), local.begin(), local.end());
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(parts.size(), scan_one);
    } else {
      for (std::size_t i = 0; i < parts.size(); ++i) scan_one(i);
    }
    rs.stats.intermediate_rows += table.rows.size();
  }
  rs.stats.partitions_scanned = static_cast<int>(max_scanned);

  // Join tables: smallest first, preferring join partners that share vars.
  std::vector<std::size_t> remaining(tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) remaining[i] = i;
  std::sort(remaining.begin(), remaining.end(),
            [&tables](std::size_t a, std::size_t b) {
              return tables[a].rows.size() < tables[b].rows.size();
            });
  BindingTable acc = std::move(tables[remaining.front()]);
  remaining.erase(remaining.begin());
  while (!remaining.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (!SharedVars(acc.vars, tables[remaining[i]].vars).empty()) {
        pick = i;
        break;
      }
    }
    acc = Join(acc, tables[remaining[pick]], query.num_vars);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    rs.stats.intermediate_rows += acc.rows.size();
    if (acc.rows.empty()) break;
  }

  // Final constraint check (all vars bound now).
  for (Binding& b : acc.rows) {
    if (SatisfiesConstraints(query, b, /*require_bound=*/true)) {
      rs.rows.push_back(std::move(b));
    }
  }
  rs.stats.result_rows = rs.rows.size();
  rs.stats.wall_ms = timer.ElapsedMillis();
  return rs;
}

}  // namespace datacron
