#include "query/engine.h"

#include <algorithm>
#include <cstdint>

#include "common/strings.h"
#include "common/time_utils.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datacron {

std::string QueryExecStats::ToString() const {
  return StrFormat(
      "partitions=%d/%d intermediate=%zu results=%zu wall=%.3fms "
      "(plan=%.3f scan=%.3f join=%.3f filter=%.3fms joins=%zu)",
      partitions_scanned, partitions_total, intermediate_rows, result_rows,
      wall_ms, plan_ms, scan_ms, join_ms, filter_ms, join_rows.size());
}

QueryEngine::QueryEngine(const PartitionedRdfStore* store,
                         const Rdfizer* rdfizer, ThreadPool* pool)
    : store_(store), rdfizer_(rdfizer), pool_(pool) {
  geo_.Reserve(rdfizer->node_geo().size());
  for (const auto& [node, geo] : rdfizer->node_geo()) geo_[node] = geo;
}

namespace {

/// Substitutes current bindings into a pattern, producing a concrete
/// TriplePattern plus the variable index for each still-free position.
struct ResolvedPattern {
  TriplePattern concrete;
  int var_s = -1, var_p = -1, var_o = -1;
};

ResolvedPattern Resolve(const QueryTriple& qt, const Binding& binding) {
  ResolvedPattern r;
  auto resolve_one = [&binding](const QueryTerm& t, TermId* slot, int* var) {
    if (!t.IsVar()) {
      *slot = t.term;
    } else if (binding[t.var] != kInvalidTermId) {
      *slot = binding[t.var];
    } else {
      *var = t.var;
    }
  };
  resolve_one(qt.s, &r.concrete.s, &r.var_s);
  resolve_one(qt.p, &r.concrete.p, &r.var_p);
  resolve_one(qt.o, &r.concrete.o, &r.var_o);
  return r;
}

/// Binds the free positions of `rp` from a matched triple; returns false
/// when a repeated variable binds inconsistently. A pattern has at most 3
/// free positions, so the newly-bound set is a fixed stack array (the
/// caller unbinds `newly_bound[0..*num_newly)` afterwards either way).
bool BindMatch(const ResolvedPattern& rp, const Triple& t, Binding* binding,
               int newly_bound[3], int* num_newly) {
  auto bind_one = [&](int var, TermId value) {
    if (var < 0) return true;
    TermId& slot = (*binding)[var];
    if (slot == kInvalidTermId) {
      slot = value;
      newly_bound[(*num_newly)++] = var;
      return true;
    }
    return slot == value;
  };
  return bind_one(rp.var_s, t.s) && bind_one(rp.var_p, t.p) &&
         bind_one(rp.var_o, t.o);
}

/// Below this many rows a chunk is not worth a pool task.
constexpr std::size_t kMinRowsPerChunk = 4096;

/// Deterministic chunking: how many probe/filter chunks to cut `n` rows
/// into. The count may depend on the pool size — chunk outputs are always
/// concatenated in chunk order, so results are identical for any value.
/// Chunk count is work-proportional so small tables never pay task
/// overhead.
std::size_t NumChunks(std::size_t n, ThreadPool* pool) {
  if (n == 0) return 0;
  if (pool == nullptr || pool->num_threads() < 2) return 1;
  return std::max<std::size_t>(
      1, std::min(n / kMinRowsPerChunk, pool->num_threads() * 4));
}

void RunChunks(std::size_t chunks, ThreadPool* pool,
               const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && chunks > 1) {
    pool->ParallelFor(chunks, fn);
  } else {
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
  }
}

/// Columnar binding table of one pattern / join result: only the bound
/// variables as columns, rows stored row-major in one flat TermId array.
struct ColumnTable {
  std::vector<int> vars;      // sorted distinct variable indices
  std::vector<TermId> cells;  // rows * vars.size() entries
  std::size_t rows = 0;

  std::size_t width() const { return vars.size(); }
  const TermId* Row(std::size_t r) const {
    return cells.data() + r * vars.size();
  }
};

int ColumnOf(const std::vector<int>& vars, int var) {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == var) return static_cast<int>(i);
  }
  return -1;
}

bool SharesVar(const std::vector<int>& a, const std::vector<int>& b) {
  for (int v : a) {
    if (ColumnOf(b, v) >= 0) return true;
  }
  return false;
}

/// Packs the join-key columns of a row into one u64: a single shared
/// variable is the TermId itself (exact); multiple shared variables are
/// hash-mixed (probes re-verify the actual values).
std::uint64_t PackKey(const TermId* row, const int* cols, std::size_t n) {
  if (n == 1) return row[cols[0]];
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < n; ++i) k = MixU64(k ^ row[cols[i]]);
  return k;
}

constexpr std::uint32_t kChainEnd = 0xffffffffu;
/// Build-side shard count under a pool. Must stay a power of two; shard
/// selection uses the top 3 mix bits so it never correlates with the
/// FlatHashMap slot index (low mix bits).
constexpr std::size_t kJoinShards = 8;
/// Below this many build rows a single serial map build beats sharding.
constexpr std::size_t kMinShardedBuildRows = 16384;

std::size_t ShardOf(std::uint64_t key) { return MixU64(key) >> 61; }

/// Hash-joins two columnar tables on their shared vars (cartesian when
/// none). The smaller table is the build side. Deterministic at any
/// thread count: output rows are ordered by probe row index, then build
/// row index — because the build side chains its rows in row order
/// (sharded by key, not by arrival) and probe chunks concatenate in
/// chunk order.
ColumnTable JoinTables(const ColumnTable& left, const ColumnTable& right,
                       ThreadPool* pool) {
  ColumnTable out;
  out.vars = left.vars;
  for (int v : right.vars) {
    if (ColumnOf(out.vars, v) < 0) out.vars.push_back(v);
  }
  std::sort(out.vars.begin(), out.vars.end());
  const std::size_t ow = out.width();

  // The smaller table builds the hash map, the larger probes it. The
  // choice depends only on row counts, never on scheduling.
  const bool build_is_left = left.rows < right.rows;
  const ColumnTable& build = build_is_left ? left : right;
  const ColumnTable& probe = build_is_left ? right : left;

  std::vector<int> out_from_probe(ow), out_from_build(ow);
  for (std::size_t c = 0; c < ow; ++c) {
    out_from_probe[c] = ColumnOf(probe.vars, out.vars[c]);
    out_from_build[c] = ColumnOf(build.vars, out.vars[c]);
  }
  std::vector<int> pshared, bshared;
  for (std::size_t c = 0; c < probe.vars.size(); ++c) {
    const int bc = ColumnOf(build.vars, probe.vars[c]);
    if (bc >= 0) {
      pshared.push_back(static_cast<int>(c));
      bshared.push_back(bc);
    }
  }
  const std::size_t nshared = pshared.size();

  // Build side: packed key per row, then disjoint open-addressing maps
  // built in parallel (one per key shard). Each map chains its rows in
  // ascending row order through `next` (disjoint writes across shards).
  std::vector<std::uint64_t> bkeys(build.rows);
  {
    const std::size_t chunks = NumChunks(build.rows, pool);
    const std::size_t per =
        chunks ? (build.rows + chunks - 1) / chunks : 0;
    RunChunks(chunks, pool, [&](std::size_t c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(build.rows, begin + per);
      for (std::size_t r = begin; r < end; ++r) {
        bkeys[r] = PackKey(build.Row(r), bshared.data(), nshared);
      }
    });
  }
  struct Chain {
    std::uint32_t head = kChainEnd;
    std::uint32_t tail = kChainEnd;
  };
  const std::size_t shards = (pool != nullptr && pool->num_threads() >= 2 &&
                              build.rows >= kMinShardedBuildRows)
                                 ? kJoinShards
                                 : 1;
  std::vector<FlatHashMap<std::uint64_t, Chain>> maps(shards);
  std::vector<std::uint32_t> next(build.rows, kChainEnd);
  RunChunks(shards, pool, [&](std::size_t s) {
    FlatHashMap<std::uint64_t, Chain>& m = maps[s];
    for (std::size_t r = 0; r < build.rows; ++r) {
      const std::uint64_t key = bkeys[r];
      if (shards > 1 && ShardOf(key) != s) continue;
      Chain& ch = m[key];
      const auto r32 = static_cast<std::uint32_t>(r);
      if (ch.head == kChainEnd) {
        ch.head = r32;
      } else {
        next[ch.tail] = r32;
      }
      ch.tail = r32;
    }
  });

  // Probe side: chunked over rows, chunk outputs concatenated in chunk
  // order = global probe-row order.
  const std::size_t chunks = NumChunks(probe.rows, pool);
  std::vector<std::vector<TermId>> chunk_cells(chunks);
  std::vector<std::size_t> chunk_rows(chunks, 0);
  const std::size_t per = chunks ? (probe.rows + chunks - 1) / chunks : 0;
  RunChunks(chunks, pool, [&](std::size_t c) {
    std::vector<TermId>& cells = chunk_cells[c];
    std::size_t emitted = 0;
    const std::size_t begin = c * per;
    const std::size_t end = std::min(probe.rows, begin + per);
    for (std::size_t r = begin; r < end; ++r) {
      const TermId* prow = probe.Row(r);
      const std::uint64_t key = PackKey(prow, pshared.data(), nshared);
      const Chain* ch = maps[shards > 1 ? ShardOf(key) : 0].Find(key);
      if (ch == nullptr) continue;
      for (std::uint32_t bi = ch->head; bi != kChainEnd; bi = next[bi]) {
        const TermId* brow = build.Row(bi);
        if (nshared > 1) {
          // Mixed keys can collide across distinct tuples — re-verify.
          bool eq = true;
          for (std::size_t i = 0; i < nshared; ++i) {
            if (prow[pshared[i]] != brow[bshared[i]]) {
              eq = false;
              break;
            }
          }
          if (!eq) continue;
        }
        for (std::size_t oc = 0; oc < ow; ++oc) {
          cells.push_back(out_from_probe[oc] >= 0
                              ? prow[out_from_probe[oc]]
                              : brow[out_from_build[oc]]);
        }
        ++emitted;
      }
    }
    chunk_rows[c] = emitted;
  });
  for (std::size_t c = 0; c < chunks; ++c) out.rows += chunk_rows[c];
  out.cells.reserve(out.rows * ow);
  for (std::size_t c = 0; c < chunks; ++c) {
    out.cells.insert(out.cells.end(), chunk_cells[c].begin(),
                     chunk_cells[c].end());
  }
  return out;
}

/// Everything precomputed about one pattern before its partition scans:
/// the resolved pattern, its narrow column layout, and the constraints
/// that can be pushed down onto its columns.
struct PatternScanSpec {
  ResolvedPattern rp;
  std::vector<int> vars;  // sorted distinct free variables
  int col_s = -1, col_p = -1, col_o = -1;
  std::vector<std::pair<int, const SpatialConstraint*>> spatial;
  std::vector<std::pair<int, const TemporalConstraint*>> temporal;
};

PatternScanSpec MakeScanSpec(const QueryTriple& qt, const Query& query,
                             const Binding& empty) {
  PatternScanSpec spec;
  spec.rp = Resolve(qt, empty);
  auto add_var = [&spec](int var) {
    if (var >= 0 && ColumnOf(spec.vars, var) < 0) spec.vars.push_back(var);
  };
  add_var(spec.rp.var_s);
  add_var(spec.rp.var_p);
  add_var(spec.rp.var_o);
  std::sort(spec.vars.begin(), spec.vars.end());
  spec.col_s = spec.rp.var_s >= 0 ? ColumnOf(spec.vars, spec.rp.var_s) : -1;
  spec.col_p = spec.rp.var_p >= 0 ? ColumnOf(spec.vars, spec.rp.var_p) : -1;
  spec.col_o = spec.rp.var_o >= 0 ? ColumnOf(spec.vars, spec.rp.var_o) : -1;
  for (const SpatialConstraint& c : query.spatial) {
    const int col = ColumnOf(spec.vars, c.var);
    if (col >= 0) spec.spatial.emplace_back(col, &c);
  }
  for (const TemporalConstraint& c : query.temporal) {
    const int col = ColumnOf(spec.vars, c.var);
    if (col >= 0) spec.temporal.emplace_back(col, &c);
  }
  return spec;
}

/// Scans one pattern within one partition, appending narrow rows to
/// `cells`; returns the number of rows emitted. The core of the fused
/// pattern×partition scan stage.
std::size_t ScanPatternPartition(const TripleStore& part,
                                 const PatternScanSpec& spec,
                                 const FlatHashMap<TermId, NodeGeo>& geo,
                                 std::vector<TermId>* cells) {
  const std::size_t w = spec.vars.size();
  std::size_t emitted = 0;
  part.Scan(spec.rp.concrete, [&](const Triple& t) {
    TermId row[3] = {kInvalidTermId, kInvalidTermId, kInvalidTermId};
    bool ok = true;
    auto put = [&row, &ok](int col, TermId v) {
      if (col < 0) return;
      if (row[col] == kInvalidTermId) {
        row[col] = v;
      } else if (row[col] != v) {
        ok = false;  // repeated variable bound inconsistently
      }
    };
    put(spec.col_s, t.s);
    put(spec.col_p, t.p);
    put(spec.col_o, t.o);
    if (!ok) return true;
    for (const auto& [col, c] : spec.spatial) {
      const NodeGeo* g = geo.Find(row[col]);
      if (g == nullptr || !c->box.Contains(LatLon{g->lat_deg, g->lon_deg})) {
        return true;
      }
    }
    for (const auto& [col, c] : spec.temporal) {
      const NodeGeo* g = geo.Find(row[col]);
      if (g == nullptr || g->timestamp < c->t_min ||
          g->timestamp > c->t_max) {
        return true;
      }
    }
    for (std::size_t i = 0; i < w; ++i) cells->push_back(row[i]);
    ++emitted;
    return true;
  });
  return emitted;
}

}  // namespace

bool QueryEngine::SatisfiesConstraints(const Query& query,
                                       const Binding& binding,
                                       bool require_bound) const {
  for (const SpatialConstraint& c : query.spatial) {
    const TermId value = binding[c.var];
    if (value == kInvalidTermId) {
      if (require_bound) return false;
      continue;
    }
    const NodeGeo* g = geo_.Find(value);
    if (g == nullptr) return false;
    if (!c.box.Contains(LatLon{g->lat_deg, g->lon_deg})) return false;
  }
  for (const TemporalConstraint& c : query.temporal) {
    const TermId value = binding[c.var];
    if (value == kInvalidTermId) {
      if (require_bound) return false;
      continue;
    }
    const NodeGeo* g = geo_.Find(value);
    if (g == nullptr) return false;
    if (g->timestamp < c.t_min || g->timestamp > c.t_max) return false;
  }
  return true;
}

std::vector<int> QueryEngine::PlanOrder(const TripleStore& store,
                                        const Query& query) const {
  // Static greedy order: cheapest (most selective) first, then prefer
  // patterns sharing a variable with what is already planned.
  const std::size_t n = query.bgp.size();
  std::vector<std::size_t> cost(n);
  Binding empty(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
  for (std::size_t i = 0; i < n; ++i) {
    cost[i] = store.Count(Resolve(query.bgp[i], empty).concrete);
  }
  std::vector<bool> used(n, false);
  std::vector<bool> var_bound(static_cast<std::size_t>(query.num_vars),
                              false);
  auto shares_var = [&](const QueryTriple& qt) {
    return (qt.s.IsVar() && var_bound[qt.s.var]) ||
           (qt.p.IsVar() && var_bound[qt.p.var]) ||
           (qt.o.IsVar() && var_bound[qt.o.var]);
  };
  auto mark_vars = [&](const QueryTriple& qt) {
    if (qt.s.IsVar()) var_bound[qt.s.var] = true;
    if (qt.p.IsVar()) var_bound[qt.p.var] = true;
    if (qt.o.IsVar()) var_bound[qt.o.var] = true;
  };
  std::vector<int> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      if (best == n) {
        best = i;
        continue;
      }
      const bool i_shares = !order.empty() && shares_var(query.bgp[i]);
      const bool b_shares = !order.empty() && shares_var(query.bgp[best]);
      if (i_shares != b_shares) {
        if (i_shares) best = i;
        continue;
      }
      if (cost[i] < cost[best]) best = i;
    }
    used[best] = true;
    mark_vars(query.bgp[best]);
    order.push_back(static_cast<int>(best));
  }
  return order;
}

void QueryEngine::Extend(const TripleStore& store, const Query& query,
                         const std::vector<int>& pattern_order,
                         std::size_t depth, Binding* binding,
                         std::vector<Binding>* out) const {
  if (depth == pattern_order.size()) {
    if (SatisfiesConstraints(query, *binding, /*require_bound=*/true)) {
      out->push_back(*binding);
    }
    return;
  }
  const QueryTriple& qt = query.bgp[pattern_order[depth]];
  const ResolvedPattern rp = Resolve(qt, *binding);
  store.Scan(rp.concrete, [&](const Triple& t) {
    int newly_bound[3];
    int num_newly = 0;
    if (BindMatch(rp, t, binding, newly_bound, &num_newly)) {
      // Early constraint check on whatever is bound so far.
      if (SatisfiesConstraints(query, *binding, /*require_bound=*/false)) {
        Extend(store, query, pattern_order, depth + 1, binding, out);
      }
    }
    for (int i = 0; i < num_newly; ++i) {
      (*binding)[newly_bound[i]] = kInvalidTermId;
    }
    return true;
  });
}

void QueryEngine::EvalBgpInStore(const TripleStore& store, const Query& query,
                                 std::vector<Binding>* out) const {
  if (query.bgp.empty()) return;
  const std::vector<int> order = PlanOrder(store, query);
  Binding binding(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
  Extend(store, query, order, 0, &binding, out);
}

std::vector<int> QueryEngine::PrunedPartitions(const Query& query) const {
  std::vector<int> out;
  for (int i = 0; i < store_->num_partitions(); ++i) {
    const PartitionMeta& m = store_->meta(i);
    bool keep = true;
    if (m.tagged_resources > 0) {
      for (const SpatialConstraint& c : query.spatial) {
        if (!m.bbox.IsEmpty() && !m.bbox.Intersects(c.box)) {
          keep = false;
          break;
        }
      }
      if (keep && m.HasTimeRange()) {
        for (const TemporalConstraint& c : query.temporal) {
          const std::int64_t lo = rdfizer_->BucketOf(c.t_min);
          const std::int64_t hi = rdfizer_->BucketOf(c.t_max);
          if (m.max_bucket < lo || m.min_bucket > hi) {
            keep = false;
            break;
          }
        }
      }
    }
    if (keep) out.push_back(i);
  }
  return out;
}

ResultSet QueryEngine::ExecuteLocal(const Query& query) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().counter("query.local");
  queries->Add();
  Stopwatch timer;
  ResultSet rs;
  rs.stats.partitions_total = store_->num_partitions();

  Stopwatch plan_timer;
  obs::TraceSpan plan_span("query.plan", "query");
  // Constraint pruning plus predicate-existence skipping: a partition
  // lacking any bound predicate of the BGP cannot contribute a match.
  std::vector<int> candidates;
  for (int p : PrunedPartitions(query)) {
    bool possible = true;
    for (const QueryTriple& qt : query.bgp) {
      if (!qt.p.IsVar() &&
          !store_->meta(p).MightMatchPredicate(qt.p.term)) {
        possible = false;
        break;
      }
    }
    if (possible) candidates.push_back(p);
  }
  plan_span.End();
  rs.stats.plan_ms = plan_timer.ElapsedMillis();
  rs.stats.partitions_scanned = static_cast<int>(candidates.size());

  // Each partition evaluates into its own slot; slots concatenate in
  // partition-index order, so the row order is identical at any thread
  // count (never mutex-arrival order).
  Stopwatch scan_timer;
  obs::TraceSpan scan_span("query.scan", "query");
  std::vector<std::vector<Binding>> per_part(candidates.size());
  auto eval_one = [&](std::size_t idx) {
    EvalBgpInStore(store_->partition(candidates[idx]), query,
                   &per_part[idx]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(candidates.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) eval_one(i);
  }
  std::size_t total = 0;
  for (const auto& rows : per_part) total += rows.size();
  rs.rows.reserve(total);
  for (auto& rows : per_part) {
    for (Binding& b : rows) rs.rows.push_back(std::move(b));
  }
  scan_span.End();
  rs.stats.scan_ms = scan_timer.ElapsedMillis();
  rs.stats.result_rows = rs.rows.size();
  rs.stats.wall_ms = timer.ElapsedMillis();
  return rs;
}

ResultSet QueryEngine::ExecuteGlobal(const Query& query) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().counter("query.global");
  queries->Add();
  Stopwatch timer;
  ResultSet rs;
  rs.stats.partitions_total = store_->num_partitions();
  if (query.bgp.empty()) return rs;

  Stopwatch plan_timer;
  obs::TraceSpan plan_span("query.plan", "query");
  // Vars carrying spatial/temporal constraints: their patterns can be
  // scanned on the pruned partition subset only (tagged subjects obey the
  // partition envelopes); all other patterns scan everything.
  const std::vector<int> pruned = PrunedPartitions(query);
  std::vector<bool> constrained(static_cast<std::size_t>(query.num_vars),
                                false);
  for (const SpatialConstraint& c : query.spatial) constrained[c.var] = true;
  for (const TemporalConstraint& c : query.temporal)
    constrained[c.var] = true;
  std::vector<int> all_parts(
      static_cast<std::size_t>(store_->num_partitions()));
  for (int i = 0; i < store_->num_partitions(); ++i) all_parts[i] = i;

  const std::size_t n = query.bgp.size();
  Binding empty(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
  std::vector<PatternScanSpec> specs;
  specs.reserve(n);
  for (const QueryTriple& qt : query.bgp) {
    specs.push_back(MakeScanSpec(qt, query, empty));
  }
  plan_span.End();
  rs.stats.plan_ms = plan_timer.ElapsedMillis();

  // Scan every pattern into a narrow columnar table, with constraint and
  // predicate-existence pushdown. All pattern×partition pairs run under
  // ONE ParallelFor; per-job outputs concatenate per pattern in
  // partition-index order, so tables are identical at any thread count.
  Stopwatch scan_timer;
  obs::TraceSpan scan_span("query.scan", "query");
  std::vector<ColumnTable> tables(n);
  struct ScanJob {
    std::size_t pattern;
    int part;
  };
  std::vector<ScanJob> jobs;
  std::size_t max_scanned = pruned.size();
  for (std::size_t pi = 0; pi < n; ++pi) {
    const QueryTriple& qt = query.bgp[pi];
    const bool subject_constrained = qt.s.IsVar() && constrained[qt.s.var];
    const std::vector<int>& base = subject_constrained ? pruned : all_parts;
    std::size_t scanned = 0;
    for (int p : base) {
      if (store_->meta(p).MightMatchPredicate(specs[pi].rp.concrete.p)) {
        jobs.push_back({pi, p});
        ++scanned;
      }
    }
    max_scanned = std::max(max_scanned, scanned);
  }
  std::vector<std::vector<TermId>> job_cells(jobs.size());
  std::vector<std::size_t> job_rows(jobs.size(), 0);
  auto scan_one = [&](std::size_t j) {
    job_rows[j] = ScanPatternPartition(store_->partition(jobs[j].part),
                                       specs[jobs[j].pattern], geo_,
                                       &job_cells[j]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(jobs.size(), scan_one);
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j) scan_one(j);
  }
  for (std::size_t pi = 0; pi < n; ++pi) tables[pi].vars = specs[pi].vars;
  // Jobs were appended pattern-major in partition order, so a linear
  // pass concatenates each pattern's chunks deterministically.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ColumnTable& table = tables[jobs[j].pattern];
    table.rows += job_rows[j];
    table.cells.insert(table.cells.end(), job_cells[j].begin(),
                       job_cells[j].end());
  }
  for (const ColumnTable& table : tables) {
    rs.stats.intermediate_rows += table.rows;
  }
  rs.stats.partitions_scanned = static_cast<int>(max_scanned);
  scan_span.End();
  rs.stats.scan_ms = scan_timer.ElapsedMillis();

  // Join tables: smallest first, preferring join partners that share
  // vars (stable order, so the plan is identical at any thread count).
  Stopwatch join_timer;
  obs::TraceSpan join_span("query.join", "query");
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = i;
  std::stable_sort(remaining.begin(), remaining.end(),
                   [&tables](std::size_t a, std::size_t b) {
                     return tables[a].rows < tables[b].rows;
                   });
  ColumnTable acc = std::move(tables[remaining.front()]);
  remaining.erase(remaining.begin());
  while (!remaining.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (SharesVar(acc.vars, tables[remaining[i]].vars)) {
        pick = i;
        break;
      }
    }
    acc = JoinTables(acc, tables[remaining[pick]], pool_);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    rs.stats.intermediate_rows += acc.rows;
    rs.stats.join_rows.push_back(acc.rows);
    if (acc.rows == 0) break;
  }
  join_span.End();
  rs.stats.join_ms = join_timer.ElapsedMillis();

  // Final constraint check (all surviving vars bound now), widening the
  // columnar rows back to full-width bindings. Chunk outputs concatenate
  // in chunk order — deterministic.
  Stopwatch filter_timer;
  obs::TraceSpan filter_span("query.filter", "query");
  if (acc.rows > 0) {
    const std::size_t ow = acc.width();
    const std::size_t chunks = NumChunks(acc.rows, pool_);
    std::vector<std::vector<Binding>> chunk_out(chunks);
    const std::size_t per = (acc.rows + chunks - 1) / chunks;
    RunChunks(chunks, pool_, [&](std::size_t c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(acc.rows, begin + per);
      for (std::size_t r = begin; r < end; ++r) {
        Binding b(static_cast<std::size_t>(query.num_vars), kInvalidTermId);
        const TermId* row = acc.Row(r);
        for (std::size_t i = 0; i < ow; ++i) b[acc.vars[i]] = row[i];
        if (SatisfiesConstraints(query, b, /*require_bound=*/true)) {
          chunk_out[c].push_back(std::move(b));
        }
      }
    });
    std::size_t total = 0;
    for (const auto& rows : chunk_out) total += rows.size();
    rs.rows.reserve(total);
    for (auto& rows : chunk_out) {
      for (Binding& b : rows) rs.rows.push_back(std::move(b));
    }
  }
  filter_span.End();
  rs.stats.filter_ms = filter_timer.ElapsedMillis();
  rs.stats.result_rows = rs.rows.size();
  rs.stats.wall_ms = timer.ElapsedMillis();
  return rs;
}

}  // namespace datacron
