#include "query/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace datacron {

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kAvg:
      return "AVG";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
  }
  return "?";
}

Result<std::vector<AggregateRow>> Aggregate(const ResultSet& rs,
                                            int group_var, int value_var,
                                            AggregateFn fn,
                                            const TermDictionary& dict) {
  struct Acc {
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::size_t count = 0;     // rows in group
    std::size_t numeric = 0;   // rows with a numeric value
  };
  std::map<TermId, Acc> groups;
  for (const Binding& row : rs.rows) {
    if (group_var < 0 || static_cast<std::size_t>(group_var) >= row.size()) {
      return Status::InvalidArgument("group_var out of range");
    }
    Acc& acc = groups[row[group_var]];
    ++acc.count;
    if (fn == AggregateFn::kCount) continue;
    if (value_var < 0 || static_cast<std::size_t>(value_var) >= row.size()) {
      return Status::InvalidArgument("value_var out of range");
    }
    const TermId v = row[value_var];
    if (v == kInvalidTermId) continue;
    const Result<std::string> text = dict.Text(v);
    double x = 0;
    if (!text.ok() || !ParseDouble(text.value(), &x)) continue;
    acc.sum += x;
    acc.min = std::min(acc.min, x);
    acc.max = std::max(acc.max, x);
    ++acc.numeric;
  }

  std::vector<AggregateRow> out;
  out.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    AggregateRow row;
    row.key = key;
    row.count = acc.count;
    switch (fn) {
      case AggregateFn::kCount:
        row.value = static_cast<double>(acc.count);
        break;
      case AggregateFn::kSum:
        row.value = acc.sum;
        break;
      case AggregateFn::kAvg:
        row.value = acc.numeric ? acc.sum / acc.numeric : 0.0;
        break;
      case AggregateFn::kMin:
        row.value = acc.numeric ? acc.min : 0.0;
        break;
      case AggregateFn::kMax:
        row.value = acc.numeric ? acc.max : 0.0;
        break;
    }
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const AggregateRow& a, const AggregateRow& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key < b.key;
            });
  return out;
}

std::string AggregateTable(const std::vector<AggregateRow>& rows,
                           const TermDictionary& dict,
                           const std::string& key_header,
                           const std::string& value_header,
                           std::size_t max_rows) {
  std::string out =
      StrFormat("%-30s %14s %8s\n", key_header.c_str(),
                value_header.c_str(), "rows");
  for (std::size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    const std::string key =
        dict.Text(rows[i].key).value_or(StrFormat(
            "id:%llu", static_cast<unsigned long long>(rows[i].key)));
    out += StrFormat("%-30s %14.2f %8zu\n", key.c_str(), rows[i].value,
                     rows[i].count);
  }
  return out;
}

}  // namespace datacron
