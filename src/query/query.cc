#include "query/query.h"

namespace datacron {

int QueryBuilder::Var(const std::string& name) {
  for (std::size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<int>(i);
  }
  var_names_.push_back(name);
  query_.num_vars = static_cast<int>(var_names_.size());
  return query_.num_vars - 1;
}

QueryBuilder& QueryBuilder::Pattern(QueryTerm s, QueryTerm p, QueryTerm o) {
  query_.bgp.push_back(QueryTriple{s, p, o});
  return *this;
}

QueryBuilder& QueryBuilder::Where(const std::string& subject_var,
                                  TermId predicate, TermId object) {
  const int s = Var(subject_var);
  return Pattern(QueryTerm::Var(s), QueryTerm::Bound(predicate),
                 QueryTerm::Bound(object));
}

QueryBuilder& QueryBuilder::WhereVar(const std::string& subject_var,
                                     TermId predicate,
                                     const std::string& object_var) {
  // Sequenced Var() calls: C++ does not order function-argument
  // evaluation, and variable indices must be assigned subject-first so
  // callers can rely on first-use order.
  const int s = Var(subject_var);
  const int o = Var(object_var);
  return Pattern(QueryTerm::Var(s), QueryTerm::Bound(predicate),
                 QueryTerm::Var(o));
}

QueryBuilder& QueryBuilder::Within(const std::string& node_var,
                                   const BoundingBox& box) {
  query_.spatial.push_back(SpatialConstraint{Var(node_var), box});
  return *this;
}

QueryBuilder& QueryBuilder::During(const std::string& node_var,
                                   TimestampMs t_min, TimestampMs t_max) {
  query_.temporal.push_back(TemporalConstraint{Var(node_var), t_min, t_max});
  return *this;
}

}  // namespace datacron
