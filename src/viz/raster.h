#ifndef DATACRON_VIZ_RASTER_H_
#define DATACRON_VIZ_RASTER_H_

#include <string>
#include <vector>

#include "geo/bbox.h"
#include "sources/model.h"

namespace datacron {

/// 2D density raster — the aggregation backend of the visual-analytics
/// component: the VA front-end datAcron describes renders density maps and
/// trajectory overviews; this produces those aggregates (and an ASCII
/// rendering for terminal inspection).
class DensityRaster {
 public:
  DensityRaster(const BoundingBox& region, int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  const BoundingBox& region() const { return region_; }

  void Add(const LatLon& p, double weight = 1.0);
  void AddReports(const std::vector<PositionReport>& reports);

  double At(int x, int y) const { return cells_[Index(x, y)]; }
  double MaxValue() const;

  /// Downsampled copy (level-of-detail for zoomed-out views).
  DensityRaster Downsample(int factor) const;

  /// Terminal rendering: rows top (north) to bottom, density ramp
  /// " .:-=+*#%@".
  std::string ToAscii() const;

  /// "x,y,lat,lon,count" CSV of non-empty cells.
  std::string ToCsv() const;

 private:
  std::size_t Index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  BoundingBox region_;
  int width_;
  int height_;
  std::vector<double> cells_;
};

}  // namespace datacron

#endif  // DATACRON_VIZ_RASTER_H_
