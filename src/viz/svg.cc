#include "viz/svg.h"

#include "common/strings.h"

namespace datacron {

SvgMap::SvgMap(const BoundingBox& region, int width, int height)
    : region_(region), width_(width), height_(height) {}

SvgMap::Pt SvgMap::Project(const LatLon& p) const {
  const double fx =
      (p.lon_deg - region_.min_lon) / (region_.max_lon - region_.min_lon);
  const double fy =
      (p.lat_deg - region_.min_lat) / (region_.max_lat - region_.min_lat);
  return Pt{fx * width_, (1.0 - fy) * height_};
}

std::string SvgMap::ColorOf(EntityId id) {
  // Golden-angle hue walk: adjacent ids get well-separated hues.
  const int hue = static_cast<int>((id * 137) % 360);
  return StrFormat("hsl(%d,70%%,45%%)", hue);
}

const char* SvgMap::ColorOfKind(EventKind kind) {
  switch (kind) {
    case EventKind::kCollisionForecast:
      return "#d62728";  // red
    case EventKind::kEncounter:
      return "#ff7f0e";  // orange
    case EventKind::kLoitering:
    case EventKind::kGap:
    case EventKind::kSpeedAnomaly:
      return "#9467bd";  // purple
    case EventKind::kCapacityWarning:
    case EventKind::kCapacityForecast:
      return "#8c564b";  // brown
    case EventKind::kHotspot:
    case EventKind::kHotspotForecast:
      return "#e377c2";  // pink
    default:
      return "#7f7f7f";  // grey
  }
}

void SvgMap::AddTrajectory(const Trajectory& traj) {
  if (traj.points.size() < 2) return;
  std::string points;
  for (const PositionReport& r : traj.points) {
    const Pt p = Project(r.position.ll());
    points += StrFormat("%.1f,%.1f ", p.x, p.y);
  }
  layers_.push_back(StrFormat(
      "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
      "stroke-width=\"1.2\" stroke-opacity=\"0.8\"><title>entity "
      "%u</title></polyline>",
      points.c_str(), ColorOf(traj.entity_id).c_str(), traj.entity_id));
}

void SvgMap::AddTrajectories(const std::vector<Trajectory>& trajs) {
  for (const Trajectory& t : trajs) AddTrajectory(t);
}

void SvgMap::AddArea(const NamedArea& area) {
  if (area.polygon.empty()) return;
  std::string points;
  for (const LatLon& v : area.polygon.vertices()) {
    const Pt p = Project(v);
    points += StrFormat("%.1f,%.1f ", p.x, p.y);
  }
  layers_.push_back(StrFormat(
      "<polygon points=\"%s\" fill=\"#1f77b4\" fill-opacity=\"0.08\" "
      "stroke=\"#1f77b4\" stroke-dasharray=\"4 3\"><title>%s</title>"
      "</polygon>",
      points.c_str(), area.name.c_str()));
}

void SvgMap::AddEvent(const Event& event) {
  const Pt p = Project(event.position.ll());
  const double radius = IsForecastKind(event.kind) ? 6.0 : 4.0;
  layers_.push_back(StrFormat(
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" "
      "fill-opacity=\"0.75\"><title>%s</title></circle>",
      p.x, p.y, radius, ColorOfKind(event.kind),
      EventKindName(event.kind)));
}

void SvgMap::AddEvents(const std::vector<Event>& events) {
  for (const Event& e : events) AddEvent(e);
}

std::string SvgMap::Render() const {
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
      "height=\"%d\" viewBox=\"0 0 %d %d\">\n"
      "<rect width=\"%d\" height=\"%d\" fill=\"#f4f8fb\"/>\n",
      width_, height_, width_, height_, width_, height_);
  for (const std::string& layer : layers_) {
    out += layer;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

}  // namespace datacron
