#include "viz/raster.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace datacron {

DensityRaster::DensityRaster(const BoundingBox& region, int width,
                             int height)
    : region_(region),
      width_(std::max(1, width)),
      height_(std::max(1, height)),
      cells_(static_cast<std::size_t>(width_) * height_, 0.0) {}

void DensityRaster::Add(const LatLon& p, double weight) {
  if (!region_.Contains(p)) return;
  const double fx =
      (p.lon_deg - region_.min_lon) / (region_.max_lon - region_.min_lon);
  const double fy =
      (p.lat_deg - region_.min_lat) / (region_.max_lat - region_.min_lat);
  const int x = std::min(width_ - 1, static_cast<int>(fx * width_));
  const int y = std::min(height_ - 1, static_cast<int>(fy * height_));
  cells_[Index(x, y)] += weight;
}

void DensityRaster::AddReports(const std::vector<PositionReport>& reports) {
  for (const PositionReport& r : reports) Add(r.position.ll());
}

double DensityRaster::MaxValue() const {
  double m = 0.0;
  for (double c : cells_) m = std::max(m, c);
  return m;
}

DensityRaster DensityRaster::Downsample(int factor) const {
  factor = std::max(1, factor);
  DensityRaster out(region_, std::max(1, width_ / factor),
                    std::max(1, height_ / factor));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const int ox = std::min(out.width_ - 1, x / factor);
      const int oy = std::min(out.height_ - 1, y / factor);
      out.cells_[out.Index(ox, oy)] += cells_[Index(x, y)];
    }
  }
  return out;
}

std::string DensityRaster::ToAscii() const {
  static const char kRamp[] = " .:-=+*#%@";
  const int ramp_max = static_cast<int>(sizeof(kRamp)) - 2;
  const double max_val = MaxValue();
  std::string out;
  out.reserve(static_cast<std::size_t>((width_ + 1) * height_));
  for (int y = height_ - 1; y >= 0; --y) {  // north at top
    for (int x = 0; x < width_; ++x) {
      const double v = cells_[Index(x, y)];
      int level = 0;
      if (max_val > 0 && v > 0) {
        // Log scale keeps sparse sea lanes visible next to dense ports.
        level = 1 + static_cast<int>((ramp_max - 1) *
                                     std::log1p(v) / std::log1p(max_val));
        level = std::min(level, ramp_max);
      }
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

std::string DensityRaster::ToCsv() const {
  std::string out = "x,y,lat,lon,count\n";
  const double dlat = (region_.max_lat - region_.min_lat) / height_;
  const double dlon = (region_.max_lon - region_.min_lon) / width_;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double v = cells_[Index(x, y)];
      if (v <= 0) continue;
      out += StrFormat("%d,%d,%.5f,%.5f,%.1f\n", x, y,
                       region_.min_lat + (y + 0.5) * dlat,
                       region_.min_lon + (x + 0.5) * dlon, v);
    }
  }
  return out;
}

}  // namespace datacron
