#ifndef DATACRON_VIZ_SVG_H_
#define DATACRON_VIZ_SVG_H_

#include <string>
#include <vector>

#include "cep/event.h"
#include "geo/polygon.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// Self-contained SVG rendering of a monitoring picture: trajectories as
/// polylines (colored per entity), areas as polygons, events as circles
/// colored by kind. One call, one standalone .svg document — the
/// zero-dependency visual-analytics output for reports and debugging.
class SvgMap {
 public:
  /// `region` maps to a width x height pixel viewport (y flipped so north
  /// is up).
  SvgMap(const BoundingBox& region, int width = 900, int height = 600);

  void AddTrajectory(const Trajectory& traj);
  void AddTrajectories(const std::vector<Trajectory>& trajs);
  void AddArea(const NamedArea& area);
  void AddEvent(const Event& event);
  void AddEvents(const std::vector<Event>& events);

  /// Complete SVG document.
  std::string Render() const;

 private:
  struct Pt {
    double x, y;
  };
  Pt Project(const LatLon& p) const;

  /// Deterministic per-entity stroke color.
  static std::string ColorOf(EntityId id);
  static const char* ColorOfKind(EventKind kind);

  BoundingBox region_;
  int width_, height_;
  std::vector<std::string> layers_;
};

}  // namespace datacron

#endif  // DATACRON_VIZ_SVG_H_
