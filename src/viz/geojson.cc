#include "viz/geojson.h"

#include "common/strings.h"

namespace datacron {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string FeatureCollection(const std::vector<std::string>& features) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  out += Join(features, ",");
  out += "]}";
  return out;
}

}  // namespace

std::string TrajectoriesToGeoJson(const std::vector<Trajectory>& trajs) {
  std::vector<std::string> features;
  features.reserve(trajs.size());
  for (const Trajectory& t : trajs) {
    std::string coords;
    for (std::size_t i = 0; i < t.points.size(); ++i) {
      if (i > 0) coords += ",";
      coords += StrFormat("[%.6f,%.6f,%.1f]", t.points[i].position.lon_deg,
                          t.points[i].position.lat_deg,
                          t.points[i].position.alt_m);
    }
    features.push_back(StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        "\"coordinates\":[%s]},\"properties\":{\"entity\":%u,"
        "\"domain\":\"%s\",\"points\":%zu}}",
        coords.c_str(), t.entity_id, DomainName(t.domain),
        t.points.size()));
  }
  return FeatureCollection(features);
}

std::string EventsToGeoJson(const std::vector<Event>& events) {
  std::vector<std::string> features;
  features.reserve(events.size());
  for (const Event& e : events) {
    std::string ents;
    for (std::size_t i = 0; i < e.entities.size(); ++i) {
      if (i > 0) ents += ",";
      ents += StrFormat("%u", e.entities[i]);
    }
    features.push_back(StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        "\"coordinates\":[%.6f,%.6f]},\"properties\":{\"kind\":\"%s\","
        "\"label\":\"%s\",\"time\":%lld,\"lead_s\":%.0f,"
        "\"entities\":[%s]}}",
        e.position.lon_deg, e.position.lat_deg, EventKindName(e.kind),
        JsonEscape(e.label).c_str(), static_cast<long long>(e.time),
        e.LeadTime() / 1000.0, ents.c_str()));
  }
  return FeatureCollection(features);
}

std::string AreasToGeoJson(const std::vector<NamedArea>& areas) {
  std::vector<std::string> features;
  features.reserve(areas.size());
  for (const NamedArea& a : areas) {
    std::string ring;
    const auto& verts = a.polygon.vertices();
    if (verts.empty()) continue;
    for (std::size_t i = 0; i <= verts.size(); ++i) {
      const LatLon& v = verts[i % verts.size()];  // closed ring
      if (i > 0) ring += ",";
      ring += StrFormat("[%.6f,%.6f]", v.lon_deg, v.lat_deg);
    }
    features.push_back(StrFormat(
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
        "\"coordinates\":[[%s]]},\"properties\":{\"name\":\"%s\"}}",
        ring.c_str(), JsonEscape(a.name).c_str()));
  }
  return FeatureCollection(features);
}

}  // namespace datacron
