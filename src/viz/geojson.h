#ifndef DATACRON_VIZ_GEOJSON_H_
#define DATACRON_VIZ_GEOJSON_H_

#include <string>
#include <vector>

#include "cep/event.h"
#include "geo/polygon.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// GeoJSON export — the interchange the VA front-end consumes. Each
/// function renders a full FeatureCollection document.

/// Trajectories as LineString features with entity/domain properties.
std::string TrajectoriesToGeoJson(const std::vector<Trajectory>& trajs);

/// Events as Point features with kind/label/lead-time properties.
std::string EventsToGeoJson(const std::vector<Event>& events);

/// Areas as Polygon features.
std::string AreasToGeoJson(const std::vector<NamedArea>& areas);

}  // namespace datacron

#endif  // DATACRON_VIZ_GEOJSON_H_
