#ifndef DATACRON_TRAJECTORY_RECONSTRUCT_H_
#define DATACRON_TRAJECTORY_RECONSTRUCT_H_

#include <vector>

#include "sources/model.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// Trajectory reconstruction (paper Section 1: "reconstruction ... of
/// moving entities' trajectories"): turn a noisy, lossy, irregular report
/// stream back into a clean, regularly sampled trajectory.
struct ReconstructionConfig {
  /// A point implying a speed above this (relative to its predecessor) is
  /// an impossible jump and is rejected. Maritime default ~55 m/s
  /// (~107 kn); use ~400 m/s for aviation.
  double max_speed_mps = 55.0;
  /// Resampling interval of the reconstructed trajectory.
  DurationMs resample_interval = 30 * kSecond;
  /// Silences longer than this are *not* interpolated across — they split
  /// the trajectory into trips (a gap means the entity genuinely left
  /// coverage; inventing positions there would poison analytics).
  DurationMs gap_split_threshold = 15 * kMinute;
  /// Minimum points for a trip segment to be kept.
  std::size_t min_segment_points = 2;
};

struct ReconstructionStats {
  std::size_t input_points = 0;
  std::size_t outliers_rejected = 0;
  std::size_t segments = 0;
  std::size_t output_points = 0;
};

/// Removes kinematically impossible points (speed gate against the last
/// accepted point). Input must be time-ordered.
std::vector<PositionReport> RejectOutliers(
    const std::vector<PositionReport>& points, double max_speed_mps,
    std::size_t* rejected = nullptr);

/// Splits a time-ordered point sequence into trip segments at gaps.
std::vector<std::vector<PositionReport>> SplitAtGaps(
    const std::vector<PositionReport>& points, DurationMs gap_threshold);

/// Resamples one segment at a fixed interval by kinematic interpolation
/// (positions lerped; speed/course recomputed from the resampled motion).
std::vector<PositionReport> Resample(
    const std::vector<PositionReport>& segment, DurationMs interval);

/// Full pipeline: outlier gate -> gap split -> resample. Returns one
/// Trajectory per trip segment.
std::vector<Trajectory> Reconstruct(const std::vector<PositionReport>& raw,
                                    const ReconstructionConfig& config,
                                    ReconstructionStats* stats = nullptr);

/// Mean distance between a reconstructed trajectory and ground truth,
/// sampled at the reconstruction's own timestamps.
double ReconstructionErrorMeters(const Trajectory& reconstructed,
                                 const TruthTrace& truth);

}  // namespace datacron

#endif  // DATACRON_TRAJECTORY_RECONSTRUCT_H_
