#include "trajectory/reconstruct.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"

namespace datacron {

std::vector<PositionReport> RejectOutliers(
    const std::vector<PositionReport>& points, double max_speed_mps,
    std::size_t* rejected) {
  std::vector<PositionReport> out;
  out.reserve(points.size());
  std::size_t dropped = 0;
  for (const PositionReport& p : points) {
    if (!IsValidPosition(p.position.ll())) {
      ++dropped;
      continue;
    }
    if (!out.empty()) {
      const PositionReport& prev = out.back();
      const double dt_s =
          static_cast<double>(p.timestamp - prev.timestamp) / 1000.0;
      if (dt_s > 0) {
        const double d = Distance3dMeters(prev.position, p.position);
        if (d / dt_s > max_speed_mps) {
          ++dropped;
          continue;
        }
      } else if (dt_s == 0 && p.position == prev.position) {
        ++dropped;  // exact duplicate
        continue;
      }
    }
    out.push_back(p);
  }
  if (rejected != nullptr) *rejected = dropped;
  return out;
}

std::vector<std::vector<PositionReport>> SplitAtGaps(
    const std::vector<PositionReport>& points, DurationMs gap_threshold) {
  std::vector<std::vector<PositionReport>> segments;
  std::vector<PositionReport> current;
  for (const PositionReport& p : points) {
    if (!current.empty() &&
        p.timestamp - current.back().timestamp > gap_threshold) {
      segments.push_back(std::move(current));
      current.clear();
    }
    current.push_back(p);
  }
  if (!current.empty()) segments.push_back(std::move(current));
  return segments;
}

std::vector<PositionReport> Resample(
    const std::vector<PositionReport>& segment, DurationMs interval) {
  std::vector<PositionReport> out;
  if (segment.empty()) return out;
  if (segment.size() == 1) return segment;

  const TimestampMs t0 = segment.front().timestamp;
  const TimestampMs t1 = segment.back().timestamp;
  std::size_t cursor = 0;
  for (TimestampMs t = t0; t <= t1; t += interval) {
    while (cursor + 1 < segment.size() &&
           segment[cursor + 1].timestamp <= t) {
      ++cursor;
    }
    PositionReport r = segment[cursor];
    if (cursor + 1 < segment.size() &&
        segment[cursor + 1].timestamp > segment[cursor].timestamp) {
      const PositionReport& a = segment[cursor];
      const PositionReport& b = segment[cursor + 1];
      const double f = static_cast<double>(t - a.timestamp) /
                       static_cast<double>(b.timestamp - a.timestamp);
      r.position.lat_deg =
          a.position.lat_deg + f * (b.position.lat_deg - a.position.lat_deg);
      r.position.lon_deg =
          a.position.lon_deg + f * (b.position.lon_deg - a.position.lon_deg);
      r.position.alt_m = a.position.alt_m + f * (b.position.alt_m - a.position.alt_m);
    }
    r.timestamp = t;
    out.push_back(r);
  }

  // Recompute speed/course from the resampled motion so kinematics are
  // self-consistent after interpolation.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    const double dt_s =
        static_cast<double>(out[i + 1].timestamp - out[i].timestamp) / 1000.0;
    if (dt_s <= 0) continue;
    const double d =
        HaversineMeters(out[i].position.ll(), out[i + 1].position.ll());
    out[i].speed_mps = d / dt_s;
    if (d > 1.0) {
      out[i].course_deg =
          InitialBearingDeg(out[i].position.ll(), out[i + 1].position.ll());
    }
    out[i].vertical_rate_mps =
        (out[i + 1].position.alt_m - out[i].position.alt_m) / dt_s;
  }
  if (out.size() >= 2) {
    // Last point inherits the final leg's kinematics.
    out.back().speed_mps = out[out.size() - 2].speed_mps;
    out.back().course_deg = out[out.size() - 2].course_deg;
    out.back().vertical_rate_mps = out[out.size() - 2].vertical_rate_mps;
  }
  return out;
}

std::vector<Trajectory> Reconstruct(const std::vector<PositionReport>& raw,
                                    const ReconstructionConfig& config,
                                    ReconstructionStats* stats) {
  ReconstructionStats local;
  local.input_points = raw.size();

  std::vector<PositionReport> sorted = raw;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PositionReport& a, const PositionReport& b) {
                     return a.timestamp < b.timestamp;
                   });
  const std::vector<PositionReport> clean =
      RejectOutliers(sorted, config.max_speed_mps, &local.outliers_rejected);

  std::vector<Trajectory> out;
  for (std::vector<PositionReport>& seg :
       SplitAtGaps(clean, config.gap_split_threshold)) {
    if (seg.size() < config.min_segment_points) continue;
    Trajectory traj;
    traj.entity_id = seg.front().entity_id;
    traj.domain = seg.front().domain;
    traj.points = Resample(seg, config.resample_interval);
    local.output_points += traj.points.size();
    out.push_back(std::move(traj));
  }
  local.segments = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

double ReconstructionErrorMeters(const Trajectory& reconstructed,
                                 const TruthTrace& truth) {
  if (reconstructed.points.empty()) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const PositionReport& p : reconstructed.points) {
    PositionReport t;
    if (!truth.StateAt(p.timestamp, &t)) continue;
    sum += Distance3dMeters(p.position, t.position);
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

}  // namespace datacron
