#ifndef DATACRON_TRAJECTORY_TRAJECTORY_STORE_H_
#define DATACRON_TRAJECTORY_TRAJECTORY_STORE_H_

#include <map>
#include <vector>

#include "geo/bbox.h"
#include "sources/model.h"

namespace datacron {

/// A reconstructed, time-ordered trajectory of one entity (possibly one
/// trip segment of it).
struct Trajectory {
  EntityId entity_id = 0;
  Domain domain = Domain::kMaritime;
  std::vector<PositionReport> points;

  bool empty() const { return points.empty(); }
  TimestampMs StartTime() const {
    return points.empty() ? 0 : points.front().timestamp;
  }
  TimestampMs EndTime() const {
    return points.empty() ? 0 : points.back().timestamp;
  }
  DurationMs Duration() const { return EndTime() - StartTime(); }

  /// Sum of inter-point great-circle distances (meters).
  double LengthMeters() const;

  BoundingBox Bounds() const;
};

/// Accumulates reports per entity, keeping them time-ordered. The
/// trajectory-management layer every analytics component reads from.
class TrajectoryStore {
 public:
  /// Inserts a report in timestamp order (amortized O(1) for in-order
  /// streams; out-of-order reports shift into place).
  void Add(const PositionReport& report);

  void AddAll(const std::vector<PositionReport>& reports);

  std::size_t EntityCount() const { return trajectories_.size(); }
  std::size_t TotalPoints() const;

  /// The entity's full trajectory; empty when unknown.
  const Trajectory& Get(EntityId id) const;

  std::vector<EntityId> Entities() const;

  /// Points of `id` with timestamp in [t0, t1].
  std::vector<PositionReport> GetRange(EntityId id, TimestampMs t0,
                                       TimestampMs t1) const;

  void Clear() { trajectories_.clear(); }

 private:
  std::map<EntityId, Trajectory> trajectories_;
};

}  // namespace datacron

#endif  // DATACRON_TRAJECTORY_TRAJECTORY_STORE_H_
