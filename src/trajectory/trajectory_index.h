#ifndef DATACRON_TRAJECTORY_TRAJECTORY_INDEX_H_
#define DATACRON_TRAJECTORY_TRAJECTORY_INDEX_H_

#include <vector>

#include "common/time_utils.h"
#include "geo/rtree.h"
#include "trajectory/trajectory_store.h"

namespace datacron {

/// Spatiotemporal index over trajectory *segments*: each consecutive point
/// pair becomes one R-tree entry, so range queries return exactly the
/// trajectories whose path crosses the window (not merely those with a
/// sample inside it — a fast vessel can cross a small box between two
/// samples). The standard access method for "which movers passed through
/// here, then?" questions in trajectory databases.
class TrajectoryIndex {
 public:
  /// Builds from a set of trajectories. Each segment carries its time
  /// span for the temporal filter.
  void Build(const std::vector<Trajectory>& trajectories);

  std::size_t SegmentCount() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  /// Entities whose trajectory intersects `box`, optionally restricted to
  /// segments overlapping [t0, t1] (pass t0 > t1 to ignore time).
  /// Intersection is tested exactly against the segment geometry, not
  /// just its bounding box.
  std::vector<EntityId> Query(const BoundingBox& box, TimestampMs t0 = 1,
                              TimestampMs t1 = 0) const;

  /// The `k` distinct entities with a segment nearest to `p`.
  std::vector<EntityId> NearestEntities(const LatLon& p,
                                        std::size_t k) const;

 private:
  struct Segment {
    EntityId entity;
    LatLon a, b;
    TimestampMs t_start, t_end;
  };

  /// True if segment (a,b) intersects the rectangle.
  static bool SegmentIntersectsBox(const LatLon& a, const LatLon& b,
                                   const BoundingBox& box);

  std::vector<Segment> segments_;
  RTree rtree_;
};

}  // namespace datacron

#endif  // DATACRON_TRAJECTORY_TRAJECTORY_INDEX_H_
