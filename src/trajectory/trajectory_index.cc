#include "trajectory/trajectory_index.h"

#include <algorithm>
#include <set>

namespace datacron {

void TrajectoryIndex::Build(const std::vector<Trajectory>& trajectories) {
  segments_.clear();
  std::vector<RTree::Entry> entries;
  for (const Trajectory& traj : trajectories) {
    for (std::size_t i = 1; i < traj.points.size(); ++i) {
      const PositionReport& a = traj.points[i - 1];
      const PositionReport& b = traj.points[i];
      Segment seg;
      seg.entity = traj.entity_id;
      seg.a = a.position.ll();
      seg.b = b.position.ll();
      seg.t_start = a.timestamp;
      seg.t_end = b.timestamp;
      BoundingBox box = BoundingBox::OfPoint(seg.a);
      box.Extend(seg.b);
      entries.push_back({box, segments_.size()});
      segments_.push_back(seg);
    }
  }
  rtree_.Build(std::move(entries));
}

bool TrajectoryIndex::SegmentIntersectsBox(const LatLon& a, const LatLon& b,
                                           const BoundingBox& box) {
  if (box.Contains(a) || box.Contains(b)) return true;
  // Liang-Barsky style clipping of the parametric segment against the
  // rectangle (lat = y, lon = x).
  const double dx = b.lon_deg - a.lon_deg;
  const double dy = b.lat_deg - a.lat_deg;
  double t0 = 0.0, t1 = 1.0;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.lon_deg - box.min_lon, box.max_lon - a.lon_deg,
                       a.lat_deg - box.min_lat, box.max_lat - a.lat_deg};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0) return false;  // parallel and outside
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0) {
      t0 = std::max(t0, r);
    } else {
      t1 = std::min(t1, r);
    }
    if (t0 > t1) return false;
  }
  return true;
}

std::vector<EntityId> TrajectoryIndex::Query(const BoundingBox& box,
                                             TimestampMs t0,
                                             TimestampMs t1) const {
  const bool temporal = t0 <= t1;
  std::set<EntityId> found;
  for (std::uint64_t idx : rtree_.Search(box)) {
    const Segment& seg = segments_[idx];
    if (temporal && (seg.t_end < t0 || seg.t_start > t1)) continue;
    if (found.count(seg.entity)) continue;
    if (SegmentIntersectsBox(seg.a, seg.b, box)) found.insert(seg.entity);
  }
  return {found.begin(), found.end()};
}

std::vector<EntityId> TrajectoryIndex::NearestEntities(
    const LatLon& p, std::size_t k) const {
  std::vector<EntityId> out;
  std::set<EntityId> seen;
  // Over-fetch segments: distinct entities may need several candidates.
  const std::vector<std::uint64_t> nearest =
      rtree_.Nearest(p, std::min(segments_.size(), k * 8 + 16));
  for (std::uint64_t idx : nearest) {
    const EntityId entity = segments_[idx].entity;
    if (seen.insert(entity).second) {
      out.push_back(entity);
      if (out.size() >= k) break;
    }
  }
  return out;
}

}  // namespace datacron
