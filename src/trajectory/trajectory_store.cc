#include "trajectory/trajectory_store.h"

#include <algorithm>

#include "geo/geo.h"

namespace datacron {

double Trajectory::LengthMeters() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += HaversineMeters(points[i - 1].position.ll(),
                             points[i].position.ll());
  }
  return total;
}

BoundingBox Trajectory::Bounds() const {
  BoundingBox box = BoundingBox::Empty();
  for (const PositionReport& p : points) box.Extend(p.position.ll());
  return box;
}

void TrajectoryStore::Add(const PositionReport& report) {
  Trajectory& traj = trajectories_[report.entity_id];
  if (traj.points.empty()) {
    traj.entity_id = report.entity_id;
    traj.domain = report.domain;
  }
  if (traj.points.empty() ||
      traj.points.back().timestamp <= report.timestamp) {
    traj.points.push_back(report);
    return;
  }
  // Out-of-order: insert at the right position.
  auto it = std::upper_bound(
      traj.points.begin(), traj.points.end(), report,
      [](const PositionReport& a, const PositionReport& b) {
        return a.timestamp < b.timestamp;
      });
  traj.points.insert(it, report);
}

void TrajectoryStore::AddAll(const std::vector<PositionReport>& reports) {
  for (const PositionReport& r : reports) Add(r);
}

std::size_t TrajectoryStore::TotalPoints() const {
  std::size_t n = 0;
  for (const auto& [id, traj] : trajectories_) n += traj.points.size();
  return n;
}

const Trajectory& TrajectoryStore::Get(EntityId id) const {
  static const Trajectory kEmpty;
  auto it = trajectories_.find(id);
  return it == trajectories_.end() ? kEmpty : it->second;
}

std::vector<EntityId> TrajectoryStore::Entities() const {
  std::vector<EntityId> out;
  out.reserve(trajectories_.size());
  for (const auto& [id, traj] : trajectories_) out.push_back(id);
  return out;
}

std::vector<PositionReport> TrajectoryStore::GetRange(EntityId id,
                                                      TimestampMs t0,
                                                      TimestampMs t1) const {
  std::vector<PositionReport> out;
  const Trajectory& traj = Get(id);
  auto lo = std::lower_bound(
      traj.points.begin(), traj.points.end(), t0,
      [](const PositionReport& p, TimestampMs t) { return p.timestamp < t; });
  for (auto it = lo; it != traj.points.end() && it->timestamp <= t1; ++it) {
    out.push_back(*it);
  }
  return out;
}

}  // namespace datacron
