#ifndef DATACRON_TRAJECTORY_SIMILARITY_H_
#define DATACRON_TRAJECTORY_SIMILARITY_H_

#include <vector>

#include "trajectory/trajectory_store.h"

namespace datacron {

/// Dynamic Time Warping distance between two trajectories (meters;
/// sum of matched pair distances along the optimal warping path divided by
/// path length, i.e. normalized DTW). O(n*m) time, O(min(n,m)) memory.
double DtwDistanceMeters(const Trajectory& a, const Trajectory& b);

/// Discrete Fréchet distance between two trajectories (meters) — the
/// classic "dog leash" measure; more sensitive to worst-case deviation
/// than DTW. O(n*m).
double FrechetDistanceMeters(const Trajectory& a, const Trajectory& b);

/// Simple agglomerative-style medoid clustering under a distance
/// threshold: greedily assigns each trajectory to the first medoid within
/// `threshold_m`, creating a new cluster otherwise. Returns medoid indices
/// per input trajectory. Deterministic given input order. Used by the
/// cluster-based route predictor (forecast module).
struct ClusteringResult {
  /// cluster id per input trajectory.
  std::vector<int> assignment;
  /// index (into the input) of each cluster's medoid.
  std::vector<std::size_t> medoids;
};

using TrajectoryDistanceFn = double (*)(const Trajectory&,
                                        const Trajectory&);

ClusteringResult ClusterByThreshold(const std::vector<Trajectory>& trajs,
                                    double threshold_m,
                                    TrajectoryDistanceFn distance =
                                        &DtwDistanceMeters);

}  // namespace datacron

#endif  // DATACRON_TRAJECTORY_SIMILARITY_H_
