#include "trajectory/episodes.h"

#include "common/strings.h"
#include "geo/geo.h"

namespace datacron {

const char* EpisodeKindName(EpisodeKind kind) {
  switch (kind) {
    case EpisodeKind::kStop:
      return "stop";
    case EpisodeKind::kMove:
      return "move";
    case EpisodeKind::kGap:
      return "gap";
  }
  return "?";
}

EpisodeBuilder::EpisodeBuilder(std::vector<NamedArea> areas)
    : areas_(std::move(areas)) {}

std::string EpisodeBuilder::AreaOf(const LatLon& p) const {
  for (const NamedArea& a : areas_) {
    if (a.polygon.Contains(p)) return a.name;
  }
  return "";
}

void EpisodeBuilder::Open(EntityState* st, const CriticalPoint& cp,
                          EpisodeKind kind) {
  st->open = true;
  st->current = Episode();
  st->current.entity = cp.report.entity_id;
  st->current.kind = kind;
  st->current.start_time = cp.report.timestamp;
  st->current.start_pos = cp.report.position;
  st->current.end_time = cp.report.timestamp;
  st->current.end_pos = cp.report.position;
}

void EpisodeBuilder::Close(EntityState* st, const CriticalPoint& cp,
                           std::vector<Episode>* out) {
  if (!st->open) return;
  Episode& e = st->current;
  e.path_m +=
      HaversineMeters(e.end_pos.ll(), cp.report.position.ll());
  e.end_time = cp.report.timestamp;
  e.end_pos = cp.report.position;
  e.displacement_m = HaversineMeters(e.start_pos.ll(), e.end_pos.ll());
  // Stops are annotated by their anchor; moves/gaps only when both ends
  // share an area (fully-inside semantics).
  if (e.kind == EpisodeKind::kStop) {
    e.area = AreaOf(e.start_pos.ll());
  } else {
    const std::string a = AreaOf(e.start_pos.ll());
    if (!a.empty() && a == AreaOf(e.end_pos.ll())) e.area = a;
  }
  out->push_back(e);
  st->open = false;
}

void EpisodeBuilder::Process(const CriticalPoint& cp,
                             std::vector<Episode>* out) {
  EntityState& st = state_[cp.report.entity_id];
  // Accumulate path length of the running episode.
  if (st.open) {
    st.current.path_m += HaversineMeters(st.current.end_pos.ll(),
                                         cp.report.position.ll());
    st.current.end_pos = cp.report.position;
    st.current.end_time = cp.report.timestamp;
  }
  switch (cp.type) {
    case CriticalPointType::kTrajectoryStart:
      Open(&st, cp,
           cp.report.speed_mps < 0.25 ? EpisodeKind::kStop
                                      : EpisodeKind::kMove);
      break;
    case CriticalPointType::kStopStart:
      Close(&st, cp, out);
      Open(&st, cp, EpisodeKind::kStop);
      break;
    case CriticalPointType::kStopEnd:
      Close(&st, cp, out);
      Open(&st, cp, EpisodeKind::kMove);
      break;
    case CriticalPointType::kGapStart:
      Close(&st, cp, out);
      Open(&st, cp, EpisodeKind::kGap);
      break;
    case CriticalPointType::kGapEnd:
      Close(&st, cp, out);
      Open(&st, cp, EpisodeKind::kMove);
      break;
    case CriticalPointType::kTrajectoryEnd:
      Close(&st, cp, out);
      break;
    case CriticalPointType::kTurningPoint:
    case CriticalPointType::kSpeedChange:
    case CriticalPointType::kAltitudeChange:
    case CriticalPointType::kHeartbeat:
      // Interior points only extend the running episode (handled above);
      // if nothing is open (stream started mid-trajectory) open a move.
      if (!st.open) Open(&st, cp, EpisodeKind::kMove);
      break;
  }
}

void EpisodeBuilder::Flush(std::vector<Episode>* out) {
  for (auto& [id, st] : state_) {
    if (st.open) {
      Episode& e = st.current;
      e.displacement_m =
          HaversineMeters(e.start_pos.ll(), e.end_pos.ll());
      if (e.kind == EpisodeKind::kStop) e.area = AreaOf(e.start_pos.ll());
      out->push_back(e);
      st.open = false;
    }
  }
  state_.clear();
}

std::vector<Episode> EpisodeBuilder::Build(
    const std::vector<CriticalPoint>& synopsis) {
  std::vector<Episode> out;
  for (const CriticalPoint& cp : synopsis) Process(cp, &out);
  Flush(&out);
  return out;
}

std::string ToString(const Episode& e) {
  std::string out = StrFormat(
      "%s[%u] %s %lldmin", EpisodeKindName(e.kind), e.entity,
      FormatIso8601(e.start_time).c_str(),
      static_cast<long long>(e.Duration() / kMinute));
  if (e.kind == EpisodeKind::kMove) {
    out += StrFormat(" %.1fkm", e.path_m / 1000.0);
  }
  if (!e.area.empty()) out += " @" + e.area;
  return out;
}

}  // namespace datacron
