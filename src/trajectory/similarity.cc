#include "trajectory/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geo.h"

namespace datacron {

namespace {

double PointDistance(const PositionReport& x, const PositionReport& y) {
  return EquirectangularMeters(x.position.ll(), y.position.ll());
}

}  // namespace

double DtwDistanceMeters(const Trajectory& a, const Trajectory& b) {
  const std::vector<PositionReport>& p = a.points;
  const std::vector<PositionReport>& q = b.points;
  if (p.empty() || q.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t n = p.size();
  const std::size_t m = q.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling rows: cost and path length for normalization.
  std::vector<double> prev_cost(m + 1, kInf), cur_cost(m + 1, kInf);
  std::vector<std::size_t> prev_len(m + 1, 0), cur_len(m + 1, 0);
  prev_cost[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    cur_cost[0] = kInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const double d = PointDistance(p[i - 1], q[j - 1]);
      double best = prev_cost[j - 1];
      std::size_t best_len = prev_len[j - 1];
      if (prev_cost[j] < best) {
        best = prev_cost[j];
        best_len = prev_len[j];
      }
      if (cur_cost[j - 1] < best) {
        best = cur_cost[j - 1];
        best_len = cur_len[j - 1];
      }
      cur_cost[j] = best + d;
      cur_len[j] = best_len + 1;
    }
    std::swap(prev_cost, cur_cost);
    std::swap(prev_len, cur_len);
  }
  const double total = prev_cost[m];
  const std::size_t len = prev_len[m];
  return len == 0 ? total : total / static_cast<double>(len);
}

double FrechetDistanceMeters(const Trajectory& a, const Trajectory& b) {
  const std::vector<PositionReport>& p = a.points;
  const std::vector<PositionReport>& q = b.points;
  if (p.empty() || q.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t n = p.size();
  const std::size_t m = q.size();
  std::vector<double> prev(m), cur(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double d = PointDistance(p[0], q[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double d = PointDistance(p[i], q[j]);
      double reach;
      if (j == 0) {
        reach = prev[0];
      } else {
        reach = std::min({prev[j], prev[j - 1], cur[j - 1]});
      }
      cur[j] = std::max(reach, d);
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

ClusteringResult ClusterByThreshold(const std::vector<Trajectory>& trajs,
                                    double threshold_m,
                                    TrajectoryDistanceFn distance) {
  ClusteringResult result;
  result.assignment.assign(trajs.size(), -1);
  for (std::size_t i = 0; i < trajs.size(); ++i) {
    int assigned = -1;
    for (std::size_t c = 0; c < result.medoids.size(); ++c) {
      if (distance(trajs[i], trajs[result.medoids[c]]) <= threshold_m) {
        assigned = static_cast<int>(c);
        break;
      }
    }
    if (assigned < 0) {
      result.medoids.push_back(i);
      assigned = static_cast<int>(result.medoids.size() - 1);
    }
    result.assignment[i] = assigned;
  }
  return result;
}

}  // namespace datacron
