#ifndef DATACRON_TRAJECTORY_EPISODES_H_
#define DATACRON_TRAJECTORY_EPISODES_H_

#include <map>
#include <string>
#include <vector>

#include "geo/polygon.h"
#include "sources/model.h"
#include "synopses/critical_points.h"

namespace datacron {

/// Episode kinds of a *semantic trajectory* — datAcron's flagship data
/// model: instead of raw point sequences, a trajectory is a sequence of
/// meaningful episodes (stopped here, moved there, went dark in between),
/// each annotatable against geography.
enum class EpisodeKind : std::uint8_t { kStop = 0, kMove, kGap };

const char* EpisodeKindName(EpisodeKind kind);

/// One episode of an entity's semantic trajectory.
struct Episode {
  EntityId entity = 0;
  EpisodeKind kind = EpisodeKind::kMove;
  TimestampMs start_time = 0;
  TimestampMs end_time = 0;
  GeoPoint start_pos;
  GeoPoint end_pos;
  /// Name of the area the episode's anchor position falls in (stop
  /// episodes: the stop location; move/gap: empty unless fully inside).
  std::string area;
  /// Straight-line displacement (meters); moves also accumulate the
  /// critical-point path length in `path_m`.
  double displacement_m = 0.0;
  double path_m = 0.0;

  DurationMs Duration() const { return end_time - start_time; }

  /// Field-wise equality; lets tests assert byte-identity of episode
  /// streams across serial and sharded engine runs.
  bool operator==(const Episode&) const = default;
};

/// Derives episodes from the critical-point synopsis (not the raw stream —
/// the synopsis already marks stop/gap boundaries, which is exactly why
/// the in-situ layer keeps those points). Handles interleaved entities.
/// Stops are annotated against `areas` by their anchor position.
class EpisodeBuilder {
 public:
  /// All state is per entity: safe to shard by entity. (Not an Operator
  /// subclass, but placed like one by the sharded engine.)
  static constexpr StageKind kStage = StageKind::kKeyed;

  explicit EpisodeBuilder(std::vector<NamedArea> areas = {});

  /// Consumes one critical point; completed episodes are appended to
  /// `out`. Call Flush() to close trailing episodes.
  void Process(const CriticalPoint& cp, std::vector<Episode>* out);

  void Flush(std::vector<Episode>* out);

  /// Convenience: run a whole synopsis batch.
  std::vector<Episode> Build(const std::vector<CriticalPoint>& synopsis);

 private:
  struct EntityState {
    bool open = false;
    Episode current;
  };

  /// Area containing p, or "".
  std::string AreaOf(const LatLon& p) const;

  void Open(EntityState* st, const CriticalPoint& cp, EpisodeKind kind);
  void Close(EntityState* st, const CriticalPoint& cp,
             std::vector<Episode>* out);

  std::vector<NamedArea> areas_;
  std::map<EntityId, EntityState> state_;
};

/// Compact one-line rendering ("STOP 12min @port_x", "MOVE 8.2km ...").
std::string ToString(const Episode& episode);

}  // namespace datacron

#endif  // DATACRON_TRAJECTORY_EPISODES_H_
