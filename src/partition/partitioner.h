#ifndef DATACRON_PARTITION_PARTITIONER_H_
#define DATACRON_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/curves.h"
#include "rdf/rdfizer.h"
#include "rdf/triple_store.h"

namespace datacron {

/// Assigns triples to logical partitions. Assignment is subject-driven:
/// all triples of a resource land in one partition (the standard
/// subject-based co-location guarantee, so star joins never cross
/// partitions). Spatiotemporally tagged subjects can be placed by
/// locality; untagged subjects fall back to hashing.
class PartitionScheme {
 public:
  PartitionScheme(std::string name, int num_partitions,
                  const std::unordered_map<TermId, StTag>* tags)
      : name_(std::move(name)), num_partitions_(num_partitions), tags_(tags) {}
  virtual ~PartitionScheme() = default;

  const std::string& name() const { return name_; }
  int num_partitions() const { return num_partitions_; }

  /// Partition of a subject resource.
  int PartitionOfNode(TermId node) const;

  /// Partition of a triple (= partition of its subject).
  int PartitionOf(const Triple& t) const { return PartitionOfNode(t.s); }

  /// Placement for a tagged resource; implementations define locality.
  /// Returns -1 to request the hash fallback. Public so composite schemes
  /// can delegate to their component schemes.
  virtual int PlaceTagged(const StTag& tag) const = 0;

  /// The spatiotemporal tag table this scheme places against (may be
  /// null). PartitionedRdfStore derives pruning envelopes from it.
  const std::unordered_map<TermId, StTag>* tag_table() const { return tags_; }

 protected:
  /// Deterministic hash fallback for untagged resources.
  int HashPlace(TermId id) const;

  const std::unordered_map<TermId, StTag>* tags() const { return tags_; }

 private:
  std::string name_;
  int num_partitions_;
  const std::unordered_map<TermId, StTag>* tags_;
};

/// Pure subject-hash partitioning — the locality-oblivious baseline.
class HashPartitioner : public PartitionScheme {
 public:
  HashPartitioner(int num_partitions,
                  const std::unordered_map<TermId, StTag>* tags)
      : PartitionScheme("hash", num_partitions, tags) {}

  int PlaceTagged(const StTag&) const override { return -1; }  // fall back
};

/// Row-major grid-range partitioning: the grid's cells are split into k
/// contiguous row-major ranges of equal cell count (not equal load).
class GridPartitioner : public PartitionScheme {
 public:
  GridPartitioner(int num_partitions,
                  const std::unordered_map<TermId, StTag>* tags,
                  const UniformGrid& grid);

  int PlaceTagged(const StTag& tag) const override;

 private:
  std::int32_t cols_;
  std::int64_t total_cells_;
};

/// Hilbert-curve range partitioning with load-balanced boundaries: cells
/// are ordered by Hilbert index and split so each partition holds about
/// the same number of *tagged resources* (boundaries computed from the
/// observed tag distribution at Build time).
class HilbertPartitioner : public PartitionScheme {
 public:
  /// `order` is the Hilbert curve order (cells per axis = 2^order).
  static std::unique_ptr<HilbertPartitioner> Build(
      int num_partitions, const std::unordered_map<TermId, StTag>* tags,
      const UniformGrid& grid, int order = 8);

  int PlaceTagged(const StTag& tag) const override;

 private:
  HilbertPartitioner(int num_partitions,
                     const std::unordered_map<TermId, StTag>* tags,
                     const UniformGrid& grid, int order,
                     std::vector<std::uint64_t> boundaries);

  std::uint64_t HilbertOfCell(const GridCell& cell) const;

  const UniformGrid grid_;
  int order_;
  /// boundaries_[i] is the first Hilbert key of partition i+1.
  std::vector<std::uint64_t> boundaries_;
};

/// Temporal range partitioning: time buckets split into k contiguous
/// ranges balanced by observed load.
class TemporalPartitioner : public PartitionScheme {
 public:
  static std::unique_ptr<TemporalPartitioner> Build(
      int num_partitions, const std::unordered_map<TermId, StTag>* tags);

  int PlaceTagged(const StTag& tag) const override;

 private:
  TemporalPartitioner(int num_partitions,
                      const std::unordered_map<TermId, StTag>* tags,
                      std::vector<std::int64_t> boundaries);

  std::vector<std::int64_t> boundaries_;
};

/// Composite spatiotemporal partitioning: k = k_time * k_space; a resource
/// goes to (temporal range, Hilbert range) — datAcron's "sophisticated"
/// scheme that prunes on both dimensions at once.
class SpatioTemporalPartitioner : public PartitionScheme {
 public:
  static std::unique_ptr<SpatioTemporalPartitioner> Build(
      int k_time, int k_space,
      const std::unordered_map<TermId, StTag>* tags, const UniformGrid& grid,
      int order = 8);

  int PlaceTagged(const StTag& tag) const override;

 private:
  SpatioTemporalPartitioner(int k_time, int k_space,
                            const std::unordered_map<TermId, StTag>* tags,
                            std::unique_ptr<TemporalPartitioner> temporal,
                            std::unique_ptr<HilbertPartitioner> spatial);

  int k_space_;
  std::unique_ptr<TemporalPartitioner> temporal_;
  std::unique_ptr<HilbertPartitioner> spatial_;
};

}  // namespace datacron

#endif  // DATACRON_PARTITION_PARTITIONER_H_
