#include "partition/partitioner.h"

#include <algorithm>

namespace datacron {

namespace {

std::uint64_t Mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// Equal-count range boundaries over a sorted key multiset: returns k-1
/// split keys (first key of each partition after the first).
template <typename K>
std::vector<K> BalancedBoundaries(std::vector<K> keys, int k) {
  std::vector<K> boundaries;
  if (keys.empty() || k <= 1) return boundaries;
  std::sort(keys.begin(), keys.end());
  boundaries.reserve(static_cast<std::size_t>(k) - 1);
  for (int i = 1; i < k; ++i) {
    const std::size_t idx = keys.size() * static_cast<std::size_t>(i) /
                            static_cast<std::size_t>(k);
    boundaries.push_back(keys[std::min(idx, keys.size() - 1)]);
  }
  return boundaries;
}

/// Index of the range a key falls into given sorted split keys.
template <typename K>
int RangeOf(const std::vector<K>& boundaries, K key) {
  return static_cast<int>(
      std::upper_bound(boundaries.begin(), boundaries.end(), key) -
      boundaries.begin());
}

}  // namespace

int PartitionScheme::HashPlace(TermId id) const {
  return static_cast<int>(Mix64(id) %
                          static_cast<std::uint64_t>(num_partitions_));
}

int PartitionScheme::PartitionOfNode(TermId node) const {
  if (tags_ != nullptr) {
    auto it = tags_->find(node);
    if (it != tags_->end()) {
      const int p = PlaceTagged(it->second);
      if (p >= 0) return p % num_partitions_;
    }
  }
  return HashPlace(node);
}

GridPartitioner::GridPartitioner(
    int num_partitions, const std::unordered_map<TermId, StTag>* tags,
    const UniformGrid& grid)
    : PartitionScheme("grid", num_partitions, tags),
      cols_(grid.cols()),
      total_cells_(grid.CellCount()) {}

int GridPartitioner::PlaceTagged(const StTag& tag) const {
  const std::int64_t linear =
      static_cast<std::int64_t>(tag.cell.iy) * cols_ + tag.cell.ix;
  const std::int64_t clamped =
      std::clamp<std::int64_t>(linear, 0, total_cells_ - 1);
  return static_cast<int>(clamped * num_partitions() / total_cells_);
}

HilbertPartitioner::HilbertPartitioner(
    int num_partitions, const std::unordered_map<TermId, StTag>* tags,
    const UniformGrid& grid, int order,
    std::vector<std::uint64_t> boundaries)
    : PartitionScheme("hilbert", num_partitions, tags),
      grid_(grid),
      order_(order),
      boundaries_(std::move(boundaries)) {}

std::uint64_t HilbertPartitioner::HilbertOfCell(const GridCell& cell) const {
  // Map the data grid's cell center onto the 2^order Hilbert grid.
  return HilbertIndexOf(grid_.region(), order_, grid_.CellCenter(cell));
}

std::unique_ptr<HilbertPartitioner> HilbertPartitioner::Build(
    int num_partitions, const std::unordered_map<TermId, StTag>* tags,
    const UniformGrid& grid, int order) {
  std::unique_ptr<HilbertPartitioner> scheme(new HilbertPartitioner(
      num_partitions, tags, grid, order, {}));
  std::vector<std::uint64_t> keys;
  keys.reserve(tags->size());
  for (const auto& [node, tag] : *tags) {
    keys.push_back(scheme->HilbertOfCell(tag.cell));
  }
  scheme->boundaries_ = BalancedBoundaries(std::move(keys), num_partitions);
  return scheme;
}

int HilbertPartitioner::PlaceTagged(const StTag& tag) const {
  return RangeOf(boundaries_, HilbertOfCell(tag.cell));
}

TemporalPartitioner::TemporalPartitioner(
    int num_partitions, const std::unordered_map<TermId, StTag>* tags,
    std::vector<std::int64_t> boundaries)
    : PartitionScheme("temporal", num_partitions, tags),
      boundaries_(std::move(boundaries)) {}

std::unique_ptr<TemporalPartitioner> TemporalPartitioner::Build(
    int num_partitions, const std::unordered_map<TermId, StTag>* tags) {
  std::vector<std::int64_t> keys;
  keys.reserve(tags->size());
  for (const auto& [node, tag] : *tags) keys.push_back(tag.bucket);
  return std::unique_ptr<TemporalPartitioner>(new TemporalPartitioner(
      num_partitions, tags,
      BalancedBoundaries(std::move(keys), num_partitions)));
}

int TemporalPartitioner::PlaceTagged(const StTag& tag) const {
  return RangeOf(boundaries_, tag.bucket);
}

SpatioTemporalPartitioner::SpatioTemporalPartitioner(
    int k_time, int k_space, const std::unordered_map<TermId, StTag>* tags,
    std::unique_ptr<TemporalPartitioner> temporal,
    std::unique_ptr<HilbertPartitioner> spatial)
    : PartitionScheme("spatiotemporal", k_time * k_space, tags),
      k_space_(k_space),
      temporal_(std::move(temporal)),
      spatial_(std::move(spatial)) {}

std::unique_ptr<SpatioTemporalPartitioner> SpatioTemporalPartitioner::Build(
    int k_time, int k_space, const std::unordered_map<TermId, StTag>* tags,
    const UniformGrid& grid, int order) {
  auto temporal = TemporalPartitioner::Build(k_time, tags);
  auto spatial = HilbertPartitioner::Build(k_space, tags, grid, order);
  return std::unique_ptr<SpatioTemporalPartitioner>(
      new SpatioTemporalPartitioner(k_time, k_space, tags,
                                    std::move(temporal),
                                    std::move(spatial)));
}

int SpatioTemporalPartitioner::PlaceTagged(const StTag& tag) const {
  const int t = temporal_->PlaceTagged(tag);
  const int s = spatial_->PlaceTagged(tag);
  return t * k_space_ + s;
}

}  // namespace datacron
