#ifndef DATACRON_PARTITION_PARTITIONED_STORE_H_
#define DATACRON_PARTITION_PARTITIONED_STORE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "geo/bbox.h"
#include "partition/partitioner.h"
#include "rdf/triple_store.h"

namespace datacron {

class ThreadPool;

/// Pruning metadata of one partition: the spatiotemporal envelope of its
/// tagged resources. The parallel query executor skips partitions whose
/// envelope misses the query's spatial/temporal constraints.
struct PartitionMeta {
  BoundingBox bbox = BoundingBox::Empty();
  std::int64_t min_bucket = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_bucket = std::numeric_limits<std::int64_t>::min();
  std::size_t triple_count = 0;
  std::size_t tagged_resources = 0;
  /// Distinct predicates stored in the partition. A pattern with a bound
  /// predicate absent from this set cannot match here, so the executor
  /// skips the partition without touching its indexes.
  FlatHashSet<TermId> predicates;

  bool HasTimeRange() const { return min_bucket <= max_bucket; }

  /// True unless `p` is a bound predicate the partition provably lacks.
  bool MightMatchPredicate(TermId p) const {
    return p == kInvalidTermId || predicates.Contains(p);
  }
};

/// Load-balance and locality statistics of a partitioning — what E5
/// reports per scheme.
struct PartitionStats {
  std::string scheme;
  int num_partitions = 0;
  std::size_t total_triples = 0;
  /// max partition size / mean partition size; 1.0 is perfect balance.
  double balance_factor = 0.0;
  /// Fraction of inter-node link triples (e.g. dc:hasNextNode) whose two
  /// endpoints live in different partitions — lower is better locality.
  double cross_partition_edge_ratio = 0.0;
  std::size_t link_edges = 0;

  std::string ToString() const;
};

/// The "parallel RDF store": k logical TripleStore partitions plus the
/// per-partition pruning metadata. Logical partitions + worker threads
/// stand in for datAcron's distributed stores (see DESIGN.md
/// substitutions); the partitioning and pruning algorithms are identical.
class PartitionedRdfStore {
 public:
  /// Distributes `triples` by `scheme`, seals every partition and computes
  /// metadata. `grid` must be the grid the tags were computed on;
  /// `link_predicate` (may be kInvalidTermId) identifies the edge
  /// predicate used for the locality statistic. With a pool, partition
  /// assignment runs as a chunked parallel pass and partitions gather and
  /// seal concurrently; partitions, metadata and stats are identical to
  /// the serial path.
  void Load(const std::vector<Triple>& triples, const PartitionScheme& scheme,
            const UniformGrid& grid, TermId link_predicate = kInvalidTermId,
            ThreadPool* pool = nullptr);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const TripleStore& partition(int i) const { return parts_[i]; }
  const PartitionMeta& meta(int i) const { return meta_[i]; }
  const PartitionStats& stats() const { return stats_; }
  std::size_t TotalTriples() const;

  /// Partitions whose envelope intersects the given constraints
  /// (empty box / inverted bucket range = unconstrained).
  std::vector<int> PruneCandidates(const BoundingBox& box,
                                   std::int64_t min_bucket,
                                   std::int64_t max_bucket) const;

 private:
  std::vector<TripleStore> parts_;
  std::vector<PartitionMeta> meta_;
  PartitionStats stats_;
};

}  // namespace datacron

#endif  // DATACRON_PARTITION_PARTITIONED_STORE_H_
