#include "partition/partitioned_store.h"

#include <algorithm>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace datacron {

std::string PartitionStats::ToString() const {
  return StrFormat(
      "scheme=%s k=%d triples=%zu balance=%.3f cross_edges=%.2f%% (%zu "
      "links)",
      scheme.c_str(), num_partitions, total_triples, balance_factor,
      100.0 * cross_partition_edge_ratio, link_edges);
}

void PartitionedRdfStore::Load(const std::vector<Triple>& triples,
                               const PartitionScheme& scheme,
                               const UniformGrid& grid,
                               TermId link_predicate, ThreadPool* pool) {
  const int k = scheme.num_partitions();
  parts_.assign(static_cast<std::size_t>(k), TripleStore());
  meta_.assign(static_cast<std::size_t>(k), PartitionMeta());

  std::size_t cross_edges = 0;
  std::size_t link_edges = 0;
  const bool parallel =
      pool != nullptr && pool->num_threads() >= 2 && triples.size() >= 4096;
  if (parallel) {
    // Pass 1 (parallel): each input chunk scatters its triples into
    // chunk-local per-partition buckets and tallies edge stats.
    const std::size_t chunks = pool->num_threads() * 2;
    const std::size_t per_chunk = (triples.size() + chunks - 1) / chunks;
    struct ChunkScatter {
      std::vector<std::vector<Triple>> buckets;
      std::size_t link_edges = 0;
      std::size_t cross_edges = 0;
    };
    std::vector<ChunkScatter> partial(chunks);
    pool->ParallelFor(chunks, [&](std::size_t c) {
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(triples.size(), begin + per_chunk);
      partial[c].buckets.resize(static_cast<std::size_t>(k));
      for (std::size_t i = begin; i < end; ++i) {
        const Triple& t = triples[i];
        const int p = scheme.PartitionOf(t);
        partial[c].buckets[p].push_back(t);
        if (link_predicate != kInvalidTermId && t.p == link_predicate) {
          ++partial[c].link_edges;
          if (scheme.PartitionOfNode(t.o) != p) ++partial[c].cross_edges;
        }
      }
    });
    for (const ChunkScatter& s : partial) {
      link_edges += s.link_edges;
      cross_edges += s.cross_edges;
    }
    // Pass 2 (parallel): each partition concatenates its buckets in chunk
    // (= input) order and seals. Contents match the serial scatter.
    pool->ParallelFor(static_cast<std::size_t>(k), [&](std::size_t p) {
      std::size_t total = 0;
      for (const ChunkScatter& s : partial) total += s.buckets[p].size();
      parts_[p].Reserve(total);
      for (const ChunkScatter& s : partial) parts_[p].AddBatch(s.buckets[p]);
      meta_[p].triple_count = total;
      parts_[p].Seal();
    });
  } else {
    for (const Triple& t : triples) {
      const int p = scheme.PartitionOf(t);
      parts_[p].Add(t);
      ++meta_[p].triple_count;
      if (link_predicate != kInvalidTermId && t.p == link_predicate) {
        ++link_edges;
        if (scheme.PartitionOfNode(t.o) != p) ++cross_edges;
      }
    }
  }

  // Spatiotemporal envelopes: union of the cell bounds / bucket range of
  // every tagged resource placed in the partition. Untagged resources do
  // not contribute (their partitions are never pruned, see below).
  if (scheme.tag_table() != nullptr) {
    for (const auto& [node, tag] : *scheme.tag_table()) {
      const int p = scheme.PartitionOfNode(node);
      PartitionMeta& m = meta_[p];
      m.bbox.Extend(grid.CellBounds(tag.cell).Center());
      m.min_bucket = std::min(m.min_bucket, tag.bucket);
      m.max_bucket = std::max(m.max_bucket, tag.bucket);
      ++m.tagged_resources;
    }
  }
  // Inflate envelopes by one cell so cell-center unions cover full cells.
  for (PartitionMeta& m : meta_) {
    if (!m.bbox.IsEmpty()) m.bbox = m.bbox.Inflated(grid.cell_deg());
  }

  for (TripleStore& part : parts_) part.Seal();

  // Predicate-existence metadata for executor-side partition skipping.
  auto fill_predicates = [this](std::size_t p) {
    const std::vector<TermId> preds = parts_[p].Predicates();
    meta_[p].predicates.Reserve(preds.size());
    for (TermId pred : preds) meta_[p].predicates.Insert(pred);
  };
  if (parallel) {
    pool->ParallelFor(static_cast<std::size_t>(k), fill_predicates);
  } else {
    for (std::size_t p = 0; p < static_cast<std::size_t>(k); ++p) {
      fill_predicates(p);
    }
  }

  stats_ = PartitionStats();
  stats_.scheme = scheme.name();
  stats_.num_partitions = k;
  stats_.total_triples = triples.size();
  std::size_t max_size = 0;
  for (const PartitionMeta& m : meta_) {
    max_size = std::max(max_size, m.triple_count);
  }
  const double mean =
      k > 0 ? static_cast<double>(triples.size()) / k : 0.0;
  stats_.balance_factor = mean > 0 ? max_size / mean : 0.0;
  stats_.link_edges = link_edges;
  stats_.cross_partition_edge_ratio =
      link_edges > 0 ? static_cast<double>(cross_edges) / link_edges : 0.0;
}

std::size_t PartitionedRdfStore::TotalTriples() const {
  std::size_t n = 0;
  for (const TripleStore& p : parts_) n += p.size();
  return n;
}

std::vector<int> PartitionedRdfStore::PruneCandidates(
    const BoundingBox& box, std::int64_t min_bucket,
    std::int64_t max_bucket) const {
  std::vector<int> out;
  const bool spatial = !box.IsEmpty();
  const bool temporal = min_bucket <= max_bucket;
  for (int i = 0; i < num_partitions(); ++i) {
    const PartitionMeta& m = meta_[i];
    // Partitions with no tagged resources can hold untagged (entity-level)
    // triples, so they are never pruned.
    if (m.tagged_resources > 0) {
      if (spatial && !m.bbox.IsEmpty() && !m.bbox.Intersects(box)) continue;
      if (temporal && m.HasTimeRange() &&
          (m.max_bucket < min_bucket || m.min_bucket > max_bucket)) {
        continue;
      }
    }
    out.push_back(i);
  }
  return out;
}

}  // namespace datacron
