#include "geo/curves.h"

#include <algorithm>
#include <cmath>

namespace datacron {

namespace {

std::uint64_t SpreadBits(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

std::uint32_t CompactBits(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<std::uint32_t>(x);
}

/// One rotation/reflection step of the Hilbert construction.
void HilbertRotate(std::uint32_t n, std::uint32_t* x, std::uint32_t* y,
                   std::uint32_t rx, std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

/// Discretizes p into [0, 2^order) per axis over `region` (clamped).
void DiscretizeToGrid(const BoundingBox& region, int order, const LatLon& p,
                      std::uint32_t* gx, std::uint32_t* gy) {
  const std::uint32_t n = 1u << order;
  const double fx =
      (p.lon_deg - region.min_lon) / (region.max_lon - region.min_lon);
  const double fy =
      (p.lat_deg - region.min_lat) / (region.max_lat - region.min_lat);
  const double cx = std::clamp(fx, 0.0, 1.0) * n;
  const double cy = std::clamp(fy, 0.0, 1.0) * n;
  *gx = std::min(n - 1, static_cast<std::uint32_t>(cx));
  *gy = std::min(n - 1, static_cast<std::uint32_t>(cy));
}

}  // namespace

std::uint64_t MortonEncode(std::uint32_t x, std::uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void MortonDecode(std::uint64_t code, std::uint32_t* x, std::uint32_t* y) {
  *x = CompactBits(code);
  *y = CompactBits(code >> 1);
}

std::uint64_t HilbertEncode(int order, std::uint32_t x, std::uint32_t y) {
  const std::uint32_t n = 1u << order;
  std::uint64_t d = 0;
  for (std::uint32_t s = n / 2; s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    HilbertRotate(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode(int order, std::uint64_t d, std::uint32_t* x,
                   std::uint32_t* y) {
  const std::uint32_t n = 1u << order;
  std::uint32_t rx = 0, ry = 0;
  std::uint64_t t = d;
  *x = 0;
  *y = 0;
  for (std::uint32_t s = 1; s < n; s *= 2) {
    rx = 1 & static_cast<std::uint32_t>(t / 2);
    ry = 1 & static_cast<std::uint32_t>(t ^ rx);
    HilbertRotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

std::uint64_t HilbertIndexOf(const BoundingBox& region, int order,
                             const LatLon& p) {
  std::uint32_t gx = 0, gy = 0;
  DiscretizeToGrid(region, order, p, &gx, &gy);
  return HilbertEncode(order, gx, gy);
}

std::uint64_t MortonIndexOf(const BoundingBox& region, int order,
                            const LatLon& p) {
  std::uint32_t gx = 0, gy = 0;
  DiscretizeToGrid(region, order, p, &gx, &gy);
  return MortonEncode(gx, gy);
}

}  // namespace datacron
