#include "geo/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace datacron {

void RTree::Build(std::vector<Entry> entries, int leaf_capacity) {
  nodes_.clear();
  leaf_refs_.clear();
  child_refs_.clear();
  leaf_refs_size_ = 0;
  root_ = -1;
  entries_ = std::move(entries);
  entry_count_ = entries_.size();
  root_bounds_ = BoundingBox::Empty();
  if (entries_.empty()) return;

  // STR: sort entries by center longitude, slice into vertical strips of
  // ~sqrt(n/capacity) columns, sort each strip by center latitude, and cut
  // into leaves of `capacity` entries.
  std::vector<std::int32_t> entry_ids(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entry_ids[i] = static_cast<std::int32_t>(i);
  }
  std::vector<std::int32_t> level =
      PackLevel(entry_ids, /*items_are_entries=*/true, leaf_capacity);
  while (level.size() > 1) {
    level = PackLevel(level, /*items_are_entries=*/false, leaf_capacity);
  }
  root_ = level.front();
  root_bounds_ = nodes_[root_].box;
}

std::vector<std::int32_t> RTree::PackLevel(
    const std::vector<std::int32_t>& items, bool items_are_entries,
    int capacity) {
  auto center_lon = [&](std::int32_t id) {
    const BoundingBox& b =
        items_are_entries ? entries_[id].box : nodes_[id].box;
    return (b.min_lon + b.max_lon) / 2.0;
  };
  auto center_lat = [&](std::int32_t id) {
    const BoundingBox& b =
        items_are_entries ? entries_[id].box : nodes_[id].box;
    return (b.min_lat + b.max_lat) / 2.0;
  };

  std::vector<std::int32_t> sorted = items;
  std::sort(sorted.begin(), sorted.end(),
            [&](std::int32_t a, std::int32_t b) {
              return center_lon(a) < center_lon(b);
            });

  const std::size_t n = sorted.size();
  const std::size_t num_nodes =
      (n + static_cast<std::size_t>(capacity) - 1) / capacity;
  const std::size_t num_strips = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const std::size_t strip_size =
      (n + num_strips - 1) / num_strips;

  std::vector<std::int32_t> parents;
  parents.reserve(num_nodes);
  for (std::size_t s = 0; s < n; s += strip_size) {
    const std::size_t strip_end = std::min(n, s + strip_size);
    std::sort(sorted.begin() + s, sorted.begin() + strip_end,
              [&](std::int32_t a, std::int32_t b) {
                return center_lat(a) < center_lat(b);
              });
    for (std::size_t i = s; i < strip_end;
         i += static_cast<std::size_t>(capacity)) {
      const std::size_t end =
          std::min(strip_end, i + static_cast<std::size_t>(capacity));
      Node node;
      node.leaf = items_are_entries;
      node.count = static_cast<std::int32_t>(end - i);
      node.box = BoundingBox::Empty();
      if (items_are_entries) {
        // Leaf children must be contiguous in entries_: we re-pack the
        // referenced entries into a scratch vector once per level instead.
        // To avoid a full copy we store the child ids in child_ids_ region:
        // simplest correct approach — leaves index into a remap table.
        node.first = static_cast<std::int32_t>(leaf_refs_size_);
        for (std::size_t j = i; j < end; ++j) {
          leaf_refs_.push_back(sorted[j]);
          node.box.Extend(entries_[sorted[j]].box);
        }
        leaf_refs_size_ = leaf_refs_.size();
      } else {
        node.first = static_cast<std::int32_t>(child_refs_.size());
        for (std::size_t j = i; j < end; ++j) {
          child_refs_.push_back(sorted[j]);
          node.box.Extend(nodes_[sorted[j]].box);
        }
      }
      nodes_.push_back(node);
      parents.push_back(static_cast<std::int32_t>(nodes_.size() - 1));
    }
  }
  return parents;
}

std::vector<std::uint64_t> RTree::Search(const BoundingBox& query) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0 || !query.Intersects(root_bounds_)) return out;
  std::vector<std::int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.leaf) {
      for (std::int32_t i = 0; i < node.count; ++i) {
        const Entry& e = entries_[leaf_refs_[node.first + i]];
        if (query.Intersects(e.box)) out.push_back(e.value);
      }
    } else {
      for (std::int32_t i = 0; i < node.count; ++i) {
        const std::int32_t child = child_refs_[node.first + i];
        if (query.Intersects(nodes_[child].box)) stack.push_back(child);
      }
    }
  }
  return out;
}

std::vector<std::uint64_t> RTree::SearchPoint(const LatLon& p) const {
  return Search(BoundingBox::OfPoint(p));
}

std::vector<std::uint64_t> RTree::Nearest(const LatLon& p,
                                          std::size_t k) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0 || k == 0) return out;

  struct QueueItem {
    double dist;
    std::int32_t id;    // node id, or leaf-ref slot if is_entry
    bool is_entry;
    bool operator>(const QueueItem& other) const {
      return dist > other.dist;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      pq;
  pq.push({nodes_[root_].box.DistanceToMeters(p), root_, false});
  while (!pq.empty() && out.size() < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.is_entry) {
      out.push_back(entries_[item.id].value);
      continue;
    }
    const Node& node = nodes_[item.id];
    if (node.leaf) {
      for (std::int32_t i = 0; i < node.count; ++i) {
        const std::int32_t eid = leaf_refs_[node.first + i];
        pq.push({entries_[eid].box.DistanceToMeters(p), eid, true});
      }
    } else {
      for (std::int32_t i = 0; i < node.count; ++i) {
        const std::int32_t child = child_refs_[node.first + i];
        pq.push({nodes_[child].box.DistanceToMeters(p), child, false});
      }
    }
  }
  return out;
}

}  // namespace datacron
