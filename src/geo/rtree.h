#ifndef DATACRON_GEO_RTREE_H_
#define DATACRON_GEO_RTREE_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/geo.h"

namespace datacron {

/// Static R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive
/// (STR) packing. Values are opaque 64-bit handles (entity ids, triple
/// offsets, trajectory segment indices). Immutable after Build() — the
/// library rebuilds per batch/window, which matches the streaming model
/// (fresh index per window) and keeps the structure cache-friendly.
class RTree {
 public:
  struct Entry {
    BoundingBox box;
    std::uint64_t value = 0;
  };

  RTree() = default;

  /// Builds the tree from `entries` (consumed). `leaf_capacity` tunes the
  /// fan-out; 16 is a good default for 2D rectangles.
  void Build(std::vector<Entry> entries, int leaf_capacity = 16);

  std::size_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }
  const BoundingBox& bounds() const { return root_bounds_; }

  /// All values whose rectangle intersects `query`.
  std::vector<std::uint64_t> Search(const BoundingBox& query) const;

  /// All values whose rectangle contains `p`.
  std::vector<std::uint64_t> SearchPoint(const LatLon& p) const;

  /// The `k` values whose rectangles are nearest to `p` (min planar
  /// distance from point to rectangle), nearest first.
  std::vector<std::uint64_t> Nearest(const LatLon& p, std::size_t k) const;

  /// Number of internal+leaf nodes (diagnostics).
  std::size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    BoundingBox box;
    std::int32_t first = 0;   // child node index or entry index
    std::int32_t count = 0;   // number of children/entries
    bool leaf = true;
  };

  /// Packs `level_boxes` (entries or nodes of the previous level) into
  /// parent nodes with STR; returns indices of the created parents.
  std::vector<std::int32_t> PackLevel(const std::vector<std::int32_t>& items,
                                      bool items_are_entries,
                                      int capacity);

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
  // Leaf nodes reference entries through this remap table so STR ordering
  // never moves the entry payloads; internal nodes reference children the
  // same way.
  std::vector<std::int32_t> leaf_refs_;
  std::vector<std::int32_t> child_refs_;
  std::size_t leaf_refs_size_ = 0;
  std::int32_t root_ = -1;
  std::size_t entry_count_ = 0;
  BoundingBox root_bounds_ = BoundingBox::Empty();
};

}  // namespace datacron

#endif  // DATACRON_GEO_RTREE_H_
