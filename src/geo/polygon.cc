#include "geo/polygon.h"

#include <cmath>

namespace datacron {

Polygon::Polygon(std::vector<LatLon> vertices)
    : vertices_(std::move(vertices)) {
  for (const LatLon& v : vertices_) bbox_.Extend(v);
}

bool Polygon::Contains(const LatLon& p) const {
  if (empty() || !bbox_.Contains(p)) return false;
  // Ray casting: count crossings of a horizontal ray going east from p.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const LatLon& vi = vertices_[i];
    const LatLon& vj = vertices_[j];
    const bool crosses = (vi.lat_deg > p.lat_deg) != (vj.lat_deg > p.lat_deg);
    if (!crosses) continue;
    const double x_at_lat =
        vj.lon_deg + (p.lat_deg - vj.lat_deg) /
                         (vi.lat_deg - vj.lat_deg) *
                         (vi.lon_deg - vj.lon_deg);
    if (p.lon_deg < x_at_lat) inside = !inside;
  }
  return inside;
}

double Polygon::AreaDeg2() const {
  if (empty()) return 0.0;
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += vertices_[j].lon_deg * vertices_[i].lat_deg -
           vertices_[i].lon_deg * vertices_[j].lat_deg;
  }
  return std::fabs(acc) / 2.0;
}

LatLon Polygon::Centroid() const {
  if (vertices_.empty()) return {0.0, 0.0};
  double lat = 0.0, lon = 0.0;
  for (const LatLon& v : vertices_) {
    lat += v.lat_deg;
    lon += v.lon_deg;
  }
  const double n = static_cast<double>(vertices_.size());
  return {lat / n, lon / n};
}

Polygon Polygon::Rectangle(const BoundingBox& box) {
  return Polygon({{box.min_lat, box.min_lon},
                  {box.min_lat, box.max_lon},
                  {box.max_lat, box.max_lon},
                  {box.max_lat, box.min_lon}});
}

Polygon Polygon::Circle(const LatLon& center, double radius_m,
                        int segments) {
  std::vector<LatLon> verts;
  verts.reserve(static_cast<std::size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    const double bearing = 360.0 * i / segments;
    verts.push_back(DestinationPoint(center, bearing, radius_m));
  }
  return Polygon(std::move(verts));
}

}  // namespace datacron
