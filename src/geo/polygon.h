#ifndef DATACRON_GEO_POLYGON_H_
#define DATACRON_GEO_POLYGON_H_

#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/geo.h"

namespace datacron {

/// Simple (non-self-intersecting) polygon over lat/lon vertices, used for
/// areas of interest: ports, anchorages, protected zones, ATM sectors.
/// Vertices are an open ring (first vertex not repeated).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<LatLon> vertices);

  const std::vector<LatLon>& vertices() const { return vertices_; }
  const BoundingBox& bbox() const { return bbox_; }
  bool empty() const { return vertices_.size() < 3; }

  /// Even-odd-rule containment; boundary points may fall either way.
  /// The bbox pre-check makes the common miss case O(1).
  bool Contains(const LatLon& p) const;

  /// Shoelace area in square degrees (absolute value).
  double AreaDeg2() const;

  LatLon Centroid() const;

  /// Convenience factory: axis-aligned rectangle.
  static Polygon Rectangle(const BoundingBox& box);

  /// Convenience factory: regular n-gon approximating a circle of
  /// `radius_m` meters centered at `center`.
  static Polygon Circle(const LatLon& center, double radius_m, int segments);

 private:
  std::vector<LatLon> vertices_;
  BoundingBox bbox_;
};

/// A named geographic area of interest.
struct NamedArea {
  std::string name;
  Polygon polygon;
};

}  // namespace datacron

#endif  // DATACRON_GEO_POLYGON_H_
