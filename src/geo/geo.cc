#include "geo/geo.h"

#include <algorithm>
#include <cstdio>

namespace datacron {

bool IsValidPosition(const LatLon& p) {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg < 180.0 && std::isfinite(p.lat_deg) &&
         std::isfinite(p.lon_deg);
}

double WrapLongitude(double lon_deg) {
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  return lon - 180.0;
}

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double Distance3dMeters(const GeoPoint& a, const GeoPoint& b) {
  const double horizontal = HaversineMeters(a.ll(), b.ll());
  const double dalt = b.alt_m - a.alt_m;
  return std::sqrt(horizontal * horizontal + dalt * dalt);
}

double EquirectangularMeters(const LatLon& a, const LatLon& b) {
  const double mean_lat = (a.lat_deg + b.lat_deg) * 0.5 * kDegToRad;
  double dlon = b.lon_deg - a.lon_deg;
  // Take the short way around the antimeridian.
  if (dlon > 180.0) dlon -= 360.0;
  if (dlon < -180.0) dlon += 360.0;
  const double x = dlon * kDegToRad * std::cos(mean_lat);
  const double y = (b.lat_deg - a.lat_deg) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

double InitialBearingDeg(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = std::atan2(y, x) * kRadToDeg;
  if (bearing < 0) bearing += 360.0;
  if (bearing >= 360.0) bearing -= 360.0;
  return bearing;
}

LatLon DestinationPoint(const LatLon& origin, double bearing_deg,
                        double distance_m) {
  const double delta = distance_m / kEarthRadiusMeters;
  const double theta = bearing_deg * kDegToRad;
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lon1 = origin.lon_deg * kDegToRad;
  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);
  return {lat2 * kRadToDeg, WrapLongitude(lon2 * kRadToDeg)};
}

GeoPoint DeadReckon(const GeoPoint& origin, double course_deg,
                    double speed_mps, double vertical_rate_mps,
                    double horizon_s) {
  const LatLon dest =
      DestinationPoint(origin.ll(), course_deg, speed_mps * horizon_s);
  return {dest.lat_deg, dest.lon_deg,
          origin.alt_m + vertical_rate_mps * horizon_s};
}

EnuVector ToEnu(const GeoPoint& ref, const GeoPoint& p) {
  const double lat0 = ref.lat_deg * kDegToRad;
  double dlon = p.lon_deg - ref.lon_deg;
  if (dlon > 180.0) dlon -= 360.0;
  if (dlon < -180.0) dlon += 360.0;
  EnuVector out;
  out.east_m = dlon * kDegToRad * std::cos(lat0) * kEarthRadiusMeters;
  out.north_m = (p.lat_deg - ref.lat_deg) * kDegToRad * kEarthRadiusMeters;
  out.up_m = p.alt_m - ref.alt_m;
  return out;
}

GeoPoint FromEnu(const GeoPoint& ref, const EnuVector& enu) {
  const double lat0 = ref.lat_deg * kDegToRad;
  GeoPoint out;
  out.lat_deg = ref.lat_deg + enu.north_m / kEarthRadiusMeters * kRadToDeg;
  const double cos_lat = std::max(1e-9, std::cos(lat0));
  out.lon_deg = WrapLongitude(
      ref.lon_deg + enu.east_m / (kEarthRadiusMeters * cos_lat) * kRadToDeg);
  out.alt_m = ref.alt_m + enu.up_m;
  return out;
}

double CourseDifferenceDeg(double a_deg, double b_deg) {
  double d = std::fmod(std::fabs(a_deg - b_deg), 360.0);
  return d > 180.0 ? 360.0 - d : d;
}

double PointToSegmentMeters(const LatLon& p, const LatLon& a,
                            const LatLon& b) {
  // Project into a local plane around `a`.
  const GeoPoint ref{a.lat_deg, a.lon_deg, 0.0};
  const EnuVector vp = ToEnu(ref, {p.lat_deg, p.lon_deg, 0.0});
  const EnuVector vb = ToEnu(ref, {b.lat_deg, b.lon_deg, 0.0});
  const double seg_len2 = vb.east_m * vb.east_m + vb.north_m * vb.north_m;
  if (seg_len2 <= 1e-12) {
    return std::sqrt(vp.east_m * vp.east_m + vp.north_m * vp.north_m);
  }
  double t = (vp.east_m * vb.east_m + vp.north_m * vb.north_m) / seg_len2;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = vp.east_m - t * vb.east_m;
  const double dy = vp.north_m - t * vb.north_m;
  return std::sqrt(dx * dx + dy * dy);
}

std::string ToString(const GeoPoint& p) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f,%.1f", p.lat_deg, p.lon_deg,
                p.alt_m);
  return buf;
}

}  // namespace datacron
