#include "geo/bbox.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace datacron {

void BoundingBox::Extend(const LatLon& p) {
  min_lat = std::min(min_lat, p.lat_deg);
  max_lat = std::max(max_lat, p.lat_deg);
  min_lon = std::min(min_lon, p.lon_deg);
  max_lon = std::max(max_lon, p.lon_deg);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.IsEmpty()) return;
  min_lat = std::min(min_lat, other.min_lat);
  max_lat = std::max(max_lat, other.max_lat);
  min_lon = std::min(min_lon, other.min_lon);
  max_lon = std::max(max_lon, other.max_lon);
}

BoundingBox BoundingBox::Inflated(double margin_deg) const {
  if (IsEmpty()) return *this;
  return BoundingBox{min_lat - margin_deg, min_lon - margin_deg,
                     max_lat + margin_deg, max_lon + margin_deg};
}

double BoundingBox::AreaDeg2() const {
  if (IsEmpty()) return 0.0;
  return (max_lat - min_lat) * (max_lon - min_lon);
}

double BoundingBox::DistanceToMeters(const LatLon& p) const {
  if (IsEmpty()) return std::numeric_limits<double>::infinity();
  const double clamped_lat = std::clamp(p.lat_deg, min_lat, max_lat);
  const double clamped_lon = std::clamp(p.lon_deg, min_lon, max_lon);
  return EquirectangularMeters(p, {clamped_lat, clamped_lon});
}

std::string BoundingBox::ToString() const {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "[%.5f,%.5f .. %.5f,%.5f]", min_lat,
                min_lon, max_lat, max_lon);
  return buf;
}

}  // namespace datacron
