#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace datacron {

UniformGrid::UniformGrid(const BoundingBox& region, double cell_deg)
    : region_(region), cell_deg_(cell_deg) {
  cols_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil((region.max_lon - region.min_lon) / cell_deg)));
  rows_ = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil((region.max_lat - region.min_lat) / cell_deg)));
}

GridCell UniformGrid::CellOf(const LatLon& p) const {
  std::int32_t ix = static_cast<std::int32_t>(
      std::floor((p.lon_deg - region_.min_lon) / cell_deg_));
  std::int32_t iy = static_cast<std::int32_t>(
      std::floor((p.lat_deg - region_.min_lat) / cell_deg_));
  ix = std::clamp(ix, 0, cols_ - 1);
  iy = std::clamp(iy, 0, rows_ - 1);
  return {ix, iy};
}

BoundingBox UniformGrid::CellBounds(const GridCell& c) const {
  return BoundingBox::Of(region_.min_lat + c.iy * cell_deg_,
                         region_.min_lon + c.ix * cell_deg_,
                         region_.min_lat + (c.iy + 1) * cell_deg_,
                         region_.min_lon + (c.ix + 1) * cell_deg_);
}

LatLon UniformGrid::CellCenter(const GridCell& c) const {
  return {region_.min_lat + (c.iy + 0.5) * cell_deg_,
          region_.min_lon + (c.ix + 0.5) * cell_deg_};
}

std::vector<GridCell> UniformGrid::CellsInBox(const BoundingBox& box) const {
  std::vector<GridCell> out;
  if (box.IsEmpty() || !box.Intersects(region_)) return out;
  const GridCell lo = CellOf({box.min_lat, box.min_lon});
  const GridCell hi = CellOf({box.max_lat, box.max_lon});
  out.reserve(static_cast<std::size_t>(hi.ix - lo.ix + 1) *
              static_cast<std::size_t>(hi.iy - lo.iy + 1));
  for (std::int32_t iy = lo.iy; iy <= hi.iy; ++iy) {
    for (std::int32_t ix = lo.ix; ix <= hi.ix; ++ix) {
      out.push_back({ix, iy});
    }
  }
  return out;
}

std::vector<GridCell> UniformGrid::Neighbors(const GridCell& c) const {
  std::vector<GridCell> out;
  out.reserve(8);
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const std::int32_t ix = c.ix + dx;
      const std::int32_t iy = c.iy + dy;
      if (ix < 0 || ix >= cols_ || iy < 0 || iy >= rows_) continue;
      out.push_back({ix, iy});
    }
  }
  return out;
}

}  // namespace datacron
