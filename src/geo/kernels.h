// Batched (struct-of-arrays) geometry kernels over the portable SIMD
// layer in common/simd.
//
// Two correctness classes, enforced by tests/geo_property_test.cc:
//
//   * Bit-identical kernels — PointToSegmentMetersBatch,
//     EquirectangularMetersBatch, BboxContainsBatch. Pure arithmetic
//     per lane (any transcendental is hoisted out and passed in as a
//     precomputed scalar), so every lane equals the legacy scalar
//     function bit for bit, on every backend. Safe to feed event
//     gates and compression keep-decisions.
//
//   * ULP-bound kernels — HaversineMetersBatch, SedMetersBatch. These
//     need sin/cos/asin per lane and use the polynomial forms in
//     common/simd/math.h instead of libm, so they agree with the
//     scalar HaversineMeters/SedMeters to ~1e-13 relative (a few ulp
//     through the trig), not bitwise. Across backends they are still
//     bit-identical lane for lane. Distances only — never gates.
//
// Every entry point takes a SimdDispatch: kNative runs full vectors
// at the compile-time native width with a scalar-abi remainder tail;
// kScalarOnly runs the width-1 reference end to end. Outputs are
// identical either way.
#ifndef DATACRON_GEO_KERNELS_H_
#define DATACRON_GEO_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd/simd.h"
#include "geo/bbox.h"
#include "geo/geo.h"

namespace datacron {

/// Native lane count (4 on AVX2 builds, 1 on forced-scalar builds).
int SimdNativeWidth();
/// "avx2" or "scalar".
const char* SimdBackendName();

/// out_m[i] = HaversineMeters({a_lat[i], a_lon[i]}, {b_lat[i], b_lon[i]})
/// to within the ULP bound above.
void HaversineMetersBatch(const double* a_lat_deg, const double* a_lon_deg,
                          const double* b_lat_deg, const double* b_lon_deg,
                          std::size_t n, double* out_m,
                          SimdDispatch dispatch = SimdDispatch::kNative);

/// Equirectangular distance with the latitude cosine precomputed by the
/// caller (the satellite fix: loops used to recompute cos(mean_lat) per
/// pair even when the reference latitude was loop-invariant).
/// Bit-identical to EquirectangularMeters when `cos_lat` is computed as
/// std::cos((a_lat+b_lat)*0.5*kDegToRad) for that pair.
void EquirectangularMetersBatch(double cos_lat, const double* a_lat_deg,
                                const double* a_lon_deg,
                                const double* b_lat_deg,
                                const double* b_lon_deg, std::size_t n,
                                double* out_m,
                                SimdDispatch dispatch = SimdDispatch::kNative);

/// Scalar convenience over the same kernel, for loops where one endpoint
/// is fixed: hoist `cos_lat` once, call per pair.
double EquirectangularMetersWithCos(double cos_lat, const LatLon& a,
                                    const LatLon& b);

/// out_m[i] = PointToSegmentMeters({p_lat[i], p_lon[i]}, a, b), bit for
/// bit. The segment frame (ENU around `a`, cos(a.lat)) is hoisted once.
void PointToSegmentMetersBatch(const LatLon& a, const LatLon& b,
                               const double* p_lat_deg,
                               const double* p_lon_deg, std::size_t n,
                               double* out_m,
                               SimdDispatch dispatch = SimdDispatch::kNative);

/// Synchronized Euclidean Distance of points p[i] against uniform motion
/// a -> b. Timestamps are passed as doubles on a common per-track epoch
/// (exact for spans < 2^53 ms) so f = (p_ts - a_ts) / (b_ts - a_ts)
/// divides the same values SedMeters does. ULP-bound class (haversine
/// inside).
void SedMetersBatch(double a_lat_deg, double a_lon_deg, double a_alt_m,
                    double a_ts, double b_lat_deg, double b_lon_deg,
                    double b_alt_m, double b_ts, const double* p_lat_deg,
                    const double* p_lon_deg, const double* p_alt_m,
                    const double* p_ts, std::size_t n, double* out_m,
                    SimdDispatch dispatch = SimdDispatch::kNative);

/// Struct-of-arrays mirror of a BoundingBox list, for testing one point
/// against many boxes (capacity sectors) with boxes as lanes.
struct BboxSoa {
  std::vector<double> min_lat, min_lon, max_lat, max_lon;

  std::size_t size() const { return min_lat.size(); }

  void Clear() {
    min_lat.clear();
    min_lon.clear();
    max_lat.clear();
    max_lon.clear();
  }

  void Add(const BoundingBox& b) {
    min_lat.push_back(b.min_lat);
    min_lon.push_back(b.min_lon);
    max_lat.push_back(b.max_lat);
    max_lon.push_back(b.max_lon);
  }
};

/// out[i] = boxes[i].Contains(p) ? 1 : 0, bit-identical to the scalar
/// predicate (ordered comparisons: NaN coordinates contain nothing).
void BboxContainsBatch(const BboxSoa& boxes, const LatLon& p,
                       std::uint8_t* out,
                       SimdDispatch dispatch = SimdDispatch::kNative);

}  // namespace datacron

#endif  // DATACRON_GEO_KERNELS_H_
