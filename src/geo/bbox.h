#ifndef DATACRON_GEO_BBOX_H_
#define DATACRON_GEO_BBOX_H_

#include <string>

#include "geo/geo.h"

namespace datacron {

/// Axis-aligned lat/lon rectangle. Longitudes are treated as plain numbers
/// (no antimeridian wrapping) — the simulated regions in this library are
/// antimeridian-free; queries that would wrap should be split by the caller.
struct BoundingBox {
  double min_lat = 90.0;
  double min_lon = 180.0;
  double max_lat = -90.0;
  double max_lon = -180.0;

  /// An "empty" box contains nothing and unions as identity.
  static BoundingBox Empty() { return BoundingBox{}; }

  static BoundingBox Of(double min_lat, double min_lon, double max_lat,
                        double max_lon) {
    return BoundingBox{min_lat, min_lon, max_lat, max_lon};
  }

  /// Smallest box containing a single point.
  static BoundingBox OfPoint(const LatLon& p) {
    return BoundingBox{p.lat_deg, p.lon_deg, p.lat_deg, p.lon_deg};
  }

  bool IsEmpty() const { return min_lat > max_lat || min_lon > max_lon; }

  bool Contains(const LatLon& p) const {
    return p.lat_deg >= min_lat && p.lat_deg <= max_lat &&
           p.lon_deg >= min_lon && p.lon_deg <= max_lon;
  }

  bool Contains(const BoundingBox& other) const {
    return !IsEmpty() && !other.IsEmpty() && other.min_lat >= min_lat &&
           other.max_lat <= max_lat && other.min_lon >= min_lon &&
           other.max_lon <= max_lon;
  }

  bool Intersects(const BoundingBox& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return !(other.min_lat > max_lat || other.max_lat < min_lat ||
             other.min_lon > max_lon || other.max_lon < min_lon);
  }

  /// Grows this box to cover `p`.
  void Extend(const LatLon& p);

  /// Grows this box to cover `other`.
  void Extend(const BoundingBox& other);

  /// Expands every side by `margin_deg` degrees.
  BoundingBox Inflated(double margin_deg) const;

  LatLon Center() const {
    return {(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }

  /// Width*height in square degrees (0 for empty).
  double AreaDeg2() const;

  /// Minimum planar distance in meters from `p` to this box (0 if inside).
  double DistanceToMeters(const LatLon& p) const;

  std::string ToString() const;

  bool operator==(const BoundingBox&) const = default;
};

}  // namespace datacron

#endif  // DATACRON_GEO_BBOX_H_
