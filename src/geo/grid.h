#ifndef DATACRON_GEO_GRID_H_
#define DATACRON_GEO_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/geo.h"

namespace datacron {

/// Integer cell coordinates of a uniform lat/lon grid.
struct GridCell {
  std::int32_t ix = 0;  // longitude index
  std::int32_t iy = 0;  // latitude index

  bool operator==(const GridCell&) const = default;

  /// Packs both indices into one 64-bit key usable in hash maps and as a
  /// spatial component of RDF node IDs.
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iy)) << 32) |
           static_cast<std::uint32_t>(ix);
  }

  static GridCell FromKey(std::uint64_t key) {
    return GridCell{static_cast<std::int32_t>(key & 0xFFFFFFFFULL),
                    static_cast<std::int32_t>(key >> 32)};
  }
};

/// Uniform lat/lon grid over a region. The workhorse spatial discretization
/// used by synopses (gap regions), RDF spatial encoding, partitioning,
/// hotspot detection and link-discovery blocking.
class UniformGrid {
 public:
  /// `cell_deg` is the edge length of a cell in degrees.
  UniformGrid(const BoundingBox& region, double cell_deg);

  const BoundingBox& region() const { return region_; }
  double cell_deg() const { return cell_deg_; }
  std::int32_t cols() const { return cols_; }
  std::int32_t rows() const { return rows_; }
  std::int64_t CellCount() const {
    return static_cast<std::int64_t>(cols_) * rows_;
  }

  /// Cell containing `p`; positions outside the region clamp to the border
  /// cells so every position maps somewhere (streams drift at region edges).
  GridCell CellOf(const LatLon& p) const;

  /// Geographic bounds of a cell.
  BoundingBox CellBounds(const GridCell& c) const;

  LatLon CellCenter(const GridCell& c) const;

  /// Row-major linear index in [0, CellCount()).
  std::int64_t LinearIndex(const GridCell& c) const {
    return static_cast<std::int64_t>(c.iy) * cols_ + c.ix;
  }

  GridCell FromLinearIndex(std::int64_t idx) const {
    return GridCell{static_cast<std::int32_t>(idx % cols_),
                    static_cast<std::int32_t>(idx / cols_)};
  }

  /// All cells overlapping `box`, clipped to the region.
  std::vector<GridCell> CellsInBox(const BoundingBox& box) const;

  /// The up-to-8 neighbors of `c` that lie inside the region.
  std::vector<GridCell> Neighbors(const GridCell& c) const;

 private:
  BoundingBox region_;
  double cell_deg_;
  std::int32_t cols_;
  std::int32_t rows_;
};

/// Hash functor for GridCell keys.
struct GridCellHash {
  std::size_t operator()(const GridCell& c) const {
    std::uint64_t k = c.Key();
    k ^= k >> 33;
    k *= 0xFF51AFD7ED558CCDULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};

/// Bucketed spatial index: values of type T appended to their cell's bucket.
template <typename T>
class GridIndex {
 public:
  GridIndex(const BoundingBox& region, double cell_deg)
      : grid_(region, cell_deg) {}

  const UniformGrid& grid() const { return grid_; }

  void Insert(const LatLon& p, T value) {
    buckets_[grid_.CellOf(p)].push_back(std::move(value));
  }

  /// Values in the bucket of cell `c` (empty if none).
  const std::vector<T>& CellValues(const GridCell& c) const {
    static const std::vector<T> kEmpty;
    auto it = buckets_.find(c);
    return it == buckets_.end() ? kEmpty : it->second;
  }

  /// Collects candidate values from all cells intersecting `box`. Callers
  /// still need an exact predicate — the grid over-approximates.
  std::vector<T> Candidates(const BoundingBox& box) const {
    std::vector<T> out;
    for (const GridCell& c : grid_.CellsInBox(box)) {
      const auto& bucket = CellValues(c);
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
    return out;
  }

  /// Candidates from the cell of `p` and its 8 neighbors.
  std::vector<T> NeighborhoodCandidates(const LatLon& p) const {
    std::vector<T> out;
    const GridCell c = grid_.CellOf(p);
    const auto& own = CellValues(c);
    out.insert(out.end(), own.begin(), own.end());
    for (const GridCell& n : grid_.Neighbors(c)) {
      const auto& bucket = CellValues(n);
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
    return out;
  }

  std::size_t NonEmptyCellCount() const { return buckets_.size(); }

  void Clear() { buckets_.clear(); }

 private:
  UniformGrid grid_;
  std::unordered_map<GridCell, std::vector<T>, GridCellHash> buckets_;
};

}  // namespace datacron

#endif  // DATACRON_GEO_GRID_H_
