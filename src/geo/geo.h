#ifndef DATACRON_GEO_GEO_H_
#define DATACRON_GEO_GEO_H_

#include <cmath>
#include <string>

namespace datacron {

/// Mean Earth radius (meters), spherical model. Surveillance analytics at
/// datAcron scales (kilometers to hundreds of kilometers) are insensitive to
/// the ellipsoidal correction.
constexpr double kEarthRadiusMeters = 6371008.8;

constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;

/// Knots to meters/second (1 nautical mile = 1852 m).
constexpr double kKnotsToMps = 1852.0 / 3600.0;
constexpr double kMpsToKnots = 3600.0 / 1852.0;

/// Feet to meters (aviation altitudes are reported in feet).
constexpr double kFeetToMeters = 0.3048;

/// A 2D geographic position in degrees. Valid latitudes are [-90, 90],
/// longitudes [-180, 180).
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const LatLon&) const = default;
};

/// A 3D geographic position: LatLon plus altitude in meters above MSL.
/// Maritime entities use alt_m == 0; aviation uses true altitude.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;

  LatLon ll() const { return {lat_deg, lon_deg}; }
  bool operator==(const GeoPoint&) const = default;
};

/// True when lat/lon are inside their legal ranges.
bool IsValidPosition(const LatLon& p);

/// Wraps a longitude into [-180, 180).
double WrapLongitude(double lon_deg);

/// Great-circle distance in meters (haversine formula).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// 3D distance: sqrt(haversine^2 + dAlt^2). Exact enough for the altitude
/// spans of aviation (<= ~13 km) versus the Earth radius.
double Distance3dMeters(const GeoPoint& a, const GeoPoint& b);

/// Fast planar approximation of distance (equirectangular projection around
/// the mean latitude). Within 0.5% of haversine below ~100 km separations;
/// used in inner loops (clustering, CPA search).
double EquirectangularMeters(const LatLon& a, const LatLon& b);

/// Initial great-circle bearing from `a` to `b`, degrees in [0, 360).
double InitialBearingDeg(const LatLon& a, const LatLon& b);

/// Great-circle destination point: start at `origin`, travel
/// `distance_m` meters on initial bearing `bearing_deg`.
LatLon DestinationPoint(const LatLon& origin, double bearing_deg,
                        double distance_m);

/// Dead-reckoning projection used throughout forecasting: course-over-ground
/// in degrees, speed in m/s, horizon in seconds. 3D variant also applies the
/// vertical rate (m/s).
GeoPoint DeadReckon(const GeoPoint& origin, double course_deg,
                    double speed_mps, double vertical_rate_mps,
                    double horizon_s);

/// Local East-North(-Up) displacement of `p` relative to `ref` in meters,
/// equirectangular. Suitable for local kinematics (Kalman filters, CPA).
struct EnuVector {
  double east_m = 0.0;
  double north_m = 0.0;
  double up_m = 0.0;
};

EnuVector ToEnu(const GeoPoint& ref, const GeoPoint& p);

/// Inverse of ToEnu for small displacements.
GeoPoint FromEnu(const GeoPoint& ref, const EnuVector& enu);

/// Smallest absolute difference between two courses, in [0, 180].
double CourseDifferenceDeg(double a_deg, double b_deg);

/// East/north velocity components of a course-over-ground + speed pair.
/// Inline so every caller (CPA core, FleetSnapshot precompute, Kalman
/// init) evaluates the identical libm expression — the precomputed
/// columns must match on-the-fly computation bit for bit.
inline void CourseToVelocityMps(double course_deg, double speed_mps,
                                double* ve_mps, double* vn_mps) {
  const double c = course_deg * kDegToRad;
  *ve_mps = speed_mps * std::sin(c);
  *vn_mps = speed_mps * std::cos(c);
}

/// Cross-track distance (meters) from point `p` to the great-circle segment
/// (a, b), clamped to the segment (so endpoints count). Planar
/// approximation; used by trajectory compression error metrics.
double PointToSegmentMeters(const LatLon& p, const LatLon& a,
                            const LatLon& b);

/// "lat,lon[,alt]" formatting for debug output.
std::string ToString(const GeoPoint& p);

}  // namespace datacron

#endif  // DATACRON_GEO_GEO_H_
