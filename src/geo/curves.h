#ifndef DATACRON_GEO_CURVES_H_
#define DATACRON_GEO_CURVES_H_

#include <cstdint>

#include "geo/bbox.h"
#include "geo/geo.h"

namespace datacron {

/// Interleaves the low 32 bits of x and y into a 64-bit Morton (Z-order)
/// code; x occupies the even bit positions.
std::uint64_t MortonEncode(std::uint32_t x, std::uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(std::uint64_t code, std::uint32_t* x, std::uint32_t* y);

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid.
/// Order must be in [1, 31]. Hilbert preserves locality better than
/// Z-order (no long jumps), which is why the Hilbert RDF partitioner
/// produces fewer cross-partition neighbor pairs.
std::uint64_t HilbertEncode(int order, std::uint32_t x, std::uint32_t y);

/// Inverse of HilbertEncode.
void HilbertDecode(int order, std::uint64_t d, std::uint32_t* x,
                   std::uint32_t* y);

/// Maps a lat/lon position to discrete curve coordinates over `region`
/// with 2^order cells per axis, then to a Hilbert index. Positions outside
/// the region are clamped.
std::uint64_t HilbertIndexOf(const BoundingBox& region, int order,
                             const LatLon& p);

/// Z-order equivalent of HilbertIndexOf.
std::uint64_t MortonIndexOf(const BoundingBox& region, int order,
                            const LatLon& p);

}  // namespace datacron

#endif  // DATACRON_GEO_CURVES_H_
