#include "geo/kernels.h"

#include <cmath>

#include "common/simd/math.h"

namespace datacron {

namespace {

// Each kernel is written once over the abi tag; the dispatch wrappers
// below run [0, main) at the native width and the remainder at width 1.
// Callers of the *Impl templates guarantee (end - begin) % kWidth == 0.

/// Sequential antimeridian wrap, matching the two `if`s in
/// EquirectangularMeters/ToEnu (the second test sees the adjusted
/// value).
template <typename Abi>
inline simd::Simd<double, Abi> WrapDlon(simd::Simd<double, Abi> dlon) {
  using D = simd::Simd<double, Abi>;
  dlon = Select(dlon > D(180.0), dlon - D(360.0), dlon);
  dlon = Select(dlon < D(-180.0), dlon + D(360.0), dlon);
  return dlon;
}

/// Haversine on already-loaded lanes. Mirrors HaversineMeters op for
/// op, with poly trig in place of libm (ULP-bound class).
template <typename Abi>
inline simd::Simd<double, Abi> HaversineLanes(simd::Simd<double, Abi> a_lat,
                                              simd::Simd<double, Abi> a_lon,
                                              simd::Simd<double, Abi> b_lat,
                                              simd::Simd<double, Abi> b_lon) {
  using D = simd::Simd<double, Abi>;
  const D lat1 = a_lat * D(kDegToRad);
  const D lat2 = b_lat * D(kDegToRad);
  const D dlat = (b_lat - a_lat) * D(kDegToRad);
  const D dlon = (b_lon - a_lon) * D(kDegToRad);
  D sin_dlat, cos_half_dlat, sin_dlon, cos_half_dlon, sin1, cos1, sin2, cos2;
  simd::SinCos<Abi>(dlat * D(0.5), &sin_dlat, &cos_half_dlat);
  simd::SinCos<Abi>(dlon * D(0.5), &sin_dlon, &cos_half_dlon);
  simd::SinCos<Abi>(lat1, &sin1, &cos1);
  simd::SinCos<Abi>(lat2, &sin2, &cos2);
  const D h = sin_dlat * sin_dlat + ((cos1 * cos2) * sin_dlon) * sin_dlon;
  // Min's MINPD semantics give 1.0 on a NaN radicand, exactly like
  // std::min(1.0, sqrt(h)) in the scalar code.
  return D(2.0 * kEarthRadiusMeters) * simd::Asin<Abi>(Min(Sqrt(h), D(1.0)));
}

template <typename Abi>
void HaversineImpl(const double* a_lat, const double* a_lon,
                   const double* b_lat, const double* b_lon,
                   std::size_t begin, std::size_t end, double* out) {
  using D = simd::Simd<double, Abi>;
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    const D d = HaversineLanes<Abi>(D::Load(a_lat + i), D::Load(a_lon + i),
                                    D::Load(b_lat + i), D::Load(b_lon + i));
    d.Store(out + i);
  }
}

template <typename Abi>
void EquirectImpl(double cos_lat, const double* a_lat, const double* a_lon,
                  const double* b_lat, const double* b_lon, std::size_t begin,
                  std::size_t end, double* out) {
  using D = simd::Simd<double, Abi>;
  const D cosm(cos_lat);
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    const D al = D::Load(a_lat + i);
    const D bl = D::Load(b_lat + i);
    const D dlon = WrapDlon<Abi>(D::Load(b_lon + i) - D::Load(a_lon + i));
    const D x = (dlon * D(kDegToRad)) * cosm;
    const D y = (bl - al) * D(kDegToRad);
    const D d = D(kEarthRadiusMeters) * Sqrt(x * x + y * y);
    d.Store(out + i);
  }
}

template <typename Abi>
void PointToSegmentImpl(double a_lat, double a_lon, double cos_lat0,
                        double vb_e, double vb_n, double seg_len2,
                        const double* p_lat, const double* p_lon,
                        std::size_t begin, std::size_t end, double* out) {
  using D = simd::Simd<double, Abi>;
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    const D dlon = WrapDlon<Abi>(D::Load(p_lon + i) - D(a_lon));
    const D vp_e = ((dlon * D(kDegToRad)) * D(cos_lat0)) * D(kEarthRadiusMeters);
    const D vp_n =
        ((D::Load(p_lat + i) - D(a_lat)) * D(kDegToRad)) * D(kEarthRadiusMeters);
    D d;
    if (seg_len2 <= 1e-12) {
      d = Sqrt(vp_e * vp_e + vp_n * vp_n);
    } else {
      D t = (vp_e * D(vb_e) + vp_n * D(vb_n)) / D(seg_len2);
      // std::clamp(t, 0, 1) spelled as its exact select sequence so a
      // NaN t passes through unchanged, like the scalar code.
      t = Select(t < D(0.0), D(0.0), Select(D(1.0) < t, D(1.0), t));
      const D dx = vp_e - t * D(vb_e);
      const D dy = vp_n - t * D(vb_n);
      d = Sqrt(dx * dx + dy * dy);
    }
    d.Store(out + i);
  }
}

template <typename Abi>
void SedImpl(double a_lat, double a_lon, double a_alt, double a_ts,
             double b_lat, double b_lon, double b_alt, double b_ts,
             const double* p_lat, const double* p_lon, const double* p_alt,
             const double* p_ts, std::size_t begin, std::size_t end,
             double* out) {
  using D = simd::Simd<double, Abi>;
  const double span = b_ts - a_ts;
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    D f = span > 0 ? (D::Load(p_ts + i) - D(a_ts)) / D(span) : D(0.0);
    f = Select(f < D(0.0), D(0.0), Select(D(1.0) < f, D(1.0), f));
    const D s_lat = D(a_lat) + f * (D(b_lat) - D(a_lat));
    const D s_lon = D(a_lon) + f * (D(b_lon) - D(a_lon));
    const D s_alt = D(a_alt) + f * (D(b_alt) - D(a_alt));
    const D pl = D::Load(p_lat + i);
    const D po = D::Load(p_lon + i);
    const D horizontal = HaversineLanes<Abi>(s_lat, s_lon, pl, po);
    const D dalt = D::Load(p_alt + i) - s_alt;
    const D d = Sqrt(horizontal * horizontal + dalt * dalt);
    d.Store(out + i);
  }
}

template <typename Abi>
void BboxContainsImpl(const BboxSoa& boxes, double p_lat, double p_lon,
                      std::size_t begin, std::size_t end, std::uint8_t* out) {
  using D = simd::Simd<double, Abi>;
  const D lat(p_lat);
  const D lon(p_lon);
  for (std::size_t i = begin; i < end; i += D::kWidth) {
    const auto hit = (lat >= D::Load(boxes.min_lat.data() + i)) &&
                     (lat <= D::Load(boxes.max_lat.data() + i)) &&
                     (lon >= D::Load(boxes.min_lon.data() + i)) &&
                     (lon <= D::Load(boxes.max_lon.data() + i));
    hit.StoreBytes(out + i);
  }
}

/// Split [0, n) into a native-width-aligned head and a scalar tail.
inline std::size_t MainSpan(std::size_t n, SimdDispatch dispatch) {
  if (dispatch != SimdDispatch::kNative) return 0;
  return n - n % static_cast<std::size_t>(simd::kNativeWidth);
}

}  // namespace

int SimdNativeWidth() { return simd::kNativeWidth; }

const char* SimdBackendName() { return simd::NativeBackendName(); }

void HaversineMetersBatch(const double* a_lat_deg, const double* a_lon_deg,
                          const double* b_lat_deg, const double* b_lon_deg,
                          std::size_t n, double* out_m, SimdDispatch dispatch) {
  const std::size_t main = MainSpan(n, dispatch);
  HaversineImpl<simd::native_abi>(a_lat_deg, a_lon_deg, b_lat_deg, b_lon_deg,
                                  0, main, out_m);
  HaversineImpl<simd::scalar_abi>(a_lat_deg, a_lon_deg, b_lat_deg, b_lon_deg,
                                  main, n, out_m);
}

void EquirectangularMetersBatch(double cos_lat, const double* a_lat_deg,
                                const double* a_lon_deg,
                                const double* b_lat_deg,
                                const double* b_lon_deg, std::size_t n,
                                double* out_m, SimdDispatch dispatch) {
  const std::size_t main = MainSpan(n, dispatch);
  EquirectImpl<simd::native_abi>(cos_lat, a_lat_deg, a_lon_deg, b_lat_deg,
                                 b_lon_deg, 0, main, out_m);
  EquirectImpl<simd::scalar_abi>(cos_lat, a_lat_deg, a_lon_deg, b_lat_deg,
                                 b_lon_deg, main, n, out_m);
}

double EquirectangularMetersWithCos(double cos_lat, const LatLon& a,
                                    const LatLon& b) {
  double out;
  EquirectImpl<simd::scalar_abi>(cos_lat, &a.lat_deg, &a.lon_deg, &b.lat_deg,
                                 &b.lon_deg, 0, 1, &out);
  return out;
}

void PointToSegmentMetersBatch(const LatLon& a, const LatLon& b,
                               const double* p_lat_deg,
                               const double* p_lon_deg, std::size_t n,
                               double* out_m, SimdDispatch dispatch) {
  // Hoist the per-segment frame exactly as PointToSegmentMeters builds
  // it per call: ENU around `a`, so cos(a.lat) is the only cosine.
  const GeoPoint ref{a.lat_deg, a.lon_deg, 0.0};
  const EnuVector vb = ToEnu(ref, {b.lat_deg, b.lon_deg, 0.0});
  const double seg_len2 = vb.east_m * vb.east_m + vb.north_m * vb.north_m;
  const double cos_lat0 = std::cos(a.lat_deg * kDegToRad);
  const std::size_t main = MainSpan(n, dispatch);
  PointToSegmentImpl<simd::native_abi>(a.lat_deg, a.lon_deg, cos_lat0,
                                       vb.east_m, vb.north_m, seg_len2,
                                       p_lat_deg, p_lon_deg, 0, main, out_m);
  PointToSegmentImpl<simd::scalar_abi>(a.lat_deg, a.lon_deg, cos_lat0,
                                       vb.east_m, vb.north_m, seg_len2,
                                       p_lat_deg, p_lon_deg, main, n, out_m);
}

void SedMetersBatch(double a_lat_deg, double a_lon_deg, double a_alt_m,
                    double a_ts, double b_lat_deg, double b_lon_deg,
                    double b_alt_m, double b_ts, const double* p_lat_deg,
                    const double* p_lon_deg, const double* p_alt_m,
                    const double* p_ts, std::size_t n, double* out_m,
                    SimdDispatch dispatch) {
  const std::size_t main = MainSpan(n, dispatch);
  SedImpl<simd::native_abi>(a_lat_deg, a_lon_deg, a_alt_m, a_ts, b_lat_deg,
                            b_lon_deg, b_alt_m, b_ts, p_lat_deg, p_lon_deg,
                            p_alt_m, p_ts, 0, main, out_m);
  SedImpl<simd::scalar_abi>(a_lat_deg, a_lon_deg, a_alt_m, a_ts, b_lat_deg,
                            b_lon_deg, b_alt_m, b_ts, p_lat_deg, p_lon_deg,
                            p_alt_m, p_ts, main, n, out_m);
}

void BboxContainsBatch(const BboxSoa& boxes, const LatLon& p,
                       std::uint8_t* out, SimdDispatch dispatch) {
  const std::size_t n = boxes.size();
  const std::size_t main = MainSpan(n, dispatch);
  BboxContainsImpl<simd::native_abi>(boxes, p.lat_deg, p.lon_deg, 0, main,
                                     out);
  BboxContainsImpl<simd::scalar_abi>(boxes, p.lat_deg, p.lon_deg, main, n,
                                     out);
}

}  // namespace datacron
