#ifndef DATACRON_SYNOPSES_COMPRESSION_H_
#define DATACRON_SYNOPSES_COMPRESSION_H_

#include <map>
#include <vector>

#include "sources/model.h"
#include "stream/operator.h"

namespace datacron {

/// Online dead-reckoning threshold compressor.
///
/// Keeps the last *kept* report per entity; a new report is kept only when
/// the position dead-reckoned from the kept report (using its speed/course/
/// vertical rate) deviates from the actual position by more than
/// `threshold_m` meters (3D distance for aviation). This is the classic
/// one-pass trajectory compression with a per-point error bound — exactly
/// the guarantee the paper's "compression without affecting the quality of
/// analytics" claim rests on.
class DeadReckoningCompressor
    : public Operator<PositionReport, PositionReport> {
 public:
  explicit DeadReckoningCompressor(double threshold_m);

  void Process(const PositionReport& report,
               std::vector<PositionReport>* out) override;

  /// Emits the last report of each entity so trajectories are closed.
  void Flush(std::vector<PositionReport>* out) override;

  double threshold_m() const { return threshold_m_; }

 private:
  struct EntityState {
    PositionReport last_kept;
    PositionReport last_seen;
    bool has_last_kept = false;
  };

  double threshold_m_;
  std::map<EntityId, EntityState> state_;
};

/// Offline Douglas–Peucker simplification over a single-entity,
/// time-ordered sequence of reports, using perpendicular (cross-track)
/// distance in meters. Returns the kept subsequence (always includes the
/// first and last points).
std::vector<PositionReport> DouglasPeucker(
    const std::vector<PositionReport>& points, double epsilon_m);

/// Spatiotemporal Douglas–Peucker using Synchronized Euclidean Distance:
/// the deviation of point p is measured against where the moving object
/// *would have been at p's timestamp* when travelling a->b uniformly.
/// SED respects the time axis, so simplification preserves kinematics, not
/// just geometry — the right metric for forecasting workloads.
std::vector<PositionReport> DouglasPeuckerSed(
    const std::vector<PositionReport>& points, double epsilon_m);

/// Synchronized Euclidean Distance of `p` against uniform motion a->b.
double SedMeters(const PositionReport& a, const PositionReport& b,
                 const PositionReport& p);

/// Quality of a compressed trajectory versus dense ground truth: for every
/// truth sample, the distance to the compressed trajectory's interpolated
/// position at that timestamp.
struct CompressionQuality {
  double mean_sed_m = 0.0;
  double max_sed_m = 0.0;
  double rmse_m = 0.0;
  std::size_t original_points = 0;
  std::size_t kept_points = 0;

  double CompressionRatio() const {
    return kept_points == 0
               ? 0.0
               : static_cast<double>(original_points) / kept_points;
  }
};

/// Evaluates `kept` (time-ordered subset for one entity) against `truth`.
CompressionQuality EvaluateCompression(
    const std::vector<PositionReport>& truth,
    const std::vector<PositionReport>& kept);

/// Linear interpolation of a compressed trajectory at time `t` (clamped to
/// the ends). Returns false when `kept` is empty.
bool InterpolateAt(const std::vector<PositionReport>& kept, TimestampMs t,
                   GeoPoint* out);

}  // namespace datacron

#endif  // DATACRON_SYNOPSES_COMPRESSION_H_
