#include "synopses/critical_points.h"

#include <cmath>

#include "geo/geo.h"

namespace datacron {

const char* CriticalPointTypeName(CriticalPointType type) {
  switch (type) {
    case CriticalPointType::kTrajectoryStart:
      return "trajectory_start";
    case CriticalPointType::kStopStart:
      return "stop_start";
    case CriticalPointType::kStopEnd:
      return "stop_end";
    case CriticalPointType::kTurningPoint:
      return "turning_point";
    case CriticalPointType::kSpeedChange:
      return "speed_change";
    case CriticalPointType::kGapStart:
      return "gap_start";
    case CriticalPointType::kGapEnd:
      return "gap_end";
    case CriticalPointType::kAltitudeChange:
      return "altitude_change";
    case CriticalPointType::kHeartbeat:
      return "heartbeat";
    case CriticalPointType::kTrajectoryEnd:
      return "trajectory_end";
  }
  return "?";
}

CriticalPointDetector::CriticalPointDetector(CriticalPointConfig config)
    : Operator<PositionReport, CriticalPoint>("critical_point_detector"),
      config_(config) {}

void CriticalPointDetector::Emit(const PositionReport& report,
                                 CriticalPointType type, EntityState* state,
                                 std::vector<CriticalPoint>* out) {
  out->push_back(CriticalPoint{report, type});
  state->last_emitted = report;
  state->course_accum_deg = 0.0;
}

void CriticalPointDetector::Process(const PositionReport& report,
                                    std::vector<CriticalPoint>* out) {
  EntityState& st = state_[report.entity_id];
  if (!st.started) {
    st.started = true;
    st.stopped = report.speed_mps < config_.stop_speed_mps;
    st.last_report = report;
    Emit(report, CriticalPointType::kTrajectoryStart, &st, out);
    return;
  }

  // Out-of-order reports would corrupt the O(1) state; drop them here.
  // The windowing layer upstream reorders within its lateness bound.
  if (report.timestamp < st.last_report.timestamp) return;

  // 1. Communication gap: emit the point before the silence (GapStart, at
  // the previous report's location) and the resumption point (GapEnd).
  const DurationMs silence = report.timestamp - st.last_report.timestamp;
  if (silence >= config_.gap_threshold) {
    out->push_back(CriticalPoint{st.last_report, CriticalPointType::kGapStart});
    st.last_emitted = st.last_report;
    Emit(report, CriticalPointType::kGapEnd, &st, out);
    st.stopped = report.speed_mps < config_.stop_speed_mps;
    st.last_report = report;
    return;
  }

  // 2. Stop detection (hysteresis between stop start/end).
  const bool now_stopped = report.speed_mps < config_.stop_speed_mps;
  if (now_stopped != st.stopped) {
    st.stopped = now_stopped;
    Emit(report,
         now_stopped ? CriticalPointType::kStopStart
                     : CriticalPointType::kStopEnd,
         &st, out);
    st.last_report = report;
    return;
  }

  // 3. Turning point: accumulated heading change since the last emission.
  st.course_accum_deg +=
      CourseDifferenceDeg(report.course_deg, st.last_report.course_deg);
  if (!now_stopped && st.course_accum_deg >= config_.turn_threshold_deg) {
    Emit(report, CriticalPointType::kTurningPoint, &st, out);
    st.last_report = report;
    return;
  }

  // 4. Speed change vs. the last emitted point.
  const double base_speed =
      std::max(st.last_emitted.speed_mps, config_.stop_speed_mps);
  if (std::fabs(report.speed_mps - st.last_emitted.speed_mps) >=
      config_.speed_change_ratio * base_speed) {
    Emit(report, CriticalPointType::kSpeedChange, &st, out);
    st.last_report = report;
    return;
  }

  // 5. Altitude regime change (aviation).
  if (report.domain == Domain::kAviation &&
      std::fabs(report.vertical_rate_mps -
                st.last_emitted.vertical_rate_mps) >=
          config_.vertical_rate_threshold_mps) {
    Emit(report, CriticalPointType::kAltitudeChange, &st, out);
    st.last_report = report;
    return;
  }

  // 6. Heartbeat keep-alive.
  if (config_.heartbeat_interval > 0 &&
      report.timestamp - st.last_emitted.timestamp >=
          config_.heartbeat_interval) {
    Emit(report, CriticalPointType::kHeartbeat, &st, out);
  }
  st.last_report = report;
}

void CriticalPointDetector::Flush(std::vector<CriticalPoint>* out) {
  for (auto& [id, st] : state_) {
    if (st.started) {
      out->push_back(
          CriticalPoint{st.last_report, CriticalPointType::kTrajectoryEnd});
    }
  }
  state_.clear();
}

}  // namespace datacron
