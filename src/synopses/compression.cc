#include "synopses/compression.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "geo/geo.h"
#include "geo/kernels.h"

namespace datacron {

DeadReckoningCompressor::DeadReckoningCompressor(double threshold_m)
    : Operator<PositionReport, PositionReport>("dead_reckoning_compressor"),
      threshold_m_(threshold_m) {}

void DeadReckoningCompressor::Process(const PositionReport& report,
                                      std::vector<PositionReport>* out) {
  EntityState& st = state_[report.entity_id];
  if (!st.has_last_kept) {
    st.has_last_kept = true;
    st.last_kept = report;
    st.last_seen = report;
    out->push_back(report);
    return;
  }
  if (report.timestamp < st.last_seen.timestamp) return;  // out of order
  st.last_seen = report;

  const double horizon_s =
      static_cast<double>(report.timestamp - st.last_kept.timestamp) / 1000.0;
  const GeoPoint predicted = DeadReckon(
      st.last_kept.position, st.last_kept.course_deg, st.last_kept.speed_mps,
      st.last_kept.vertical_rate_mps, horizon_s);
  const double deviation =
      report.domain == Domain::kAviation
          ? Distance3dMeters(predicted, report.position)
          : HaversineMeters(predicted.ll(), report.position.ll());
  if (deviation > threshold_m_) {
    st.last_kept = report;
    out->push_back(report);
  }
}

void DeadReckoningCompressor::Flush(std::vector<PositionReport>* out) {
  for (auto& [id, st] : state_) {
    if (st.has_last_kept &&
        st.last_seen.timestamp != st.last_kept.timestamp) {
      out->push_back(st.last_seen);
    }
  }
  state_.clear();
}

double SedMeters(const PositionReport& a, const PositionReport& b,
                 const PositionReport& p) {
  const double span =
      static_cast<double>(b.timestamp - a.timestamp);
  double f = span > 0
                 ? static_cast<double>(p.timestamp - a.timestamp) / span
                 : 0.0;
  f = std::clamp(f, 0.0, 1.0);
  GeoPoint synced;
  synced.lat_deg =
      a.position.lat_deg + f * (b.position.lat_deg - a.position.lat_deg);
  synced.lon_deg =
      a.position.lon_deg + f * (b.position.lon_deg - a.position.lon_deg);
  synced.alt_m = a.position.alt_m + f * (b.position.alt_m - a.position.alt_m);
  return Distance3dMeters(synced, p.position);
}

namespace {

/// Struct-of-arrays copy of one entity's track, built once per DP run
/// so segment deviations evaluate as contiguous SIMD lanes. Timestamps
/// are stored as doubles relative to the first point: exact for spans
/// below 2^53 ms, and differences of exactly-represented integers stay
/// exact, so the SED time fraction divides the same values the
/// report-based SedMeters does.
struct TrackSoa {
  std::vector<double> lat, lon, alt, ts;

  void Build(const std::vector<PositionReport>& pts) {
    const std::size_t n = pts.size();
    lat.resize(n);
    lon.resize(n);
    alt.resize(n);
    ts.resize(n);
    const TimestampMs t0 = pts.front().timestamp;
    for (std::size_t i = 0; i < n; ++i) {
      lat[i] = pts[i].position.lat_deg;
      lon[i] = pts[i].position.lon_deg;
      alt[i] = pts[i].position.alt_m;
      ts[i] = static_cast<double>(pts[i].timestamp - t0);
    }
  }
};

/// Shared Douglas-Peucker skeleton, explicit-stack iterative so
/// adversarial tracks (every point kept -> recursion depth ~ n) cannot
/// blow the call stack. `deviation(first, last, dev)` scores interior
/// points against segment (first, last) into dev[first+1 .. last-1].
/// Pushes (worst, last) before (first, worst) to walk segments in the
/// old recursion's order; the first-encounter argmax tie-break is
/// unchanged, so the kept set matches the recursive form exactly.
template <typename BatchDeviationFn>
std::vector<PositionReport> DpRun(const std::vector<PositionReport>& points,
                                  double epsilon,
                                  const BatchDeviationFn& deviation) {
  if (points.size() <= 2) return points;
  std::vector<bool> keep(points.size(), false);
  keep.front() = true;
  keep.back() = true;
  std::vector<double> dev(points.size());
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.reserve(64);
  stack.emplace_back(0, points.size() - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last <= first + 1) continue;
    deviation(first, last, dev.data());
    double worst = -1.0;
    std::size_t worst_idx = first;
    for (std::size_t i = first + 1; i < last; ++i) {
      if (dev[i] > worst) {
        worst = dev[i];
        worst_idx = i;
      }
    }
    if (worst > epsilon) {
      keep[worst_idx] = true;
      stack.emplace_back(worst_idx, last);
      stack.emplace_back(first, worst_idx);
    }
  }
  std::vector<PositionReport> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

}  // namespace

std::vector<PositionReport> DouglasPeucker(
    const std::vector<PositionReport>& points, double epsilon_m) {
  if (points.size() <= 2) return points;
  TrackSoa soa;
  soa.Build(points);
  // PointToSegmentMetersBatch is the bit-identical kernel class: the
  // kept set equals the legacy per-point PointToSegmentMeters loop's.
  return DpRun(points, epsilon_m,
               [&soa](std::size_t f, std::size_t l, double* dev) {
                 PointToSegmentMetersBatch(
                     {soa.lat[f], soa.lon[f]}, {soa.lat[l], soa.lon[l]},
                     soa.lat.data() + f + 1, soa.lon.data() + f + 1,
                     l - f - 1, dev + f + 1);
               });
}

std::vector<PositionReport> DouglasPeuckerSed(
    const std::vector<PositionReport>& points, double epsilon_m) {
  if (points.size() <= 2) return points;
  TrackSoa soa;
  soa.Build(points);
  // SedMetersBatch is ULP-bound (polynomial haversine inside): kept
  // sets can differ from the libm SedMeters only when a deviation sits
  // within ~1e-13 relative of epsilon.
  return DpRun(points, epsilon_m,
               [&soa](std::size_t f, std::size_t l, double* dev) {
                 SedMetersBatch(soa.lat[f], soa.lon[f], soa.alt[f], soa.ts[f],
                                soa.lat[l], soa.lon[l], soa.alt[l], soa.ts[l],
                                soa.lat.data() + f + 1, soa.lon.data() + f + 1,
                                soa.alt.data() + f + 1, soa.ts.data() + f + 1,
                                l - f - 1, dev + f + 1);
               });
}

bool InterpolateAt(const std::vector<PositionReport>& kept, TimestampMs t,
                   GeoPoint* out) {
  if (kept.empty() || out == nullptr) return false;
  if (t <= kept.front().timestamp) {
    *out = kept.front().position;
    return true;
  }
  if (t >= kept.back().timestamp) {
    *out = kept.back().position;
    return true;
  }
  // Binary search for the bracketing pair.
  std::size_t lo = 0;
  std::size_t hi = kept.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (kept[mid].timestamp <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const PositionReport& a = kept[lo];
  const PositionReport& b = kept[hi];
  const double span = static_cast<double>(b.timestamp - a.timestamp);
  const double f =
      span > 0 ? static_cast<double>(t - a.timestamp) / span : 0.0;
  out->lat_deg =
      a.position.lat_deg + f * (b.position.lat_deg - a.position.lat_deg);
  out->lon_deg =
      a.position.lon_deg + f * (b.position.lon_deg - a.position.lon_deg);
  out->alt_m = a.position.alt_m + f * (b.position.alt_m - a.position.alt_m);
  return true;
}

CompressionQuality EvaluateCompression(
    const std::vector<PositionReport>& truth,
    const std::vector<PositionReport>& kept) {
  CompressionQuality q;
  q.original_points = truth.size();
  q.kept_points = kept.size();
  if (truth.empty() || kept.empty()) return q;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const PositionReport& p : truth) {
    GeoPoint interp;
    InterpolateAt(kept, p.timestamp, &interp);
    const double d = Distance3dMeters(interp, p.position);
    sum += d;
    sum_sq += d * d;
    q.max_sed_m = std::max(q.max_sed_m, d);
  }
  q.mean_sed_m = sum / truth.size();
  q.rmse_m = std::sqrt(sum_sq / truth.size());
  return q;
}

}  // namespace datacron
