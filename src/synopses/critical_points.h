#ifndef DATACRON_SYNOPSES_CRITICAL_POINTS_H_
#define DATACRON_SYNOPSES_CRITICAL_POINTS_H_

#include <map>
#include <string>
#include <vector>

#include "sources/model.h"
#include "stream/operator.h"

namespace datacron {

/// Kinds of trajectory "critical points" — the semantically important
/// samples the in-situ processing keeps. Everything between consecutive
/// critical points is assumed to be well-approximated by dead reckoning,
/// which is what gives the high compression rates the paper claims without
/// hurting downstream analytics.
enum class CriticalPointType : std::uint8_t {
  kTrajectoryStart = 0,
  kStopStart,
  kStopEnd,
  kTurningPoint,
  kSpeedChange,
  kGapStart,
  kGapEnd,
  kAltitudeChange,   // aviation: climb/descent regime change
  kHeartbeat,        // periodic keep-alive when nothing else fires
  kTrajectoryEnd,
};

const char* CriticalPointTypeName(CriticalPointType type);

/// A position report annotated as critical.
struct CriticalPoint {
  PositionReport report;
  CriticalPointType type = CriticalPointType::kHeartbeat;

  bool operator==(const CriticalPoint&) const = default;
};

/// Thresholds of the online detector. Defaults follow the maritime
/// settings in the datAcron synopses literature (stop < 0.5 kn, turn >
/// 6 degrees, speed change > 25%, gap > 10 min).
struct CriticalPointConfig {
  /// Below this speed an entity is considered stopped.
  double stop_speed_mps = 0.5 * kKnotsToMps;
  /// Accumulated course change that triggers a turning point.
  double turn_threshold_deg = 6.0;
  /// Relative speed change (vs. speed at last emission) that triggers.
  double speed_change_ratio = 0.25;
  /// A silence longer than this is a communication gap.
  DurationMs gap_threshold = 10 * kMinute;
  /// Vertical rate change that triggers an altitude-change point (m/s);
  /// only meaningful for aviation.
  double vertical_rate_threshold_mps = 3.0;
  /// Emit a heartbeat if nothing fired for this long (0 disables).
  DurationMs heartbeat_interval = 10 * kMinute;
};

/// Streaming operator: PositionReport -> CriticalPoint. Keeps O(1) state
/// per entity; this is one of the paper's "primitive operators applied
/// directly on the data streams". Reports of many entities may interleave.
class CriticalPointDetector
    : public Operator<PositionReport, CriticalPoint> {
 public:
  /// All state is per entity: safe to shard by entity.
  static constexpr StageKind kStage = StageKind::kKeyed;

  explicit CriticalPointDetector(CriticalPointConfig config = {});

  void Process(const PositionReport& report,
               std::vector<CriticalPoint>* out) override;

  /// Emits TrajectoryEnd for every tracked entity.
  void Flush(std::vector<CriticalPoint>* out) override;

  const CriticalPointConfig& config() const { return config_; }

  /// Number of entities with live state.
  std::size_t TrackedEntities() const { return state_.size(); }

 private:
  struct EntityState {
    PositionReport last_report;
    PositionReport last_emitted;
    double course_accum_deg = 0.0;
    bool stopped = false;
    bool started = false;
  };

  void Emit(const PositionReport& report, CriticalPointType type,
            EntityState* state, std::vector<CriticalPoint>* out);

  CriticalPointConfig config_;
  std::map<EntityId, EntityState> state_;
};

}  // namespace datacron

#endif  // DATACRON_SYNOPSES_CRITICAL_POINTS_H_
