#include "link/rdf_links.h"

namespace datacron {

namespace {

/// Node IRI of (entity, t) if that report was transformed; 0 otherwise.
TermId FindNode(Rdfizer* rdfizer, EntityId entity, TimestampMs t) {
  PositionReport probe;
  probe.entity_id = entity;
  probe.timestamp = t;
  return rdfizer->NodeIdOf(probe);
}

}  // namespace

LinkMaterializeStats MaterializeProximityLinks(
    const std::vector<EntityLink>& links, Rdfizer* rdfizer,
    const Vocab& vocab, std::vector<Triple>* out) {
  LinkMaterializeStats stats;
  TermDictionary* dict = vocab.dict;
  for (const EntityLink& l : links) {
    const TermId node_a = FindNode(rdfizer, l.a, l.t);
    const TermId node_b = FindNode(rdfizer, l.b, l.t);
    const TermId ent_a = dict->Intern(EntityIri(l.a));
    const TermId ent_b = dict->Intern(EntityIri(l.b));
    bool any = false;
    if (node_a != kInvalidTermId) {
      out->push_back({node_a, vocab.p_near_entity, ent_b});
      any = true;
    }
    if (node_b != kInvalidTermId) {
      out->push_back({node_b, vocab.p_near_entity, ent_a});
      any = true;
    }
    if (any) {
      ++stats.emitted;
    } else {
      ++stats.skipped_unknown_node;
    }
  }
  return stats;
}

LinkMaterializeStats MaterializeAreaLinks(const std::vector<AreaLink>& links,
                                          Rdfizer* rdfizer,
                                          const Vocab& vocab,
                                          std::vector<Triple>* out) {
  LinkMaterializeStats stats;
  TermDictionary* dict = vocab.dict;
  for (const AreaLink& l : links) {
    const TermId node = FindNode(rdfizer, l.entity, l.t);
    if (node == kInvalidTermId) {
      ++stats.skipped_unknown_node;
      continue;
    }
    const TermId area = dict->Intern(AreaIri(l.area));
    out->push_back({area, vocab.p_type, vocab.c_area});
    out->push_back({node, vocab.p_within_area, area});
    ++stats.emitted;
  }
  return stats;
}

LinkMaterializeStats MaterializeWeatherLinks(
    const std::vector<WeatherLink>& links, Rdfizer* rdfizer,
    const Vocab& vocab, std::vector<Triple>* out) {
  LinkMaterializeStats stats;
  TermDictionary* dict = vocab.dict;
  for (const WeatherLink& l : links) {
    const TermId node = FindNode(rdfizer, l.entity, l.t);
    if (node == kInvalidTermId) {
      ++stats.skipped_unknown_node;
      continue;
    }
    const std::int64_t bucket = rdfizer->BucketOf(l.bucket_start);
    const TermId wx =
        dict->Intern(WeatherIri(l.cell.ix, l.cell.iy, bucket));
    out->push_back({node, vocab.p_weather_at, wx});
    ++stats.emitted;
  }
  return stats;
}

}  // namespace datacron
