#ifndef DATACRON_LINK_RDF_LINKS_H_
#define DATACRON_LINK_RDF_LINKS_H_

#include <vector>

#include "link/link_discovery.h"
#include "rdf/rdfizer.h"
#include "rdf/triple_store.h"

namespace datacron {

/// Materializes discovered links as RDF triples against the common
/// representation, closing the loop of the integration/interlinking
/// component: links become queryable alongside the data they connect.
///
/// Proximity:  node(a,t) dc:nearEntity ent(b)   (and symmetric)
/// Area:       node(e,t) dc:withinArea area:<name>
/// Weather:    node(e,t) dc:experiencedWeather wx:<cell>/<bucket>
/// Node IRIs resolve only if the corresponding report was transformed by
/// the same Rdfizer; links whose node is unknown are skipped and counted.
struct LinkMaterializeStats {
  std::size_t emitted = 0;
  std::size_t skipped_unknown_node = 0;
};

LinkMaterializeStats MaterializeProximityLinks(
    const std::vector<EntityLink>& links, Rdfizer* rdfizer,
    const Vocab& vocab, std::vector<Triple>* out);

LinkMaterializeStats MaterializeAreaLinks(const std::vector<AreaLink>& links,
                                          Rdfizer* rdfizer,
                                          const Vocab& vocab,
                                          std::vector<Triple>* out);

LinkMaterializeStats MaterializeWeatherLinks(
    const std::vector<WeatherLink>& links, Rdfizer* rdfizer,
    const Vocab& vocab, std::vector<Triple>* out);

}  // namespace datacron

#endif  // DATACRON_LINK_RDF_LINKS_H_
