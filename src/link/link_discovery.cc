#include "link/link_discovery.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "geo/kernels.h"

namespace datacron {

namespace {

/// Frame index of a timestamp for a given frame width.
std::int64_t FrameOf(TimestampMs t, DurationMs frame_ms) {
  std::int64_t f = t / frame_ms;
  if (t < 0 && f * frame_ms > t) --f;
  return f;
}

using PairKey = std::uint64_t;

PairKey KeyOf(EntityId a, EntityId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Collapses verified pair hits into one link per (pair, frame), keeping
/// the closest approach.
class LinkCollector {
 public:
  explicit LinkCollector(DurationMs frame_ms) : frame_ms_(frame_ms) {}

  void Offer(const PositionReport& x, const PositionReport& y,
             double dist_m) {
    EntityId a = x.entity_id, b = y.entity_id;
    TimestampMs t = std::min(x.timestamp, y.timestamp);
    if (a > b) std::swap(a, b);
    auto key = std::make_pair(KeyOf(a, b), FrameOf(t, frame_ms_));
    auto it = links_.find(key);
    if (it == links_.end() || dist_m < it->second.distance_m) {
      links_[key] = EntityLink{a, b, t, dist_m};
    }
  }

  std::vector<EntityLink> Take() {
    std::vector<EntityLink> out;
    out.reserve(links_.size());
    for (auto& [key, link] : links_) out.push_back(link);
    std::sort(out.begin(), out.end(),
              [](const EntityLink& a, const EntityLink& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.a != b.a) return a.a < b.a;
                return a.b < b.b;
              });
    return out;
  }

 private:
  DurationMs frame_ms_;
  std::map<std::pair<PairKey, std::int64_t>, EntityLink> links_;
};

}  // namespace

std::vector<EntityLink> LinkDiscovery::DiscoverProximityImpl(
    const std::vector<PositionReport>& reports, bool blocked) const {
  // Slice reports into frames of the time tolerance. A pair within
  // tolerance falls into the same or adjacent frames; comparing each frame
  // with itself and its successor covers all pairs.
  std::map<std::int64_t, std::vector<const PositionReport*>> frames;
  for (const PositionReport& r : reports) {
    frames[FrameOf(r.timestamp, config_.time_tolerance)].push_back(&r);
  }

  LinkCollector collector(config_.time_tolerance);
  // `cos_lat` is the hoisted equirectangular latitude scale — callers
  // compute it once per fixed left endpoint instead of per pair (the
  // lat spread within a proximity neighborhood keeps the error well
  // under the threshold's resolution).
  auto verify = [&](const PositionReport* x, const PositionReport* y,
                    double cos_lat) {
    if (x->entity_id == y->entity_id) return;
    if (std::llabs(x->timestamp - y->timestamp) > config_.time_tolerance)
      return;
    const double d =
        EquirectangularMetersWithCos(cos_lat, x->position.ll(),
                                     y->position.ll());
    if (d <= config_.proximity_threshold_m) collector.Offer(*x, *y, d);
  };

  // Blocking grid: cell edge >= threshold so candidates are within the
  // 3x3 neighborhood of a cell.
  const double cell_deg = std::max(
      0.001, config_.proximity_threshold_m /
                 (kEarthRadiusMeters * kDegToRad *
                  std::cos(config_.region.Center().lat_deg * kDegToRad)));

  for (auto it = frames.begin(); it != frames.end(); ++it) {
    // Current frame plus the next one (for cross-boundary pairs).
    std::vector<const PositionReport*> pool = it->second;
    auto next = std::next(it);
    const std::size_t own_count = pool.size();
    if (next != frames.end() && next->first == it->first + 1) {
      pool.insert(pool.end(), next->second.begin(), next->second.end());
    }
    if (pool.size() < 2) continue;

    if (!blocked) {
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const double cos_i =
            std::cos(pool[i]->position.lat_deg * kDegToRad);
        // Avoid re-reporting next-frame-internal pairs: only pairs with at
        // least one endpoint in the current frame.
        for (std::size_t j = i + 1; j < pool.size(); ++j) {
          if (i >= own_count && j >= own_count) continue;
          verify(pool[i], pool[j], cos_i);
        }
      }
      continue;
    }

    GridIndex<std::size_t> index(config_.region, cell_deg);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      index.Insert(pool[i]->position.ll(), i);
    }
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const double cos_i = std::cos(pool[i]->position.lat_deg * kDegToRad);
      for (std::size_t j :
           index.NeighborhoodCandidates(pool[i]->position.ll())) {
        if (j <= i) continue;
        if (i >= own_count && j >= own_count) continue;
        verify(pool[i], pool[j], cos_i);
      }
    }
  }
  return collector.Take();
}

std::vector<EntityLink> LinkDiscovery::DiscoverProximity(
    const std::vector<PositionReport>& reports) const {
  return DiscoverProximityImpl(reports, /*blocked=*/true);
}

std::vector<EntityLink> LinkDiscovery::DiscoverProximityBruteForce(
    const std::vector<PositionReport>& reports) const {
  return DiscoverProximityImpl(reports, /*blocked=*/false);
}

std::vector<AreaLink> LinkDiscovery::DiscoverAreaLinks(
    const std::vector<PositionReport>& reports,
    const std::vector<NamedArea>& areas) const {
  std::vector<AreaLink> out;
  // Track the inside/outside state per (entity, area) to emit entries only.
  std::map<std::pair<EntityId, std::size_t>, bool> inside;
  for (const PositionReport& r : reports) {
    for (std::size_t ai = 0; ai < areas.size(); ++ai) {
      const bool now = areas[ai].polygon.Contains(r.position.ll());
      bool& was = inside[{r.entity_id, ai}];
      if (now && !was) {
        out.push_back(AreaLink{r.entity_id, areas[ai].name, r.timestamp});
      }
      was = now;
    }
  }
  return out;
}

std::vector<WeatherLink> LinkDiscovery::DiscoverWeatherLinks(
    const std::vector<PositionReport>& reports,
    const WeatherSource& weather) const {
  std::vector<WeatherLink> out;
  out.reserve(reports.size());
  for (const PositionReport& r : reports) {
    const WeatherSample s = weather.At(r.position.ll(), r.timestamp);
    out.push_back(WeatherLink{r.entity_id, r.timestamp, s.cell,
                              s.bucket_start});
  }
  return out;
}

std::vector<EntityLink> TrueEncounters(const std::vector<TruthTrace>& traces,
                                       double threshold_m,
                                       DurationMs frame_ms) {
  LinkCollector collector(frame_ms);
  if (traces.empty()) return collector.Take();
  // Sample all traces on a common clock at frame resolution and verify
  // pairs exhaustively — this is ground truth, cost is acceptable offline.
  TimestampMs t0 = traces.front().start_time;
  TimestampMs t1 = traces.front().EndTime();
  for (const TruthTrace& tr : traces) {
    t0 = std::min(t0, tr.start_time);
    t1 = std::max(t1, tr.EndTime());
  }
  for (TimestampMs t = t0; t <= t1; t += frame_ms) {
    std::vector<PositionReport> states;
    states.reserve(traces.size());
    for (const TruthTrace& tr : traces) {
      if (t < tr.start_time || t > tr.EndTime()) continue;
      PositionReport r;
      if (tr.StateAt(t, &r)) states.push_back(r);
    }
    for (std::size_t i = 0; i < states.size(); ++i) {
      // Same first-endpoint cosine convention as the discovery paths.
      const double cos_i = std::cos(states[i].position.lat_deg * kDegToRad);
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        const double d = EquirectangularMetersWithCos(
            cos_i, states[i].position.ll(), states[j].position.ll());
        if (d <= threshold_m) collector.Offer(states[i], states[j], d);
      }
    }
  }
  return collector.Take();
}

LinkQuality EvaluateLinks(const std::vector<EntityLink>& discovered,
                          const std::vector<EntityLink>& truth,
                          DurationMs frame_ms) {
  auto reduce = [frame_ms](const std::vector<EntityLink>& links) {
    std::map<std::pair<PairKey, std::int64_t>, bool> set;
    for (const EntityLink& l : links) {
      set[{KeyOf(l.a, l.b), FrameOf(l.t, frame_ms)}] = true;
    }
    return set;
  };
  const auto d = reduce(discovered);
  const auto g = reduce(truth);
  LinkQuality q;
  for (const auto& [key, unused] : d) {
    // A discovered link is correct if truth holds in the same or an
    // adjacent frame (frame boundaries are arbitrary).
    if (g.count(key) || g.count({key.first, key.second - 1}) ||
        g.count({key.first, key.second + 1})) {
      ++q.true_positive;
    } else {
      ++q.false_positive;
    }
  }
  for (const auto& [key, unused] : g) {
    if (!d.count(key) && !d.count({key.first, key.second - 1}) &&
        !d.count({key.first, key.second + 1})) {
      ++q.false_negative;
    }
  }
  return q;
}

}  // namespace datacron
