#ifndef DATACRON_LINK_LINK_DISCOVERY_H_
#define DATACRON_LINK_LINK_DISCOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/grid.h"
#include "geo/polygon.h"
#include "sources/model.h"
#include "sources/weather.h"

namespace datacron {

/// A discovered proximity association between two moving entities: they
/// were within the threshold distance of each other around time `t`.
/// Symmetric; stored with a < b.
struct EntityLink {
  EntityId a = 0;
  EntityId b = 0;
  TimestampMs t = 0;
  double distance_m = 0.0;
};

/// Entity was inside a named area at time `t`.
struct AreaLink {
  EntityId entity = 0;
  std::string area;
  TimestampMs t = 0;
};

/// Entity's report at `t` experienced the weather of (cell, bucket).
struct WeatherLink {
  EntityId entity = 0;
  TimestampMs t = 0;
  GridCell cell;
  std::int64_t bucket_start = 0;
};

/// The data integration / interlinking component (paper Section 2):
/// computes associations between heterogeneous sources — moving-entity
/// streams, area geometries, archival weather — with grid blocking so
/// proximity linking is near-linear instead of O(n^2).
class LinkDiscovery {
 public:
  struct Config {
    /// Two entities closer than this are linked.
    double proximity_threshold_m = 2000.0;
    /// Reports are comparable when their timestamps differ by at most
    /// this much (streams are asynchronous across entities).
    DurationMs time_tolerance = 30 * kSecond;
    /// Region for the blocking grid.
    BoundingBox region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  };

  explicit LinkDiscovery(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Proximity links with spatial grid blocking: reports are sliced into
  /// time frames of `time_tolerance`, each frame is bucketed on a grid
  /// whose cell edge covers the threshold, and only same/neighbor-cell
  /// pairs are verified. One link per (pair, frame), at minimum distance.
  std::vector<EntityLink> DiscoverProximity(
      const std::vector<PositionReport>& reports) const;

  /// Brute-force baseline (all pairs per time frame) — identical output,
  /// quadratic cost; E6 compares the two.
  std::vector<EntityLink> DiscoverProximityBruteForce(
      const std::vector<PositionReport>& reports) const;

  /// Entity-in-area links (point-in-polygon with bbox prefilter). One
  /// link per (entity, area) entry — consecutive inside reports collapse.
  std::vector<AreaLink> DiscoverAreaLinks(
      const std::vector<PositionReport>& reports,
      const std::vector<NamedArea>& areas) const;

  /// Report-to-weather links through the weather source's cell/bucket
  /// discretization.
  std::vector<WeatherLink> DiscoverWeatherLinks(
      const std::vector<PositionReport>& reports,
      const WeatherSource& weather) const;

 private:
  /// Shared frame-slicing + pair-verification skeleton; `blocked` selects
  /// candidate generation.
  std::vector<EntityLink> DiscoverProximityImpl(
      const std::vector<PositionReport>& reports, bool blocked) const;

  Config config_;
};

/// Precision/recall of discovered links versus ground truth. Links match
/// when they name the same unordered pair and their times fall in the
/// same tolerance frame.
struct LinkQuality {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  double Precision() const {
    const std::size_t d = true_positive + false_positive;
    return d == 0 ? 0.0 : static_cast<double>(true_positive) / d;
  }
  double Recall() const {
    const std::size_t d = true_positive + false_negative;
    return d == 0 ? 0.0 : static_cast<double>(true_positive) / d;
  }
  double F1() const {
    const double p = Precision(), r = Recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
};

/// Exact ground-truth encounters from dense traces: all (pair, frame)
/// occurrences where true positions came within `threshold_m`.
std::vector<EntityLink> TrueEncounters(const std::vector<TruthTrace>& traces,
                                       double threshold_m,
                                       DurationMs frame_ms);

/// Scores `discovered` against `truth` (both reduced to (pair, frame)).
LinkQuality EvaluateLinks(const std::vector<EntityLink>& discovered,
                          const std::vector<EntityLink>& truth,
                          DurationMs frame_ms);

}  // namespace datacron

#endif  // DATACRON_LINK_LINK_DISCOVERY_H_
