#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

TEST(NTriplesTest, SerializeIriTriple) {
  TermDictionary dict;
  const Triple t{dict.Intern("ent:1"), dict.Intern("rdf:type"),
                 dict.Intern("dc:Vessel")};
  EXPECT_EQ(SerializeNTriples({t}, dict),
            "<ent:1> <rdf:type> <dc:Vessel> .\n");
}

TEST(NTriplesTest, SerializeTypedLiteral) {
  TermDictionary dict;
  const Triple t{dict.Intern("node:1"), dict.Intern("dc:hasSpeed"),
                 dict.InternDouble(7.5)};
  const std::string doc = SerializeNTriples({t}, dict);
  EXPECT_NE(doc.find("\"7.5\"^^double"), std::string::npos);
}

TEST(NTriplesTest, RoundTripPreservesTriples) {
  TermDictionary dict;
  std::vector<Triple> triples = {
      {dict.Intern("ent:1"), dict.Intern("rdf:type"),
       dict.Intern("dc:Vessel")},
      {dict.Intern("node:1/100"), dict.Intern("dc:hasSpeed"),
       dict.InternDouble(7.5)},
      {dict.Intern("node:1/100"), dict.Intern("dc:hasTimestamp"),
       dict.InternDateTime(1490054400000)},
      {dict.Intern("node:1/100"), dict.Intern("dc:hasNodeKind"),
       dict.Intern("say \"stop\"", TermKind::kLiteralString)},
  };
  const std::string doc = SerializeNTriples(triples, dict);

  TermDictionary dict2;
  std::vector<Triple> parsed;
  ASSERT_TRUE(ParseNTriples(doc, &dict2, &parsed).ok());
  ASSERT_EQ(parsed.size(), triples.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(dict2.Text(parsed[i].s).value(),
              dict.Text(triples[i].s).value());
    EXPECT_EQ(dict2.Text(parsed[i].p).value(),
              dict.Text(triples[i].p).value());
    EXPECT_EQ(dict2.Text(parsed[i].o).value(),
              dict.Text(triples[i].o).value());
    EXPECT_EQ(dict2.Kind(parsed[i].o), dict.Kind(triples[i].o));
  }
}

TEST(NTriplesTest, RoundTripWholeFleetStore) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  AisGeneratorConfig fleet;
  fleet.num_vessels = 5;
  fleet.duration = 15 * kMinute;
  ObservationConfig obs;
  std::vector<Triple> triples;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  const std::string doc = SerializeNTriples(triples, dict);

  TermDictionary dict2;
  std::vector<Triple> parsed;
  ASSERT_TRUE(ParseNTriples(doc, &dict2, &parsed).ok());
  EXPECT_EQ(parsed.size(), triples.size());
  // Store sizes match after dedup in both dictionaries' id spaces.
  TripleStore original, restored;
  original.AddBatch(triples);
  original.Seal();
  restored.AddBatch(parsed);
  restored.Seal();
  EXPECT_EQ(original.size(), restored.size());
}

TEST(NTriplesTest, ParseSkipsBlankLines) {
  TermDictionary dict;
  std::vector<Triple> out;
  ASSERT_TRUE(
      ParseNTriples("\n<a> <b> <c> .\n\n<d> <e> <f> .\n\n", &dict, &out)
          .ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(NTriplesTest, ParseRejectsMalformed) {
  TermDictionary dict;
  std::vector<Triple> out;
  EXPECT_FALSE(ParseNTriples("<a> <b> .\n", &dict, &out).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c>\n", &dict, &out).ok());  // no dot
  EXPECT_FALSE(ParseNTriples("<a <b> <c> .\n", &dict, &out).ok());
  EXPECT_FALSE(
      ParseNTriples("<a> <b> \"x\"^^banana .\n", &dict, &out).ok());
}

TEST(NTriplesTest, UnknownIdSerializesAsPlaceholder) {
  TermDictionary dict;
  const std::string doc = SerializeNTriples({{999, 998, 997}}, dict);
  EXPECT_NE(doc.find("<unknown:999>"), std::string::npos);
}

}  // namespace
}  // namespace datacron
