#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

/// Shared fixture: a small fleet RDF-ized, with tags.
class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : vocab_(&dict_) {
    Rdfizer::Config cfg;
    rdfizer_ = std::make_unique<Rdfizer>(cfg, &dict_, &vocab_);
    AisGeneratorConfig fleet;
    fleet.num_vessels = 12;
    fleet.duration = 40 * kMinute;
    const auto traces = GenerateAisFleet(fleet);
    ObservationConfig obs;
    obs.fixed_interval_ms = 20 * kSecond;
    for (const auto& r : ObserveFleet(traces, obs)) {
      const auto ts = rdfizer_->TransformReport(r);
      triples_.insert(triples_.end(), ts.begin(), ts.end());
    }
  }

  TermDictionary dict_;
  Vocab vocab_;
  std::unique_ptr<Rdfizer> rdfizer_;
  std::vector<Triple> triples_;
};

TEST_F(PartitionTest, HashCoversAllPartitionsAndIsDeterministic) {
  HashPartitioner scheme(8, &rdfizer_->tags());
  std::set<int> used;
  for (const Triple& t : triples_) {
    const int p = scheme.PartitionOf(t);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
    EXPECT_EQ(p, scheme.PartitionOf(t));  // deterministic
    used.insert(p);
  }
  EXPECT_EQ(used.size(), 8u);
}

TEST_F(PartitionTest, SubjectsAreColocated) {
  // All triples of one subject land in one partition — for every scheme.
  std::vector<std::unique_ptr<PartitionScheme>> schemes;
  schemes.push_back(
      std::make_unique<HashPartitioner>(4, &rdfizer_->tags()));
  schemes.push_back(std::make_unique<GridPartitioner>(4, &rdfizer_->tags(),
                                                      rdfizer_->grid()));
  schemes.push_back(HilbertPartitioner::Build(4, &rdfizer_->tags(),
                                              rdfizer_->grid()));
  schemes.push_back(TemporalPartitioner::Build(4, &rdfizer_->tags()));
  schemes.push_back(SpatioTemporalPartitioner::Build(
      2, 2, &rdfizer_->tags(), rdfizer_->grid()));
  for (const auto& scheme : schemes) {
    std::map<TermId, int> subject_partition;
    for (const Triple& t : triples_) {
      const int p = scheme->PartitionOf(t);
      auto [it, inserted] = subject_partition.try_emplace(t.s, p);
      EXPECT_EQ(it->second, p) << scheme->name();
    }
  }
}

TEST_F(PartitionTest, LoadPreservesEveryTriple) {
  auto scheme =
      HilbertPartitioner::Build(6, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore store;
  store.Load(triples_, *scheme, rdfizer_->grid(), vocab_.p_next_node);
  // Sum of partition sizes equals the deduplicated triple count.
  std::set<std::tuple<TermId, TermId, TermId>> dedup;
  for (const Triple& t : triples_) dedup.insert({t.s, t.p, t.o});
  EXPECT_EQ(store.TotalTriples(), dedup.size());
}

TEST_F(PartitionTest, BalancedSchemesAreBalanced) {
  auto hilbert =
      HilbertPartitioner::Build(4, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore store;
  store.Load(triples_, *hilbert, rdfizer_->grid(), vocab_.p_next_node);
  // Balance factor: max/mean should be < 2 for boundary-balanced Hilbert.
  EXPECT_LT(store.stats().balance_factor, 2.0);
  EXPECT_GE(store.stats().balance_factor, 1.0);
}

TEST_F(PartitionTest, HilbertLocalityBeatsHashOnSequenceEdges) {
  auto hash = std::make_unique<HashPartitioner>(8, &rdfizer_->tags());
  auto hilbert =
      HilbertPartitioner::Build(8, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore hash_store, hilbert_store;
  hash_store.Load(triples_, *hash, rdfizer_->grid(), vocab_.p_next_node);
  hilbert_store.Load(triples_, *hilbert, rdfizer_->grid(),
                     vocab_.p_next_node);
  // Consecutive positions of a vessel are spatially adjacent, so a
  // locality-preserving scheme keeps most next-node edges internal; hash
  // scatters ~ (k-1)/k of them.
  EXPECT_LT(hilbert_store.stats().cross_partition_edge_ratio, 0.35);
  EXPECT_GT(hash_store.stats().cross_partition_edge_ratio, 0.75);
}

TEST_F(PartitionTest, TemporalPartitionerOrdersBuckets) {
  auto temporal = TemporalPartitioner::Build(4, &rdfizer_->tags());
  // Later buckets must never map to an earlier partition than earlier
  // buckets (range partitioning is monotone).
  StTag early{{0, 0}, 0}, late{{0, 0}, 1000};
  EXPECT_LE(temporal->PlaceTagged(early), temporal->PlaceTagged(late));
}

TEST_F(PartitionTest, GridPartitionerPlacesByRowMajorRanges) {
  GridPartitioner scheme(4, &rdfizer_->tags(), rdfizer_->grid());
  // Bottom-left cell -> partition 0; top-right cell -> partition 3.
  StTag bottom{{0, 0}, 0};
  StTag top{{rdfizer_->grid().cols() - 1, rdfizer_->grid().rows() - 1}, 0};
  EXPECT_EQ(scheme.PlaceTagged(bottom), 0);
  EXPECT_EQ(scheme.PlaceTagged(top), 3);
}

TEST_F(PartitionTest, SpatioTemporalComposite) {
  auto st = SpatioTemporalPartitioner::Build(2, 3, &rdfizer_->tags(),
                                             rdfizer_->grid());
  EXPECT_EQ(st->num_partitions(), 6);
  std::set<int> used;
  for (const Triple& t : triples_) used.insert(st->PartitionOf(t));
  EXPECT_GE(used.size(), 4u);
}

TEST_F(PartitionTest, MetaEnvelopesCoverResidentNodes) {
  auto hilbert =
      HilbertPartitioner::Build(5, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore store;
  store.Load(triples_, *hilbert, rdfizer_->grid());
  for (const auto& [node, tag] : rdfizer_->tags()) {
    const int p = hilbert->PartitionOfNode(node);
    const PartitionMeta& m = store.meta(p);
    EXPECT_TRUE(
        m.bbox.Contains(rdfizer_->grid().CellCenter(tag.cell)))
        << "partition " << p;
    EXPECT_GE(tag.bucket, m.min_bucket);
    EXPECT_LE(tag.bucket, m.max_bucket);
  }
}

TEST_F(PartitionTest, PruningIsSound) {
  auto hilbert =
      HilbertPartitioner::Build(6, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore store;
  store.Load(triples_, *hilbert, rdfizer_->grid());
  // Query box: the south-west quadrant.
  const BoundingBox query = BoundingBox::Of(35, 23, 37, 25);
  const auto candidates = store.PruneCandidates(query, 0, 1000000);
  const std::set<int> cand(candidates.begin(), candidates.end());
  // Every node inside the box must live in a candidate partition.
  for (const auto& [node, tag] : rdfizer_->tags()) {
    const LatLon center = rdfizer_->grid().CellCenter(tag.cell);
    if (query.Contains(center)) {
      EXPECT_TRUE(cand.count(hilbert->PartitionOfNode(node)));
    }
  }
}

TEST_F(PartitionTest, PruningActuallyPrunes) {
  auto grid_scheme = std::make_unique<GridPartitioner>(
      8, &rdfizer_->tags(), rdfizer_->grid());
  PartitionedRdfStore store;
  store.Load(triples_, *grid_scheme, rdfizer_->grid());
  // A tiny query box should not need all 8 partitions.
  const BoundingBox tiny = BoundingBox::Of(35.2, 23.2, 35.4, 23.4);
  const auto candidates = store.PruneCandidates(tiny, 0, 1000000);
  EXPECT_LT(candidates.size(), 8u);
}

TEST_F(PartitionTest, StatsToStringMentionsScheme) {
  HashPartitioner scheme(3, &rdfizer_->tags());
  PartitionedRdfStore store;
  store.Load(triples_, scheme, rdfizer_->grid());
  EXPECT_NE(store.stats().ToString().find("hash"), std::string::npos);
}

}  // namespace
}  // namespace datacron
